"""Smoke tests: every shipped example parses and its imports resolve.

The examples are executed in full by hand / CI timers; here we pin the
cheap invariants that catch bit-rot immediately: valid syntax, valid
imports, a ``main()`` entry point, and the shebang/docstring conventions.
"""

import ast
import importlib
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "mde_experiment.py",
        "signal_chain.py",
        "cgra_playground.py",
        "multiparticle_modes.py",
        "rampup.py",
        "dual_harmonic.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestEachExample:
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)

    def test_has_main_and_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} needs a docstring"
        names = {n.name for n in tree.body if isinstance(n, ast.FunctionDef)}
        assert "main" in names

    def test_imports_resolve(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    module = importlib.import_module(node.module)
                    for alias in node.names:
                        assert hasattr(module, alias.name), (
                            f"{path.name}: {node.module}.{alias.name} missing"
                        )
