"""Cross-fidelity equivalence: the sample-accurate Fig. 3 framework vs.
the revolution-level fast path (DESIGN.md §6's pinned invariant).

Both paths share the tracking map, the ADC quantisation and the CGRA
model; they differ in how the signals are delivered (250 MHz sample
streams with real zero-crossing/period detection vs. analytic evaluation
with an ideal period).  The bunch trajectories must agree to a small
fraction of the oscillation amplitude.
"""

import numpy as np
import pytest

from repro.constants import deg_to_rad
from repro.control import ControlLoopConfig
from repro.hil.framework import FpgaFramework, FrameworkConfig
from repro.hil.simulator import CavityInTheLoop, HilConfig
from repro.physics import SIS18, KNOWN_IONS
from repro.signal.dds import GroupDDS


@pytest.fixture(scope="module")
def traces():
    """Run both fidelities on the identical open-loop 8°-jump scenario."""
    config = HilConfig(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        engine="python",
        record_every=1,
        jump_deg=8.0,
        jump_start_time=0.0,          # jump active from the first turn
        jump_toggle_period=10.0,      # no further toggles in the window
        control=ControlLoopConfig(sample_rate=800e3, enabled=False),
    )
    sim = CavityInTheLoop(config)
    fast = sim.run(500 / 800e3)

    framework = FpgaFramework(FrameworkConfig(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        harmonic=4,
        gap_volts_per_adc_volt=sim.gap_voltage_amplitude / config.adc_amplitude,
        ref_volts_per_adc_volt=4 * sim.gap_voltage_amplitude / config.adc_amplitude,
    ))
    group = GroupDDS(
        800e3, 4, config.adc_amplitude, 250e6,
        gap_phase_drive=lambda t: deg_to_rad(8.0),
    )
    group.reset_phase()
    for _ in range(520):
        ref, gap = group.generate(312)
        framework.feed(ref.samples, gap.samples)
    sample_accurate = framework.recorder.as_array()[:, 2]
    return fast, sample_accurate


def _best_alignment_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max |a-b| at the best small integer alignment (the two paths start
    counting revolutions at slightly different instants)."""
    best = np.inf
    core = a[5:-5]
    for off in range(-3, 4):
        seg = b[5 + off : 5 + off + len(core)]
        if len(seg) == len(core):
            best = min(best, float(np.abs(core - seg).max()))
    return best


class TestCrossFidelity:
    def test_trajectories_agree(self, traces):
        fast, sample_accurate = traces
        n = min(len(sample_accurate), len(fast.delta_t) - 1)
        err = _best_alignment_error(sample_accurate[:n], fast.delta_t[1 : n + 1])
        amplitude = np.abs(fast.delta_t).max()
        # Within 1% of the oscillation amplitude.
        assert err < 0.01 * amplitude

    def test_both_see_the_jump_equilibrium(self, traces):
        fast, sample_accurate = traces
        # Equilibrium -8 deg at 3.2 MHz = -6.94 ns; both oscillate
        # between ~0 and twice that.
        for trace in (fast.delta_t, sample_accurate):
            assert trace.min() == pytest.approx(-13.9e-9, rel=0.05)
            assert trace.max() < 0.5e-9

    def test_oscillation_periods_match(self, traces):
        fast, sample_accurate = traces
        # Compare zero crossings of the two oscillations (period ~625 turns).
        def crossings(x):
            centred = x - x.mean()
            return np.nonzero((centred[:-1] < 0) & (centred[1:] >= 0))[0]

        n = min(len(sample_accurate), len(fast.delta_t))
        c_fast = crossings(fast.delta_t[:n])
        c_hw = crossings(sample_accurate[:n])
        assert len(c_fast) >= 1 and len(c_hw) >= 1
        assert abs(c_fast[0] - c_hw[0]) <= 10
