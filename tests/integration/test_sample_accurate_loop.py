"""Integration test of the fully sample-accurate closed loop.

The DSP here sees only the beam *waveform* — IQ demodulation must
recover the bunch phase through pulse shaping, ADC quantisation and DAC
reconstruction accurately enough for the control loop to damp the
oscillation.  This exercises every component of Fig. 4 at the sample
level in one closed loop.
"""

import numpy as np
import pytest

from repro.control import ControlLoopConfig
from repro.errors import ConfigurationError
from repro.hil.closed_loop import SampleAccurateBench, SampleAccurateBenchConfig
from repro.physics import SIS18, KNOWN_IONS


def make_bench(gain_scale=0.1, enabled=True, **overrides):
    kwargs = dict(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        control=ControlLoopConfig(
            sample_rate=800e3, gain_scale=gain_scale, enabled=enabled
        ),
        jump_start_time=0.0,
    )
    kwargs.update(overrides)
    return SampleAccurateBench(SampleAccurateBenchConfig(**kwargs))


@pytest.fixture(scope="module")
def closed_run():
    return make_bench().run_revolutions(1500)


class TestIQMeasurementChain:
    def test_iq_tracks_model_ground_truth(self, closed_run):
        """The waveform-level phase measurement equals the model's Δt to
        a tenth of a degree once the chain has settled."""
        ground_truth = -360.0 * 4 * 800e3 * closed_run.delta_t
        err = np.abs(closed_run.phase_deg[50:] - ground_truth[50:])
        assert np.median(err) < 0.05
        assert err.max() < 0.2

    def test_loop_damps_through_the_waveform(self, closed_run):
        ph = closed_run.phase_deg
        early = ph[100:400]
        late = ph[1200:]
        assert (early.max() - early.min()) > 4 * (late.max() - late.min())

    def test_settles_near_jump_level(self, closed_run):
        late = closed_run.phase_deg[1200:]
        assert late.mean() == pytest.approx(8.0, abs=1.0)


class TestOpenVsClosed:
    def test_open_loop_keeps_swinging(self):
        run = make_bench(enabled=False).run_revolutions(1200)
        late = run.phase_deg[900:]
        assert late.max() - late.min() > 10.0  # undamped 2x8 deg swing


class TestValidation:
    def test_revolution_count(self):
        with pytest.raises(ConfigurationError):
            make_bench().run_revolutions(0)

    def test_detector_window(self):
        with pytest.raises(ConfigurationError):
            SampleAccurateBenchConfig(
                ring=SIS18, ion=KNOWN_IONS["14N7+"],
                detector_window_revolutions=0,
            )
