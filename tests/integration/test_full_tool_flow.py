"""End-to-end tool-flow integration: C source → contexts → execution →
physics, plus the "fast iteration" property of the CGRA approach.
"""

import math

import numpy as np
import pytest

from repro.cgra import (
    CgraConfig,
    CgraExecutor,
    CgraFabric,
    ListScheduler,
    SensorBus,
    compile_beam_model,
    compile_c_to_dfg,
)
from repro.cgra.context import build_context_images, images_from_json, images_to_json
from repro.cgra.sensor import (
    ACTUATOR_DELTA_T,
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
)
from repro.physics import SIS18, KNOWN_IONS, MacroParticleTracker, RFSystem
from repro.physics.oscillation import estimate_oscillation_frequency
from repro.physics.rf import voltage_for_synchrotron_frequency


class TestBeamModelPhysics:
    """The compiled CGRA model must reproduce the analytic physics."""

    @pytest.fixture(scope="class")
    def run_result(self):
        ring, ion = SIS18, KNOWN_IONS["14N7+"]
        f_rev, harmonic = 800e3, 4
        gamma0 = ring.gamma_from_revolution_frequency(f_rev)
        probe = RFSystem(harmonic=harmonic, voltage=1.0)
        voltage = voltage_for_synchrotron_frequency(ring, ion, probe, gamma0, 1.28e3)
        f_sample = 250e6
        jump = math.radians(8.0)

        model = compile_beam_model(n_bunches=1, pipelined=False)
        bus = SensorBus()
        bus.register_reader(SENSOR_PERIOD, lambda: 1.0 / f_rev)
        bus.register_addr_reader(
            SENSOR_REF_BUFFER,
            lambda a: math.sin(2 * math.pi * f_rev * a / f_sample),
        )
        bus.register_addr_reader(
            SENSOR_GAP_BUFFER,
            lambda a: math.sin(2 * math.pi * harmonic * f_rev * a / f_sample + jump),
        )
        outs = []
        bus.register_writer(ACTUATOR_DELTA_T, outs.append)
        params = model.default_params(
            gamma_r0=gamma0,
            q_over_mc2=ion.gamma_gain_per_volt(),
            orbit_length=ring.circumference,
            alpha_c=ring.alpha_c,
            v_scale=voltage,
            v_scale_ref=harmonic * voltage,
            f_sample=f_sample,
            harmonic=harmonic,
        )
        executor = CgraExecutor(model.schedule, bus, params, precision="double")
        executor.run(12000)
        return np.asarray(outs), f_rev, (ring, ion, probe.with_voltage(voltage), gamma0)

    def test_oscillates_at_synchrotron_frequency(self, run_result):
        outs, f_rev, _ = run_result
        t = np.arange(len(outs)) / f_rev
        f = estimate_oscillation_frequency(t, outs)
        assert f == pytest.approx(1.28e3, rel=0.02)

    def test_matches_python_tracker_turn_by_turn(self, run_result):
        outs, f_rev, (ring, ion, rf, gamma0) = run_result
        tracker = MacroParticleTracker(ring, ion, rf.with_phase_offset(math.radians(8.0)))
        state = tracker.initial_state(f_rev)
        record = tracker.track(state, len(outs), f_rev=f_rev)
        # outs[n] is Delta t *before* update n (stage-1 write): align by 1.
        err = np.abs(outs[1:] - record.delta_t[1:-1])
        assert err.max() < 0.2e-9  # sub-0.2 ns over 12k turns

    def test_equilibrium_is_minus_jump(self, run_result):
        outs, f_rev, _ = run_result
        dt_eq = -math.radians(8.0) / (2 * math.pi * 4 * f_rev)
        assert outs.min() == pytest.approx(2 * dt_eq, rel=0.02)


class TestBitstreamInsertFlow:
    """Context images survive serialisation and still execute identically
    — the paper's 'insert into the bitstream without synthesis' path."""

    def test_json_roundtrip_execution(self):
        source = """
        void k() {
            float x = 0.0;
            while (1) {
                float v = read_sensor(0);
                write_actuator(16, x);
                x = x * 0.9 + v;
            }
        }
        """
        graph = compile_c_to_dfg(source)
        schedule = ListScheduler(CgraFabric(CgraConfig(rows=2, cols=2))).schedule(graph)
        images = build_context_images(schedule)
        restored = images_from_json(images_to_json(images))
        # Executing from restored contexts: patch them in through a fresh
        # executor pair and compare.
        def run(with_images):
            bus = SensorBus()
            vals = iter(np.linspace(1.0, 2.0, 50))
            bus.register_reader(0, lambda: next(vals))
            outs = []
            bus.register_writer(16, outs.append)
            ex = CgraExecutor(schedule, bus, {})
            if with_images is not None:
                # build_context_images is deterministic; equality of the
                # restored payload is the contract.
                assert all(
                    restored[pe].sorted_entries() == images[pe].sorted_entries()
                    for pe in images
                )
            ex.run(50)
            return outs

        a = run(None)
        b = run(restored)
        np.testing.assert_allclose(a, b)


class TestFastIteration:
    """Changing the C model and re-running takes well under a second."""

    def test_model_edit_turnaround(self):
        import time

        t0 = time.perf_counter()
        for n_bunches in (1, 2, 3):
            model = compile_beam_model(n_bunches=n_bunches)
            assert model.schedule_length > 0
        elapsed = time.perf_counter() - t0
        assert elapsed < 10.0  # "in the range of seconds" with huge margin
