"""Sample-accurate dual-harmonic validation.

The claim from E12: the CGRA beam model needs *no change* for a
dual-harmonic gap signal, because it only reads the gap ring buffer.
Here the claim is proven at full 250 MHz fidelity: the Fig. 3 framework
is fed a genuine two-component waveform through its ADC, and the bunch
oscillates at the dual-harmonic synchrotron frequency √(1−2r)·f_s.
"""

import numpy as np
import pytest

from repro.constants import TWO_PI, deg_to_rad
from repro.hil.framework import FpgaFramework, FrameworkConfig
from repro.physics import SIS18, KNOWN_IONS
from repro.physics.oscillation import estimate_oscillation_frequency
from repro.physics.rf import RFSystem, voltage_for_synchrotron_frequency
from repro.signal.dds import DDS


@pytest.mark.parametrize("ratio", [0.0, 0.3])
def test_framework_with_dual_harmonic_gap(ratio):
    f_rev, harmonic, adc_amp = 800e3, 4, 0.9
    ring, ion = SIS18, KNOWN_IONS["14N7+"]
    gamma0 = ring.gamma_from_revolution_frequency(f_rev)
    probe = RFSystem(harmonic=harmonic, voltage=1.0)
    v1 = voltage_for_synchrotron_frequency(ring, ion, probe, gamma0, 1.28e3)

    headroom = 1.0 + ratio
    framework = FpgaFramework(FrameworkConfig(
        ring=ring,
        ion=ion,
        harmonic=harmonic,
        gap_volts_per_adc_volt=v1 * headroom / adc_amp,
        ref_volts_per_adc_volt=harmonic * v1 * (1.0 - 2.0 * ratio) / adc_amp,
    ))

    # Hand-built dual-harmonic gap waveform with an 8 degree jump.
    ref_dds = DDS(f_rev, amplitude=adc_amp, sample_rate=250e6)
    jump = deg_to_rad(8.0)
    sample_index = 0

    def gap_block(n):
        nonlocal sample_index
        t = (sample_index + np.arange(n)) / 250e6
        sample_index += n
        base = TWO_PI * harmonic * f_rev * t + jump
        return (adc_amp / headroom) * (np.sin(base) - ratio * np.sin(2.0 * base))

    trace = []
    n_revs = 1800
    for _ in range(n_revs):
        ref = ref_dds.generate(312)
        gap = gap_block(312)
        framework.feed(ref.samples, gap)
        if framework.initialised:
            trace.append(framework.delta_t[0])

    trace = np.asarray(trace)
    time = np.arange(len(trace)) / f_rev
    f_measured = estimate_oscillation_frequency(time, trace)
    f_expected = 1.28e3 * np.sqrt(1.0 - 2.0 * ratio)
    assert f_measured == pytest.approx(f_expected, rel=0.06)
    # Equilibrium unchanged by the second harmonic (both components have
    # their zero at the jump-shifted crossing).
    eq = -jump / (TWO_PI * harmonic * f_rev)
    assert trace.min() == pytest.approx(2 * eq, rel=0.08)
