"""Classification tests: every Outcome branch from synthetic traces."""

import math

import numpy as np
import pytest

from repro.faults.report import (
    DEFAULT_TOLERANCE_DEG,
    DEFAULT_UNSTABLE_DEG,
    Outcome,
    StabilityReport,
    classify_trace,
)
from repro.faults.spec import FaultKind, FaultSpec

N = 100
TIME = np.linspace(0.0, 0.099, N)
BASELINE = np.zeros(N)


def _spec(onset=0.02, duration=0.01):
    return FaultSpec(
        kind=FaultKind.DETUNING_TRANSIENT,
        magnitude=5.0,
        onset_time=onset,
        duration=duration,
    )


def _classify(phase, spec=None, **kw):
    return classify_trace(TIME, phase, BASELINE, spec or _spec(), **kw)


class TestOutcomes:
    def test_flat_trace_recovers_with_zero_settle(self):
        r = _classify(np.zeros(N))
        assert r.outcome is Outcome.RECOVERED
        assert r.settle_s == 0.0
        assert r.max_excursion_deg == 0.0 and r.final_error_deg == 0.0

    def test_in_band_wiggle_recovers_with_zero_settle(self):
        phase = np.full(N, 0.5 * DEFAULT_TOLERANCE_DEG)
        r = _classify(phase)
        assert r.outcome is Outcome.RECOVERED and r.settle_s == 0.0

    def test_transient_excursion_recovers_with_settle_time(self):
        phase = np.zeros(N)
        phase[25:40] = 10.0  # out of band until t = TIME[39]
        r = _classify(phase, _spec(onset=0.02, duration=0.01))
        assert r.outcome is Outcome.RECOVERED
        # Settles at the first in-band record after the excursion,
        # measured from fault clearance (onset + duration = 0.03 s).
        assert r.settle_s == pytest.approx(TIME[40] - 0.03)
        assert r.max_excursion_deg == pytest.approx(10.0)

    def test_settle_clamped_to_zero_before_clearance(self):
        phase = np.zeros(N)
        phase[21:23] = 5.0  # back in band long before clearance
        r = _classify(phase, _spec(onset=0.02, duration=0.05))
        assert r.outcome is Outcome.RECOVERED and r.settle_s == 0.0

    def test_persistent_fault_settles_from_onset(self):
        phase = np.zeros(N)
        phase[25:40] = 10.0
        r = _classify(phase, _spec(onset=0.02, duration=None))
        assert r.outcome is Outcome.RECOVERED
        assert r.settle_s == pytest.approx(TIME[40] - 0.02)

    def test_residual_error_at_end_is_degraded(self):
        phase = np.zeros(N)
        phase[50:] = 5.0 * DEFAULT_TOLERANCE_DEG
        r = _classify(phase)
        assert r.outcome is Outcome.DEGRADED
        assert math.isnan(r.settle_s)
        assert r.final_error_deg == pytest.approx(5.0 * DEFAULT_TOLERANCE_DEG)

    def test_excursion_beyond_threshold_is_unstable(self):
        phase = np.zeros(N)
        phase[30] = DEFAULT_UNSTABLE_DEG  # threshold is inclusive
        r = _classify(phase)
        assert r.outcome is Outcome.UNSTABLE
        assert math.isnan(r.settle_s)
        assert r.max_excursion_deg == pytest.approx(DEFAULT_UNSTABLE_DEG)

    def test_non_finite_trace_is_unstable_with_finite_peak(self):
        phase = np.zeros(N)
        phase[40] = 30.0
        phase[60] = math.nan
        phase[70] = math.inf
        r = _classify(phase)
        assert r.outcome is Outcome.UNSTABLE
        assert r.max_excursion_deg == pytest.approx(30.0)

    def test_empty_trace_is_failed(self):
        empty = np.zeros(0)
        r = classify_trace(empty, empty, empty, _spec())
        assert r.outcome is Outcome.FAILED
        assert math.isnan(r.settle_s) and math.isnan(r.max_excursion_deg)


class TestBaselineCancellation:
    def test_common_jump_pattern_cancels(self):
        """The commanded jumps appear in both traces and must not count."""
        jumps = np.where(TIME > 0.05, 200.0, 0.0)  # way past unstable_deg
        r = classify_trace(TIME, jumps, jumps, _spec())
        assert r.outcome is Outcome.RECOVERED and r.max_excursion_deg == 0.0

    def test_deviation_from_baseline_counts(self):
        jumps = np.where(TIME > 0.05, 20.0, 0.0)
        faulted = jumps.copy()
        faulted[30] += DEFAULT_UNSTABLE_DEG + 5.0
        r = classify_trace(TIME, faulted, jumps, _spec())
        assert r.outcome is Outcome.UNSTABLE


class TestKnobs:
    def test_thresholds_are_tunable(self):
        phase = np.zeros(N)
        phase[25:30] = 10.0
        loose = _classify(phase, tolerance_deg=20.0)
        assert loose.outcome is Outcome.RECOVERED and loose.settle_s == 0.0
        strict = _classify(phase, unstable_deg=5.0)
        assert strict.outcome is Outcome.UNSTABLE

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shapes differ"):
            classify_trace(TIME, np.zeros(N - 1), BASELINE[: N - 1], _spec())


class TestStabilityReport:
    def test_to_dict_round_trips_names(self):
        r = StabilityReport(Outcome.DEGRADED, 0.5, 12.0, 3.0)
        d = r.to_dict()
        assert d == {
            "outcome": "degraded",
            "settle_s": 0.5,
            "max_excursion_deg": 12.0,
            "final_error_deg": 3.0,
        }

    def test_outcome_codes_are_stable(self):
        """The CSV schema depends on these exact integer codes."""
        assert [o.value for o in Outcome] == [0, 1, 2, 3, 4, 5]
        assert Outcome.RECOVERED == 0 and Outcome.FAILED == 5
