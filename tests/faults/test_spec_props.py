"""Property suite: ``to_dict``/``from_dict`` round trip and the
``active_at`` window boundary semantics (onset inclusive, clearance
exclusive)."""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.spec import MAGNITUDE_WINDOWS, FaultKind, FaultSpec

_FINITE_KINDS = [
    kind
    for kind, (lo, hi, _integral) in MAGNITUDE_WINDOWS.items()
    if math.isfinite(lo) and math.isfinite(hi)
]


@st.composite
def fault_specs(draw):
    """Valid FaultSpecs across every kind and magnitude window."""
    kind = draw(st.sampled_from(list(FaultKind)))
    lo, hi, integral = MAGNITUDE_WINDOWS[kind]
    lo = max(lo, -1e6) if not math.isfinite(lo) else lo
    hi = min(hi, 1e6) if not math.isfinite(hi) else hi
    if integral:
        magnitude = float(draw(st.integers(int(lo), int(hi))))
    else:
        magnitude = draw(
            st.floats(lo, hi, allow_nan=False, allow_infinity=False)
        )
    return FaultSpec(
        kind=kind,
        magnitude=magnitude,
        onset_time=draw(st.floats(0.0, 10.0, allow_nan=False)),
        duration=draw(
            st.none()
            | st.floats(1e-6, 10.0, allow_nan=False, allow_infinity=False)
        ),
        target=draw(st.integers(0, 63)),
        seed=draw(st.none() | st.integers(0, 2**63 - 1)),
        label=draw(st.text(max_size=20)),
    )


class TestRoundTrip:
    @given(fault_specs())
    @settings(max_examples=200)
    def test_dict_round_trip_is_identity(self, spec):
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    @given(fault_specs())
    @settings(max_examples=50)
    def test_json_round_trip_is_identity(self, spec):
        """The runner's ``--faults`` payload path: through real JSON."""
        payload = json.loads(json.dumps([spec.to_dict()]))
        assert FaultSpec.from_dict(payload[0]) == spec

    @given(fault_specs())
    @settings(max_examples=50)
    def test_dict_is_json_scalar_only(self, spec):
        for key, value in spec.to_dict().items():
            assert value is None or isinstance(value, (str, int, float)), key


class TestActiveAtBoundaries:
    def _spec(self, onset, duration):
        return FaultSpec(
            kind=FaultKind.CAVITY_FAILURE,
            magnitude=0.5,
            onset_time=onset,
            duration=duration,
        )

    def test_onset_is_inclusive(self):
        spec = self._spec(0.01, 0.005)
        assert not spec.active_at(0.01 - 1e-12)
        assert spec.active_at(0.01)

    def test_clearance_is_exclusive(self):
        spec = self._spec(0.01, 0.005)
        assert spec.active_at(0.015 - 1e-9)
        assert not spec.active_at(0.015)
        assert not spec.active_at(1.0)

    def test_persistent_fault_never_clears(self):
        spec = self._spec(0.01, None)
        assert not spec.is_transient()
        assert spec.active_at(0.01) and spec.active_at(1e9)

    def test_zero_onset_active_immediately(self):
        assert self._spec(0.0, None).active_at(0.0)

    @given(
        st.floats(0.0, 10.0, allow_nan=False),
        st.floats(1e-6, 10.0, allow_nan=False, allow_infinity=False),
        st.floats(-1.0, 25.0, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_window_matches_half_open_interval(self, onset, duration, t):
        spec = self._spec(onset, duration)
        assert spec.active_at(t) == (onset <= t < onset + duration)

    @given(fault_specs())
    @settings(max_examples=100)
    def test_round_trip_preserves_activity_window(self, spec):
        clone = FaultSpec.from_dict(spec.to_dict())
        probes = [0.0, spec.onset_time, spec.onset_time + 1e-9]
        if spec.duration is not None:
            probes += [
                spec.onset_time + spec.duration - 1e-9,
                spec.onset_time + spec.duration,
            ]
        for t in probes:
            assert clone.active_at(t) == spec.active_at(t)
