"""Injector tests: channel math, validation, bit-identity, parity.

The load-bearing invariants of the tentpole:

* armed-but-never-active runs are **bit-identical** to unfaulted runs
  (the handlers take their original branches outside the fault window);
* in a batch, a fault touches **only its target lane** — co-resident
  lanes carry neutral channel elements, which are bitwise no-ops;
* faults act in the sensor handlers shared by every engine, so the
  python and CGRA engines stay bit-exact *under fault*;
* context corruption never reaches execution — the PR-2 static
  verifier is the detector.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.errors import FaultSpecError, SignalError
from repro.experiments import mde
from repro.faults.inject import (
    LOOP_KINDS,
    MICROPHONIC_LINES,
    FaultProgram,
    _Microphonics,
    corrupt_context_images,
)
from repro.faults.spec import FaultKind, FaultSpec
from repro.hil.batch import BatchedCavityInTheLoop, BatchHilConfig
from repro.hil.simulator import CavityInTheLoop
from repro.signal.adc import ADC


def _spec(kind=FaultKind.CAVITY_FAILURE, magnitude=0.5, onset=0.001, **kw):
    return FaultSpec(kind=kind, magnitude=magnitude, onset_time=onset, **kw)


def _batch_config(batch, faults=(), duration_unused=None, **overrides):
    base = mde.bench_config()
    kwargs = dict(
        ring=base.ring,
        ion=base.ion,
        harmonic=base.harmonic,
        revolution_frequency=base.revolution_frequency,
        synchrotron_frequency=base.synchrotron_frequency,
        jump_deg=(8.0,) * batch,
        jump_toggle_period=base.jump_toggle_period,
        control=base.control,
        record_every=8,
        faults=tuple(faults),
    )
    kwargs.update(overrides)
    return BatchHilConfig(**kwargs)


class TestFaultProgramChannels:
    def test_disarmed_defaults_are_neutral(self):
        p = FaultProgram(())
        assert not p.active
        assert p.gap_gain == 1.0 and p.gap_phase == 0.0
        assert math.isinf(p.gap_clip) and p.stuck_mask == 0

    def test_cavity_failure_scales_gain(self):
        p = FaultProgram([_spec(magnitude=0.3)])
        p.update(0.002)
        assert p.active
        assert p.gap_gain == pytest.approx(0.7)
        p.update(0.0)  # before onset: neutral again
        assert not p.active and p.gap_gain == 1.0

    def test_detuning_transient_is_a_phase_ramp(self):
        s = _spec(kind=FaultKind.DETUNING_TRANSIENT, magnitude=10.0, onset=0.01)
        p = FaultProgram([s])
        p.update(0.01 + 0.005)
        assert p.gap_phase == pytest.approx(2.0 * math.pi * 10.0 * 0.005)

    def test_dds_glitch_kicks_gap_phase(self):
        s = _spec(kind=FaultKind.DDS_PHASE_GLITCH, magnitude=0.25, onset=0.0)
        p = FaultProgram([s])
        p.update(0.001)
        assert p.gap_phase == pytest.approx(0.25)

    def test_clip_channels_take_the_minimum(self):
        specs = [
            _spec(kind=FaultKind.AMPLIFIER_SATURATION, magnitude=0.4),
            _spec(kind=FaultKind.DAC_CLIPPING, magnitude=0.25),  # x 1.0 V
        ]
        p = FaultProgram(specs, dac_full_scale=1.0)
        p.update(0.002)
        assert p.gap_clip == pytest.approx(0.25)

    def test_stuck_bits_accumulate_or_masks(self):
        specs = [
            _spec(kind=FaultKind.ADC_STUCK_BIT, magnitude=2.0),
            _spec(kind=FaultKind.ADC_STUCK_BIT, magnitude=5.0),
        ]
        p = FaultProgram(specs)
        p.update(0.002)
        assert p.stuck_any and p.stuck_mask == (1 << 2) | (1 << 5)

    def test_batched_channels_touch_only_the_target_lane(self):
        specs = [
            _spec(magnitude=0.5, target=2),
            _spec(kind=FaultKind.ADC_STUCK_BIT, magnitude=3.0, target=1),
        ]
        p = FaultProgram(specs, batch=4)
        p.update(0.002)
        np.testing.assert_array_equal(p.gap_gain, [1.0, 1.0, 0.5, 1.0])
        np.testing.assert_array_equal(p.stuck_mask, [0, 1 << 3, 0, 0])

    def test_window_end_is_exclusive(self):
        p = FaultProgram([_spec(magnitude=0.5, onset=0.01, duration=0.01)])
        p.update(0.015)
        assert p.active
        p.update(0.02)  # onset + duration: cleared
        assert not p.active and p.gap_gain == 1.0

    def test_label_joins_specs(self):
        specs = [_spec(label="c1"), _spec(kind=FaultKind.DAC_CLIPPING, magnitude=0.5)]
        assert FaultProgram(specs).label == "c1,dac_clipping"


class TestValidation:
    def test_rejects_non_spec(self):
        with pytest.raises(FaultSpecError, match="FaultSpec"):
            FaultProgram([{"kind": "cavity_failure"}])

    def test_scalar_bench_rejects_nonzero_target(self):
        with pytest.raises(FaultSpecError, match="lane 1"):
            FaultProgram([_spec(target=1)])

    def test_batched_rejects_out_of_range_target(self):
        with pytest.raises(FaultSpecError, match="lane 4"):
            FaultProgram([_spec(target=4)], batch=4)

    def test_stuck_bit_validated_against_adc_bits(self):
        # Satellite: bit 13 passes the spec window but a 12-bit ADC
        # must reject it at injection time.
        spec = _spec(kind=FaultKind.ADC_STUCK_BIT, magnitude=13.0)
        FaultProgram([spec], adc_bits=14)  # fine for the bench ADC
        with pytest.raises(FaultSpecError, match="12-bit"):
            FaultProgram([spec], adc_bits=12)


class TestMicrophonics:
    def test_seeded_realisation_is_deterministic(self):
        s = _spec(kind=FaultKind.MICROPHONIC_DETUNING, magnitude=20.0, seed=7)
        a, b = _Microphonics(s), _Microphonics(s)
        np.testing.assert_array_equal(a.freqs, b.freqs)
        assert a.phase_rad(0.013) == b.phase_rad(0.013)

    def test_distinct_seeds_give_distinct_spectra(self):
        s1 = _spec(kind=FaultKind.MICROPHONIC_DETUNING, magnitude=20.0, seed=1)
        s2 = dataclasses.replace(s1, seed=2)
        assert not np.array_equal(_Microphonics(s1).freqs, _Microphonics(s2).freqs)

    def test_band_and_line_count(self):
        s = _spec(kind=FaultKind.MICROPHONIC_DETUNING, magnitude=20.0, seed=3)
        m = _Microphonics(s)
        assert m.freqs.shape == (MICROPHONIC_LINES,)
        assert np.all((m.freqs >= 10.0) & (m.freqs <= 300.0))

    def test_phase_zero_at_onset(self):
        s = _spec(kind=FaultKind.MICROPHONIC_DETUNING, magnitude=20.0,
                  onset=0.004, seed=5)
        assert _Microphonics(s).phase_rad(0.004) == 0.0


class TestStuckBitMath:
    def test_mask_zero_is_identity(self):
        adc = ADC()
        codes = np.array([-8192, -1, 0, 1, 8191], dtype=np.int64)
        np.testing.assert_array_equal(adc.apply_stuck_mask(codes, 0), codes)
        assert adc.apply_stuck_mask_scalar(-123, 0) == -123

    def test_stuck_msb_flips_positive_codes_negative(self):
        adc = ADC()
        out = adc.apply_stuck_bit(np.array([1, 100], dtype=np.int64), 13)
        assert np.all(out < 0)

    def test_scalar_matches_vector(self):
        adc = ADC()
        codes = np.arange(-8192, 8192, 17, dtype=np.int64)
        mask = (1 << 3) | (1 << 9)
        vec = adc.apply_stuck_mask(codes, mask)
        assert all(
            adc.apply_stuck_mask_scalar(int(c), mask) == int(v)
            for c, v in zip(codes, vec)
        )

    def test_bit_out_of_range_raises(self):
        with pytest.raises(SignalError, match="stuck bit 14"):
            ADC().apply_stuck_bit(np.zeros(1, dtype=np.int64), 14)


class TestBitIdentity:
    """Zero-impact contracts: disarmed and armed-inactive runs."""

    DURATION = 0.004

    def test_armed_inactive_scalar_run_is_bit_identical(self):
        clean = CavityInTheLoop(mde.bench_config()).run(self.DURATION)
        late = tuple(
            _spec(kind=k, magnitude=1.0 if k is not FaultKind.CAVITY_FAILURE else 0.5,
                  onset=10.0)
            for k in (FaultKind.CAVITY_FAILURE, FaultKind.ADC_STUCK_BIT)
        )
        armed = CavityInTheLoop(mde.bench_config(faults=late)).run(self.DURATION)
        np.testing.assert_array_equal(
            np.asarray(armed.phase_deg), np.asarray(clean.phase_deg)
        )

    def test_batched_fault_isolated_to_target_lane(self):
        clean = BatchedCavityInTheLoop(_batch_config(4)).run(self.DURATION)
        specs = (
            _spec(magnitude=0.5, onset=0.001, target=2),
            _spec(kind=FaultKind.ADC_STUCK_BIT, magnitude=8.0, onset=0.001,
                  target=2),
        )
        faulted = BatchedCavityInTheLoop(_batch_config(4, faults=specs)).run(
            self.DURATION
        )
        for lane in (0, 1, 3):
            np.testing.assert_array_equal(
                faulted.phase_deg[:, lane], clean.phase_deg[:, lane]
            )
        assert not np.array_equal(faulted.phase_deg[:, 2], clean.phase_deg[:, 2])

    def test_fault_actually_perturbs_scalar_run(self):
        clean = CavityInTheLoop(mde.bench_config()).run(self.DURATION)
        spec = _spec(kind=FaultKind.DDS_PHASE_GLITCH, magnitude=0.3, onset=0.001)
        faulted = CavityInTheLoop(mde.bench_config(faults=(spec,))).run(
            self.DURATION
        )
        assert not np.array_equal(
            np.asarray(faulted.phase_deg), np.asarray(clean.phase_deg)
        )


class TestEngineParityUnderFault:
    def test_cgra_tiers_bit_exact_with_faults(self):
        """Faults act in the sensor handlers every engine shares, so
        the bit-exactness of the CGRA tiers survives injection."""
        specs = (
            _spec(magnitude=0.4, onset=0.0005, duration=0.001),
            _spec(kind=FaultKind.ADC_STUCK_BIT, magnitude=6.0, onset=0.001),
        )
        results = {}
        for tier in ("interpreted", "compiled", "vector"):
            res = CavityInTheLoop(
                mde.bench_config(engine="cgra", cgra_engine=tier, faults=specs)
            ).run(0.003)
            results[tier] = np.asarray(res.phase_deg)
        np.testing.assert_array_equal(results["interpreted"], results["compiled"])
        np.testing.assert_array_equal(results["interpreted"], results["vector"])

    def test_python_and_cgra_close_with_faults(self):
        """python vs cgra keep their usual 1e-9 parity under a smooth
        (non-quantising) fault; the stuck-bit OR is excluded because its
        code thresholds amplify ulp-level engine differences."""
        specs = (_spec(magnitude=0.4, onset=0.0005, duration=0.001),)
        runs = {
            engine: CavityInTheLoop(
                mde.bench_config(engine=engine, faults=specs)
            ).run(0.003)
            for engine in ("python", "cgra")
        }
        np.testing.assert_allclose(
            np.asarray(runs["cgra"].phase_deg),
            np.asarray(runs["python"].phase_deg),
            atol=1e-9,
        )


class TestContextCorruption:
    def test_corruption_is_detected_by_the_verifier(self):
        from repro.cgra import verify_context_images
        from repro.cgra.models import compile_beam_model

        model = compile_beam_model()
        assert verify_context_images(
            model.images, model.graph, model.schedule.fabric
        ).ok
        corrupted, (pe, index) = corrupt_context_images(model.images, 5)
        report = verify_context_images(
            corrupted, model.graph, model.schedule.fabric
        )
        assert not report.ok
        # Input untouched; exactly one entry differs in the copy.
        assert corrupted[pe].entries[index] != model.images[pe].entries[index]
        diffs = sum(
            a != b
            for p in model.images
            for a, b in zip(model.images[p].entries, corrupted[p].entries)
        )
        assert diffs == 1

    def test_slot_wraps_modulo_entry_count(self):
        from repro.cgra.models import compile_beam_model

        images = compile_beam_model().images
        n = sum(len(img.entries) for img in images.values())
        _, hit_0 = corrupt_context_images(images, 0)
        _, hit_n = corrupt_context_images(images, n)
        assert hit_0 == hit_n

    def test_empty_images_raise(self):
        with pytest.raises(FaultSpecError, match="empty"):
            corrupt_context_images({}, 0)

    def test_context_kind_never_reaches_loop_channels(self):
        spec = FaultSpec(
            kind=FaultKind.CGRA_CONTEXT_CORRUPTION, magnitude=3.0,
            onset_time=0.0,
        )
        p = FaultProgram([spec])
        p.update(1.0)
        assert not p.active
        assert spec.kind not in LOOP_KINDS
