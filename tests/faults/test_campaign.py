"""Campaign tests: plan purity, end-to-end outcomes, containment, CSV
byte-identity across job counts and engines, runner integration.
"""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.errors import FaultSpecError
from repro.faults.campaign import (
    CAMPAIGN_CHUNK,
    KIND_CODES,
    MAGNITUDE_LADDER,
    CampaignConfig,
    CampaignResult,
    _subsample,
    campaign_grid,
    plan_campaign,
    run_campaign,
)
from repro.faults.inject import LOOP_KINDS
from repro.faults.report import Outcome
from repro.faults.spec import MAGNITUDE_WINDOWS, FaultKind, FaultSpec
from repro.experiments.runner import _RUNNER_OPTIONS, main


@pytest.fixture(autouse=True)
def _reset_runner_options():
    yield
    _RUNNER_OPTIONS["batch"] = 8
    _RUNNER_OPTIONS["jobs"] = 1
    _RUNNER_OPTIONS["pool"] = None


@pytest.fixture(scope="module")
def quick_result():
    """One shared quick campaign (mildest rung, one onset, per kind)."""
    return run_campaign(CampaignConfig.quick())


class TestGrid:
    def test_grid_is_deterministic(self):
        config = CampaignConfig()
        assert campaign_grid(config) == campaign_grid(config)

    def test_ladders_stay_inside_spec_windows(self):
        for kind, ladder in MAGNITUDE_LADDER.items():
            lo, hi, integral = MAGNITUDE_WINDOWS[kind]
            for rung in ladder:
                assert lo <= rung <= hi, (kind, rung)
                if integral:
                    assert rung == int(rung), (kind, rung)

    def test_subsample_keeps_mildest_and_endpoints(self):
        ladder = (1.0, 2.0, 3.0, 4.0)
        assert _subsample(ladder, 1) == (1.0,)
        assert _subsample(ladder, 2) == (1.0, 4.0)
        assert _subsample(ladder, 4) == ladder

    def test_every_kind_is_swept(self):
        grid = campaign_grid(CampaignConfig.quick())
        assert {s.kind for s in grid} == set(FaultKind)

    def test_context_kind_sweeps_single_onset(self):
        grid = campaign_grid(CampaignConfig(onset_times=(0.02, 0.05)))
        onsets = {
            s.onset_time
            for s in grid
            if s.kind is FaultKind.CGRA_CONTEXT_CORRUPTION
        }
        assert onsets == {0.02}

    def test_seeds_are_positional_children_of_base_seed(self):
        from repro.parallel.seeding import shard_seeds

        config = CampaignConfig.quick()
        grid = campaign_grid(config)
        expected = shard_seeds(config.base_seed, len(grid))
        assert [s.seed for s in grid] == list(expected)
        # A different root reseeds every scenario.
        other = campaign_grid(dataclasses.replace(config, base_seed=7))
        assert all(a.seed != b.seed for a, b in zip(grid, other))

    def test_config_validation(self):
        with pytest.raises(FaultSpecError, match="duration"):
            CampaignConfig(duration=0.0)
        with pytest.raises(FaultSpecError, match="onset"):
            CampaignConfig(onset_times=(0.5,), duration=0.1)
        with pytest.raises(FaultSpecError, match="magnitudes_per_kind"):
            CampaignConfig(magnitudes_per_kind=99)
        with pytest.raises(FaultSpecError, match="chunk"):
            CampaignConfig(chunk=0)


class TestPlan:
    def test_baseline_first_and_chunking(self):
        config = CampaignConfig()
        scenarios, tasks, verifier_tasks = plan_campaign(config)
        assert tasks[0].indices == (-1,) and tasks[0].specs == (None,)
        loop_count = sum(1 for s in scenarios if s.kind in LOOP_KINDS)
        for task in tasks[1:]:
            assert 1 <= len(task.indices) <= CAMPAIGN_CHUNK
            for lane, index in enumerate(task.indices):
                # Spec j runs on lane j of its shard.
                assert task.specs[lane] == scenarios[index]
        covered = [i for t in tasks[1:] for i in t.indices]
        assert covered == [
            i for i, s in enumerate(scenarios) if s.kind in LOOP_KINDS
        ]
        assert len(covered) == loop_count
        assert {t.index for t in verifier_tasks} == {
            i for i, s in enumerate(scenarios) if s.kind not in LOOP_KINDS
        }

    def test_plan_is_independent_of_jobs(self):
        """The shard plan is a pure function of the config — the chunk
        size comes from the config, never from a worker count."""
        config = CampaignConfig()
        assert plan_campaign(config)[1] == plan_campaign(config)[1]


class TestEndToEndOutcomes:
    """Every FaultKind classified end-to-end (acceptance criterion)."""

    def _outcome(self, result, kind):
        outcomes = [
            r.outcome
            for s, r in zip(result.scenarios, result.reports)
            if s.kind is kind
        ]
        assert outcomes, f"no scenario for {kind}"
        return outcomes

    @pytest.mark.parametrize(
        "kind",
        [k for k in FaultKind if k is not FaultKind.CGRA_CONTEXT_CORRUPTION],
    )
    def test_mild_rung_recovers(self, quick_result, kind):
        assert self._outcome(quick_result, kind) == [Outcome.RECOVERED]

    def test_context_corruption_detected_by_verifier(self, quick_result):
        assert self._outcome(
            quick_result, FaultKind.CGRA_CONTEXT_CORRUPTION
        ) == [Outcome.DETECTED]

    def test_severe_rungs_go_unstable(self):
        """Severe microphonics / detuning / DDS rungs destabilise the
        loop — run as lanes of one batched bench against lane 0."""
        from repro.faults.engine import run_fault_lanes
        from repro.faults.report import classify_trace

        severe = [
            FaultSpec(kind=FaultKind.MICROPHONIC_DETUNING, magnitude=60.0,
                      onset_time=0.02, duration=0.02, seed=11),
            FaultSpec(kind=FaultKind.DETUNING_TRANSIENT, magnitude=25.0,
                      onset_time=0.02, duration=0.02),
            FaultSpec(kind=FaultKind.DDS_PHASE_GLITCH, magnitude=math.pi / 2,
                      onset_time=0.02, duration=0.02),
        ]
        times, phase, _, _ = run_fault_lanes((None, *severe), 0.08)
        for lane, spec in enumerate(severe, start=1):
            report = classify_trace(times, phase[:, lane], phase[:, 0], spec)
            assert report.outcome is Outcome.UNSTABLE, spec.kind
            assert report.max_excursion_deg > 60.0

    def test_quick_summary_and_counts(self, quick_result):
        counts = quick_result.outcome_counts()
        assert counts[Outcome.RECOVERED] == 7
        assert counts[Outcome.DETECTED] == 1
        lines = quick_result.summary_lines()
        assert any("8 scenarios" in line for line in lines)
        assert any("worst excursion" in line for line in lines)

    def test_csv_columns_match_header(self, quick_result):
        cols = quick_result.csv_columns()
        names = CampaignResult.CSV_HEADER.split(",")
        assert len(cols) == len(names)
        n = len(quick_result.scenarios)
        assert all(c.shape == (n,) for c in cols)
        by_name = dict(zip(names, cols))
        assert list(by_name["scenario"]) == list(range(n))
        context_rows = by_name["kind_code"] == KIND_CODES[
            FaultKind.CGRA_CONTEXT_CORRUPTION
        ]
        np.testing.assert_array_equal(by_name["detected"][context_rows], 1.0)
        np.testing.assert_array_equal(by_name["detected"][~context_rows], 0.0)
        assert np.isnan(by_name["settle_s"][context_rows]).all()


class TestContainment:
    """A poisoned shard is retried lane-by-lane; a scenario that still
    fails classifies FAILED without killing the campaign."""

    CONFIG = CampaignConfig(
        duration=0.02,
        onset_times=(0.005,),
        magnitudes_per_kind=1,
        fault_duration=0.005,
    )

    def test_shard_failure_is_retried_single_lane(self, monkeypatch):
        import repro.faults.campaign as campaign_mod

        scenarios = campaign_grid(self.CONFIG)
        poisoned = next(
            i for i, s in enumerate(scenarios)
            if s.kind is FaultKind.DDS_PHASE_GLITCH
        )
        real_shard = campaign_mod.run_campaign_shard

        def flaky_shard(task):
            if len(task.indices) > 1 and poisoned in task.indices:
                raise RuntimeError("poisoned shard")
            return real_shard(task)

        monkeypatch.setattr(campaign_mod, "run_campaign_shard", flaky_shard)
        result = run_campaign(self.CONFIG)
        # Every lane of the failed shard was retried; all classified.
        assert poisoned in result.retried
        assert len(result.reports) == len(scenarios)
        assert all(
            r.outcome is not Outcome.FAILED for r in result.reports
        )

    def test_scenario_failing_retry_classifies_failed(self, monkeypatch):
        import repro.faults.campaign as campaign_mod

        scenarios = campaign_grid(self.CONFIG)
        poisoned = next(
            i for i, s in enumerate(scenarios)
            if s.kind is FaultKind.ADC_STUCK_BIT
        )
        real_shard = campaign_mod.run_campaign_shard

        def poisoned_shard(task):
            if poisoned in task.indices:
                raise RuntimeError("always fails")
            return real_shard(task)

        monkeypatch.setattr(campaign_mod, "run_campaign_shard", poisoned_shard)
        result = run_campaign(self.CONFIG)
        report = result.reports[poisoned]
        assert report.outcome is Outcome.FAILED
        assert math.isnan(report.settle_s)
        # Shard-mates of the poisoned scenario still classified.
        others = [
            r
            for i, r in enumerate(result.reports)
            if i != poisoned and result.scenarios[i].kind in LOOP_KINDS
        ]
        assert all(r.outcome is not Outcome.FAILED for r in others)

    def test_baseline_failure_raises(self, monkeypatch):
        import repro.faults.campaign as campaign_mod

        def dead_shard(task):
            raise RuntimeError("no baseline")

        monkeypatch.setattr(campaign_mod, "run_campaign_shard", dead_shard)
        with pytest.raises(Exception, match="faults baseline"):
            run_campaign(self.CONFIG)


class TestByteIdentity:
    """Acceptance criteria: identical CSVs across --jobs and engines."""

    def test_runner_csv_identical_across_jobs(self, tmp_path):
        out1, out2 = tmp_path / "j1", tmp_path / "j2"
        assert main(["faults", "--out", str(out1), "--quick"]) == 0
        assert main(
            ["faults", "--out", str(out2), "--quick", "--jobs", "2"]
        ) == 0
        b1 = (out1 / "faults_campaign.csv").read_bytes()
        assert b1 == (out2 / "faults_campaign.csv").read_bytes()
        assert b1.startswith(b"scenario,kind_code")

    def test_campaign_identical_across_engines(self):
        from repro.cgra import get_default_engine, set_default_engine

        config = CampaignConfig(
            duration=0.03,
            onset_times=(0.01,),
            magnitudes_per_kind=1,
            fault_duration=0.01,
        )
        saved = get_default_engine()
        outputs = {}
        try:
            for engine in ("compiled", "vector", "auto"):
                set_default_engine(engine)
                result = run_campaign(config)
                outputs[engine] = np.column_stack(result.csv_columns()).tobytes()
        finally:
            set_default_engine(saved)
        assert outputs["compiled"] == outputs["vector"] == outputs["auto"]


class TestRunnerFaultsFlag:
    """Satellite: ``--faults path.json`` arms ad-hoc faults on any
    existing experiment."""

    def _payload(self, tmp_path):
        spec = FaultSpec(
            kind=FaultKind.CAVITY_FAILURE,
            magnitude=0.6,
            onset_time=0.001,
            label="adhoc",
        )
        path = tmp_path / "faults.json"
        path.write_text(json.dumps([spec.to_dict()]))
        return path

    def test_armed_faults_perturb_fig5a(self, tmp_path):
        clean_out, faulted_out = tmp_path / "clean", tmp_path / "faulted"
        assert main(["fig5a", "--out", str(clean_out), "--quick"]) == 0
        assert main(
            [
                "fig5a",
                "--out", str(faulted_out),
                "--quick",
                "--faults", str(self._payload(tmp_path)),
            ]
        ) == 0
        clean = (clean_out / "fig5a_phase.csv").read_bytes()
        faulted = (faulted_out / "fig5a_phase.csv").read_bytes()
        assert clean != faulted

    def test_session_faults_cleared_after_run(self, tmp_path):
        from repro.faults.session import session_faults

        assert main(
            [
                "fig5a",
                "--out", str(tmp_path / "o"),
                "--quick",
                "--faults", str(self._payload(tmp_path)),
            ]
        ) == 0
        assert session_faults() == ()

    def test_bad_payload_is_a_usage_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "cavity_failure"}))  # not a list
        assert main(
            ["fig5a", "--out", str(tmp_path / "o"), "--quick",
             "--faults", str(path)]
        ) == 2
        path.write_text("not json")
        assert main(
            ["fig5a", "--out", str(tmp_path / "o"), "--quick",
             "--faults", str(path)]
        ) == 2
        assert main(
            ["fig5a", "--out", str(tmp_path / "o"), "--quick",
             "--faults", str(tmp_path / "missing.json")]
        ) == 2


class TestLintGate:
    def test_shardlint_covers_faults_package(self):
        """CI satellite: the ``repro.analysis --all`` gate lints the
        faults modules (and they are clean)."""
        from repro.analysis import default_targets, lint_shard_file

        targets = [str(p) for p in default_targets()]
        for module in ("inject", "campaign", "engine", "report", "session"):
            matches = [t for t in targets if t.endswith(f"faults/{module}.py")]
            assert matches, f"faults/{module}.py not in shardlint targets"
            report = lint_shard_file(matches[0])
            assert not report.errors(), report.errors()
