"""FaultSpec validation, timing helpers and JSON round trip."""

import math
from pathlib import Path

import pytest

from repro.analysis import lint_shard_source
from repro.errors import FaultError, FaultSpecError, ReproError
from repro.faults import MAGNITUDE_WINDOWS, FaultKind, FaultSpec


def spec(**kw):
    defaults = dict(
        kind=FaultKind.CAVITY_FAILURE, magnitude=0.5, onset_time=1.0e-3
    )
    defaults.update(kw)
    return FaultSpec(**defaults)


class TestValidation:
    def test_valid_spec_constructs(self):
        s = spec(duration=2e-3, target=3, seed=7, label="sweep-a")
        assert s.kind is FaultKind.CAVITY_FAILURE
        assert s.is_transient()

    def test_error_hierarchy(self):
        assert issubclass(FaultSpecError, FaultError)
        assert issubclass(FaultError, ReproError)

    def test_kind_must_be_enum(self):
        with pytest.raises(FaultSpecError):
            spec(kind="cavity_failure")

    @pytest.mark.parametrize("magnitude", [math.nan, math.inf, -math.inf])
    def test_magnitude_must_be_finite(self, magnitude):
        with pytest.raises(FaultSpecError):
            spec(magnitude=magnitude)

    def test_magnitude_window_per_kind(self):
        with pytest.raises(FaultSpecError):
            spec(kind=FaultKind.CAVITY_FAILURE, magnitude=1.5)
        with pytest.raises(FaultSpecError):
            spec(kind=FaultKind.DAC_CLIPPING, magnitude=-0.1)
        with pytest.raises(FaultSpecError):
            spec(kind=FaultKind.DDS_PHASE_GLITCH, magnitude=4.0)

    def test_integral_magnitudes(self):
        assert spec(kind=FaultKind.ADC_STUCK_BIT, magnitude=13.0).magnitude == 13.0
        with pytest.raises(FaultSpecError):
            spec(kind=FaultKind.ADC_STUCK_BIT, magnitude=3.5)
        with pytest.raises(FaultSpecError):
            spec(kind=FaultKind.ADC_STUCK_BIT, magnitude=40.0)

    def test_timing_validation(self):
        with pytest.raises(FaultSpecError):
            spec(onset_time=-1.0)
        with pytest.raises(FaultSpecError):
            spec(onset_time=math.inf)
        with pytest.raises(FaultSpecError):
            spec(duration=0.0)
        with pytest.raises(FaultSpecError):
            spec(duration=-2.0)

    def test_target_and_seed_validation(self):
        with pytest.raises(FaultSpecError):
            spec(target=-1)
        with pytest.raises(FaultSpecError):
            spec(target=1.5)
        with pytest.raises(FaultSpecError):
            spec(seed=-3)

    def test_every_kind_has_a_window(self):
        assert set(MAGNITUDE_WINDOWS) == set(FaultKind)


class TestBehaviour:
    def test_active_window(self):
        s = spec(onset_time=1.0, duration=0.5)
        assert not s.active_at(0.99)
        assert s.active_at(1.0)
        assert s.active_at(1.49)
        assert not s.active_at(1.5)

    def test_permanent_fault_active_forever(self):
        s = spec(onset_time=1.0, duration=None)
        assert not s.is_transient()
        assert s.active_at(1e9)

    def test_frozen(self):
        with pytest.raises(Exception):
            spec().magnitude = 0.9  # type: ignore[misc]


class TestRoundTrip:
    @pytest.mark.parametrize("kind", list(FaultKind))
    def test_json_round_trip_every_kind(self, kind):
        low, high, integral = MAGNITUDE_WINDOWS[kind]
        magnitude = 1.0 if integral else min(max(low, 0.25), high)
        s = FaultSpec(kind=kind, magnitude=magnitude, onset_time=2e-3,
                      duration=1e-3, target=1, seed=11, label="rt")
        assert FaultSpec.from_dict(s.to_dict()) == s

    def test_from_dict_rejects_unknown_fields(self):
        payload = spec().to_dict()
        payload["surprise"] = 1
        with pytest.raises(FaultSpecError):
            FaultSpec.from_dict(payload)

    def test_from_dict_rejects_unknown_kind(self):
        payload = spec().to_dict()
        payload["kind"] = "gremlins"
        with pytest.raises(FaultSpecError):
            FaultSpec.from_dict(payload)

    def test_from_dict_revalidates(self):
        payload = spec().to_dict()
        payload["magnitude"] = 99.0
        with pytest.raises(FaultSpecError):
            FaultSpec.from_dict(payload)


class TestShardSafety:
    def test_faults_package_passes_shardlint(self):
        """The second real shardlint consumer must itself be clean."""
        import repro.faults

        root = Path(repro.faults.__file__).parent
        for path in sorted(root.glob("*.py")):
            report = lint_shard_source(path.read_text(), str(path))
            assert len(report) == 0, (
                f"{path} flagged: " + "; ".join(d.render() for d in report)
            )

    def test_spec_pickles(self):
        import pickle

        s = spec(seed=5)
        assert pickle.loads(pickle.dumps(s)) == s
