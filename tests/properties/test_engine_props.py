"""Property-based parity of the compiled engine over random DFGs.

Reuses the random mini-C kernel generator from the differential suite:
for *any* accepted kernel, the compiled engine (and each lane of the
batched engine) must be bit-identical to the cycle-accurate interpreter
— actuator writes and loop-carried registers, exact float equality.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cgra.engine import clear_program_cache
from repro.cgra.executor import CgraExecutor
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.scheduler import ListScheduler
from repro.cgra.sensor import BatchSensorBus
from tests.properties.test_differential_execution import _make_bus, kernels


class TestCompiledEngineProperties:
    @settings(max_examples=50, deadline=None)
    @given(kernel=kernels(), precision=st.sampled_from(["single", "double"]))
    def test_compiled_matches_interpreted(self, kernel, precision):
        source, names = kernel
        graph = compile_c_to_dfg(source)
        schedule = ListScheduler(CgraFabric(CgraConfig(rows=3, cols=3))).schedule(graph)

        bus_i, outs_i = _make_bus()
        ex_i = CgraExecutor(schedule, bus_i, {}, precision=precision,
                            engine="interpreted")
        bus_c, outs_c = _make_bus()
        ex_c = CgraExecutor(schedule, bus_c, {}, precision=precision,
                            engine="compiled")
        ex_i.run(20)
        ex_c.run(20)

        assert outs_c == outs_i  # exact float equality, not approx
        carried = {phi.name for phi in graph.phis()}
        for name in set(names) & carried:
            assert ex_c.register_of(name) == ex_i.register_of(name)
        clear_program_cache()  # random schedules: don't accumulate programs

    @settings(max_examples=50, deadline=None)
    @given(kernel=kernels(), precision=st.sampled_from(["single", "double"]))
    def test_vector_matches_interpreted(self, kernel, precision):
        """The vector tier — chunked where certified, compiled per-cycle
        where not — is bit-identical to the interpreter on any kernel.
        Runs long enough (40 > MIN_CHUNK) that certified kernels really
        take the chunked path."""
        source, names = kernel
        graph = compile_c_to_dfg(source)
        schedule = ListScheduler(CgraFabric(CgraConfig(rows=3, cols=3))).schedule(graph)

        bus_i, outs_i = _make_bus()
        ex_i = CgraExecutor(schedule, bus_i, {}, precision=precision,
                            engine="interpreted")
        bus_v, outs_v = _make_bus()
        ex_v = CgraExecutor(schedule, bus_v, {}, precision=precision,
                            engine="vector")
        ex_i.run(40)
        ex_v.run(40)

        assert outs_v == outs_i  # exact float equality, not approx
        carried = {phi.name for phi in graph.phis()}
        for name in set(names) & carried:
            assert ex_v.register_of(name) == ex_i.register_of(name)
        clear_program_cache()

    @settings(max_examples=25, deadline=None)
    @given(kernel=kernels())
    def test_batched_lanes_match_scalar(self, kernel):
        source, names = kernel
        graph = compile_c_to_dfg(source)
        schedule = ListScheduler(CgraFabric(CgraConfig(rows=2, cols=2))).schedule(graph)
        batch = 3

        # The kernel generator's sensor is stateful (a call counter).  A
        # batched run issues exactly one logical read per site, same as
        # a scalar run, so lane-uniform broadcasting keeps the streams
        # aligned — lane parity then follows from elementwise IEEE ops.
        scalar_traces = []
        for _ in range(batch):
            bus, outs = _make_bus()
            ex = CgraExecutor(schedule, bus, {}, engine="compiled")
            ex.run(15)
            carried = sorted({phi.name for phi in graph.phis()} & set(names))
            scalar_traces.append(
                (tuple(outs), tuple(ex.register_of(n) for n in carried))
            )
        assert scalar_traces.count(scalar_traces[0]) == batch  # deterministic

        from repro.cgra.engine import BatchedCgraExecutor

        bbus = BatchSensorBus(batch=batch)
        counter = {"n": 0}

        def sensor():
            counter["n"] += 1
            return np.sin(counter["n"] * 0.37)

        bbus.register_reader(0, sensor)
        bouts: list[np.ndarray] = []
        bbus.register_writer(16, lambda v: bouts.append(np.array(v)))
        bex = BatchedCgraExecutor(schedule, bbus, {})
        bex.run(15)

        expect_outs, expect_regs = scalar_traces[0]
        for lane in range(batch):
            assert tuple(float(w[lane]) for w in bouts) == expect_outs
        carried = sorted({phi.name for phi in graph.phis()} & set(names))
        for name, expect in zip(carried, expect_regs):
            lanes = bex.register_of(name)
            assert all(float(v) == expect for v in lanes)
        clear_program_cache()
