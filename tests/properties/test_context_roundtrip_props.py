"""Property tests: context-image JSON round-trip and the static verifier.

The paper's flow inserts compiled context memories into the bitstream;
the JSON payload is our stand-in.  Two properties over randomized
scheduled kernels:

* ``images_from_json(images_to_json(x)) == x`` — the round-trip is
  lossless;
* the static verifier accepts the round-tripped images — what we'd load
  is exactly as legal as what the scheduler produced.
"""

from hypothesis import given, settings, strategies as st

from repro.cgra.context import build_context_images, images_from_json, images_to_json
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.scheduler import ListScheduler
from repro.cgra.verify import verify_context_images
from repro.errors import ScheduleError


@st.composite
def scheduled_kernels(draw):
    """A random kernel scheduled onto a random small fabric."""
    n_chains = draw(st.integers(min_value=1, max_value=3))
    depth = draw(st.integers(min_value=1, max_value=4))
    use_io = draw(st.booleans())
    body = []
    decls = []
    for c in range(n_chains):
        decls.append(f"float x{c} = {0.5 + 0.25 * c};")
        expr = f"x{c}"
        for _ in range(depth):
            op = draw(st.sampled_from(["* 0.5 + 0.1", "+ 0.25", "* 1.01"]))
            expr = f"({expr} {op})"
        body.append(f"x{c} = {expr};")
    if use_io:
        body.insert(0, "float s = read_sensor(0);")
        body.append("x0 = x0 + s * 0.001;")
        body.append("write_actuator(16, x0);")
    decls_text = "\n    ".join(decls)
    body_text = "\n        ".join(body)
    source = f"""
void kernel() {{
    {decls_text}
    while (1) {{
        {body_text}
    }}
}}
"""
    rows = draw(st.integers(min_value=2, max_value=4))
    graph = compile_c_to_dfg(source)
    fabric = CgraFabric(CgraConfig(rows=rows, cols=rows))
    try:
        schedule = ListScheduler(fabric).schedule(graph)
    except ScheduleError:
        return None  # fabric too small for this kernel: skip
    return schedule


class TestContextRoundtripProperties:
    @settings(max_examples=30, deadline=None)
    @given(schedule=scheduled_kernels())
    def test_json_roundtrip_preserves_images(self, schedule):
        if schedule is None:
            return
        images = build_context_images(schedule)
        restored = images_from_json(images_to_json(images))
        assert set(restored) == set(images)
        for pe in images:
            assert restored[pe].sorted_entries() == images[pe].sorted_entries()

    @settings(max_examples=30, deadline=None)
    @given(schedule=scheduled_kernels())
    def test_verifier_accepts_roundtripped_images(self, schedule):
        if schedule is None:
            return
        images = build_context_images(schedule)
        restored = images_from_json(images_to_json(images))
        report = verify_context_images(restored, schedule.graph, schedule.fabric)
        assert report.ok, report.format()

    @settings(max_examples=20, deadline=None)
    @given(schedule=scheduled_kernels())
    def test_verifier_accepts_fresh_schedules(self, schedule):
        if schedule is None:
            return
        report = schedule.verify()
        assert report.ok, report.format()
