"""Differential testing of the whole CGRA backend.

Property: for *any* kernel the frontend accepts and *any* fabric
geometry, the cycle-accurate executor (frontend → scheduler → contexts →
execution) produces exactly the values of the schedule-free
:class:`~repro.cgra.reference.ReferenceInterpreter`.  Scheduling,
placement, routing and context generation must be semantics-preserving —
this is the contract that lets the paper trust results computed on the
overlay.

Kernels are generated randomly: a pool of loop-carried accumulators, a
random straight-line body of arithmetic over them (guarded against
div-by-zero/sqrt-of-negative via fmax), optional sensor reads, actuator
writes and a pipeline barrier at a random position.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cgra.executor import CgraExecutor
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.reference import ReferenceInterpreter
from repro.cgra.scheduler import ListScheduler
from repro.cgra.sensor import SensorBus


@st.composite
def kernels(draw):
    """Generate a random mini-C kernel source."""
    n_vars = draw(st.integers(min_value=1, max_value=4))
    names = [f"v{i}" for i in range(n_vars)]
    inits = [draw(st.floats(min_value=-4.0, max_value=4.0).map(lambda x: round(x, 3)))
             for _ in names]
    n_stmts = draw(st.integers(min_value=1, max_value=8))
    use_sensor = draw(st.booleans())
    barrier_at = draw(st.integers(min_value=-1, max_value=n_stmts - 1))

    body: list[str] = []
    if use_sensor:
        body.append("float s0 = read_sensor(0) * 0.25;")

    def operand(rng_draw):
        choice = rng_draw(st.integers(min_value=0, max_value=len(names) + (1 if use_sensor else 0)))
        if use_sensor and choice == len(names):
            return "s0"
        if choice < len(names):
            return names[choice]
        return "s0" if use_sensor else names[0]

    for i in range(n_stmts):
        if barrier_at == i:
            body.append("pipeline_barrier();")
        target = draw(st.sampled_from(names))
        kind = draw(st.sampled_from(["add", "mul", "sub", "div", "sqrt", "minmax", "select"]))
        a = operand(draw)
        b = operand(draw)
        c = draw(st.floats(min_value=-2.0, max_value=2.0).map(lambda x: round(x, 3)))
        if kind == "add":
            stmt = f"{target} = {a} + {b} * 0.125 + {c};"
        elif kind == "mul":
            stmt = f"{target} = {a} * 0.5 + {b} * 0.25;"
        elif kind == "sub":
            stmt = f"{target} = {a} - {b} * 0.5;"
        elif kind == "div":
            stmt = f"{target} = {a} / fmax({b} * {b} + 1.0, 1.0);"
        elif kind == "sqrt":
            stmt = f"{target} = sqrt(fmax({a}, 0.0) + 1.0) - 1.0;"
        elif kind == "minmax":
            stmt = f"{target} = fmin(fmax({a}, -8.0), 8.0) + {c} * 0.01;"
        else:
            stmt = f"{target} = {a} < {b} ? {a} * 0.5 : {b} * 0.5;"
        body.append(stmt)
    body.append(f"write_actuator(16, {names[0]});")

    decls = "\n    ".join(
        f"float {n} = {v};" for n, v in zip(names, inits)
    )
    body_text = "\n        ".join(body)
    source = f"""
void kernel() {{
    {decls}
    while (1) {{
        {body_text}
    }}
}}
"""
    return source, names


def _make_bus():
    bus = SensorBus()
    counter = {"n": 0}

    def sensor():
        counter["n"] += 1
        return np.sin(counter["n"] * 0.37)  # deterministic pseudo-signal

    bus.register_reader(0, sensor)
    outs: list[float] = []
    bus.register_writer(16, outs.append)
    return bus, outs


class TestDifferentialExecution:
    @settings(max_examples=60, deadline=None)
    @given(kernel=kernels(), rows=st.integers(min_value=1, max_value=4),
           precision=st.sampled_from(["single", "double"]))
    def test_executor_matches_reference(self, kernel, rows, precision):
        source, names = kernel
        graph = compile_c_to_dfg(source)
        fabric = CgraFabric(CgraConfig(rows=rows, cols=rows))
        schedule = ListScheduler(fabric).schedule(graph)

        bus_a, outs_a = _make_bus()
        ex = CgraExecutor(schedule, bus_a, {}, precision=precision)
        bus_b, outs_b = _make_bus()
        ref = ReferenceInterpreter(graph, bus_b, {}, precision=precision)

        ex.run(20)
        ref.run(20)

        assert outs_a == outs_b  # exact float equality, not approx
        # Variables never assigned in the loop lower to constants with no
        # register to read back; compare the loop-carried ones.
        carried = {phi.name for phi in graph.phis()}
        for name in set(names) & carried:
            assert ex.register_of(name) == ref.register_of(name)

    @settings(max_examples=20, deadline=None)
    @given(kernel=kernels())
    def test_fabric_geometry_is_semantics_free(self, kernel):
        """The same program on different fabrics yields identical values
        (geometry only changes *when*, never *what*)."""
        source, names = kernel
        graph = compile_c_to_dfg(source)
        carried = sorted({phi.name for phi in graph.phis()} & set(names))
        finals = []
        for rows in (1, 3):
            schedule = ListScheduler(CgraFabric(CgraConfig(rows=rows, cols=rows))).schedule(graph)
            bus, outs = _make_bus()
            ex = CgraExecutor(schedule, bus, {}, precision="single")
            ex.run(10)
            finals.append((tuple(outs), tuple(ex.register_of(n) for n in carried)))
        assert finals[0] == finals[1]


class TestReferenceInterpreterBasics:
    def test_simple_accumulator(self):
        graph = compile_c_to_dfg(
            "void k() { float x = 0.0; while (1) { x = x + 2.0; } }"
        )
        ref = ReferenceInterpreter(graph, SensorBus(), {})
        ref.run(5)
        assert ref.register_of("x") == 10.0

    def test_beam_model_matches_executor(self):
        """The shipped beam model itself passes the differential check."""
        import math

        from repro.cgra.models import compile_beam_model
        from repro.cgra.sensor import (
            ACTUATOR_DELTA_T,
            SENSOR_GAP_BUFFER,
            SENSOR_PERIOD,
            SENSOR_REF_BUFFER,
        )
        from repro.physics import SIS18, KNOWN_IONS

        model = compile_beam_model(n_bunches=2, pipelined=True)
        gamma0 = SIS18.gamma_from_revolution_frequency(800e3)
        params = model.default_params(
            gamma_r0=gamma0,
            q_over_mc2=KNOWN_IONS["14N7+"].gamma_gain_per_volt(),
            orbit_length=SIS18.circumference,
            alpha_c=SIS18.alpha_c,
            v_scale=4862.0,
            v_scale_ref=4 * 4862.0,
            f_sample=250e6,
            harmonic=4,
        )

        def bus_and_outs():
            bus = SensorBus()
            bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
            bus.register_addr_reader(
                SENSOR_REF_BUFFER, lambda a: math.sin(2 * math.pi * 800e3 * a / 250e6)
            )
            bus.register_addr_reader(
                SENSOR_GAP_BUFFER,
                lambda a: math.sin(2 * math.pi * 3.2e6 * a / 250e6 + 0.14),
            )
            outs = []
            for i in range(2):
                bus.register_writer(ACTUATOR_DELTA_T + i, outs.append)
            return bus, outs

        bus_a, outs_a = bus_and_outs()
        CgraExecutor(model.schedule, bus_a, params, precision="single").run(200)
        bus_b, outs_b = bus_and_outs()
        ReferenceInterpreter(model.graph, bus_b, params, precision="single").run(200)
        assert outs_a == outs_b
