"""Property suite for vectorization certificates.

Property: for *any* kernel the frontend accepts, the dependence
analysis must produce a certificate whose chunkable segments are
bit-exactly replayable in vector form — the chunk oracle re-executes
the program chunk-wise against a per-cycle reference run.  A certified
segment that diverges is a soundness bug in the analyser, never an
acceptable outcome.

Random kernels mirror the differential-execution strategy: loop-carried
accumulators, straight-line float arithmetic with guarded div/sqrt,
optional sensor reads, actuator writes.  Sensor handlers here are pure
functions of the iteration index (the certificate's validity contract).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.scheduler import ListScheduler
from repro.cgra.verify import certify_vectorization, run_chunk_oracle
from repro.errors import VerificationError


@st.composite
def kernels(draw):
    """Generate a random mini-C kernel source (see module docstring)."""
    n_vars = draw(st.integers(min_value=1, max_value=4))
    names = [f"v{i}" for i in range(n_vars)]
    inits = [draw(st.floats(min_value=-4.0, max_value=4.0).map(lambda x: round(x, 3)))
             for _ in names]
    n_stmts = draw(st.integers(min_value=1, max_value=8))
    use_sensor = draw(st.booleans())

    body: list[str] = []
    if use_sensor:
        body.append("float s0 = read_sensor(0) * 0.25;")

    def operand(rng_draw):
        choice = rng_draw(
            st.integers(min_value=0, max_value=len(names) + (1 if use_sensor else 0))
        )
        if use_sensor and choice == len(names):
            return "s0"
        if choice < len(names):
            return names[choice]
        return "s0" if use_sensor else names[0]

    for _ in range(n_stmts):
        target = draw(st.sampled_from(names))
        kind = draw(st.sampled_from(["add", "mul", "sub", "div", "sqrt", "minmax", "select"]))
        a = operand(draw)
        b = operand(draw)
        c = draw(st.floats(min_value=-2.0, max_value=2.0).map(lambda x: round(x, 3)))
        if kind == "add":
            stmt = f"{target} = {a} + {b} * 0.125 + {c};"
        elif kind == "mul":
            stmt = f"{target} = {a} * 0.5 + {b} * 0.25;"
        elif kind == "sub":
            stmt = f"{target} = {a} - {b} * 0.5;"
        elif kind == "div":
            stmt = f"{target} = {a} / fmax({b} * {b} + 1.0, 1.0);"
        elif kind == "sqrt":
            stmt = f"{target} = sqrt(fmax({a}, 0.0) + 1.0) - 1.0;"
        elif kind == "minmax":
            stmt = f"{target} = fmin(fmax({a}, -8.0), 8.0) + {c} * 0.01;"
        else:
            stmt = f"{target} = {a} < {b} ? {a} * 0.5 : {b} * 0.5;"
        body.append(stmt)
    body.append(f"write_actuator(16, {names[0]});")

    decls = "\n    ".join(f"float {n} = {v};" for n, v in zip(names, inits))
    body_text = "\n        ".join(body)
    source = f"""
void kernel() {{
    {decls}
    while (1) {{
        {body_text}
    }}
}}
"""
    return source


READERS = {0: lambda t: float(np.sin((t + 1) * 0.37))}


def _schedule(source, rows=2):
    graph = compile_c_to_dfg(source)
    return ListScheduler(CgraFabric(CgraConfig(rows=rows, cols=rows))).schedule(graph)


class TestCertificateSoundness:
    @settings(max_examples=50, deadline=None)
    @given(source=kernels(), rows=st.integers(min_value=1, max_value=3),
           precision=st.sampled_from(["single", "double"]))
    def test_certified_segments_replay_bit_exactly(self, source, rows, precision):
        schedule = _schedule(source, rows=rows)
        result = certify_vectorization(schedule)
        cert = result.certificate
        # The partition is always total, whatever the kernel shape.
        assert cert.stats()["n_ops"] == sum(
            1 for node in schedule.graph.nodes.values() if not node.is_zero_time()
        )
        oracle = run_chunk_oracle(
            schedule, {}, READERS, {}, n_iterations=24,
            precision=precision, certificate=cert,
        )
        assert oracle.iterations == 24
        assert oracle.segments_checked == len(cert.chunkable_segments())

    @settings(max_examples=50, deadline=None)
    @given(source=kernels())
    def test_accumulator_feedback_never_certified(self, source):
        """Any op on a path from a PHI back to its own bound source is
        loop-carried and must land in a sequential segment."""
        schedule = _schedule(source)
        graph = schedule.graph
        cert = certify_vectorization(schedule).certificate
        certified = set(cert.certified_node_ids())
        for phi in graph.phis():
            src = phi.back_edge
            if src is None or graph.node(src).is_zero_time():
                continue
            # Walk forward from the PHI; if we can reach the bound source,
            # every node on such a path participates in a carried cycle.
            on_cycle = _nodes_on_paths(graph, phi.node_id, src)
            assert not (on_cycle & certified), (
                f"carried-cycle nodes certified chunkable: {on_cycle & certified}"
            )

    @settings(max_examples=25, deadline=None)
    @given(source=kernels())
    def test_certificate_json_round_trip(self, source):
        from repro.cgra.verify import VectorizationCertificate

        cert = certify_vectorization(_schedule(source)).certificate
        assert VectorizationCertificate.from_json(cert.to_json()) == cert

    @settings(max_examples=20, deadline=None)
    @given(source=kernels())
    def test_forged_all_chunkable_certificate_rejected(self, source):
        """Marking every sequential segment chunkable must either trip the
        oracle or be a no-op because the kernel truly has no carried
        dependence."""
        from repro.cgra.verify import Segment, VectorizationCertificate

        schedule = _schedule(source)
        cert = certify_vectorization(schedule).certificate
        if all(seg.kind == "chunkable" for seg in cert.segments):
            return  # nothing to forge
        forged = VectorizationCertificate(
            kernel=cert.kernel,
            n_ops=cert.n_ops,
            segments=tuple(
                Segment(
                    index=seg.index,
                    kind="chunkable",
                    node_ids=seg.node_ids,
                    first_tick=seg.first_tick,
                    last_tick=seg.last_tick,
                    io_read_ports=seg.io_read_ports,
                    io_write_ports=seg.io_write_ports,
                    carried_in=seg.carried_in,
                )
                for seg in cert.segments
            ),
        )
        with pytest.raises(VerificationError):
            run_chunk_oracle(
                schedule, {}, READERS, {}, n_iterations=24, certificate=forged
            )


def _nodes_on_paths(graph, start, goal):
    """Node ids lying on any forward dataflow path start → goal
    (excluding zero-time nodes), or empty set if goal is unreachable."""
    consumers: dict[int, list[int]] = {}
    for node in graph.nodes.values():
        for operand in node.operands:
            consumers.setdefault(operand, []).append(node.node_id)

    # Reachable-from-start via forward edges.
    fwd = set()
    stack = [start]
    while stack:
        nid = stack.pop()
        for c in consumers.get(nid, ()):  # PHIs consume via binding, skip
            if graph.node(c).op.name == "PHI":
                continue
            if c not in fwd:
                fwd.add(c)
                stack.append(c)
    if goal not in fwd:
        return set()

    # Reaches-goal via backward edges.
    bwd = {goal}
    stack = [goal]
    while stack:
        nid = stack.pop()
        for operand in graph.node(nid).operands:
            if operand not in bwd and operand != start:
                bwd.add(operand)
                stack.append(operand)
    return {
        nid for nid in fwd & bwd if not graph.node(nid).is_zero_time()
    }


class TestNegativeConstructions:
    """Deterministic refusal cases the random strategy cannot target."""

    def test_phi_feedback_rotation_refused(self):
        from repro.cgra.dfg import DataflowGraph

        from repro.cgra.ops import Op

        g = DataflowGraph("rot")
        a = g.add_phi("a", init_value=1.0)
        b = g.add_phi("b", init_value=2.0)
        g.bind_phi(a, b)
        g.bind_phi(b, a)
        s = g.add_sensor_read(0, name="s")
        mixed = g.add_op(Op.FMUL, [a.node_id, s.node_id], name="mixed")
        g.add_actuator_write(16, mixed)
        g.validate()
        schedule = ListScheduler(CgraFabric(CgraConfig())).schedule(g)
        result = certify_vectorization(schedule)
        assert result.report.has("phi-unresolved")

    def test_stale_pipelined_read_refused(self):
        """A distance-2 carried read (PHI-of-PHI, later latch) must not be
        chunked even though it is not a cycle."""
        from repro.cgra.dfg import DataflowGraph
        from repro.cgra.ops import Op

        g = DataflowGraph("stale")
        p = g.add_phi("p", init_value=0.0)
        q = g.add_phi("q", init_value=0.0)
        s = g.add_sensor_read(0, name="s")
        scaled = g.add_op(Op.FMUL, [p.node_id, s.node_id], name="scaled")
        g.add_actuator_write(16, scaled)
        g.bind_phi(q, s)
        g.bind_phi(p, q)
        g.validate()
        schedule = ListScheduler(CgraFabric(CgraConfig())).schedule(g)
        result = certify_vectorization(schedule)
        assert result.report.has("stale-carried-read")
        certified = set(result.certificate.certified_node_ids())
        assert scaled.node_id not in certified
        # The oracle still validates whatever was certified.
        run_chunk_oracle(
            schedule, {}, READERS, {}, n_iterations=16,
            certificate=result.certificate,
        )

    def test_plain_accumulator_sequential_but_sensor_chunked(self):
        source = """
void k() {
    float s = 0.0;
    while (1) {
        float v = read_sensor(0);
        s = s + v * 0.5;
        write_actuator(16, s);
    }
}
"""
        schedule = _schedule(source)
        result = certify_vectorization(schedule)
        cert = result.certificate
        assert result.report.has("carried-cycle")
        kinds = {seg.kind for seg in cert.segments}
        assert kinds == {"chunkable", "sequential"}
        run_chunk_oracle(
            schedule, {}, READERS, {}, n_iterations=32, certificate=cert
        )
