"""Stateful property tests for the streaming signal components.

Hypothesis drives arbitrary sequences of operations against a simple
reference model, checking that the production implementations stay
consistent under any interleaving of block sizes — the way the HIL
framework actually uses them.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import SignalError
from repro.signal.dds import DDS
from repro.signal.ringbuffer import RingBuffer
from repro.signal.zerocrossing import PeriodLengthDetector


class RingBufferMachine(RuleBasedStateMachine):
    """RingBuffer vs. a plain-list reference under random writes/reads."""

    def __init__(self):
        super().__init__()
        self.capacity = 64
        self.buffer = RingBuffer(self.capacity)
        self.reference: list[float] = []

    @rule(n=st.integers(min_value=0, max_value=200))
    def write_block(self, n):
        block = np.arange(len(self.reference), len(self.reference) + n, dtype=float)
        self.buffer.write(block)
        self.reference.extend(block.tolist())

    @rule(offset=st.integers(min_value=0, max_value=63))
    def read_recent(self, offset):
        """Reading any still-buffered sample returns the written value."""
        total = len(self.reference)
        if total == 0:
            return
        lo = max(0, total - self.capacity)
        index = total - 1 - offset
        if index < lo:
            return
        assert self.buffer.read(index) == self.reference[index]

    @rule(frac=st.floats(min_value=0.0, max_value=0.999))
    def read_interpolated(self, frac):
        total = len(self.reference)
        if total - 1 <= max(0, total - self.capacity):
            return
        base = total - 2
        expected = (
            self.reference[base] * (1 - frac) + self.reference[base + 1] * frac
        )
        got = self.buffer.fetch_interpolated(base + frac)
        assert abs(got - expected) < 1e-9

    @rule()
    def read_stale_raises(self):
        total = len(self.reference)
        if total <= self.capacity:
            return
        stale = total - self.capacity - 1
        try:
            self.buffer.read(stale)
            raise AssertionError("stale read did not raise")
        except SignalError:
            pass

    @invariant()
    def write_count_consistent(self):
        assert self.buffer.write_count == len(self.reference)


TestRingBufferStateful = RingBufferMachine.TestCase
TestRingBufferStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


class TestDDSBlockInvariance:
    @settings(max_examples=25, deadline=None)
    @given(
        splits=st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=8),
        freq=st.floats(min_value=1e5, max_value=5e6),
    )
    def test_any_block_split_is_phase_continuous(self, splits, freq):
        """Generating in arbitrary chunks equals one monolithic call."""
        total = sum(splits)
        mono = DDS(freq, sample_rate=250e6).generate(total).samples
        dds = DDS(freq, sample_rate=250e6)
        parts = np.concatenate([dds.generate(n).samples for n in splits])
        np.testing.assert_allclose(parts, mono, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        splits=st.lists(st.integers(min_value=50, max_value=700), min_size=3, max_size=8),
    )
    def test_period_detector_split_invariant(self, splits):
        """The period detector's reading is independent of block framing."""
        freq = 800e3
        total = sum(splits)
        if total < 4 * 313:
            total += 4 * 313
            splits = list(splits) + [4 * 313]
        samples = DDS(freq, sample_rate=250e6).generate(total).samples

        mono = PeriodLengthDetector(250e6)
        mono.feed(samples)

        chunked = PeriodLengthDetector(250e6)
        pos = 0
        for n in splits:
            chunked.feed(samples[pos : pos + n])
            pos += n
        chunked.feed(samples[pos:])

        assert mono.ready == chunked.ready
        if mono.ready:
            assert chunked.period_samples() == mono.period_samples()
