"""Property tests for the modulo scheduler over random kernels."""

from hypothesis import given, settings, strategies as st

from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.modulo import ModuloScheduler
from repro.cgra.scheduler import ListScheduler
from repro.errors import ScheduleError


@st.composite
def recurrence_kernels(draw):
    """Kernels with a mix of recurrences and parallel work."""
    n_chains = draw(st.integers(min_value=1, max_value=3))
    depth = draw(st.integers(min_value=1, max_value=4))
    use_io = draw(st.booleans())
    body = []
    decls = []
    for c in range(n_chains):
        decls.append(f"float x{c} = {0.5 + 0.25 * c};")
        expr = f"x{c}"
        for d in range(depth):
            op = draw(st.sampled_from(["* 0.5 + 0.1", "+ 0.25", "* 1.01"]))
            expr = f"({expr} {op})"
        body.append(f"x{c} = {expr};")
    if use_io:
        body.insert(0, "float s = read_sensor(0);")
        body.append("x0 = x0 + s * 0.001;")
        body.append("write_actuator(16, x0);")
    decls_text = "\n    ".join(decls)
    body_text = "\n        ".join(body)
    return f"""
void kernel() {{
    {decls_text}
    while (1) {{
        {body_text}
    }}
}}
"""


class TestModuloProperties:
    @settings(max_examples=30, deadline=None)
    @given(source=recurrence_kernels(), rows=st.integers(min_value=2, max_value=4))
    def test_schedule_valid_and_bounded(self, source, rows):
        """Property: the modulo scheduler either produces a *valid*
        schedule with II ≥ max(ResMII, RecMII), or raises ScheduleError —
        it never returns a broken schedule."""
        graph = compile_c_to_dfg(source)
        fabric = CgraFabric(CgraConfig(rows=rows, cols=rows))
        scheduler = ModuloScheduler(fabric)
        try:
            schedule = scheduler.schedule(graph)
        except ScheduleError:
            return  # allowed outcome
        schedule.validate()
        assert schedule.ii >= max(schedule.res_mii, schedule.rec_mii)
        assert schedule.length >= schedule.ii or schedule.length == 0

    @settings(max_examples=15, deadline=None)
    @given(source=recurrence_kernels())
    def test_ii_never_exceeds_list_schedule_much(self, source):
        """The modulo II should not be grossly worse than the list
        scheduler's makespan (they solve the same placement problem; the
        modulo scheduler additionally overlaps iterations)."""
        graph = compile_c_to_dfg(source)
        fabric = CgraFabric(CgraConfig(rows=3, cols=3))
        list_len = ListScheduler(fabric).schedule(graph).length
        modulo = ModuloScheduler(fabric).schedule(graph)
        # Allowance: the modulo model has no routing, the list model does,
        # so the bound is loose but still catches pathological blowups.
        assert modulo.ii <= 2 * list_len + 8
