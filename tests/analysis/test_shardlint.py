"""Shard-safety lint: known-bad fixtures flagged, real modules clean."""

from pathlib import Path

from repro.analysis import default_targets, lint_shard_source
from repro.analysis.shardlint import HANDLE_TYPES, RULES
from repro.cgra.verify import Severity


def codes(report):
    return [d.code for d in report]


class TestShard001UnseededRng:
    def test_global_numpy_rng_flagged(self):
        report = lint_shard_source(
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.normal(0.0, 1.0)\n"
        )
        assert codes(report) == ["SHARD001"]
        assert report.diagnostics[0].severity is Severity.ERROR
        assert report.diagnostics[0].pass_id == "shardlint"

    def test_unseeded_default_rng_flagged(self):
        report = lint_shard_source(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert codes(report) == ["SHARD001"]

    def test_seeded_default_rng_clean(self):
        report = lint_shard_source(
            "import numpy as np\n"
            "def f(task):\n"
            "    return np.random.default_rng(task.seed)\n"
        )
        assert len(report) == 0

    def test_stdlib_random_flagged(self):
        report = lint_shard_source("import random\nx = random.random()\n")
        assert codes(report) == ["SHARD001"]

    def test_stdlib_from_import_alias_flagged(self):
        report = lint_shard_source(
            "from random import shuffle as mix\nmix([1, 2])\n"
        )
        assert codes(report) == ["SHARD001"]

    def test_numpy_random_module_alias_flagged(self):
        report = lint_shard_source(
            "import numpy.random as nr\nnr.seed(3)\n"
        )
        assert codes(report) == ["SHARD001"]

    def test_seeded_stdlib_random_instance_clean(self):
        report = lint_shard_source(
            "import random\nrng = random.Random(42)\n"
        )
        assert len(report) == 0

    def test_system_random_always_flagged(self):
        report = lint_shard_source(
            "import random\nrng = random.SystemRandom(1)\n"
        )
        assert codes(report) == ["SHARD001"]


class TestShard002WallClock:
    def test_time_time_flagged_as_warning(self):
        report = lint_shard_source(
            "import time\ndef f():\n    return {'stamp': time.time()}\n"
        )
        assert codes(report) == ["SHARD002"]
        assert report.diagnostics[0].severity is Severity.WARNING

    def test_datetime_now_flagged(self):
        report = lint_shard_source(
            "from datetime import datetime\nstamp = datetime.now()\n"
        )
        assert codes(report) == ["SHARD002"]

    def test_perf_counter_allowed(self):
        report = lint_shard_source(
            "import time\n"
            "def f():\n"
            "    t0 = time.perf_counter()\n"
            "    t1 = time.monotonic()\n"
            "    return t1 - t0\n"
        )
        assert len(report) == 0


class TestShard003HandleCapture:
    def test_executor_field_flagged(self):
        report = lint_shard_source(
            "from dataclasses import dataclass\n"
            "from repro.cgra.executor import CgraExecutor\n"
            "@dataclass(frozen=True)\n"
            "class Task:\n"
            "    seed: int\n"
            "    ex: CgraExecutor\n"
        )
        assert codes(report) == ["SHARD003"]
        assert report.diagnostics[0].severity is Severity.ERROR

    def test_optional_handle_annotation_flagged(self):
        report = lint_shard_source(
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Task:\n"
            "    model: 'CompiledModel | None' = None\n"
        )
        assert codes(report) == ["SHARD003"]

    def test_every_guarded_handle_type_detected(self):
        for handle in sorted(HANDLE_TYPES):
            report = lint_shard_source(
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                f"class Task:\n    h: {handle}\n"
            )
            assert codes(report) == ["SHARD003"], handle

    def test_plain_data_task_clean(self):
        report = lint_shard_source(
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Task:\n"
            "    seed: int\n"
            "    n_bunches: int\n"
            "    jitter_ps: float\n"
        )
        assert len(report) == 0

    def test_non_dataclass_class_not_flagged(self):
        report = lint_shard_source(
            "class Runner:\n    ex: 'CgraExecutor'\n"
        )
        assert len(report) == 0


class TestShard004MutableDefaults:
    def test_function_default_flagged(self):
        report = lint_shard_source("def f(acc=[]):\n    return acc\n")
        assert codes(report) == ["SHARD004"]
        assert report.diagnostics[0].severity is Severity.WARNING

    def test_dataclass_field_default_flagged(self):
        report = lint_shard_source(
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Task:\n"
            "    rows: list = []\n"
        )
        assert codes(report) == ["SHARD004"]

    def test_default_factory_clean(self):
        report = lint_shard_source(
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Task:\n"
            "    rows: list = field(default_factory=list)\n"
        )
        assert len(report) == 0

    def test_kwonly_default_flagged(self):
        report = lint_shard_source("def f(*, acc={}):\n    return acc\n")
        assert codes(report) == ["SHARD004"]


class TestSuppression:
    def test_disable_specific_code(self):
        report = lint_shard_source(
            "import random\n"
            "x = random.random()  # shardlint: disable=SHARD001\n"
        )
        assert len(report) == 0

    def test_disable_all(self):
        report = lint_shard_source(
            "import time\n"
            "x = time.time()  # shardlint: disable=all\n"
        )
        assert len(report) == 0

    def test_disable_other_code_does_not_suppress(self):
        report = lint_shard_source(
            "import random\n"
            "x = random.random()  # shardlint: disable=SHARD002\n"
        )
        assert codes(report) == ["SHARD001"]


class TestRealModules:
    def test_zero_false_positives_on_experiments_and_faults(self):
        """The acceptance gate: current task modules are shard-clean."""
        targets = default_targets()
        assert targets, "expected experiment modules to lint"
        for path in targets:
            report = lint_shard_source(Path(path).read_text(), str(path))
            assert len(report) == 0, (
                f"{path} flagged: " + "; ".join(d.render() for d in report)
            )

    def test_syntax_error_reported_not_raised(self):
        report = lint_shard_source("def broken(:\n")
        assert codes(report) == ["syntax-error"]
        assert not report.ok

    def test_rule_table_is_complete(self):
        assert set(RULES) == {"SHARD001", "SHARD002", "SHARD003", "SHARD004"}
        for severity, summary in RULES.values():
            assert isinstance(severity, Severity) and summary
