"""The ``python -m repro.analysis`` CLI: output shape and exit codes."""

import json

import pytest

from repro.analysis import main

BAD_MODULE = """\
import random
import time

def shard(task):
    jitter = random.random()
    return {"stamp": time.time(), "jitter": jitter}
"""

CLEAN_MODULE = """\
import numpy as np

def shard(task):
    rng = np.random.default_rng(task.seed)
    return {"value": float(rng.normal())}
"""


class TestExitCodes:
    def test_clean_module_exits_zero(self, tmp_path):
        f = tmp_path / "clean.py"
        f.write_text(CLEAN_MODULE)
        assert main([str(f)]) == 0

    def test_errors_exit_one(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(BAD_MODULE)
        assert main([str(f)]) == 1

    def test_warning_gate(self, tmp_path):
        f = tmp_path / "warn.py"
        f.write_text("import time\nstamp = time.time()\n")
        assert main([str(f)]) == 0  # warnings pass by default
        assert main([str(f), "--fail-on-warning"]) == 1

    def test_missing_file_is_internal_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_internal_error_wins_over_diagnostics(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_MODULE)
        assert main([str(bad), str(tmp_path / "nope.py")]) == 2

    def test_no_target_is_usage_error(self):
        with pytest.raises(SystemExit):
            main([])


class TestJsonOutput:
    def test_per_target_payload(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text(BAD_MODULE)
        main([str(f), "--json"])
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["target"] == str(f)
        assert payload["analyzer"] == "shardlint"
        assert payload["errors"] == 1 and payload["warnings"] == 1
        for d in payload["diagnostics"]:
            assert d["analyzer"] == "shardlint"
            assert d["severity"] in ("error", "warning")
            assert d["code"].startswith("SHARD")
            assert "line" in d

    def test_directory_target(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(CLEAN_MODULE)
        (tmp_path / "b.py").write_text(BAD_MODULE)
        assert main([str(tmp_path), "--json"]) == 1
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2


class TestAllSweep:
    def test_all_is_clean_and_emits_certificates(self, capsys):
        """The CI gate: shardlint over the real task modules plus
        dependence certificates for every built-in kernel, exit 0."""
        assert main(["--all", "--fail-on-warning", "--json"]) == 0
        payloads = [
            json.loads(line) for line in capsys.readouterr().out.strip().splitlines()
        ]
        analyzers = {p["analyzer"] for p in payloads}
        assert analyzers == {"shardlint", "dependence"}
        certs = [p for p in payloads if p["analyzer"] == "dependence"]
        assert len(certs) == 6  # 3 bunch counts x pipelined/plain
        for payload in certs:
            stats = payload["certificate"]
            assert stats["n_chunkable_segments"] >= 1
            assert 0.0 < stats["chunkable_fraction"] < 1.0
            # Refusal diagnostics surface with analyzer + severity.
            assert any(
                d["analyzer"] == "dependence" and d["code"] == "carried-cycle"
                for d in payload["diagnostics"]
            )

    def test_module_entrypoint(self):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--all", "-q"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
