"""Tests for the E5–E10 experiment drivers (short configurations)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PhysicsError
from repro.experiments.fig5 import fig5_metrics, fig5_run_bench, fig5_run_machine
from repro.experiments.jitter_study import jitter_comparison
from repro.experiments.landau import landau_damping_comparison
from repro.experiments.rampup import RampUpScenario, rampup_run
from repro.experiments.reconfig import reconfiguration_table
from repro.experiments.schedule_table import PAPER_SCHEDULE_LENGTHS, schedule_length_table
from repro.physics import SIS18, KNOWN_IONS


class TestFig5Metrics:
    def test_bench_metrics_match_paper_story(self):
        res = fig5_run_bench(duration=0.055)
        m = fig5_metrics(res.time, res.phase_deg, jump_deg=8.0, jump_time=0.005)
        assert m.synchrotron_frequency == pytest.approx(1.28e3, rel=0.08)
        assert 0.8 < m.peak_ratio < 1.1
        assert m.residual_peak_to_peak < 1.0
        assert m.settled_shift == pytest.approx(8.0, abs=0.5)

    def test_machine_metrics(self):
        res = fig5_run_machine(duration=0.055, n_particles=800)
        m = fig5_metrics(res.time, res.phase_deg, jump_deg=10.0, jump_time=0.005)
        assert m.synchrotron_frequency == pytest.approx(1.2e3, rel=0.08)
        assert 0.8 < m.peak_ratio < 1.15
        assert m.settled_shift == pytest.approx(10.0, abs=1.0)

    def test_metrics_validation(self):
        t = np.linspace(0, 0.01, 100)
        with pytest.raises(ConfigurationError):
            fig5_metrics(t, np.zeros(99), 8.0, 0.005)
        with pytest.raises(ConfigurationError):
            fig5_metrics(t, np.zeros(100), 8.0, 0.009)  # no settling room


class TestScheduleTable:
    def test_rows_cover_paper_configurations(self):
        rows = schedule_length_table()
        keys = {(r.n_bunches, r.pipelined) for r in rows}
        assert keys == set(PAPER_SCHEDULE_LENGTHS)

    def test_paper_reference_attached(self):
        rows = schedule_length_table()
        for r in rows:
            assert r.paper_ticks == PAPER_SCHEDULE_LENGTHS[(r.n_bunches, r.pipelined)]
            assert r.paper_max_f_rev_hz == pytest.approx(111e6 / r.paper_ticks)

    def test_shape_claims(self):
        rows = {(r.n_bunches, r.pipelined): r for r in schedule_length_table()}
        assert not rows[(8, False)].meets_1mhz
        assert rows[(8, True)].meets_1mhz
        assert rows[(1, True)].schedule_ticks < rows[(4, True)].schedule_ticks

    def test_schedule_at_least_critical_path(self):
        for r in schedule_length_table():
            assert r.schedule_ticks >= r.critical_path_ticks


class TestJitterStudy:
    def test_cgra_beats_software_everywhere(self):
        rows = jitter_comparison(n_samples=30_000)
        by_impl = {}
        for r in rows:
            by_impl.setdefault(r.implementation, []).append(r)
        for sw, hw in zip(by_impl["software (CPU)"], by_impl["CGRA (this work)"]):
            assert hw.latency.std < sw.latency.std
            assert hw.false_phase_rms_deg < sw.false_phase_rms_deg
            assert hw.deadline_miss_rate <= sw.deadline_miss_rate

    def test_software_false_phase_is_show_stopper(self):
        rows = jitter_comparison(n_samples=60_000)
        sw = next(r for r in rows if "software" in r.implementation)
        # RMS false phase comparable to the 8-16 deg signals of Fig. 5.
        assert sw.false_phase_rms_deg > 4.0


class TestReconfig:
    def test_speedups(self):
        rows = reconfiguration_table(configurations=[(1, True), (8, True)])
        for r in rows:
            assert r.speedup > 100.0
            assert r.cgra_seconds < 30.0
            assert r.fpga_seconds > 3600.0


class TestRampUp:
    def test_short_feasible_ramp(self):
        scenario = RampUpScenario(
            ring=SIS18, ion=KNOWN_IONS["14N7+"], f_start=700e3, f_end=750e3,
            duration=0.02, voltage_start=6e3, voltage_end=6e3,
        )
        res = rampup_run(scenario, record_every=32)
        assert res.final_gamma_error < 1e-4
        assert res.max_abs_bunch_phase_deg < 90.0
        assert res.deadline.met
        assert res.f_rev[-1] > res.f_rev[0]

    def test_infeasible_ramp_detected(self):
        scenario = RampUpScenario(
            ring=SIS18, ion=KNOWN_IONS["14N7+"], f_start=600e3, f_end=800e3,
            duration=0.002, voltage_start=1e3, voltage_end=1e3,
        )
        with pytest.raises(PhysicsError):
            rampup_run(scenario)

    def test_scenario_validation(self):
        with pytest.raises(ConfigurationError):
            RampUpScenario(ring=SIS18, ion=KNOWN_IONS["14N7+"],
                           f_start=800e3, f_end=700e3)


class TestLandau:
    def test_loop_much_stronger_than_landau(self):
        rows = landau_damping_comparison(n_particles=1200, duration=0.04)
        off = next(r for r in rows if not r.control_enabled)
        on = next(r for r in rows if r.control_enabled)
        assert off.damping_rate > 0.0         # Landau damping exists
        assert on.damping_rate > 3 * off.damping_rate  # loop dominates
        assert off.bunch_length_growth > 0.0  # filamentation grows sigma

    def test_duration_bounded_by_window(self):
        with pytest.raises(ConfigurationError):
            landau_damping_comparison(duration=0.06)
