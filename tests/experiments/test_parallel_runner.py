"""--jobs N through the runner: byte-identical output, merged telemetry.

The pinning tests here are the satellite contract: the shard plan and
every seed are pure functions of the workload, so the CSVs a pooled run
writes are the *same bytes* a serial run writes (sole exception:
``reconfig``, whose columns are measured wall-clock durations).
"""

import json

import numpy as np
import pytest

from repro.experiments.runner import _RUNNER_OPTIONS, main
from repro.experiments.sweep import SWEEP_CHUNK, plan_sweep, run_sweep_shard
from repro.parallel import raise_on_failures, run_sharded


class TestJobsFlag:
    def test_invalid_jobs_exit_code(self, tmp_path, capsys):
        assert main(["jitter", "--out", str(tmp_path), "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_pool_closed_after_run(self, tmp_path):
        assert main(["fig1", "--out", str(tmp_path), "--quick", "--jobs", "2"]) == 0
        assert _RUNNER_OPTIONS["pool"] is None

    def test_pool_closed_after_failure(self, tmp_path):
        assert main(["bogus", "--out", str(tmp_path), "--jobs", "2"]) == 2
        assert _RUNNER_OPTIONS["pool"] is None


class TestCsvBytePinning:
    def test_jitter_csv_identical_across_job_counts(self, tmp_path):
        serial = tmp_path / "serial"
        pooled = tmp_path / "pooled"
        assert main(["jitter", "--out", str(serial), "--quick"]) == 0
        assert main(["jitter", "--out", str(pooled), "--quick", "--jobs", "2"]) == 0
        assert (serial / "jitter.csv").read_bytes() == (
            pooled / "jitter.csv"
        ).read_bytes()

    def test_jitter_csv_identical_across_engines(self, tmp_path):
        """The engine seam never changes results: bit-exact tiers means
        byte-identical CSVs for every --engine choice (and the vector
        tier composes with --jobs without changing a byte either)."""
        from repro.cgra import get_default_engine, set_default_engine

        saved = get_default_engine()
        try:
            outputs = {}
            for engine in ("interpreted", "compiled", "vector", "auto"):
                out = tmp_path / engine
                assert main(["jitter", "--out", str(out), "--quick",
                             "--engine", engine]) == 0
                outputs[engine] = (out / "jitter.csv").read_bytes()
            assert outputs["compiled"] == outputs["interpreted"]
            assert outputs["vector"] == outputs["interpreted"]
            assert outputs["auto"] == outputs["interpreted"]
            pooled = tmp_path / "vector_pooled"
            assert main(["jitter", "--out", str(pooled), "--quick",
                         "--engine", "vector", "--jobs", "2"]) == 0
            assert (pooled / "jitter.csv").read_bytes() == outputs["interpreted"]
        finally:
            set_default_engine(saved)

    def test_sweep_csv_identical_across_engines_and_jobs(self, tmp_path):
        """The sweep defaults to engine=auto; the adaptive planner (and
        the plan bundle shipped to pool workers) never changes bytes —
        explicit compiled, explicit auto and the pooled default all
        merge to the same CSV."""
        from repro.cgra import get_default_engine, set_default_engine

        saved = get_default_engine()
        try:
            ref = tmp_path / "ref"
            assert main(["sweep", "--out", str(ref), "--quick",
                         "--engine", "compiled"]) == 0
            want = (ref / "sweep_jump_amplitude.csv").read_bytes()
            for label, extra in (
                ("auto_serial", ["--engine", "auto"]),
                ("default_pooled", ["--jobs", "2"]),  # sweep default = auto
            ):
                out = tmp_path / label
                assert main(["sweep", "--out", str(out), "--quick", *extra]) == 0
                got = (out / "sweep_jump_amplitude.csv").read_bytes()
                assert got == want, label
        finally:
            set_default_engine(saved)

    def test_reconfig_is_the_documented_exception(self):
        from repro.experiments import reconfig

        # The exception must stay documented where the measurement lives.
        assert "not byte-reproducible" in reconfig.reconfig_row.__doc__


class TestSweepShardParity:
    def test_pooled_sweep_traces_bit_exact(self):
        """Same shard plan, same lane grouping, same bits — jobs 1 vs 2."""
        tasks = plan_sweep(np.linspace(2.0, 12.0, 16), 0.0005, keep_trace=True)
        assert len(tasks) == 16 // SWEEP_CHUNK
        serial = raise_on_failures(run_sharded(run_sweep_shard, tasks, jobs=1))
        pooled = raise_on_failures(run_sharded(run_sweep_shard, tasks, jobs=2))
        for got, want in zip(pooled, serial):
            assert got.offset == want.offset
            assert np.array_equal(got.amps, want.amps)
            assert np.array_equal(got.phase_deg, want.phase_deg)

    def test_plan_is_independent_of_jobs(self):
        """The plan never takes a worker count — grouping is pinned by
        the workload alone (this is what the byte-parity rests on)."""
        amps = np.linspace(2.0, 12.0, 24)
        plans = [plan_sweep(amps, 0.01) for _ in range(2)]
        assert plans[0] == plans[1]
        offsets = [t.offset for t in plans[0]]
        assert offsets == [0, 8, 16]


class TestMergedTelemetry:
    def test_worker_metrics_reach_parent_export(self, tmp_path):
        out = tmp_path / "m"
        assert main(["jitter", "--out", str(out), "--quick", "--jobs", "2",
                     "--metrics"]) == 0
        snapshot = json.loads((out / "jitter_metrics.json").read_text())
        # Worker-side compile-cache traffic aggregated into the parent.
        cache_hits = snapshot["cgra_compile_cache_hits_total"]["series"]
        assert sum(cache_hits.values()) >= 2
        shards = snapshot["parallel_shards_total"]["series"]
        assert shards.get("outcome=ok") == 2.0
        assert snapshot["parallel_pool_workers"]["series"][""] == 2.0
        assert snapshot["parallel_shard_seconds"]["series"][""]["count"] == 2

    def test_serial_dispatch_also_counts_shards(self, tmp_path):
        out = tmp_path / "s"
        assert main(["jitter", "--out", str(out), "--quick", "--metrics"]) == 0
        snapshot = json.loads((out / "jitter_metrics.json").read_text())
        assert snapshot["parallel_shards_total"]["series"]["outcome=ok"] == 2.0


@pytest.fixture(autouse=True)
def _reset_runner_options():
    yield
    _RUNNER_OPTIONS["batch"] = 8
    _RUNNER_OPTIONS["jobs"] = 1
    _RUNNER_OPTIONS["pool"] = None
