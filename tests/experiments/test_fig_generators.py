"""Tests for the per-figure data generators (E1, E2, E4 scaffolding)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.fig1 import fig1_forces_data
from repro.experiments.fig2 import fig2_signal_snapshot
from repro.experiments.mde import (
    MDE_HARMONIC,
    MDE_JUMP_DEG_BENCH,
    MDE_JUMP_DEG_MACHINE,
    MDE_REVOLUTION_FREQUENCY,
    bench_config,
    machine_config,
)
from repro.physics import SIS18, KNOWN_IONS, RFSystem


class TestFig1:
    @pytest.fixture()
    def data(self):
        return fig1_forces_data(
            SIS18, KNOWN_IONS["14N7+"], RFSystem(harmonic=4, voltage=5e3), 800e3
        )

    def test_voltage_spans_one_rf_period(self, data):
        t_rf = 1 / (4 * 800e3)
        assert data.time[0] == pytest.approx(-t_rf / 2)
        assert data.time[-1] == pytest.approx(t_rf / 2)
        assert data.voltage.max() == pytest.approx(5e3, rel=1e-3)

    def test_paper_force_story(self, data):
        """Late particle accelerated, early decelerated, reference neutral."""
        early, ref, late = data.particle_delta_gamma_kick
        assert early < 0.0 < late
        assert ref == 0.0
        assert late == pytest.approx(-early, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fig1_forces_data(
                SIS18, KNOWN_IONS["14N7+"], RFSystem(harmonic=4, voltage=5e3),
                800e3, offset_fraction=0.5,
            )


class TestFig2:
    def test_harmonic_two_structure(self):
        d = fig2_signal_snapshot()
        # Gap completes two periods per reference period (h = 2).
        ref_spectrum = np.abs(np.fft.rfft(d.reference))
        gap_spectrum = np.abs(np.fft.rfft(d.gap))
        assert np.argmax(gap_spectrum) == 2 * np.argmax(ref_spectrum)

    def test_beam_pulses_displaced(self):
        d = fig2_signal_snapshot(bunch_delta_t=60e-9)
        # Pulse peaks sit bunch_delta_t after the gap's nominal crossings.
        peaks = np.nonzero(
            (d.beam[1:-1] > d.beam[:-2]) & (d.beam[1:-1] >= d.beam[2:])
            & (d.beam[1:-1] > 0.5 * d.beam.max())
        )[0] + 1
        assert len(peaks) >= 2
        t_rev = 1 / 800e3
        spacing = t_rev / 2
        offsets = (d.time[peaks] - 60e-9) % spacing
        offsets = np.minimum(offsets, spacing - offsets)
        assert np.abs(offsets).max() < 3e-9

    def test_traces_same_length(self):
        d = fig2_signal_snapshot(n_revolutions=3)
        assert len(d.time) == len(d.reference) == len(d.gap) == len(d.beam)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fig2_signal_snapshot(n_revolutions=0)


class TestMdeConfigs:
    def test_bench_machine_asymmetry(self):
        b = bench_config()
        m = machine_config()
        assert b.jump_deg == MDE_JUMP_DEG_BENCH == 8.0
        assert m.jump_deg == MDE_JUMP_DEG_MACHINE == 10.0
        assert b.synchrotron_frequency == 1.28e3
        assert m.synchrotron_frequency == 1.2e3
        assert b.harmonic == m.harmonic == MDE_HARMONIC
        assert b.revolution_frequency == m.revolution_frequency == MDE_REVOLUTION_FREQUENCY

    def test_both_sides_share_control_parameters(self):
        b = bench_config()
        m = machine_config()
        assert b.control.f_pass == m.control.f_pass == 1.4e3
        assert b.control.gain == m.control.gain == -5.0
        assert b.control.recursion_factor == m.control.recursion_factor == 0.99

    def test_overrides(self):
        b = bench_config(jump_deg=4.0, engine="cgra")
        assert b.jump_deg == 4.0
        assert b.engine == "cgra"
