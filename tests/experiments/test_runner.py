"""Tests for the CLI experiment runner."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import EXPERIMENTS, main, run_experiment


class TestRunExperiment:
    def test_unknown_name(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_experiment("nope", tmp_path)

    def test_fig1_writes_csvs(self, tmp_path):
        summary = run_experiment("fig1", tmp_path, quick=True)
        assert (tmp_path / "fig1_voltage.csv").exists()
        assert (tmp_path / "fig1_particles.csv").exists()
        assert summary

    def test_fig2_csv_parses(self, tmp_path):
        run_experiment("fig2", tmp_path, quick=True)
        data = np.loadtxt(tmp_path / "fig2_signals.csv", delimiter=",", skiprows=1)
        assert data.shape[1] == 4
        assert data.shape[0] > 100

    def test_schedule_csv_content(self, tmp_path):
        run_experiment("schedule", tmp_path, quick=True)
        data = np.loadtxt(tmp_path / "schedule_lengths.csv", delimiter=",", skiprows=1)
        assert data.shape == (4, 5)
        # pipelined 8-bunch row shorter than plain 8-bunch row.
        plain = data[(data[:, 0] == 8) & (data[:, 1] == 0)][0]
        piped = data[(data[:, 0] == 8) & (data[:, 1] == 1)][0]
        assert piped[2] < plain[2]

    def test_creates_output_dir(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        run_experiment("reconfig", target, quick=True)
        assert (target / "reconfig.csv").exists()


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig5a" in capsys.readouterr().out

    def test_run_one_logs_to_stderr(self, tmp_path, capsys):
        assert main(["fig1", "--out", str(tmp_path), "--quick"]) == 0
        captured = capsys.readouterr()
        assert "[fig1] done" in captured.err
        # Progress is logging-only: stdout stays clean for --list piping.
        assert captured.out == ""

    def test_list_stays_on_stdout(self, capsys):
        assert main(["--list"]) == 0
        captured = capsys.readouterr()
        assert "fig5a" in captured.out
        assert "fig5a" not in captured.err

    def test_verbose_enables_debug(self, tmp_path, capsys):
        assert main(["fig1", "--out", str(tmp_path), "--quick", "--verbose"]) == 0
        assert "starting fig1" in capsys.readouterr().err

    def test_unknown_experiment_exit_code(self, tmp_path, capsys):
        assert main(["bogus", "--out", str(tmp_path)]) == 2
        assert "ERROR" in capsys.readouterr().err


class TestTelemetryFlags:
    def test_metrics_writes_snapshot_and_report(self, tmp_path, capsys):
        assert main(["fig5a", "--out", str(tmp_path), "--quick", "--metrics"]) == 0
        assert (tmp_path / "fig5a_metrics.json").exists()
        assert (tmp_path / "fig5a_metrics.csv").exists()
        assert (tmp_path / "fig5a_report.json").exists()
        assert not (tmp_path / "fig5a_trace.jsonl").exists()

    def test_trace_writes_jsonl_and_report_has_percentiles(self, tmp_path):
        import json

        assert main(["fig5a", "--out", str(tmp_path), "--quick", "--trace"]) == 0
        assert (tmp_path / "fig5a_trace.jsonl").exists()
        (report,) = json.loads((tmp_path / "fig5a_report.json").read_text())
        assert report["deadline_misses"] == 0
        assert report["slack_ticks"]["p50"] > 0
        assert report["slack_ticks"]["p99"] > 0
        snapshot = json.loads((tmp_path / "fig5a_metrics.json").read_text())
        assert snapshot["hil_slack_ticks"]["series"][""]["count"] > 0

    def test_telemetry_disabled_after_run(self, tmp_path):
        from repro import obs

        assert main(["fig1", "--out", str(tmp_path), "--quick", "--metrics"]) == 0
        assert not obs.enabled()


class TestProfileAndTraceOut:
    def test_profile_writes_table_and_logs_hot_list(self, tmp_path, capsys):
        import json

        assert main(["fig5a", "--out", str(tmp_path), "--quick", "--profile"]) == 0
        profile = json.loads((tmp_path / "fig5a_profile.json").read_text())
        # The HIL fast path files its sense/compute/actuate phases.
        assert any(name.startswith("hil.") for name in profile)
        assert all(entry["count"] > 0 for entry in profile.values())
        assert "profile" in capsys.readouterr().err
        # --profile implies metrics but not tracing.
        assert (tmp_path / "fig5a_metrics.json").exists()
        assert not (tmp_path / "fig5a_trace.jsonl").exists()

    def test_trace_out_writes_single_span_tree(self, tmp_path, capsys):
        from repro.obs.view import load_trace

        trace_path = tmp_path / "session_trace.json"
        assert main(["fig1", "--out", str(tmp_path), "--quick",
                     "--trace-out", str(trace_path)]) == 0
        assert "perfetto trace" in capsys.readouterr().err
        spans, _ = load_trace(trace_path)
        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["experiment.fig1"]
        assert len({s["trace_id"] for s in spans}) == 1
        # --trace-out implies --trace: per-experiment JSONL also written.
        assert (tmp_path / "fig1_trace.jsonl").exists()

    def test_trace_out_is_fresh_per_invocation(self, tmp_path):
        from repro.obs.view import load_trace

        trace_path = tmp_path / "t.json"
        assert main(["fig1", "--out", str(tmp_path), "--quick",
                     "--trace-out", str(trace_path)]) == 0
        # A later invocation overwrites: the file covers one session.
        assert main(["schedule", "--out", str(tmp_path), "--quick",
                     "--trace-out", str(trace_path)]) == 0
        spans, _ = load_trace(trace_path)
        assert {s["name"] for s in spans if s["parent_id"] is None} == {
            "experiment.schedule"
        }

    def test_view_cli_reads_runner_output(self, tmp_path, capsys):
        from repro.obs.view import main as view_main

        trace_path = tmp_path / "t.json"
        assert main(["fig1", "--out", str(tmp_path), "--quick",
                     "--trace-out", str(trace_path), "--profile"]) == 0
        capsys.readouterr()
        assert view_main([str(trace_path)]) == 0
        assert "experiment.fig1" in capsys.readouterr().out
