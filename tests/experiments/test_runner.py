"""Tests for the CLI experiment runner."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import EXPERIMENTS, main, run_experiment


class TestRunExperiment:
    def test_unknown_name(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_experiment("nope", tmp_path)

    def test_fig1_writes_csvs(self, tmp_path):
        summary = run_experiment("fig1", tmp_path, quick=True)
        assert (tmp_path / "fig1_voltage.csv").exists()
        assert (tmp_path / "fig1_particles.csv").exists()
        assert summary

    def test_fig2_csv_parses(self, tmp_path):
        run_experiment("fig2", tmp_path, quick=True)
        data = np.loadtxt(tmp_path / "fig2_signals.csv", delimiter=",", skiprows=1)
        assert data.shape[1] == 4
        assert data.shape[0] > 100

    def test_schedule_csv_content(self, tmp_path):
        run_experiment("schedule", tmp_path, quick=True)
        data = np.loadtxt(tmp_path / "schedule_lengths.csv", delimiter=",", skiprows=1)
        assert data.shape == (4, 5)
        # pipelined 8-bunch row shorter than plain 8-bunch row.
        plain = data[(data[:, 0] == 8) & (data[:, 1] == 0)][0]
        piped = data[(data[:, 0] == 8) & (data[:, 1] == 1)][0]
        assert piped[2] < plain[2]

    def test_creates_output_dir(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        run_experiment("reconfig", target, quick=True)
        assert (target / "reconfig.csv").exists()


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig5a" in capsys.readouterr().out

    def test_run_one(self, tmp_path, capsys):
        assert main(["fig1", "--out", str(tmp_path), "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[fig1] done" in out

    def test_unknown_experiment_exit_code(self, tmp_path, capsys):
        assert main(["bogus", "--out", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err
