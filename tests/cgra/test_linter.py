"""Tests for the mini-C semantic linter (repro.cgra.verify.linter)."""

import pytest

from repro.cgra.models import beam_model_source
from repro.cgra.verify import Severity, lint_source


def codes(source):
    return lint_source(source).codes()


class TestCleanSources:
    @pytest.mark.parametrize("n_bunches", [1, 4, 8])
    @pytest.mark.parametrize("pipelined", [True, False])
    def test_beam_model_lints_clean(self, n_bunches, pipelined):
        report = lint_source(beam_model_source(n_bunches=n_bunches, pipelined=pipelined))
        assert len(report) == 0

    def test_minimal_kernel(self):
        src = """
        void k() {
            float s = 0.0;
            while (1) {
                float v = read_sensor(0);
                write_actuator(16, s);
                s = s + v;
            }
        }
        """
        assert len(lint_source(src)) == 0


class TestScoping:
    def test_use_before_def(self):
        src = """
        void k() {
            while (1) {
                float y = x + 1.0;
                write_actuator(16, y);
            }
        }
        """
        report = lint_source(src)
        assert report.has("use-before-def")
        d = next(d for d in report if d.code == "use-before-def")
        assert d.location is not None
        assert d.location.line == 4
        assert d.location.col > 0

    def test_assignment_to_undeclared(self):
        src = """
        void k() {
            while (1) {
                y = read_sensor(0);
                write_actuator(16, y);
            }
        }
        """
        assert "use-before-def" in codes(src)

    def test_unused_variable_warning(self):
        src = """
        void k() {
            float unused = 3.0;
            while (1) {
                write_actuator(16, read_sensor(0));
            }
        }
        """
        report = lint_source(src)
        assert report.has("unused-variable")
        assert report.ok  # warning, not error

    def test_unused_parameter_warning(self):
        src = """
        void k(float P) {
            while (1) {
                write_actuator(16, read_sensor(0));
            }
        }
        """
        report = lint_source(src)
        assert report.has("unused-parameter")
        assert report.warnings()

    def test_shadowing_warning(self):
        src = """
        void k(float P) {
            while (1) {
                if (read_sensor(0) < 0.5) {
                    float P = 2.0;
                    float q = P + 1.0;
                    q = q + 1.0;
                }
                write_actuator(16, P);
            }
        }
        """
        report = lint_source(src)
        assert report.has("shadowing")

    def test_redeclaration_error(self):
        src = """
        void k() {
            float x = 1.0;
            float x = 2.0;
            while (1) {
                write_actuator(16, x);
            }
        }
        """
        report = lint_source(src)
        assert report.has("redeclaration")
        assert not report.ok

    def test_kind_mismatch(self):
        src = """
        void k() {
            float a[4] = 0.0;
            while (1) {
                write_actuator(16, a + 1.0);
            }
        }
        """
        assert "kind-mismatch" in codes(src)


class TestIntrinsics:
    def test_unknown_intrinsic(self):
        src = """
        void k() {
            while (1) {
                write_actuator(16, frobnicate(1.0));
            }
        }
        """
        assert "unknown-intrinsic" in codes(src)

    def test_intrinsic_arity(self):
        src = """
        void k() {
            while (1) {
                write_actuator(16, sqrt(1.0, 2.0));
            }
        }
        """
        assert "intrinsic-arity" in codes(src)

    def test_io_outside_loop(self):
        src = """
        void k() {
            float v = read_sensor(0);
            while (1) {
                write_actuator(16, v);
            }
        }
        """
        assert "io-outside-loop" in codes(src)

    def test_io_in_conditional(self):
        src = """
        void k() {
            while (1) {
                float v = read_sensor(0);
                if (v < 0.5) {
                    write_actuator(16, v);
                }
                write_actuator(17, v);
            }
        }
        """
        assert "io-in-conditional" in codes(src)


class TestStructure:
    def test_missing_steady_loop(self):
        src = """
        void k() {
            float x = 1.0;
            x = x + 1.0;
        }
        """
        assert "no-steady-loop" in codes(src)

    def test_nested_while(self):
        src = """
        void k() {
            while (1) {
                while (1) {
                    write_actuator(16, 0.0);
                }
            }
        }
        """
        assert "nested-loop" in codes(src)

    def test_syntax_error_becomes_diagnostic(self):
        report = lint_source("void k( {")
        assert report.has("syntax-error")
        assert not report.ok
        d = report.errors()[0]
        assert "line 1" in d.message

    def test_all_findings_reported_not_just_first(self):
        src = """
        void k() {
            while (1) {
                float a = undefined1 + 1.0;
                float b = undefined2 + 2.0;
                write_actuator(16, a + b);
            }
        }
        """
        report = lint_source(src)
        assert len([d for d in report if d.code == "use-before-def"]) == 2

    def test_severity_filtering(self):
        src = """
        void k() {
            float unused = 3.0;
            while (1) {
                write_actuator(16, missing);
            }
        }
        """
        report = lint_source(src)
        assert report.by_severity(Severity.WARNING)
        assert report.by_severity(Severity.ERROR)
        text = report.format(min_severity=Severity.ERROR)
        assert "unused" not in text
        assert "use-before-def" in text
