"""Tests for the ``python -m repro.cgra.lint`` CLI."""

import json

import pytest

from repro.cgra.lint import main

GOOD = """
void k() {
    float s = 0.0;
    while (1) {
        float v = read_sensor(0);
        write_actuator(16, s);
        s = s + v * 0.5;
    }
}
"""

BAD_SEMANTIC = """
void k() {
    while (1) {
        write_actuator(16, undefined_name);
    }
}
"""

BAD_RANGE = """
void k() {
    while (1) {
        float v = read_sensor(0);
        write_actuator(16, v * 0.01 + 3.0);
    }
}
"""


class TestCli:
    def test_all_builtins_exit_zero(self, capsys):
        assert main(["--all", "--fail-on-error"]) == 0
        out = capsys.readouterr().out
        assert "beam_model[n=8,pipelined]" in out
        assert "FAIL" not in out

    def test_good_file_exits_zero(self, tmp_path):
        f = tmp_path / "good.c"
        f.write_text(GOOD)
        assert main([str(f), "--fail-on-error"]) == 0

    def test_bad_semantic_file_exits_nonzero(self, tmp_path, capsys):
        f = tmp_path / "bad.c"
        f.write_text(BAD_SEMANTIC)
        assert main([str(f), "--fail-on-error"]) == 1
        out = capsys.readouterr().out
        assert "use-before-def" in out

    def test_bad_range_file_exits_nonzero(self, tmp_path, capsys):
        f = tmp_path / "sat.c"
        f.write_text(BAD_RANGE)
        assert main([str(f), "--fail-on-error"]) == 1
        out = capsys.readouterr().out
        assert "dac-saturation" in out

    def test_json_output(self, tmp_path, capsys):
        f = tmp_path / "bad.c"
        f.write_text(BAD_SEMANTIC)
        main([str(f), "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["target"] == str(f)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "use-before-def" in codes

    def test_fail_on_warning(self, tmp_path):
        f = tmp_path / "warn.c"
        f.write_text(
            """
void k() {
    float unused = 1.0;
    while (1) {
        write_actuator(16, read_sensor(0));
    }
}
"""
        )
        assert main([str(f)]) == 0
        assert main([str(f), "--fail-on-warning"]) == 1

    def test_missing_file_errors(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.c")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_no_target_is_usage_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entrypoint(self):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cgra.lint", "--all", "--fail-on-error", "-q"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
