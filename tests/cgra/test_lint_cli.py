"""Tests for the ``python -m repro.cgra.lint`` CLI."""

import json

import pytest

from repro.cgra.lint import main

GOOD = """
void k() {
    float s = 0.0;
    while (1) {
        float v = read_sensor(0);
        write_actuator(16, s);
        s = s + v * 0.5;
    }
}
"""

BAD_SEMANTIC = """
void k() {
    while (1) {
        write_actuator(16, undefined_name);
    }
}
"""

BAD_RANGE = """
void k() {
    while (1) {
        float v = read_sensor(0);
        write_actuator(16, v * 0.01 + 3.0);
    }
}
"""


class TestCli:
    def test_all_builtins_exit_zero(self, capsys):
        assert main(["--all", "--fail-on-error"]) == 0
        out = capsys.readouterr().out
        assert "beam_model[n=8,pipelined]" in out
        assert "FAIL" not in out

    def test_good_file_exits_zero(self, tmp_path):
        f = tmp_path / "good.c"
        f.write_text(GOOD)
        assert main([str(f), "--fail-on-error"]) == 0

    def test_bad_semantic_file_exits_nonzero(self, tmp_path, capsys):
        f = tmp_path / "bad.c"
        f.write_text(BAD_SEMANTIC)
        assert main([str(f), "--fail-on-error"]) == 1
        out = capsys.readouterr().out
        assert "use-before-def" in out

    def test_bad_range_file_exits_nonzero(self, tmp_path, capsys):
        f = tmp_path / "sat.c"
        f.write_text(BAD_RANGE)
        assert main([str(f), "--fail-on-error"]) == 1
        out = capsys.readouterr().out
        assert "dac-saturation" in out

    def test_json_output(self, tmp_path, capsys):
        f = tmp_path / "bad.c"
        f.write_text(BAD_SEMANTIC)
        main([str(f), "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["target"] == str(f)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "use-before-def" in codes

    def test_json_carries_analyzer_and_severity_everywhere(self, tmp_path, capsys):
        """Every diagnostic class names its analyzer and severity in --json."""
        files = []
        for name, src in (("bad.c", BAD_SEMANTIC), ("sat.c", BAD_RANGE)):
            f = tmp_path / name
            f.write_text(src)
            files.append(str(f))
        main([*files, "--json", "--all"])
        out = capsys.readouterr().out
        diags = [
            d
            for line in out.strip().splitlines()
            for d in json.loads(line)["diagnostics"]
        ]
        assert diags, "expected diagnostics across the targets"
        for d in diags:
            assert d["analyzer"] in ("lint", "schedule", "range", "dependence")
            assert d["analyzer"] == d["pass"]
            assert d["severity"] in ("info", "warning", "error")
        # Both front ends and error counts are surfaced per target.
        payloads = [json.loads(line) for line in out.strip().splitlines()]
        assert all("errors" in p and "warnings" in p for p in payloads)
        assert {d["analyzer"] for d in diags} >= {"lint", "range"}

    def test_fail_on_warning(self, tmp_path):
        f = tmp_path / "warn.c"
        f.write_text(
            """
void k() {
    float unused = 1.0;
    while (1) {
        write_actuator(16, read_sensor(0));
    }
}
"""
        )
        assert main([str(f)]) == 0
        assert main([str(f), "--fail-on-warning"]) == 1

    def test_missing_file_is_internal_error(self, tmp_path, capsys):
        """Unreadable input is an analyzer problem (2), not 'found bugs' (1)."""
        assert main([str(tmp_path / "nope.c")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_internal_error_beats_dirty_exit(self, tmp_path, capsys):
        """Diagnostics + a broken target: exit 2 wins so CI surfaces the crash."""
        bad = tmp_path / "bad.c"
        bad.write_text(BAD_SEMANTIC)
        assert main([str(bad), str(tmp_path / "nope.c")]) == 2
        captured = capsys.readouterr()
        assert "use-before-def" in captured.out
        assert "cannot read" in captured.err

    def test_diagnostics_found_still_exit_one(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text(BAD_SEMANTIC)
        assert main([str(bad)]) == 1

    def test_no_target_is_usage_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entrypoint(self):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cgra.lint", "--all", "--fail-on-error", "-q"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
