"""Tests for the static schedule/context verifier (repro.cgra.verify)."""

import dataclasses

import pytest

from repro.cgra.context import ContextEntry, build_context_images
from repro.cgra.executor import CgraExecutor
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.models import compile_beam_model
from repro.cgra.modulo import ModuloScheduler
from repro.cgra.pipelined_executor import PipelinedExecutor
from repro.cgra.scheduler import ListScheduler
from repro.cgra.sensor import SensorBus
from repro.cgra.verify import (
    Severity,
    verify_context_images,
    verify_modulo_schedule,
    verify_schedule,
)
from repro.errors import VerificationError

SOURCE = """
void k() {
    float s = 0.0;
    while (1) {
        float v = read_sensor(0);
        write_actuator(16, s);
        s = s + v * 2.0;
    }
}
"""


def make_schedule(rows=2, cols=2, **cfg):
    graph = compile_c_to_dfg(SOURCE)
    fabric = CgraFabric(CgraConfig(rows=rows, cols=cols, **cfg))
    return ListScheduler(fabric).schedule(graph)


def replace_entry(images, pe, index, **changes):
    """Swap one frozen ContextEntry for a mutated copy."""
    old = images[pe].entries[index]
    images[pe].entries[index] = dataclasses.replace(old, **changes)
    return images[pe].entries[index]


class TestCleanKernels:
    @pytest.mark.parametrize("n_bunches", [1, 4, 8])
    @pytest.mark.parametrize("pipelined", [True, False])
    def test_beam_models_verify_clean(self, n_bunches, pipelined):
        model = compile_beam_model(n_bunches=n_bunches, pipelined=pipelined)
        report = verify_schedule(model.schedule)
        assert report.ok
        assert len(report) == 0

    def test_small_kernel_verifies_clean(self):
        assert verify_schedule(make_schedule()).ok

    def test_modulo_schedule_verifies_clean(self):
        model = compile_beam_model(n_bunches=4)
        ms = ModuloScheduler(model.schedule.fabric).schedule(model.graph)
        report = verify_modulo_schedule(ms)
        assert report.ok

    def test_schedule_verify_method(self):
        report = make_schedule().verify()
        assert report.ok

    def test_deadline_pass_and_fail(self):
        sched = make_schedule()
        clock_hz = sched.fabric.config.clock_mhz * 1e6
        generous = clock_hz / (4 * sched.length)
        assert verify_schedule(sched, f_rev=generous).ok
        impossible = clock_hz  # budget of 1 tick per revolution
        report = verify_schedule(sched, f_rev=impossible)
        assert report.has("deadline")
        assert not report.ok


class TestCorruptions:
    """Each corruption class yields the expected diagnostic, not a crash."""

    def test_operand_arrives_after_issue(self):
        sched = make_schedule()
        images = build_context_images(sched)
        # Find an entry whose operand is also a context entry, and make
        # the consumer issue at its producer's tick (before readiness).
        placed = {
            e.node_id: (pe, i, e)
            for pe, img in images.items()
            for i, e in enumerate(img.entries)
        }
        for nid, (pe, i, e) in placed.items():
            producers = [o for o in e.operands if o in placed]
            if producers:
                p_tick = placed[producers[0]][2].tick
                replace_entry(images, pe, i, tick=p_tick)
                break
        else:
            pytest.fail("no entry with a scheduled operand")
        report = verify_context_images(images, sched.graph, sched.fabric)
        assert report.has("operand-not-ready")
        assert not report.ok

    def test_double_booked_pe(self):
        sched = make_schedule()
        images = build_context_images(sched)
        pe = next(pe for pe, img in images.items() if len(img.entries) >= 2)
        first = images[pe].entries[0]
        replace_entry(images, pe, 1, tick=first.tick)
        report = verify_context_images(images, sched.graph, sched.fabric)
        assert report.has("pe-overlap")

    def test_oversized_context_memory(self):
        sched = make_schedule()
        images = build_context_images(sched)
        tiny = CgraFabric(CgraConfig(rows=2, cols=2, context_slots=1))
        report = verify_context_images(images, sched.graph, tiny)
        assert report.has("context-overflow")

    def test_out_of_range_constant(self):
        sched = make_schedule()
        images = build_context_images(sched)
        const = next(n for n in sched.graph.nodes.values() if n.op.value == "const")
        pe = next(iter(images))
        images[pe].entries.append(
            ContextEntry(
                tick=0, op="const", node_id=const.node_id, operands=(), value=1e39
            )
        )
        report = verify_context_images(images, sched.graph, sched.fabric)
        assert report.has("const-range")

    def test_io_rate_violation(self):
        sched = make_schedule()
        images = build_context_images(sched)
        io_pe = sched.fabric.io_pe
        ios = [
            i for i, e in enumerate(images[io_pe].entries) if e.io_id is not None
        ]
        assert len(ios) >= 2
        first = images[io_pe].entries[ios[0]]
        replace_entry(images, io_pe, ios[1], tick=first.tick + 1)
        report = verify_context_images(images, sched.graph, sched.fabric)
        assert report.has("io-rate")

    def test_missing_op(self):
        sched = make_schedule()
        images = build_context_images(sched)
        pe = next(pe for pe, img in images.items() if img.entries)
        del images[pe].entries[0]
        report = verify_context_images(images, sched.graph, sched.fabric)
        assert report.has("missing-op")

    def test_io_moved_off_io_pe(self):
        sched = make_schedule()
        images = build_context_images(sched)
        io_pe = sched.fabric.io_pe
        other = next(pe for pe in images if pe != io_pe)
        idx = next(
            i for i, e in enumerate(images[io_pe].entries) if e.io_id is not None
        )
        entry = images[io_pe].entries.pop(idx)
        images[other].entries.append(entry)
        report = verify_context_images(images, sched.graph, sched.fabric)
        assert report.has("io-wrong-pe")
        assert report.has("capability")

    def test_op_mismatch_and_unknown_node(self):
        sched = make_schedule()
        images = build_context_images(sched)
        pe = next(pe for pe, img in images.items() if img.entries)
        replace_entry(images, pe, 0, node_id=9999)
        report = verify_context_images(images, sched.graph, sched.fabric)
        assert report.has("unknown-node")
        assert report.has("missing-op")

    def test_negative_tick(self):
        sched = make_schedule()
        images = build_context_images(sched)
        pe = next(pe for pe, img in images.items() if img.entries)
        replace_entry(images, pe, 0, tick=-1)
        report = verify_context_images(images, sched.graph, sched.fabric)
        assert report.has("negative-tick")

    def test_duplicate_op(self):
        sched = make_schedule()
        images = build_context_images(sched)
        pe = next(pe for pe, img in images.items() if img.entries)
        dup = images[pe].entries[0]
        far = dataclasses.replace(dup, tick=dup.tick + 100)
        images[pe].entries.append(far)
        report = verify_context_images(images, sched.graph, sched.fabric)
        assert report.has("duplicate-op")

    def test_all_corruptions_are_reported_together(self):
        """The verifier lists every problem, not just the first one."""
        sched = make_schedule()
        images = build_context_images(sched)
        pe = next(pe for pe, img in images.items() if len(img.entries) >= 2)
        # Both at the same negative tick: negative-tick twice AND overlap.
        replace_entry(images, pe, 0, tick=-2)
        replace_entry(images, pe, 1, tick=-2)
        report = verify_context_images(images, sched.graph, sched.fabric)
        assert report.has("pe-overlap")
        assert report.has("negative-tick")
        assert len(report.errors()) >= 2


class TestModuloCorruptions:
    def make(self):
        model = compile_beam_model(n_bunches=1)
        return ModuloScheduler(model.schedule.fabric).schedule(model.graph)

    def test_reservation_conflict(self):
        ms = self.make()
        nids = [
            nid for nid, (pe, _s) in ms.ops.items()
            if not ms.graph.nodes[nid].is_io()
        ]
        a, b = nids[0], nids[1]
        pe_a, start_a = ms.ops[a]
        ms.ops[b] = (pe_a, start_a)
        report = verify_modulo_schedule(ms)
        assert report.has("pe-overlap") or report.has("operand-not-ready")
        assert not report.ok

    def test_missing_op(self):
        ms = self.make()
        nid = next(iter(ms.ops))
        del ms.ops[nid]
        report = verify_modulo_schedule(ms)
        assert report.has("missing-op")

    def test_deadline_is_ii_based(self):
        ms = self.make()
        clock_hz = ms.fabric.config.clock_mhz * 1e6
        # One initiation per II ticks: a budget between II and the flat
        # schedule length must still pass.
        f_rev = clock_hz / (ms.ii + 1)
        assert verify_modulo_schedule(ms, f_rev=f_rev).ok
        assert verify_modulo_schedule(ms, f_rev=clock_hz).has("deadline")

    def test_verify_method(self):
        assert self.make().verify().ok


class TestExecutorVerifyOnLoad:
    def test_executor_accepts_clean_schedule(self):
        sched = make_schedule()
        bus = SensorBus()
        bus.register_reader(0, lambda: 0.0)
        bus.register_writer(16, lambda v: None)
        ex = CgraExecutor(sched, bus, {}, verify=True)
        ex.run(1)

    def test_executor_rejects_corrupt_schedule(self):
        sched = make_schedule()
        nid, placed = next(
            (nid, p) for nid, p in sched.ops.items()
            if not sched.graph.nodes[nid].is_io() and sched.graph.nodes[nid].operands
        )
        sched.ops[nid] = dataclasses.replace(placed, start=0, finish=1)
        bus = SensorBus()
        bus.register_reader(0, lambda: 0.0)
        bus.register_writer(16, lambda v: None)
        with pytest.raises(VerificationError) as exc:
            CgraExecutor(sched, bus, {}, verify=True)
        assert "operand-not-ready" in str(exc.value) or "pe-overlap" in str(exc.value)

    def test_pipelined_executor_verify_on_load(self):
        model = compile_beam_model(n_bunches=1)
        ms = ModuloScheduler(model.schedule.fabric).schedule(model.graph)
        bus = SensorBus()
        for node in model.graph.io_nodes():
            if node.op.value == "actuator_write":
                bus.register_writer(node.sensor_id, lambda v: None)
            elif node.op.value == "sensor_read_addr":
                bus.register_addr_reader(node.sensor_id, lambda a: 0.0)
            else:
                bus.register_reader(node.sensor_id, lambda: 0.0)
        params = dict.fromkeys(model.graph.params, 1.0)
        PipelinedExecutor(ms, bus, params, verify=True)

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert str(Severity.ERROR) == "error"


class TestReportApi:
    def test_render_and_dict(self):
        sched = make_schedule()
        images = build_context_images(sched)
        pe = next(pe for pe, img in images.items() if img.entries)
        replace_entry(images, pe, 0, tick=-5)
        report = verify_context_images(images, sched.graph, sched.fabric)
        d = report.errors()[0]
        assert "schedule/negative-tick" in d.render()
        as_dict = d.to_dict()
        assert as_dict["severity"] == "error"
        assert as_dict["pass"] == "schedule"
        assert "format" not in report.format()  # smoke: renders to text
