"""Tests for the mini-C recursive-descent parser."""

import pytest

from repro.cgra.frontend.astnodes import (
    ArrayDeclaration,
    Assignment,
    BinOp,
    Call,
    Declaration,
    ExprStatement,
    ForLoop,
    NumberLit,
    Ternary,
    UnaryOp,
    WhileLoop,
)
from repro.cgra.frontend.parser import parse_program
from repro.errors import FrontendError


def parse_single(source):
    program = parse_program(source)
    assert len(program.functions) == 1
    return program.functions[0]


class TestFunctions:
    def test_empty_function(self):
        fn = parse_single("void f() { }")
        assert fn.name == "f"
        assert fn.params == ()
        assert fn.body == ()

    def test_parameters(self):
        fn = parse_single("void f(float a, float b) { }")
        assert fn.params == ("a", "b")

    def test_multiple_functions(self):
        program = parse_program("void f() { } void g() { }")
        assert [f.name for f in program.functions] == ["f", "g"]

    def test_empty_program_rejected(self):
        with pytest.raises(FrontendError):
            parse_program("")

    def test_unterminated_block(self):
        with pytest.raises(FrontendError):
            parse_program("void f() { float x = 1.0;")


class TestStatements:
    def test_declaration(self):
        fn = parse_single("void f() { float x = 1.5; }")
        stmt = fn.body[0]
        assert isinstance(stmt, Declaration)
        assert stmt.name == "x"
        assert isinstance(stmt.init, NumberLit)

    def test_array_declaration(self):
        fn = parse_single("void f() { float x[8] = 0.0; }")
        stmt = fn.body[0]
        assert isinstance(stmt, ArrayDeclaration)

    def test_assignment(self):
        fn = parse_single("void f() { float x = 0.0; x = x + 1.0; }")
        assert isinstance(fn.body[1], Assignment)

    def test_expression_statement(self):
        fn = parse_single("void f() { write_actuator(1, 2.0); }")
        stmt = fn.body[0]
        assert isinstance(stmt, ExprStatement)
        assert isinstance(stmt.expr, Call)

    def test_while_one(self):
        fn = parse_single("void f() { while (1) { float y = 0.0; } }")
        assert isinstance(fn.body[0], WhileLoop)

    def test_while_condition_must_be_one(self):
        with pytest.raises(FrontendError):
            parse_single("void f() { while (x < 3) { } }")

    def test_for_loop_shape(self):
        fn = parse_single(
            "void f() { for (int i = 0; i < 8; i = i + 1) { float z = 0.0; } }"
        )
        loop = fn.body[0]
        assert isinstance(loop, ForLoop)
        assert loop.var == "i"
        assert isinstance(loop.step, NumberLit)

    def test_for_increment_must_match(self):
        with pytest.raises(FrontendError):
            parse_single("void f() { for (int i = 0; i < 8; j = j + 1) { } }")
        with pytest.raises(FrontendError):
            parse_single("void f() { for (int i = 0; j < 8; i = i + 1) { } }")
        with pytest.raises(FrontendError):
            parse_single("void f() { for (int i = 0; i < 8; i = i * 2) { } }")


class TestExpressions:
    def _expr(self, text):
        fn = parse_single(f"void f() {{ float x = {text}; }}")
        return fn.body[0].init

    def test_precedence_mul_over_add(self):
        e = self._expr("1.0 + 2.0 * 3.0")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_left_associativity(self):
        e = self._expr("8.0 - 4.0 - 2.0")
        assert e.op == "-"
        assert isinstance(e.left, BinOp) and e.left.op == "-"

    def test_parentheses(self):
        e = self._expr("(1.0 + 2.0) * 3.0")
        assert e.op == "*"
        assert isinstance(e.left, BinOp) and e.left.op == "+"

    def test_unary_minus(self):
        e = self._expr("-x")
        assert isinstance(e, UnaryOp)

    def test_ternary(self):
        e = self._expr("a < b ? 1.0 : 2.0")
        assert isinstance(e, Ternary)
        assert isinstance(e.cond, BinOp) and e.cond.op == "<"

    def test_call_args(self):
        e = self._expr("fmin(a, b)")
        assert isinstance(e, Call)
        assert len(e.args) == 2

    def test_int_vs_float_literals(self):
        assert self._expr("8").is_int
        assert not self._expr("8.0").is_int
        assert not self._expr("1e3").is_int

    def test_missing_semicolon(self):
        with pytest.raises(FrontendError):
            parse_single("void f() { float x = 1.0 }")

    def test_error_reports_line(self):
        try:
            parse_single("void f() {\n float x = 1.0;\n float y = ; }")
        except FrontendError as exc:
            assert "line 3" in str(exc)
        else:
            pytest.fail("expected FrontendError")


class TestErrorPositions:
    def test_error_reports_line_and_col(self):
        try:
            parse_single("void f() {\n float x = 1.0;\n float y = ; }")
        except FrontendError as exc:
            assert "line 3:12" in str(exc)
        else:
            pytest.fail("expected FrontendError")

    def test_while_condition_error_has_col(self):
        try:
            parse_single("void f() {\n  while (0) { }\n}")
        except FrontendError as exc:
            assert "line 2:3" in str(exc)
        else:
            pytest.fail("expected FrontendError")

    def test_ast_nodes_carry_columns(self):
        fn = parse_single("void f() {\n  float x = 1.0;\n}")
        decl = fn.body[0]
        assert (decl.line, decl.col) == (2, 3)
        assert decl.init.col == 13
