"""Tests for AST → dataflow-graph lowering."""

import pytest

from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.ops import Op
from repro.errors import FrontendError


def ops_of(graph):
    return [n.op for n in graph.nodes.values()]


KERNEL = """
void k(float A) {{
    float acc = 0.0;
    while (1) {{
        {body}
    }}
}}
"""


class TestConstantFolding:
    def test_constant_arithmetic_folds(self):
        g = compile_c_to_dfg(KERNEL.format(body="acc = acc + (2.0 * 3.0 + 1.0);"))
        consts = [n.value for n in g.nodes.values() if n.op is Op.CONST]
        assert consts == [7.0]
        assert ops_of(g).count(Op.FMUL) == 0

    def test_const_dedup(self):
        g = compile_c_to_dfg(KERNEL.format(body="acc = acc * 2.0 + acc / 2.0;"))
        consts = [n for n in g.nodes.values() if n.op is Op.CONST]
        assert len(consts) == 1

    def test_sqrt_of_constant_folds(self):
        g = compile_c_to_dfg(KERNEL.format(body="acc = acc + sqrt(4.0);"))
        assert Op.FSQRT not in ops_of(g)
        assert any(n.value == 2.0 for n in g.nodes.values() if n.op is Op.CONST)

    def test_division_by_zero_constant(self):
        with pytest.raises(FrontendError):
            compile_c_to_dfg(KERNEL.format(body="acc = acc + 1.0 / 0.0;"))

    def test_sqrt_negative_constant(self):
        with pytest.raises(FrontendError):
            compile_c_to_dfg(KERNEL.format(body="acc = acc + sqrt(-1.0);"))

    def test_ternary_on_constant_folds(self):
        g = compile_c_to_dfg(KERNEL.format(body="acc = acc + (1 < 2 ? 5.0 : 9.0);"))
        assert Op.SELECT not in ops_of(g)
        assert any(n.value == 5.0 for n in g.nodes.values() if n.op is Op.CONST)


class TestLoopCarried:
    def test_accumulator_becomes_phi(self):
        g = compile_c_to_dfg(KERNEL.format(body="acc = acc + 1.0;"))
        phis = g.phis()
        assert len(phis) == 1
        assert phis[0].name == "acc"
        assert phis[0].init_value == 0.0
        back = g.node(phis[0].back_edge)
        assert back.op is Op.FADD

    def test_param_init(self):
        source = """
        void k(float X0) {
            float x = X0;
            while (1) { x = x * 0.5; }
        }
        """
        g = compile_c_to_dfg(source)
        phi = g.phis()[0]
        assert phi.init_param == "X0"

    def test_loop_invariant_var_not_phi(self):
        source = """
        void k(float A) {
            float c = 2.0;
            float x = 0.0;
            while (1) { x = x + c; }
        }
        """
        g = compile_c_to_dfg(source)
        assert len(g.phis()) == 1  # only x

    def test_arrays_become_per_element_phis(self):
        source = """
        void k() {
            float a[3] = 0.0;
            while (1) {
                for (int i = 0; i < 3; i = i + 1) { a[i] = a[i] + 1.0; }
            }
        }
        """
        g = compile_c_to_dfg(source)
        assert len(g.phis()) == 3

    def test_loop_init_must_be_constant(self):
        source = """
        void k(float A) {
            float x = A * 2.0;
            while (1) { x = x + 1.0; }
        }
        """
        with pytest.raises(FrontendError):
            compile_c_to_dfg(source)


class TestForUnrolling:
    def test_unrolled_op_count(self):
        source = """
        void k() {
            float s = 0.0;
            while (1) {
                for (int i = 0; i < 5; i = i + 1) { s = s + 1.5; }
            }
        }
        """
        g = compile_c_to_dfg(source)
        assert ops_of(g).count(Op.FADD) == 5

    def test_index_arithmetic_folds(self):
        source = """
        void k() {
            float a[4] = 0.0;
            while (1) {
                for (int i = 0; i < 2; i = i + 1) { a[i + 2] = a[i] + 1.0; }
            }
        }
        """
        g = compile_c_to_dfg(source)
        names = {n.name for n in g.nodes.values()}
        assert "a[2]" in names and "a[3]" in names

    def test_loop_variable_scaling(self):
        source = """
        void k() {
            float s = 0.0;
            while (1) {
                for (int i = 0; i < 3; i = i + 1) { s = s + 0.5 * i; }
            }
        }
        """
        g = compile_c_to_dfg(source)
        # i is compile-time: 0.5*i folds to constants 0.0, 0.5, 1.0.
        const_vals = sorted(n.value for n in g.nodes.values() if n.op is Op.CONST)
        assert const_vals == [0.0, 0.5, 1.0]

    def test_out_of_bounds_index(self):
        source = """
        void k() {
            float a[2] = 0.0;
            while (1) {
                for (int i = 0; i < 3; i = i + 1) { a[i] = a[i] + 1.0; }
            }
        }
        """
        with pytest.raises(FrontendError):
            compile_c_to_dfg(source)

    def test_unroll_budget(self):
        source = """
        void k() {
            float s = 0.0;
            while (1) {
                for (int i = 0; i < 100000; i = i + 1) { s = s + 1.0; }
            }
        }
        """
        with pytest.raises(FrontendError):
            compile_c_to_dfg(source)


class TestIO:
    def test_sensor_ids_folded(self):
        g = compile_c_to_dfg(KERNEL.format(body="acc = acc + read_sensor(3);"))
        reads = [n for n in g.nodes.values() if n.op is Op.SENSOR_READ]
        assert len(reads) == 1 and reads[0].sensor_id == 3

    def test_addressed_read(self):
        g = compile_c_to_dfg(KERNEL.format(body="acc = acc + read_sensor2(1, acc * 2.0);"))
        reads = [n for n in g.nodes.values() if n.op is Op.SENSOR_READ_ADDR]
        assert len(reads) == 1
        assert g.node(reads[0].operands[0]).op is Op.FMUL

    def test_actuator_write(self):
        g = compile_c_to_dfg(KERNEL.format(body="write_actuator(17, acc); acc = acc + 1.0;"))
        writes = [n for n in g.nodes.values() if n.op is Op.ACTUATOR_WRITE]
        assert len(writes) == 1 and writes[0].sensor_id == 17

    def test_io_outside_loop_rejected(self):
        source = """
        void k() {
            float x = read_sensor(0);
            while (1) { x = x + 1.0; }
        }
        """
        with pytest.raises(FrontendError):
            compile_c_to_dfg(source)

    def test_nonconstant_sensor_id_rejected(self):
        with pytest.raises(FrontendError):
            compile_c_to_dfg(KERNEL.format(body="acc = acc + read_sensor(acc);"))


class TestPipelineBarrier:
    SOURCE = """
    void k() {{
        float x = 0.0;
        while (1) {{
            float v = read_sensor(0) * 2.0;
            {barrier}
            x = x + v;
        }}
    }}
    """

    def test_barrier_adds_pipe_phi(self):
        without = compile_c_to_dfg(self.SOURCE.format(barrier=""))
        with_b = compile_c_to_dfg(self.SOURCE.format(barrier="pipeline_barrier();"))
        assert len(with_b.phis()) == len(without.phis()) + 1
        names = {p.name for p in with_b.phis()}
        assert "v.pipe" in names

    def test_barrier_reroutes_consumer(self):
        g = compile_c_to_dfg(self.SOURCE.format(barrier="pipeline_barrier();"))
        adds = [n for n in g.nodes.values() if n.op is Op.FADD]
        assert len(adds) == 1
        operand_ops = {g.node(o).op for o in adds[0].operands}
        # The add consumes two PHIs: x and v.pipe — no direct edge from
        # the multiply of the same iteration.
        assert operand_ops == {Op.PHI}

    def test_barrier_keeps_zero_time_values(self):
        source = """
        void k(float A) {
            float x = 0.0;
            while (1) {
                float c = 3.0;
                pipeline_barrier();
                x = x + c * A;
            }
        }
        """
        g = compile_c_to_dfg(source)
        # Constants/params need no pipe registers.
        assert all(".pipe" not in p.name for p in g.phis() if p.name != "x")

    def test_barrier_outside_loop_rejected(self):
        source = """
        void k() {
            pipeline_barrier();
            while (1) { float x = 1.0; }
        }
        """
        with pytest.raises(FrontendError):
            compile_c_to_dfg(source)


class TestStructuralErrors:
    def test_undeclared_variable(self):
        with pytest.raises(FrontendError):
            compile_c_to_dfg(KERNEL.format(body="acc = acc + nosuch;"))

    def test_assignment_to_undeclared(self):
        with pytest.raises(FrontendError):
            compile_c_to_dfg(KERNEL.format(body="other = 1.0;"))

    def test_two_loops_rejected(self):
        source = "void k() { while (1) { float a = 1.0; } while (1) { float b = 2.0; } }"
        with pytest.raises(FrontendError):
            compile_c_to_dfg(source)

    def test_no_loop_rejected(self):
        with pytest.raises(FrontendError):
            compile_c_to_dfg("void k() { float x = 1.0; }")

    def test_unknown_intrinsic(self):
        with pytest.raises(FrontendError):
            compile_c_to_dfg(KERNEL.format(body="acc = acc + exp(1.0);"))

    def test_redeclaration_outside_for(self):
        source = """
        void k() {
            float x = 1.0;
            float x = 2.0;
            while (1) { float y = 0.0; }
        }
        """
        with pytest.raises(FrontendError):
            compile_c_to_dfg(source)

    def test_function_selection(self):
        source = "void f() { while (1) { float a = 1.0; } } void g() { while (1) { float b = 1.0; } }"
        g = compile_c_to_dfg(source, function="g")
        assert g.name == "g"
        with pytest.raises(FrontendError):
            compile_c_to_dfg(source)  # ambiguous
        with pytest.raises(FrontendError):
            compile_c_to_dfg(source, function="nope")
