"""Tests for clock domains and the real-time capacity derivation."""

import pytest

from repro.cgra.timing import (
    CGRA_CLOCK,
    SYSTEM_CLOCK,
    ClockDomain,
    check_deadline,
    max_revolution_frequency,
    ticks_available,
)
from repro.errors import ConfigurationError, RealTimeViolation


class TestClockDomain:
    def test_paper_clocks(self):
        assert SYSTEM_CLOCK.frequency_hz == 250e6
        assert CGRA_CLOCK.frequency_hz == 111e6

    def test_period(self):
        assert CGRA_CLOCK.period_s == pytest.approx(1 / 111e6)

    def test_ticks_in(self):
        assert CGRA_CLOCK.ticks_in(1e-6) == pytest.approx(111.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClockDomain("bad", 0.0)


class TestPaperNumbers:
    """The exact arithmetic of Section IV-B, from the paper's own values."""

    def test_128_ticks_is_867_khz(self):
        assert max_revolution_frequency(128) == pytest.approx(867e3, rel=2e-3)

    def test_111_ticks_is_1_mhz(self):
        assert max_revolution_frequency(111) == pytest.approx(1.0e6, rel=1e-9)

    def test_99_ticks_is_1_12_mhz(self):
        assert max_revolution_frequency(99) == pytest.approx(1.12e6, rel=2e-3)

    def test_93_ticks_is_1_19_mhz(self):
        assert max_revolution_frequency(93) == pytest.approx(1.19e6, rel=4e-3)


class TestDeadline:
    def test_positive_slack(self):
        slack = check_deadline(76, f_rev=800e3)
        assert slack == pytest.approx(111e6 / 800e3 - 76)

    def test_miss_raises(self):
        with pytest.raises(RealTimeViolation):
            check_deadline(128, f_rev=1.0e6)

    def test_miss_counted_when_not_raising(self):
        slack = check_deadline(128, f_rev=1.0e6, raise_on_miss=False)
        assert slack < 0

    def test_ticks_available(self):
        assert ticks_available(1e6) == pytest.approx(111.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            max_revolution_frequency(0)
        with pytest.raises(ConfigurationError):
            ticks_available(-1.0)
