"""Tests for the ASCII schedule renderer."""

import pytest

from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.models import compile_beam_model
from repro.cgra.modulo import ModuloScheduler
from repro.cgra.scheduler import ListScheduler
from repro.cgra.visualize import render_modulo_kernel, render_schedule, utilisation_bars

SOURCE = """
void k() {
    float x = 1.0;
    while (1) {
        float v = read_sensor(0);
        write_actuator(16, x);
        x = sqrt(x * x + v);
    }
}
"""


@pytest.fixture(scope="module")
def schedule():
    graph = compile_c_to_dfg(SOURCE)
    return ListScheduler(CgraFabric(CgraConfig(rows=2, cols=2))).schedule(graph)


class TestRenderSchedule:
    def test_one_row_per_pe(self, schedule):
        text = render_schedule(schedule)
        rows = [l for l in text.splitlines() if l.startswith("PE")]
        assert len(rows) == 4

    def test_io_pe_marked_and_carries_io_letters(self, schedule):
        text = render_schedule(schedule)
        io_row = next(l for l in text.splitlines() if " io " in l or l.startswith("PE0,0 io"))
        assert "S" in io_row and "W" in io_row

    def test_header_shows_length(self, schedule):
        assert f"schedule: {schedule.length} ticks" in render_schedule(schedule)

    def test_compression_for_narrow_width(self, schedule):
        text = render_schedule(schedule, max_width=10)
        assert "1 col =" in text
        rows = [l for l in text.splitlines() if l.startswith("PE")]
        assert all(len(r) < 60 for r in rows)

    def test_sqrt_letter_present(self, schedule):
        body = render_schedule(schedule)
        assert "r" in body.split("legend")[0].split("|", 1)[1]


class TestModuloRender:
    def test_kernel_render(self):
        model = compile_beam_model(n_bunches=1, pipelined=True)
        fabric = CgraFabric(CgraConfig())
        modulo = ModuloScheduler(fabric).schedule(model.graph)
        text = render_modulo_kernel(modulo)
        assert f"II = {modulo.ii}" in text
        rows = [l for l in text.splitlines() if l.startswith("PE")]
        assert len(rows) == len(fabric.pes)


class TestUtilisationBars:
    def test_bars_bounded(self, schedule):
        text = utilisation_bars(schedule, width=20)
        for line in text.splitlines():
            assert line.count("#") + line.count("-") == 20
        assert "%" in text
