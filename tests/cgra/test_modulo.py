"""Tests for the modulo scheduler (automatic software pipelining)."""

import pytest

from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.models import compile_beam_model
from repro.cgra.modulo import ModuloScheduler
from repro.cgra.scheduler import ListScheduler
from repro.errors import ScheduleError


@pytest.fixture(scope="module")
def fabric():
    return CgraFabric(CgraConfig())


def schedule_src(source, fabric):
    return ModuloScheduler(fabric).schedule(compile_c_to_dfg(source))


INDEPENDENT = """
void k() {
    float a = 0.0;
    float b = 0.0;
    while (1) {
        a = read_sensor(0) * 0.5;
        b = read_sensor(1) * 0.25;
        write_actuator(16, a);
        write_actuator(17, b);
    }
}
"""

RECURRENCE = """
void k() {
    float x = 1.0;
    while (1) { x = sqrt(x * x + 1.0) * 0.5; }
}
"""


class TestLowerBounds:
    def test_io_bound_kernel(self, fabric):
        sched = schedule_src(INDEPENDENT, fabric)
        # 4 IO ops x 2 issue ticks on one port = ResMII 8.
        assert sched.res_mii == 8
        assert sched.ii >= 8

    def test_recurrence_bound_kernel(self, fabric):
        sched = schedule_src(RECURRENCE, fabric)
        lat = fabric.config.latencies
        expected = lat.fmul + lat.fadd + lat.fsqrt + lat.fmul
        assert sched.rec_mii == expected
        assert sched.ii >= expected

    def test_ii_at_least_mii(self, fabric):
        for src in (INDEPENDENT, RECURRENCE):
            sched = schedule_src(src, fabric)
            assert sched.ii >= max(sched.res_mii, sched.rec_mii)


class TestValidation:
    def test_valid_schedules_pass(self, fabric):
        for src in (INDEPENDENT, RECURRENCE):
            schedule_src(src, fabric).validate()

    def test_corrupted_reservation_detected(self, fabric):
        sched = schedule_src(INDEPENDENT, fabric)
        # Force two IO ops onto the same modulo slot.
        io_ids = [
            nid for nid, (pe, s) in sched.ops.items()
            if sched.graph.node(nid).is_io()
        ]
        pe, start = sched.ops[io_ids[0]]
        sched.ops[io_ids[1]] = (pe, start)
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_corrupted_dependence_detected(self, fabric):
        sched = schedule_src(RECURRENCE, fabric)
        # Move a consumer before its producer finishes.
        graph = sched.graph
        for node in graph.nodes.values():
            if node.is_zero_time() or not node.operands:
                continue
            producer = graph.node(node.operands[0])
            if producer.is_zero_time():
                continue
            pe, _ = sched.ops[node.node_id]
            sched.ops[node.node_id] = (pe, 0)
            _, p_start = sched.ops[producer.node_id]
            if p_start > 0:
                break
        with pytest.raises(ScheduleError):
            sched.validate()


class TestBeamModel:
    def test_beats_or_matches_list_scheduler_ii(self, fabric):
        """Modulo scheduling on the barrier-split model initiates at
        least as fast as the manual factor-2 schedule executes."""
        for n_bunches in (1, 4, 8):
            model = compile_beam_model(n_bunches=n_bunches, pipelined=True)
            modulo = ModuloScheduler(fabric).schedule(model.graph)
            assert modulo.ii <= model.schedule_length

    def test_recurrence_cut_by_manual_barrier(self, fabric):
        """The paper's barrier halves the recurrence: RecMII of the
        barrier-split graph is far below the unsplit graph's."""
        plain = ModuloScheduler(fabric).recurrence_mii(
            compile_beam_model(n_bunches=1, pipelined=False).graph
        )
        split = ModuloScheduler(fabric).recurrence_mii(
            compile_beam_model(n_bunches=1, pipelined=True).graph
        )
        assert split < 0.25 * plain

    def test_io_port_is_the_eventual_bound(self, fabric):
        """At 8 bunches the SensorAccess port pressure dominates ResMII."""
        model = compile_beam_model(n_bunches=8, pipelined=True)
        ms = ModuloScheduler(fabric)
        res = ms.resource_mii(model.graph)
        # 17 IO ops x 2 issue ticks = 34-36 ticks of port pressure.
        assert res >= 30

    def test_max_revolution_frequency_uses_ii(self, fabric):
        model = compile_beam_model(n_bunches=8, pipelined=True)
        sched = ModuloScheduler(fabric).schedule(model.graph)
        assert sched.max_revolution_frequency() == pytest.approx(111e6 / sched.ii)
        assert sched.stage_count >= 1
        assert sched.length >= sched.ii
