"""Tests of the per-op effect summaries and carried-register resolution."""

import pytest

from repro.cgra.dfg import DataflowGraph
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.models import compile_beam_model
from repro.cgra.ops import Op
from repro.cgra.scheduler import ListScheduler
from repro.cgra.verify import (
    EffectSummary,
    resolve_carried,
    summarize_effects,
)
from repro.errors import VerificationError


def _schedule(source: str):
    graph = compile_c_to_dfg(source)
    return ListScheduler(CgraFabric(CgraConfig())).schedule(graph)


ACCUMULATOR = """
void k() {
    float s = 0.0;
    while (1) {
        float v = read_sensor(0);
        s = s + v * 0.5;
        write_actuator(16, s);
    }
}
"""


class TestOpEffects:
    def test_classifies_reads(self):
        schedule = _schedule(ACCUMULATOR)
        effects = summarize_effects(schedule)
        graph = schedule.graph
        phi_ids = {phi.node_id for phi in graph.phis()}

        adds = [e for e in effects.ops if e.op == "FADD"]
        assert len(adds) == 1
        add = adds[0]
        # s + v*0.5 reads the carried register and the computed product.
        assert set(add.phi_reads) == phi_ids
        assert len(add.reads) == 1
        assert add.writes == (add.node_id,)
        assert add.io_reads == () and add.io_writes == ()

        reads = [e for e in effects.ops if e.op == "SENSOR_READ"]
        assert reads and reads[0].io_reads == (0,)

        writes = [e for e in effects.ops if e.op == "ACTUATOR_WRITE"]
        assert writes and writes[0].io_writes == (16,)
        assert writes[0].writes == ()  # no register value produced

        muls = [e for e in effects.ops if e.op == "FMUL"]
        assert muls and len(muls[0].const_reads) == 1  # the 0.5 constant

    def test_program_order_matches_engine(self):
        from repro.cgra.engine import merged_entries

        schedule = _schedule(ACCUMULATOR)
        effects = summarize_effects(schedule)
        assert [e.node_id for e in effects.ops] == [
            nid for _t, _op, nid, _ops, _io in merged_entries(schedule)
        ]
        assert effects.schedule_length == schedule.length

    def test_io_port_queries(self):
        effects = summarize_effects(_schedule(ACCUMULATOR))
        assert effects.io_read_ports() == (0,)
        assert effects.io_write_ports() == (16,)

    def test_lookup_helpers_raise_on_unknown(self):
        effects = summarize_effects(_schedule(ACCUMULATOR))
        with pytest.raises(VerificationError):
            effects.op(99999)
        with pytest.raises(VerificationError):
            effects.carried_for(99999)

    def test_json_round_trip(self):
        effects = summarize_effects(_schedule(ACCUMULATOR))
        assert EffectSummary.from_dict(effects.to_dict()) == effects


class TestCarriedResolution:
    def test_simple_accumulator_distance_one(self):
        schedule = _schedule(ACCUMULATOR)
        carried = resolve_carried(schedule.graph)
        (reg,) = carried.values()
        assert reg.resolved
        assert reg.source_kind == "computed"
        assert reg.distance == 1
        assert reg.via == ()
        assert schedule.graph.node(reg.source).op is Op.FADD

    def test_phi_chain_latch_order_distances(self):
        """PHI-of-PHI distances depend on latch order (ascending node id).

        ``p`` (smaller id) feeding from ``q`` (larger id) reads q's
        *previous-iteration* value: distance 2.  ``q`` feeding from the
        computed source is the plain distance-1 case.
        """
        g = DataflowGraph("chain")
        p = g.add_phi("p", init_value=0.0)
        q = g.add_phi("q", init_value=0.0)
        s = g.add_sensor_read(0, name="s")
        g.add_actuator_write(16, s)
        g.bind_phi(q, s)   # q <- s        (distance 1)
        g.bind_phi(p, q)   # p <- q, q latches after p => distance 2
        g.validate()
        carried = resolve_carried(g)
        assert carried[q.node_id].distance == 1
        assert carried[q.node_id].source == s.node_id
        assert carried[p.node_id].distance == 2
        assert carried[p.node_id].source == s.node_id
        assert carried[p.node_id].via == (q.node_id,)

    def test_phi_chain_through_earlier_latch_keeps_distance(self):
        """A PHI feeding from an *earlier-latching* PHI observes its fresh
        value: the chain collapses to distance 1."""
        g = DataflowGraph("fresh")
        q = g.add_phi("q", init_value=0.0)
        p = g.add_phi("p", init_value=0.0)  # larger id: latches after q
        s = g.add_sensor_read(0, name="s")
        g.add_actuator_write(16, s)
        g.bind_phi(q, s)
        g.bind_phi(p, q)  # q already latched s's fresh value
        g.validate()
        carried = resolve_carried(g)
        assert carried[p.node_id].distance == 1
        assert carried[p.node_id].source == s.node_id

    def test_pure_rotation_is_unresolved(self):
        g = DataflowGraph("rot")
        a = g.add_phi("a", init_value=1.0)
        b = g.add_phi("b", init_value=2.0)
        g.bind_phi(a, b)
        g.bind_phi(b, a)
        s = g.add_sensor_read(0, name="s")
        g.add_actuator_write(16, s)
        g.validate()
        carried = resolve_carried(g)
        assert not carried[a.node_id].resolved
        assert not carried[b.node_id].resolved
        assert carried[a.node_id].source is None
        assert "rotation" in carried[a.node_id].reason

    def test_const_source(self):
        g = DataflowGraph("const")
        p = g.add_phi("p", init_value=0.0)
        c = g.add_const(3.0, name="c")
        g.bind_phi(p, c)
        mul = g.add_op(Op.FMUL, [p.node_id, c.node_id], name="m")
        g.add_actuator_write(16, mul)
        g.validate()
        carried = resolve_carried(g)
        assert carried[p.node_id].source_kind == "const"
        assert carried[p.node_id].distance == 1

    def test_beam_model_carried_registers_resolve(self):
        for pipelined in (False, True):
            model = compile_beam_model(n_bunches=2, pipelined=pipelined)
            effects = summarize_effects(model.schedule)
            assert effects.carried, "beam model has loop-carried registers"
            for reg in effects.carried:
                assert reg.resolved
                assert reg.distance >= 1
