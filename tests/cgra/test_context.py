"""Tests for context-image generation and the bitstream-insert roundtrip."""

import pytest

from repro.cgra.context import build_context_images, images_from_json, images_to_json
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.scheduler import ListScheduler
from repro.errors import CgraError

SOURCE = """
void k() {
    float s = 0.0;
    while (1) {
        float v = read_sensor(0);
        write_actuator(16, s);
        s = s + v * 2.0;
    }
}
"""


def schedule():
    graph = compile_c_to_dfg(SOURCE)
    return ListScheduler(CgraFabric(CgraConfig(rows=2, cols=2))).schedule(graph)


class TestImages:
    def test_one_image_per_pe(self):
        sched = schedule()
        images = build_context_images(sched)
        assert set(images) == set(sched.fabric.pes)

    def test_entries_match_schedule(self):
        sched = schedule()
        images = build_context_images(sched)
        total_entries = sum(len(img.entries) for img in images.values())
        assert total_entries == len(sched.ops)

    def test_entries_tick_sorted(self):
        images = build_context_images(schedule())
        for img in images.values():
            ticks = [e.tick for e in img.sorted_entries()]
            assert ticks == sorted(ticks)

    def test_io_ids_preserved(self):
        images = build_context_images(schedule())
        io_ids = {
            e.io_id
            for img in images.values()
            for e in img.entries
            if e.io_id is not None
        }
        assert io_ids == {0, 16}


class TestJsonRoundtrip:
    def test_roundtrip_identity(self):
        images = build_context_images(schedule())
        restored = images_from_json(images_to_json(images))
        assert set(restored) == set(images)
        for pe in images:
            assert restored[pe].sorted_entries() == images[pe].sorted_entries()

    def test_json_is_deterministic(self):
        images = build_context_images(schedule())
        assert images_to_json(images) == images_to_json(images)

    def test_malformed_json_rejected(self):
        with pytest.raises(CgraError):
            images_from_json("{not json")
