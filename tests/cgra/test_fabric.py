"""Tests for the PE fabric and interconnect."""

import pytest

from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.ops import Op
from repro.errors import ConfigurationError, ScheduleError


class TestConfig:
    def test_paper_examples(self):
        # "allowing an arbitrary number of PEs (e.g. 3x3 or 5x5)"
        assert CgraConfig(rows=3, cols=3).n_pes == 9
        assert CgraConfig(rows=5, cols=5).n_pes == 25

    def test_clock_period(self):
        assert CgraConfig(clock_mhz=111.0).clock_period_s == pytest.approx(1 / 111e6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CgraConfig(rows=0)
        with pytest.raises(ConfigurationError):
            CgraConfig(clock_mhz=-1)
        with pytest.raises(ConfigurationError):
            CgraConfig(heavy_pe_fraction=0.0)
        with pytest.raises(ConfigurationError):
            CgraConfig(io_pe=(9, 9), rows=3, cols=3)


class TestFabric:
    def test_grid_neighbours(self):
        fab = CgraFabric(CgraConfig(rows=3, cols=3))
        assert fab.hop_distance((0, 0), (0, 1)) == 1
        assert fab.hop_distance((0, 0), (2, 2)) == 4  # manhattan
        assert fab.hop_distance((1, 1), (1, 1)) == 0

    def test_torus_shortens_paths(self):
        plain = CgraFabric(CgraConfig(rows=4, cols=4))
        torus = CgraFabric(CgraConfig(rows=4, cols=4, torus=True))
        assert torus.hop_distance((0, 0), (3, 3)) < plain.hop_distance((0, 0), (3, 3))

    def test_every_pe_does_basic_ops(self):
        fab = CgraFabric(CgraConfig(rows=3, cols=3))
        for pe in fab.pes:
            assert fab.supports(pe, Op.FADD)
            assert fab.supports(pe, Op.FMUL)

    def test_heavy_ops_subset(self):
        fab = CgraFabric(CgraConfig(rows=4, cols=4, heavy_pe_fraction=0.25))
        heavy = [pe for pe in fab.pes if fab.supports(pe, Op.FSQRT)]
        assert len(heavy) == 4
        assert set(heavy) == fab.heavy_pes

    def test_at_least_one_heavy_pe(self):
        fab = CgraFabric(CgraConfig(rows=1, cols=2, heavy_pe_fraction=0.01))
        assert len(fab.heavy_pes) == 1

    def test_single_io_pe(self):
        fab = CgraFabric(CgraConfig(rows=3, cols=3, io_pe=(1, 1)))
        io_pes = [pe for pe in fab.pes if fab.supports(pe, Op.SENSOR_READ)]
        assert io_pes == [(1, 1)]

    def test_candidates(self):
        fab = CgraFabric(CgraConfig(rows=2, cols=2))
        assert len(fab.candidates(Op.FADD)) == 4
        assert fab.candidates(Op.ACTUATOR_WRITE) == [fab.io_pe]

    def test_routing_delay_scales_with_hops(self):
        fab = CgraFabric(CgraConfig(rows=3, cols=3))
        per_hop = fab.config.latencies.route_hop
        assert fab.routing_delay((0, 0), (2, 2)) == 4 * per_hop

    def test_extra_link(self):
        fab = CgraFabric(CgraConfig(rows=3, cols=3))
        before = fab.hop_distance((0, 0), (2, 2))
        fab.add_link((0, 0), (2, 2))
        assert fab.hop_distance((0, 0), (2, 2)) == 1 < before

    def test_bad_link(self):
        fab = CgraFabric(CgraConfig(rows=2, cols=2))
        with pytest.raises(ConfigurationError):
            fab.add_link((0, 0), (9, 9))
