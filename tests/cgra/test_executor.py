"""Tests for cycle-accurate context execution."""

import math

import numpy as np
import pytest

from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.scheduler import ListScheduler
from repro.cgra.executor import CgraExecutor
from repro.cgra.sensor import SensorBus
from repro.errors import CgraError, ExecutionError


def build(source, params=None, precision="double", bus=None, **cfg):
    graph = compile_c_to_dfg(source)
    schedule = ListScheduler(CgraFabric(CgraConfig(**cfg))).schedule(graph)
    return CgraExecutor(schedule, bus or SensorBus(), params or {}, precision=precision)


class TestArithmetic:
    def test_accumulator(self):
        ex = build("void k() { float x = 0.0; while (1) { x = x + 2.5; } }")
        ex.run(4)
        assert ex.register_of("x") == pytest.approx(10.0)

    def test_parameters(self):
        ex = build(
            "void k(float A) { float x = 0.0; while (1) { x = x + A; } }",
            params={"A": 3.0},
        )
        ex.run(3)
        assert ex.register_of("x") == 9.0

    def test_param_init_of_phi(self):
        ex = build(
            "void k(float X0) { float x = X0; while (1) { x = x * 0.5; } }",
            params={"X0": 8.0},
        )
        ex.run(3)
        assert ex.register_of("x") == 1.0

    def test_sqrt_div(self):
        ex = build(
            "void k() { float x = 0.0; while (1) { x = sqrt(16.0) / (1.0 + 1.0) + x * 0.0; } }"
        )
        ex.run(1)
        assert ex.register_of("x") == pytest.approx(2.0)

    def test_select_and_compare(self):
        ex = build(
            "void k() { float x = 0.0; while (1) { x = x < 2.0 ? x + 1.0 : x; } }"
        )
        ex.run(5)
        assert ex.register_of("x") == 2.0

    def test_fmin_fmax(self):
        ex = build(
            "void k() { float x = 0.0; while (1) { x = fmin(fmax(x + 1.0, 0.0), 3.0); } }"
        )
        ex.run(10)
        assert ex.register_of("x") == 3.0

    def test_missing_param_rejected(self):
        with pytest.raises(ExecutionError):
            build("void k(float A) { float x = 0.0; while (1) { x = x + A; } }")

    def test_unknown_param_rejected(self):
        with pytest.raises(ExecutionError):
            build(
                "void k() { float x = 0.0; while (1) { x = x + 1.0; } }",
                params={"NOPE": 1.0},
            )

    def test_division_by_zero_raises(self):
        ex = build(
            "void k(float D) { float x = 0.0; while (1) { x = x + 1.0 / D; } }",
            params={"D": 0.0},
        )
        with pytest.raises(ExecutionError):
            ex.run(1)

    def test_sqrt_negative_raises(self):
        ex = build(
            "void k(float A) { float x = 0.0; while (1) { x = x + sqrt(A); } }",
            params={"A": -4.0},
        )
        with pytest.raises(ExecutionError):
            ex.run(1)

    def test_nonfinite_detected(self):
        ex = build(
            "void k() { float x = 1.0; while (1) { x = x * 1e30; } }",
            precision="single",
        )
        with pytest.raises(ExecutionError):
            ex.run(10)


class TestPrecision:
    def test_single_rounds_per_operation(self):
        src = "void k() { float x = 0.0; while (1) { x = x + 0.1; } }"
        single = build(src, precision="single")
        double = build(src, precision="double")
        single.run(1000)
        double.run(1000)
        diff = abs(single.register_of("x") - double.register_of("x"))
        assert 0.0 < diff < 1e-2

    def test_double_matches_python(self):
        ex = build(
            "void k() { float x = 1.0; while (1) { x = x * 1.0001 + 0.001; } }"
        )
        expected = 1.0
        for _ in range(100):
            expected = expected * 1.0001 + 0.001
        ex.run(100)
        assert ex.register_of("x") == pytest.approx(expected, rel=1e-15)

    def test_bad_precision_rejected(self):
        with pytest.raises(ExecutionError):
            build("void k() { float x = 0.0; while (1) { x = x + 1.0; } }",
                  precision="half")


class TestIOExecution:
    SOURCE = """
    void k() {
        float s = 0.0;
        while (1) {
            float v = read_sensor2(1, s * 10.0);
            write_actuator(16, s);
            s = s + v + read_sensor(0);
        }
    }
    """

    def test_sensor_wiring(self):
        bus = SensorBus()
        bus.register_reader(0, lambda: 1.0)
        addrs = []

        def addr_reader(a):
            addrs.append(a)
            return 0.5

        bus.register_addr_reader(1, addr_reader)
        outs = []
        bus.register_writer(16, outs.append)
        ex = build(self.SOURCE, bus=bus)
        ex.run(3)
        assert outs == [0.0, 1.5, 3.0]
        assert addrs == [0.0, 15.0, 30.0]
        assert bus.read_counts == {0: 3, 1: 3}
        assert bus.write_counts == {16: 3}

    def test_unmapped_sensor_raises(self):
        ex = build(self.SOURCE, bus=SensorBus())
        with pytest.raises(CgraError):
            ex.run(1)

    def test_actuator_write_tick_deterministic(self):
        bus = SensorBus()
        bus.register_reader(0, lambda: 1.0)
        bus.register_addr_reader(1, lambda a: 0.0)
        bus.register_writer(16, lambda v: None)
        ex = build(self.SOURCE, bus=bus)
        ticks = set()
        for _ in range(5):
            ex.run_iteration()
            ticks.add(ex.actuator_write_ticks[16])
        assert len(ticks) == 1  # the CGRA's defining property


class TestHostAccess:
    def test_set_param_between_iterations(self):
        ex = build(
            "void k(float A) { float x = 0.0; while (1) { x = x + A; } }",
            params={"A": 1.0},
        )
        ex.run(2)
        ex.set_param("A", 10.0)
        ex.run(1)
        assert ex.register_of("x") == 12.0

    def test_set_unknown_param(self):
        ex = build(
            "void k(float A) { float x = 0.0; while (1) { x = x + A; } }",
            params={"A": 1.0},
        )
        with pytest.raises(ExecutionError):
            ex.set_param("B", 1.0)

    def test_register_of_unknown(self):
        ex = build("void k() { float x = 0.0; while (1) { x = x + 1.0; } }")
        with pytest.raises(ExecutionError):
            ex.register_of("nope")

    def test_negative_iterations(self):
        ex = build("void k() { float x = 0.0; while (1) { x = x + 1.0; } }")
        with pytest.raises(ExecutionError):
            ex.run(-1)

    def test_iteration_counter(self):
        ex = build("void k() { float x = 0.0; while (1) { x = x + 1.0; } }")
        ex.run(7)
        assert ex.iterations == 7


class TestPipelinedSemantics:
    def test_barrier_delays_by_one_iteration(self):
        source = """
        void k() {
            float x = 0.0;
            while (1) {
                float v = read_sensor(0);
                pipeline_barrier();
                x = x + v;
            }
        }
        """
        values = iter([10.0, 20.0, 30.0, 40.0])
        bus = SensorBus()
        bus.register_reader(0, lambda: next(values))
        ex = build(source, bus=bus)
        ex.run(3)
        # Iteration 0 adds the barrier-init 0, then the sensed values
        # arrive one iteration late: x = 0 + 10 + 20.
        assert ex.register_of("x") == 30.0
