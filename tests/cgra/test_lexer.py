"""Tests for the mini-C tokeniser and #define preprocessing."""

import pytest

from repro.cgra.frontend.lexer import TokenKind, tokenize
from repro.errors import FrontendError


def kinds_and_texts(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasics:
    def test_keywords_vs_identifiers(self):
        toks = kinds_and_texts("float x while whale")
        assert toks[0] == (TokenKind.KEYWORD, "float")
        assert toks[1] == (TokenKind.IDENT, "x")
        assert toks[2] == (TokenKind.KEYWORD, "while")
        assert toks[3] == (TokenKind.IDENT, "whale")

    def test_numbers(self):
        toks = kinds_and_texts("1 2.5 .5 1e6 2.5e-3 1.0f")
        assert all(k is TokenKind.NUMBER for k, _ in toks)
        assert [t for _, t in toks] == ["1", "2.5", ".5", "1e6", "2.5e-3", "1.0f"]

    def test_multichar_operators(self):
        toks = kinds_and_texts("a <= b < c == d")
        texts = [t for _, t in toks]
        assert "<=" in texts and "<" in texts and "==" in texts

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        lines = {t.text: t.line for t in toks if t.kind is TokenKind.IDENT}
        assert lines == {"a": 1, "b": 2, "c": 4}

    def test_unknown_character(self):
        with pytest.raises(FrontendError):
            tokenize("a @ b")

    def test_eof_token_present(self):
        toks = tokenize("x")
        assert toks[-1].kind is TokenKind.EOF


class TestComments:
    def test_line_comment(self):
        assert kinds_and_texts("a // comment here\nb") == [
            (TokenKind.IDENT, "a"),
            (TokenKind.IDENT, "b"),
        ]

    def test_block_comment_single_line(self):
        assert len(kinds_and_texts("a /* hidden */ b")) == 2

    def test_block_comment_multi_line(self):
        source = "a /* spans\nmultiple\nlines */ b"
        toks = tokenize(source)
        idents = [t for t in toks if t.kind is TokenKind.IDENT]
        assert [t.text for t in idents] == ["a", "b"]
        assert idents[1].line == 3  # b sits on the comment's closing line


class TestDefines:
    def test_simple_substitution(self):
        toks = kinds_and_texts("#define N 8\nfloat x[N] = 0.0;")
        texts = [t for _, t in toks]
        assert "8" in texts and "N" not in texts

    def test_expression_substitution(self):
        toks = kinds_and_texts("#define TWO (1 + 1)\nx = TWO;")
        texts = [t for _, t in toks]
        assert texts.count("1") == 2

    def test_define_not_applied_inside_identifier(self):
        toks = kinds_and_texts("#define N 8\nfloat NN = 1.0;")
        texts = [t for _, t in toks]
        assert "NN" in texts

    def test_malformed_define(self):
        with pytest.raises(FrontendError):
            tokenize("#define ONLYNAME")

    def test_bad_define_name(self):
        with pytest.raises(FrontendError):
            tokenize("#define 9X 1")

    def test_other_directives_rejected(self):
        with pytest.raises(FrontendError):
            tokenize("#include <stdio.h>")


class TestColumns:
    def test_tokens_carry_columns(self):
        toks = tokenize("float x = 1.0;")
        cols = {t.text: t.col for t in toks if t.kind is not TokenKind.EOF}
        assert cols["float"] == 1
        assert cols["x"] == 7
        assert cols["="] == 9
        assert cols["1.0"] == 11

    def test_unknown_character_reports_line_and_col(self):
        with pytest.raises(FrontendError, match=r"line 2:4"):
            tokenize("x = 1;\ny =@ 2;")

    def test_directive_errors_report_col(self):
        with pytest.raises(FrontendError, match=r"line 1:1"):
            tokenize("#include <stdio.h>")

    def test_define_substitution_points_at_use_site(self):
        toks = tokenize("#define N 8\nx = N;")
        n_tok = next(t for t in toks if t.text == "8")
        assert n_tok.line == 2
        assert n_tok.col == 5
