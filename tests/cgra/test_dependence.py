"""Dependence analysis, vectorization certificates and the chunk oracle.

The soundness gate of the analysis layer: for every kernel in the test
corpus, every segment certified chunkable must pass the runtime
differential oracle bit-exactly, and the known loop-carried constructs
(the beam model's ``gamma_r`` accumulator and ``dt[i]``/``dgamma[i]``
feedback registers) must be *refused* a certificate.
"""

import numpy as np
import pytest

from repro.cgra.dfg import DataflowGraph
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.models import compile_beam_model
from repro.cgra.ops import Op
from repro.cgra.scheduler import ListScheduler
from repro.cgra.sensor import (
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
)
from repro.cgra.verify import (
    Segment,
    VectorizationCertificate,
    certify_vectorization,
    run_chunk_oracle,
)
from repro.errors import VerificationError
from repro.physics import KNOWN_IONS, SIS18

#: The corpus: every kernel variant the fig1/fig2/fig5, jitter,
#: reconfig, dual-harmonic and sweep experiments compile.
CORPUS = [(n, pipelined) for n in (1, 2, 4, 8) for pipelined in (False, True)]


def _beam_params(model):
    return model.default_params(
        gamma_r0=SIS18.gamma_from_revolution_frequency(800e3),
        q_over_mc2=KNOWN_IONS["14N7+"].gamma_gain_per_volt(),
        orbit_length=SIS18.circumference,
        alpha_c=SIS18.alpha_c,
        v_scale=4862.0,
        v_scale_ref=4 * 4862.0,
        f_sample=250e6,
        harmonic=4,
    )


def _beam_handlers():
    readers = {SENSOR_PERIOD: lambda t: 1.25e-6 * (1.0 + 1e-4 * (t % 7))}
    addr_readers = {
        SENSOR_REF_BUFFER: lambda t, a: float(np.sin(0.1 * a + 0.01 * t)),
        SENSOR_GAP_BUFFER: lambda t, a: float(np.cos(0.05 * a)),
    }
    return readers, addr_readers


def _schedule(source: str):
    graph = compile_c_to_dfg(source)
    return ListScheduler(CgraFabric(CgraConfig())).schedule(graph)


class TestCertificate:
    def test_beam_model_partition(self):
        model = compile_beam_model(n_bunches=4, pipelined=False)
        result = certify_vectorization(model.schedule)
        cert = result.certificate
        stats = cert.stats()
        assert stats["n_ops"] == sum(
            1 for node in model.graph.nodes.values() if not node.is_zero_time()
        )
        assert stats["n_chunkable_segments"] >= 1
        assert 0.0 < stats["chunkable_fraction"] < 1.0
        assert stats["max_chunk_width"] >= 1
        # Segments partition the program exactly.
        all_ids = [n for s in cert.segments for n in s.node_ids]
        assert len(all_ids) == len(set(all_ids)) == stats["n_ops"]

    @pytest.mark.parametrize("n_bunches,pipelined", CORPUS)
    def test_corpus_refuses_loop_carried_constructs(self, n_bunches, pipelined):
        """Every corpus schedule carries at least one accumulator
        (gamma_r, Eq. 2) — the analysis must pin it sequential."""
        model = compile_beam_model(n_bunches=n_bunches, pipelined=pipelined)
        result = certify_vectorization(model.schedule)
        assert result.report.has("carried-cycle")
        cert = result.certificate
        sequential = {
            n for s in cert.segments if s.kind == "sequential" for n in s.node_ids
        }
        # The accumulator's defining op must be refused.
        carried_sources = {
            reg.source for reg in result.effects.carried
            if reg.source_kind == "computed"
        }
        refused_sources = carried_sources & sequential
        assert refused_sources, "no carried source was pinned sequential"
        assert not refused_sources & cert.certified_node_ids()

    def test_certificate_json_round_trip(self):
        model = compile_beam_model(n_bunches=2, pipelined=True)
        cert = certify_vectorization(model.schedule).certificate
        assert VectorizationCertificate.from_json(cert.to_json()) == cert
        assert VectorizationCertificate.from_dict(cert.to_dict()) == cert

    def test_certificate_rejects_bad_inputs(self):
        with pytest.raises(VerificationError):
            Segment(index=0, kind="warp-speed", node_ids=(1,),
                    first_tick=0, last_tick=0)
        model = compile_beam_model(n_bunches=1, pipelined=False)
        cert = certify_vectorization(model.schedule).certificate
        payload = cert.to_dict()
        payload["version"] = 2
        with pytest.raises(VerificationError):
            VectorizationCertificate.from_dict(payload)

    def test_compiled_program_exposes_certificate(self):
        from repro.cgra.engine import compile_program

        model = compile_beam_model(n_bunches=1, pipelined=False)
        program = compile_program(model.schedule)
        cert = program.certificate
        assert cert.kernel == model.graph.name
        assert program.certificate is cert  # cached
        assert cert.n_ops == len(program.entries)

    def test_forward_carried_dependence_is_chunkable(self):
        """A PHI fed by an independent computed op is the legal shift
        shape: everything should be certified."""
        schedule = _schedule(
            """
void k() {
    float prev = 0.0;
    while (1) {
        float v = read_sensor(0);
        write_actuator(16, prev * 0.5);
        prev = v + 1.0;
    }
}
"""
        )
        result = certify_vectorization(schedule)
        cert = result.certificate
        assert [s.kind for s in cert.segments] == ["chunkable"]
        assert cert.stats()["chunkable_fraction"] == 1.0
        # And the oracle agrees.
        out = run_chunk_oracle(
            schedule, {}, readers={0: lambda t: np.sin(0.3 * t)}, n_iterations=40
        )
        assert out.ops_checked == cert.n_ops

    def test_multi_writer_port_is_sequential(self):
        g = DataflowGraph("multiwrite")
        s = g.add_sensor_read(0, name="s")
        c = g.add_const(2.0)
        m = g.add_op(Op.FMUL, [s.node_id, c.node_id], name="m")
        g.add_actuator_write(16, s)
        g.add_actuator_write(16, m)
        g.validate()
        schedule = ListScheduler(CgraFabric(CgraConfig())).schedule(g)
        result = certify_vectorization(schedule)
        assert result.report.has("io-multi-writer")
        writes = {
            e.node_id for e in result.effects.ops if e.op == "ACTUATOR_WRITE"
        }
        certified = result.certificate.certified_node_ids()
        assert not writes & certified

    def test_phi_rotation_refused(self):
        g = DataflowGraph("rotation")
        a = g.add_phi("a", init_value=1.0)
        b = g.add_phi("b", init_value=2.0)
        g.bind_phi(a, b)
        g.bind_phi(b, a)
        c = g.add_const(1.0)
        use = g.add_op(Op.FADD, [a.node_id, c.node_id], name="use")
        g.add_actuator_write(16, use)
        g.validate()
        schedule = ListScheduler(CgraFabric(CgraConfig())).schedule(g)
        result = certify_vectorization(schedule)
        assert result.report.has("phi-unresolved")
        assert not result.certificate.is_certified(use.node_id)

    def test_stale_pipelined_read_refused(self):
        """Distance-2 reads through a PHI-of-PHI chain (the stale
        pipelined-read shape) are conservatively sequential."""
        g = DataflowGraph("stale")
        p = g.add_phi("p", init_value=0.0)
        q = g.add_phi("q", init_value=0.0)
        s = g.add_sensor_read(0, name="s")
        g.bind_phi(q, s)
        g.bind_phi(p, q)  # q latches after p: p observes s at distance 2
        c = g.add_const(1.0)
        use = g.add_op(Op.FADD, [p.node_id, c.node_id], name="use")
        g.add_actuator_write(16, use)
        g.validate()
        schedule = ListScheduler(CgraFabric(CgraConfig())).schedule(g)
        result = certify_vectorization(schedule)
        assert result.report.has("stale-carried-read")
        assert not result.certificate.is_certified(use.node_id)
        # The sensor read itself is still independent and chunkable.
        assert result.certificate.is_certified(s.node_id)


class TestChunkOracle:
    @pytest.mark.parametrize("n_bunches,pipelined", CORPUS)
    def test_soundness_gate_corpus(self, n_bunches, pipelined):
        """Every certified segment of every corpus schedule executes
        chunk-wise bit-exactly against the per-cycle interpreter."""
        model = compile_beam_model(n_bunches=n_bunches, pipelined=pipelined)
        readers, addr_readers = _beam_handlers()
        out = run_chunk_oracle(
            model.schedule, _beam_params(model), readers, addr_readers,
            n_iterations=48,
        )
        assert out.segments_checked >= 1
        assert out.ops_checked >= 1
        assert out.writes_checked == n_bunches  # one Δt write per bunch

    @pytest.mark.parametrize("precision", ["single", "double"])
    def test_both_precisions(self, precision):
        model = compile_beam_model(n_bunches=2, pipelined=False)
        readers, addr_readers = _beam_handlers()
        out = run_chunk_oracle(
            model.schedule, _beam_params(model), readers, addr_readers,
            n_iterations=32, precision=precision,
        )
        assert out.ops_checked >= 1

    def test_oracle_rejects_forged_accumulator_certificate(self):
        """The oracle must have teeth: certifying an accumulator as
        chunkable is caught, not silently papered over with reference
        values."""
        schedule = _schedule(
            """
void k() {
    float s = 0.0;
    while (1) {
        float v = read_sensor(0);
        s = s + v * 0.25;
        write_actuator(16, s);
    }
}
"""
        )
        honest = certify_vectorization(schedule).certificate
        assert any(s.kind == "sequential" for s in honest.segments)
        # Forge: flip every segment to chunkable.
        forged = VectorizationCertificate(
            kernel=honest.kernel,
            n_ops=honest.n_ops,
            segments=tuple(
                Segment(
                    index=s.index, kind="chunkable", node_ids=s.node_ids,
                    first_tick=s.first_tick, last_tick=s.last_tick,
                    io_read_ports=s.io_read_ports,
                    io_write_ports=s.io_write_ports,
                    carried_in=s.carried_in,
                )
                for s in honest.segments
            ),
        )
        with pytest.raises(VerificationError):
            run_chunk_oracle(
                schedule, {}, readers={0: lambda t: np.sin(0.3 * t)},
                n_iterations=16, certificate=forged,
            )

    def test_oracle_rejects_wrong_segment_order(self):
        """A certificate whose segment order violates the dependence
        topology is reported invalid."""
        schedule = _schedule(
            """
void k() {
    float prev = 0.0;
    while (1) {
        float v = read_sensor(0);
        write_actuator(16, prev * 0.5);
        prev = v + 1.0;
    }
}
"""
        )
        honest = certify_vectorization(schedule).certificate
        (seg,) = honest.segments
        reversed_cert = VectorizationCertificate(
            kernel=honest.kernel,
            n_ops=honest.n_ops,
            segments=(
                Segment(
                    index=0, kind="chunkable",
                    node_ids=tuple(reversed(seg.node_ids)),
                    first_tick=seg.first_tick, last_tick=seg.last_tick,
                    io_read_ports=seg.io_read_ports,
                    io_write_ports=seg.io_write_ports,
                    carried_in=seg.carried_in,
                ),
            ),
        )
        with pytest.raises(VerificationError):
            run_chunk_oracle(
                schedule, {}, readers={0: lambda t: np.sin(0.3 * t)},
                n_iterations=8, certificate=reversed_cert,
            )

    def test_oracle_validates_iterations(self):
        model = compile_beam_model(n_bunches=1, pipelined=False)
        with pytest.raises(VerificationError):
            run_chunk_oracle(model.schedule, _beam_params(model), n_iterations=0)

    def test_const_source_phi_is_chunkable_and_exact(self):
        """A carried register converging to a constant vectorizes as
        [incoming, const, const, ...]."""
        schedule = _schedule(
            """
void k() {
    float p = 7.5;
    while (1) {
        write_actuator(16, p * 2.0);
        p = 0.25;
    }
}
"""
        )
        result = certify_vectorization(schedule)
        assert [s.kind for s in result.certificate.segments] == ["chunkable"]
        out = run_chunk_oracle(schedule, {}, n_iterations=12)
        assert out.writes_checked == 1
