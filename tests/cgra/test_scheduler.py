"""Tests for the resource-constrained list scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cgra.dfg import DataflowGraph
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.ops import Op, OperatorLatencies
from repro.cgra.scheduler import ListScheduler
from repro.errors import ScheduleError


def schedule_source(source, **cfg):
    graph = compile_c_to_dfg(source)
    fabric = CgraFabric(CgraConfig(**cfg))
    return ListScheduler(fabric).schedule(graph)


CHAIN = """
void k() {
    float x = 1.0;
    while (1) { x = sqrt(x * x + 1.0); }
}
"""


class TestBasicScheduling:
    def test_chain_length_equals_critical_path(self):
        sched = schedule_source(CHAIN, rows=3, cols=3)
        lat = sched.fabric.config.latencies
        # mul -> add -> sqrt on one or adjacent PEs; routing may add hops.
        lower = lat.fmul + lat.fadd + lat.fsqrt
        assert lower <= sched.length <= lower + 4 * lat.route_hop

    def test_validate_passes(self):
        sched = schedule_source(CHAIN)
        sched.validate()  # no exception

    def test_zero_time_nodes_not_scheduled(self):
        sched = schedule_source(CHAIN)
        scheduled_ops = {s.op for s in sched.ops.values()}
        assert Op.CONST not in scheduled_ops
        assert Op.PHI not in scheduled_ops

    def test_independent_ops_parallelise(self):
        source = """
        void k() {
            float a = 1.0; float b = 1.0; float c = 1.0; float d = 1.0;
            while (1) {
                a = a * 1.1; b = b * 1.1; c = c * 1.1; d = d * 1.1;
            }
        }
        """
        wide = schedule_source(source, rows=3, cols=3)
        narrow = schedule_source(source, rows=1, cols=1)
        assert wide.length < narrow.length
        # On one PE the four multiplies serialise fully.
        lat = narrow.fabric.config.latencies
        assert narrow.length == 4 * lat.fmul

    def test_io_serialises_on_one_port(self):
        source = """
        void k() {
            float s = 0.0;
            while (1) {
                float a = read_sensor(0);
                float b = read_sensor(1);
                float c = read_sensor(2);
                s = a + b + c;
            }
        }
        """
        sched = schedule_source(source, rows=4, cols=4)
        io_starts = sorted(
            s.start for s in sched.ops.values()
            if sched.graph.node(s.node_id).is_io()
        )
        for a, b in zip(io_starts, io_starts[1:]):
            assert b - a >= ListScheduler.IO_ISSUE_TICKS

    def test_io_ops_on_io_pe(self):
        source = """
        void k() {
            float s = 0.0;
            while (1) { s = s + read_sensor(0); write_actuator(16, s); }
        }
        """
        sched = schedule_source(source)
        for s in sched.ops.values():
            if sched.graph.node(s.node_id).is_io():
                assert s.pe == sched.fabric.io_pe

    def test_heavy_ops_on_heavy_pes(self):
        sched = schedule_source(CHAIN, rows=4, cols=4, heavy_pe_fraction=0.25)
        for s in sched.ops.values():
            if s.op in (Op.FSQRT, Op.FDIV):
                assert s.pe in sched.fabric.heavy_pes


class TestPriorities:
    def test_critical_path_first(self):
        # A long chain plus many independent shorts: the chain head must
        # start at tick 0.
        source = """
        void k() {
            float x = 1.0; float y = 1.0;
            while (1) {
                x = sqrt(sqrt(sqrt(x)) + 1.0);
                y = y * 1.01 + 0.1;
            }
        }
        """
        sched = schedule_source(source, rows=2, cols=2)
        sqrt_starts = [s.start for s in sched.ops.values() if s.op is Op.FSQRT]
        assert min(sqrt_starts) == 0


class TestUtilisation:
    def test_fractions_in_range(self):
        sched = schedule_source(CHAIN, rows=3, cols=3)
        for pe, util in sched.pe_utilisation().items():
            assert 0.0 <= util <= 1.0

    def test_io_count(self):
        source = """
        void k() {
            float s = 0.0;
            while (1) { s = s + read_sensor(0); write_actuator(16, s); }
        }
        """
        sched = schedule_source(source)
        assert sched.io_op_count() == 2


class TestRandomGraphs:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.sampled_from(["+", "-", "*", "/"]), min_size=1, max_size=12),
           st.integers(min_value=1, max_value=3))
    def test_random_expression_schedules_validate(self, ops, size):
        """Property: any expression tree the frontend accepts yields a
        schedule satisfying every resource/dependence constraint."""
        expr = "x"
        for i, op in enumerate(ops):
            expr = f"({expr} {op} {1.5 + i})"
        source = f"void k() {{ float x = 1.0; while (1) {{ x = {expr}; }} }}"
        sched = schedule_source(source, rows=size, cols=size)
        sched.validate()
        assert sched.length > 0
