"""The adaptive engine planner (repro.cgra.autotune) and the auto tier.

``engine="auto"`` must be a pure speed decision: same results as any
static tier, deterministic plans for a fixed machine profile, and plans
that round-trip to worker processes.  These tests pin the planning seam
by injecting fixed profiles — never by asserting what *this* machine's
calibration measures.
"""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.cgra import (
    BatchSensorBus,
    BatchedCgraExecutor,
    CgraExecutor,
    MachineProfile,
    PipelinedExecutor,
    SensorBus,
    calibrate,
    clear_cache,
    compile_beam_model,
    compile_monitor_model,
    get_default_engine,
    plan_for,
    set_default_engine,
)
from repro.cgra import autotune
from repro.cgra.autotune import (
    DEFAULT_PROFILE,
    ExecutionPlan,
    clear_plan_cache,
    export_plans,
    import_plans,
    plan_cache_stats,
    program_key,
)
from repro.cgra.engine import compile_program
from repro.cgra.engine_vector import _KERNEL_CODE_CACHE
from repro.cgra.sensor import (
    ACTUATOR_DELTA_T,
    ACTUATOR_MONITOR,
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
)
from repro.physics import KNOWN_IONS, SIS18

#: A fixed mid-range profile: plans asserted against it hold on every
#: machine (plan_for is a pure function of profile + program facts).
REFERENCE_PROFILE = MachineProfile(
    scalar_op_ns=400.0,
    array_op_ns=450.0,
    array_elem_ns=1.0,
    call_ns=80.0,
    chunk_elems=32768,
)


@pytest.fixture(autouse=True)
def _restore_engine_and_plans():
    saved = get_default_engine()
    yield
    set_default_engine(saved)
    clear_plan_cache()


def _beam_params(model):
    gamma0 = SIS18.gamma_from_revolution_frequency(800e3)
    return model.default_params(
        gamma_r0=gamma0,
        q_over_mc2=KNOWN_IONS["14N7+"].gamma_gain_per_volt(),
        orbit_length=SIS18.circumference,
        alpha_c=SIS18.alpha_c,
        v_scale=4862.0,
        v_scale_ref=4 * 4862.0,
        f_sample=250e6,
        harmonic=4,
    )


def _scalar_bus(n_bunches):
    bus = SensorBus()
    bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
    bus.register_addr_reader(
        SENSOR_REF_BUFFER, lambda a: math.sin(2 * math.pi * 800e3 * a / 250e6)
    )
    bus.register_addr_reader(
        SENSOR_GAP_BUFFER,
        lambda a: math.sin(2 * math.pi * 3.2e6 * a / 250e6 + 0.14),
    )
    outs: list[float] = []
    for i in range(n_bunches):
        bus.register_writer(ACTUATOR_DELTA_T + i, outs.append)
    return bus, outs


def _monitor_params():
    gamma0 = SIS18.gamma_from_revolution_frequency(800e3)
    return {
        "GAMMA_R0": gamma0,
        "L_R": SIS18.circumference,
        "ALPHA_C": SIS18.alpha_c,
        "F_SYNC": 3.1e3,
        "T_NOM": 1.25e-6,
        "K_SMOOTH": 0.7,
        "LIMIT": 0.5,
    }


def _monitor_bus():
    bus = SensorBus()
    bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
    outs: list[float] = []
    bus.register_writer(ACTUATOR_MONITOR, outs.append)
    return bus, outs


def _beam_program():
    return compile_program(compile_beam_model(n_bunches=1, pipelined=True).schedule)


def _monitor_program():
    return compile_program(compile_monitor_model().schedule)


class TestPlanning:
    def test_plan_deterministic_for_fixed_profile(self):
        """Same profile + same program ⇒ the identical plan, every call."""
        program = _beam_program()
        plans = [
            plan_for(program, batch=8, horizon=4096, profile=REFERENCE_PROFILE)
            for _ in range(3)
        ]
        assert plans[0] == plans[1] == plans[2]

    def test_expected_winners_under_reference_profile(self):
        """The cost model reproduces the measured reality: sequential
        beam segments favour compiled, the fully chunkable monitor
        kernel favours vector."""
        beam = plan_for(_beam_program(), batch=1, horizon=4096,
                        profile=REFERENCE_PROFILE)
        monitor = plan_for(_monitor_program(), batch=1, horizon=4096,
                           profile=REFERENCE_PROFILE)
        assert beam.engine == "compiled"
        assert monitor.engine == "vector"

    def test_short_horizon_forces_compiled(self):
        plan = plan_for(_monitor_program(), batch=1, horizon=4,
                        profile=REFERENCE_PROFILE)
        assert plan.engine == "compiled"
        assert "horizon" in plan.reason

    def test_program_key_content_stable(self):
        assert program_key(_beam_program()) == program_key(_beam_program())
        assert program_key(_beam_program()) != program_key(_monitor_program())

    def test_plan_cache_counters(self):
        clear_plan_cache()
        program = _monitor_program()
        obs.enable()
        try:
            reg = obs.metrics()
            hits = reg.counter("autotune_plan_cache_hits_total", "")
            misses = reg.counter("autotune_plan_cache_misses_total", "")
            h0, m0 = hits.value(), misses.value()
            plan_for(program, batch=1, horizon=4096)
            plan_for(program, batch=1, horizon=4096)
            assert misses.value() == m0 + 1
            assert hits.value() == h0 + 1
            # A different shape is a fresh decision.
            plan_for(program, batch=64, horizon=4096)
            assert misses.value() == m0 + 2
        finally:
            obs.disable()
        assert plan_cache_stats()["plans"] >= 2

    def test_horizon_buckets_share_plans(self):
        clear_plan_cache()
        program = _monitor_program()
        plan_for(program, batch=1, horizon=4000)
        n = plan_cache_stats()["plans"]
        plan_for(program, batch=1, horizon=4095)  # same power-of-two bucket
        assert plan_cache_stats()["plans"] == n

    def test_clear_cache_drops_plans_and_kernels(self):
        plan_for(_monitor_program(), batch=1, horizon=4096)
        assert plan_cache_stats()["plans"] >= 1
        clear_cache()
        assert plan_cache_stats()["plans"] == 0
        assert len(_KERNEL_CODE_CACHE) == 0
        assert autotune._PROFILE is None

    def test_plans_round_trip_export_import(self):
        clear_plan_cache()
        program = _monitor_program()
        original = plan_for(program, batch=1, horizon=4096)
        bundle = export_plans()
        clear_plan_cache()
        import_plans(bundle)
        # The imported plan serves the same key without recomputation,
        # and the profile travels with it (no re-calibration).
        assert plan_for(program, batch=1, horizon=4096) == original
        if bundle["profile"] is not None:
            assert calibrate().to_dict() == bundle["profile"]

    def test_plan_serialisation(self):
        plan = ExecutionPlan(engine="vector", chunk_elems=1024, reason="test",
                             predicted_compiled_ns=10.0, predicted_vector_ns=5.0)
        assert ExecutionPlan.from_dict(plan.to_dict()) == plan

    def test_calibrate_disabled_yields_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE", "0")
        clear_plan_cache()
        assert calibrate() == DEFAULT_PROFILE


class TestAutoTier:
    """engine="auto" is accepted everywhere and is bit-exact."""

    def test_scalar_executor_auto_matches_compiled(self):
        model = compile_beam_model(n_bunches=1, pipelined=True)
        params = _beam_params(model)
        bus_c, outs_c = _scalar_bus(1)
        bus_a, outs_a = _scalar_bus(1)
        ex_c = CgraExecutor(model.schedule, bus_c, params, engine="compiled")
        ex_a = CgraExecutor(model.schedule, bus_a, params, engine="auto")
        for n in (3, 64, 7):
            ex_c.run(n)
            ex_a.run(n)
            assert ex_a.registers == ex_c.registers
        assert outs_a == outs_c
        assert ex_a.last_plan is not None  # the 64-iteration run planned

    def test_scalar_executor_auto_monitor_matches_interpreted(self):
        model = compile_monitor_model()
        params = _monitor_params()
        bus_i, outs_i = _monitor_bus()
        bus_a, outs_a = _monitor_bus()
        CgraExecutor(model.schedule, bus_i, params, engine="interpreted").run(96)
        ex_a = CgraExecutor(model.schedule, bus_a, params, engine="auto")
        ex_a.run(96)
        assert outs_a == outs_i

    def test_batched_executor_auto_matches_compiled(self):
        model = compile_beam_model(n_bunches=1, pipelined=True)
        params = _beam_params(model)

        def batch_bus():
            bus = BatchSensorBus(4)
            bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
            bus.register_addr_reader(
                SENSOR_REF_BUFFER,
                lambda a: [math.sin(2 * math.pi * 800e3 * x / 250e6) for x in a],
            )
            bus.register_addr_reader(
                SENSOR_GAP_BUFFER,
                lambda a: [math.sin(2 * math.pi * 3.2e6 * x / 250e6 + 0.14) for x in a],
            )
            outs: list = []
            bus.register_writer(ACTUATOR_DELTA_T, lambda v: outs.append(tuple(v)))
            return bus, outs

        bus_c, outs_c = batch_bus()
        bus_a, outs_a = batch_bus()
        ex_c = BatchedCgraExecutor(model.schedule, bus_c, params, engine="compiled")
        ex_a = BatchedCgraExecutor(model.schedule, bus_a, params, engine="auto")
        ex_c.run(48)
        ex_a.run(48)
        assert outs_a == outs_c
        assert ex_a.iterations == ex_c.iterations == 48

    def test_pipelined_executor_accepts_auto(self):
        from repro.cgra.fabric import CgraConfig, CgraFabric
        from repro.cgra.frontend import compile_c_to_dfg
        from repro.cgra.modulo import ModuloScheduler

        graph = compile_c_to_dfg(
            "void k() { float x = 0.5; while (1) {"
            " float s = read_sensor(0); write_actuator(16, x);"
            " x = x * 0.75 + s * 0.1; } }"
        )
        modulo = ModuloScheduler(CgraFabric(CgraConfig(rows=3, cols=3))).schedule(graph)
        bus = SensorBus()
        bus.register_reader(0, lambda: 0.25)
        bus.register_writer(16, lambda v: None)
        ex = PipelinedExecutor(modulo, bus, {}, engine="auto")
        assert ex.engine == "compiled"  # modulo overlap is per-cycle

    def test_default_engine_accepts_auto(self):
        set_default_engine("auto")
        assert get_default_engine() == "auto"
