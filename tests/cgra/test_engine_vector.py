"""Parity tests for the vector execution tier (repro.cgra.engine_vector).

The vector tier consumes the dependence analysis' vectorization
certificate and lowers chunkable segments into fused NumPy kernels over
time-chunk arrays.  Its contract is the same as the compiled engine's:
**bit-exactness** against the cycle-accurate interpreter — registers,
actuator write streams, fault text and iteration counts — plus graceful
fallback to the compiled per-cycle program whenever the certificate
cannot prove a chunk safe.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import obs
from repro.cgra import (
    BatchSensorBus,
    BatchedCgraExecutor,
    CgraExecutor,
    PipelinedExecutor,
    SensorBus,
    compile_beam_model,
    compile_monitor_model,
    get_default_engine,
    set_default_engine,
)
from repro.cgra.engine import compile_program
from repro.cgra.engine_vector import MIN_CHUNK, get_vector_program
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.scheduler import ListScheduler
from repro.cgra.sensor import (
    ACTUATOR_DELTA_T,
    ACTUATOR_MONITOR,
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
)
from repro.errors import ExecutionError
from repro.physics import KNOWN_IONS, SIS18


@pytest.fixture(autouse=True)
def _restore_default_engine():
    saved = get_default_engine()
    yield
    set_default_engine(saved)


def _beam_params(model):
    gamma0 = SIS18.gamma_from_revolution_frequency(800e3)
    return model.default_params(
        gamma_r0=gamma0,
        q_over_mc2=KNOWN_IONS["14N7+"].gamma_gain_per_volt(),
        orbit_length=SIS18.circumference,
        alpha_c=SIS18.alpha_c,
        v_scale=4862.0,
        v_scale_ref=4 * 4862.0,
        f_sample=250e6,
        harmonic=4,
    )


def _scalar_bus(n_bunches):
    bus = SensorBus()
    bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
    bus.register_addr_reader(
        SENSOR_REF_BUFFER, lambda a: math.sin(2 * math.pi * 800e3 * a / 250e6)
    )
    bus.register_addr_reader(
        SENSOR_GAP_BUFFER,
        lambda a: math.sin(2 * math.pi * 3.2e6 * a / 250e6 + 0.14),
    )
    outs: list[float] = []
    for i in range(n_bunches):
        bus.register_writer(ACTUATOR_DELTA_T + i, outs.append)
    return bus, outs


def _stateful_bus(n_bunches):
    """A bus whose plain reader depends on its own call count — the
    hardest transport case for chunking (per-iteration call-stream order
    must be preserved exactly)."""
    bus = SensorBus()
    calls = [0]

    def period():
        calls[0] += 1
        return 1.25e-6 * (1.0 + 1e-3 * math.sin(0.31 * calls[0]))

    bus.register_reader(SENSOR_PERIOD, period)
    bus.register_addr_reader(
        SENSOR_REF_BUFFER, lambda a: math.sin(2 * math.pi * 800e3 * a / 250e6)
    )
    bus.register_addr_reader(
        SENSOR_GAP_BUFFER,
        lambda a: math.sin(2 * math.pi * 3.2e6 * a / 250e6 + 0.14),
    )
    outs: list[float] = []
    for i in range(n_bunches):
        bus.register_writer(ACTUATOR_DELTA_T + i, outs.append)
    return bus, outs


def _monitor_params():
    gamma0 = SIS18.gamma_from_revolution_frequency(800e3)
    return {
        "GAMMA_R0": gamma0,
        "L_R": SIS18.circumference,
        "ALPHA_C": SIS18.alpha_c,
        "F_SYNC": 3.1e3,
        "T_NOM": 1.25e-6,
        "K_SMOOTH": 0.7,
        "LIMIT": 0.5,
    }


def _monitor_bus():
    bus = SensorBus()
    calls = [0]

    def period():
        calls[0] += 1
        return 1.25e-6 * (1.0 + 2e-4 * math.sin(0.17 * calls[0]))

    bus.register_reader(SENSOR_PERIOD, period)
    outs: list[float] = []
    bus.register_writer(ACTUATOR_MONITOR, outs.append)
    return bus, outs


class TestBeamModelParity:
    """Vector vs interpreter on every built-in beam model shape."""

    @pytest.mark.parametrize("n_bunches", [1, 2, 4])
    @pytest.mark.parametrize("pipelined", [False, True])
    def test_bit_exact_registers_and_writes(self, n_bunches, pipelined):
        model = compile_beam_model(n_bunches=n_bunches, pipelined=pipelined)
        params = _beam_params(model)
        bus_i, outs_i = _scalar_bus(n_bunches)
        bus_v, outs_v = _scalar_bus(n_bunches)
        ex_i = CgraExecutor(model.schedule, bus_i, params, engine="interpreted")
        ex_v = CgraExecutor(model.schedule, bus_v, params, engine="vector")
        # Mixed run sizes: below MIN_CHUNK, chunk-aligned, tail remainder.
        for n in (3, 32, 7, 50):
            ex_i.run(n)
            ex_v.run(n)
            assert ex_v.registers == ex_i.registers
        assert outs_v == outs_i
        assert ex_v.iterations == ex_i.iterations == 92
        assert ex_v.actuator_write_ticks == ex_i.actuator_write_ticks

    def test_stateful_plain_reader(self):
        """Call-count-dependent handlers see the exact per-iteration
        call stream the interpreter would issue."""
        model = compile_beam_model(n_bunches=2, pipelined=True)
        params = _beam_params(model)
        bus_i, outs_i = _stateful_bus(2)
        bus_v, outs_v = _stateful_bus(2)
        CgraExecutor(model.schedule, bus_i, params, engine="interpreted").run(70)
        CgraExecutor(model.schedule, bus_v, params, engine="vector").run(70)
        assert outs_v == outs_i

    def test_run_iteration_stays_per_cycle(self):
        """Single-iteration stepping (the HIL closed loop) is served by
        the compiled path and matches the interpreter exactly."""
        model = compile_beam_model(n_bunches=1, pipelined=True)
        params = _beam_params(model)
        bus_i, outs_i = _scalar_bus(1)
        bus_v, outs_v = _scalar_bus(1)
        ex_i = CgraExecutor(model.schedule, bus_i, params, engine="interpreted")
        ex_v = CgraExecutor(model.schedule, bus_v, params, engine="vector")
        for _ in range(20):
            ex_i.run_iteration()
            ex_v.run_iteration()
            assert ex_v.registers == ex_i.registers
        assert outs_v == outs_i

    def test_host_interface_between_runs(self):
        """set_param / set_register between chunked runs behave exactly
        as they do on the interpreter."""
        model = compile_beam_model(n_bunches=1, pipelined=True)
        params = _beam_params(model)
        bus_i, outs_i = _scalar_bus(1)
        bus_v, outs_v = _scalar_bus(1)
        ex_i = CgraExecutor(model.schedule, bus_i, params, engine="interpreted")
        ex_v = CgraExecutor(model.schedule, bus_v, params, engine="vector")
        for ex in (ex_i, ex_v):
            ex.run(24)
            ex.set_param("V_SCALE", 5100.0)
            ex.set_register("dt[0]", 2.5e-9)
            ex.run(24)
        assert ex_v.registers == ex_i.registers
        assert outs_v == outs_i

    @pytest.mark.parametrize("precision", ["single", "double"])
    def test_precisions(self, precision):
        model = compile_beam_model(n_bunches=1, pipelined=True)
        params = _beam_params(model)
        bus_i, outs_i = _scalar_bus(1)
        bus_v, outs_v = _scalar_bus(1)
        CgraExecutor(model.schedule, bus_i, params,
                     precision=precision, engine="interpreted").run(48)
        CgraExecutor(model.schedule, bus_v, params,
                     precision=precision, engine="vector").run(48)
        assert outs_v == outs_i


class TestMonitorModelParity:
    """The feed-forward monitor kernel: the vector tier's best case."""

    def test_fully_chunkable(self):
        model = compile_monitor_model()
        program = compile_program(model.schedule)
        vp = get_vector_program(program)
        assert vp.ok, vp.reason
        assert all(kind == "chunkable" for _l, kind, _w in vp.segment_meta)

    def test_bit_exact(self):
        model = compile_monitor_model()
        params = _monitor_params()
        bus_i, outs_i = _monitor_bus()
        bus_v, outs_v = _monitor_bus()
        CgraExecutor(model.schedule, bus_i, params, engine="interpreted").run(96)
        CgraExecutor(model.schedule, bus_v, params, engine="vector").run(96)
        assert outs_v == outs_i
        assert len(outs_v) == 96


class TestFaultParity:
    """Faults inside a chunk are replayed per-cycle: same error text,
    same iteration count, same partial write stream as the interpreter."""

    def _pair(self, source, params):
        graph = compile_c_to_dfg(source)
        schedule = ListScheduler(CgraFabric(CgraConfig(rows=2, cols=2))).schedule(graph)
        ex_i = CgraExecutor(schedule, SensorBus(), dict(params), engine="interpreted")
        ex_v = CgraExecutor(schedule, SensorBus(), dict(params), engine="vector")
        return ex_i, ex_v

    def test_division_by_zero_first_iteration(self):
        source = "void k(float p) { float x = 1.0; while (1) { x = x / p; } }"
        ex_i, ex_v = self._pair(source, {"p": 0.0})
        with pytest.raises(ExecutionError) as err_i:
            ex_i.run(40)
        with pytest.raises(ExecutionError) as err_v:
            ex_v.run(40)
        assert str(err_v.value) == str(err_i.value)
        assert "division by zero in node" in str(err_v.value)
        assert ex_v.iterations == ex_i.iterations

    def test_mid_chunk_fault(self):
        """A fault deep inside a chunk: the replay must stop at exactly
        the interpreter's iteration with identical partial output."""
        source = ("void k(float p) { float c = 14.0; float x = 0.0; "
                  "while (1) { c = c - p; x = 1.0 / c; "
                  "write_actuator(16, x); } }")
        outs_i: list[float] = []
        outs_v: list[float] = []
        graph = compile_c_to_dfg(source)
        schedule = ListScheduler(CgraFabric(CgraConfig(rows=2, cols=2))).schedule(graph)
        bus_i, bus_v = SensorBus(), SensorBus()
        bus_i.register_writer(16, outs_i.append)
        bus_v.register_writer(16, outs_v.append)
        ex_i = CgraExecutor(schedule, bus_i, {"p": 1.0}, engine="interpreted")
        ex_v = CgraExecutor(schedule, bus_v, {"p": 1.0}, engine="vector")
        with pytest.raises(ExecutionError) as err_i:
            ex_i.run(40)
        with pytest.raises(ExecutionError) as err_v:
            ex_v.run(40)
        assert str(err_v.value) == str(err_i.value)
        assert ex_v.iterations == ex_i.iterations
        assert outs_v == outs_i
        assert len(outs_v) == ex_i.iterations

    def test_sqrt_of_negative(self):
        source = "void k(float p) { float x = 1.0; while (1) { x = sqrt(p); } }"
        ex_i, ex_v = self._pair(source, {"p": -1.0})
        with pytest.raises(ExecutionError) as err_i:
            ex_i.run(16)
        with pytest.raises(ExecutionError) as err_v:
            ex_v.run(16)
        assert str(err_v.value) == str(err_i.value)


class TestBatchedVector:
    """[B, T] chunks on the lockstep executor."""

    BATCH = 4

    def _batch_bus(self):
        bus = BatchSensorBus(batch=self.BATCH)
        bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
        amps = np.asarray([0.2, 0.5, 0.9, 1.3])
        bus.register_addr_reader(
            SENSOR_REF_BUFFER,
            lambda a: amps * (a * 1e-3) / (1.0 + np.abs(a) * 1e-3),
        )
        bus.register_addr_reader(
            SENSOR_GAP_BUFFER,
            lambda a: 0.5 * amps * (a * 1e-3) / (1.0 + np.abs(a) * 1e-3),
        )
        writes: list[np.ndarray] = []
        bus.register_writer(ACTUATOR_DELTA_T, lambda v: writes.append(np.array(v)))
        return bus, writes

    def test_matches_batched_compiled(self):
        model = compile_beam_model(n_bunches=1, pipelined=True)
        params = _beam_params(model)
        bus_c, writes_c = self._batch_bus()
        bus_v, writes_v = self._batch_bus()
        ex_c = BatchedCgraExecutor(model.schedule, bus_c, params, engine="compiled")
        ex_v = BatchedCgraExecutor(model.schedule, bus_v, params, engine="vector")
        for n in (5, 40, 19):
            ex_c.run(n)
            ex_v.run(n)
            for lane in range(self.BATCH):
                assert ex_v.lane_registers(lane) == ex_c.lane_registers(lane)
        assert len(writes_v) == len(writes_c)
        for wv, wc in zip(writes_v, writes_c):
            assert np.array_equal(wv, wc)

    def test_defaults_to_compiled(self):
        model = compile_beam_model(n_bunches=1, pipelined=True)
        bus, _ = self._batch_bus()
        ex = BatchedCgraExecutor(model.schedule, bus, _beam_params(model))
        assert ex.engine == "compiled"


class TestFallback:
    """Uncertifiable programs silently take the compiled per-cycle path."""

    def _schedule(self, source):
        graph = compile_c_to_dfg(source)
        return ListScheduler(CgraFabric(CgraConfig(rows=2, cols=2))).schedule(graph)

    def test_bus_feedback_kernel_falls_back(self):
        # Port 5 is both read and written: buffered chunk writes would
        # break a handler pair that feeds the actuator back to the
        # sensor, so the lowering refuses and the executor delegates.
        source = ("void k(float p) { while (1) { "
                  "float s = read_sensor(5); write_actuator(5, s * p); } }")
        schedule = self._schedule(source)
        vp = get_vector_program(compile_program(schedule))
        assert not vp.ok
        assert vp.reason

        def feedback_bus():
            state = [1.0]
            bus = SensorBus()
            bus.register_reader(5, lambda: state[0])
            outs: list[float] = []

            def sink(v):
                state[0] = v
                outs.append(v)

            bus.register_writer(5, sink)
            return bus, outs

        bus_i, outs_i = feedback_bus()
        bus_v, outs_v = feedback_bus()
        CgraExecutor(schedule, bus_i, {"p": 0.5}, engine="interpreted").run(40)
        CgraExecutor(schedule, bus_v, {"p": 0.5}, engine="vector").run(40)
        assert outs_v == outs_i

    def test_vector_program_cached_per_program(self):
        model = compile_beam_model(n_bunches=1, pipelined=True)
        program = compile_program(model.schedule)
        assert get_vector_program(program) is get_vector_program(program)

    def test_oracle_runs_once(self):
        model = compile_beam_model(n_bunches=1, pipelined=True)
        params = _beam_params(model)
        bus, _ = _scalar_bus(1)
        ex = CgraExecutor(model.schedule, bus, params, engine="vector")
        ex.run(2 * MIN_CHUNK)
        vp = get_vector_program(compile_program(model.schedule))
        assert vp._oracle_done
        assert vp.ok, vp.reason


class TestPipelinedVector:
    """The modulo-scheduled executor interleaves in-flight iterations, so
    ``engine="vector"`` degrades to the compiled per-cycle program."""

    def test_accepts_and_degrades(self):
        model = compile_beam_model(n_bunches=1, pipelined=True)
        params = _beam_params(model)
        bus, _ = _scalar_bus(1)
        from repro.cgra.modulo import ModuloScheduler

        mschedule = ModuloScheduler(CgraFabric(CgraConfig())).schedule(model.graph)
        ex = PipelinedExecutor(mschedule, bus, params, engine="vector")
        assert ex.engine == "compiled"


class TestProfilerSegments:
    def test_segment_entries_recorded(self):
        model = compile_monitor_model()
        params = _monitor_params()
        bus, _ = _monitor_bus()
        obs.enable(profile=True)
        try:
            from repro.obs.profile import get_profiler

            get_profiler().reset()
            CgraExecutor(model.schedule, bus, params, engine="vector").run(64)
            names = list(get_profiler().entries())
            assert any(n.startswith("segment.vector.") for n in names), names
            assert any(n.startswith("engine.vector.") for n in names), names
        finally:
            obs.disable()
            obs.reset()
