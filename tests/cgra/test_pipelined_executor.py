"""Tests for cycle-accurate modulo-schedule execution."""

import numpy as np
import pytest

from repro.cgra.executor import CgraExecutor
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.modulo import ModuloScheduler
from repro.cgra.pipelined_executor import PipelinedExecutor
from repro.cgra.scheduler import ListScheduler
from repro.cgra.sensor import SensorBus
from repro.errors import ExecutionError

KERNEL = """
void k() {
    float x = 0.5;
    float y = 1.0;
    while (1) {
        float s = read_sensor(0);
        write_actuator(16, x);
        x = x * 0.75 + s * 0.1;
        y = sqrt(y + x * x);
        write_actuator(17, y);
    }
}
"""


def make_bus():
    bus = SensorBus()
    state = {"n": 0}

    def sensor():
        state["n"] += 1
        return np.sin(0.37 * state["n"])

    bus.register_reader(0, sensor)
    outs = {16: [], 17: []}
    bus.register_writer(16, outs[16].append)
    bus.register_writer(17, outs[17].append)
    return bus, outs


@pytest.fixture(scope="module")
def compiled():
    graph = compile_c_to_dfg(KERNEL)
    fabric = CgraFabric(CgraConfig(rows=3, cols=3))
    return graph, fabric, ModuloScheduler(fabric).schedule(graph)


class TestValueEquivalence:
    def test_matches_sequential_executor_exactly(self, compiled):
        graph, fabric, modulo = compiled
        sequential = ListScheduler(fabric).schedule(graph)

        bus_a, outs_a = make_bus()
        CgraExecutor(sequential, bus_a, {}, precision="single").run(40)
        bus_b, outs_b = make_bus()
        PipelinedExecutor(modulo, bus_b, {}, precision="single").run(40)

        # Per-actuator streams are identical float-for-float even though
        # the pipelined global interleaving differs.
        assert outs_a[16] == outs_b[16]
        assert outs_a[17] == outs_b[17]

    def test_incremental_runs_equal_one_shot(self, compiled):
        _, _, modulo = compiled
        bus_a, outs_a = make_bus()
        ex = PipelinedExecutor(modulo, bus_a, {})
        ex.run(7)
        ex.run(13)
        bus_b, outs_b = make_bus()
        PipelinedExecutor(modulo, bus_b, {}).run(20)
        assert outs_a[16] == outs_b[16]
        assert outs_a[17] == outs_b[17]

    def test_value_of_named_node(self, compiled):
        _, _, modulo = compiled
        bus, _ = make_bus()
        ex = PipelinedExecutor(modulo, bus, {})
        ex.run(5)
        assert isinstance(ex.value_of("x"), float)
        with pytest.raises(ExecutionError):
            ex.value_of("nope")


class TestPipelinedTimeline:
    def test_iterations_overlap_in_time(self, compiled):
        """The defining property: iteration k+1 starts before k ends."""
        _, _, modulo = compiled
        assert modulo.length > modulo.ii  # overlap exists for this kernel

    def test_io_interleaving_preserves_per_id_order(self, compiled):
        """Record the global IO stream; per-id subsequences must be in
        iteration order even when ids interleave."""
        _, _, modulo = compiled
        bus = SensorBus()
        stream = []
        state = {"n": 0}

        def sensor():
            state["n"] += 1
            stream.append(("read", state["n"]))
            return 0.1

        bus.register_reader(0, sensor)
        bus.register_writer(16, lambda v: stream.append(("w16", v)))
        bus.register_writer(17, lambda v: stream.append(("w17", v)))
        PipelinedExecutor(modulo, bus, {}).run(10)
        reads = [s for s in stream if s[0] == "read"]
        assert [r[1] for r in reads] == sorted(r[1] for r in reads)

    def test_beam_model_pipelined_execution(self):
        """The shipped (barrier-split) beam model executes correctly under
        modulo scheduling — the A6 'what automatic pipelining would buy'
        story is backed by actual execution, not just static checks."""
        import math

        from repro.cgra.models import compile_beam_model
        from repro.cgra.sensor import (
            ACTUATOR_DELTA_T,
            SENSOR_GAP_BUFFER,
            SENSOR_PERIOD,
            SENSOR_REF_BUFFER,
        )
        from repro.physics import SIS18, KNOWN_IONS

        model = compile_beam_model(n_bunches=1, pipelined=True)
        fabric = CgraFabric(CgraConfig())
        modulo = ModuloScheduler(fabric).schedule(model.graph)
        gamma0 = SIS18.gamma_from_revolution_frequency(800e3)
        params = model.default_params(
            gamma_r0=gamma0,
            q_over_mc2=KNOWN_IONS["14N7+"].gamma_gain_per_volt(),
            orbit_length=SIS18.circumference,
            alpha_c=SIS18.alpha_c,
            v_scale=4862.0,
            v_scale_ref=4 * 4862.0,
            f_sample=250e6,
            harmonic=4,
        )

        def bus_and_trace():
            bus = SensorBus()
            bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
            bus.register_addr_reader(
                SENSOR_REF_BUFFER, lambda a: math.sin(2 * math.pi * 800e3 * a / 250e6)
            )
            bus.register_addr_reader(
                SENSOR_GAP_BUFFER,
                lambda a: math.sin(2 * math.pi * 3.2e6 * a / 250e6 + 0.14),
            )
            trace = []
            bus.register_writer(ACTUATOR_DELTA_T, trace.append)
            return bus, trace

        bus_p, trace_p = bus_and_trace()
        PipelinedExecutor(modulo, bus_p, params, precision="double").run(500)
        bus_s, trace_s = bus_and_trace()
        CgraExecutor(model.schedule, bus_s, params, precision="double").run(500)
        np.testing.assert_allclose(trace_p, trace_s, atol=1e-18)
