"""Tests for the beam model source and its compilation (E6 backbone)."""

import pytest

from repro.cgra.fabric import CgraConfig
from repro.cgra.models import beam_model_source, compile_beam_model
from repro.cgra.ops import Op
from repro.cgra.sensor import ACTUATOR_DELTA_T, SENSOR_GAP_BUFFER, SENSOR_PERIOD, SENSOR_REF_BUFFER
from repro.errors import ConfigurationError


class TestSource:
    def test_bunch_count_in_source(self):
        src = beam_model_source(n_bunches=4)
        assert "#define N_BUNCHES 4" in src

    def test_pipelined_flag(self):
        assert "pipeline_barrier();" in beam_model_source(pipelined=True)
        assert "pipeline_barrier();" not in beam_model_source(pipelined=False)

    def test_invalid_bunches(self):
        with pytest.raises(ConfigurationError):
            beam_model_source(n_bunches=0)


class TestCompilation:
    def test_io_structure(self):
        m = compile_beam_model(n_bunches=3)
        reads = [n for n in m.graph.nodes.values() if n.op is Op.SENSOR_READ]
        addr_reads = [n for n in m.graph.nodes.values() if n.op is Op.SENSOR_READ_ADDR]
        writes = [n for n in m.graph.nodes.values() if n.op is Op.ACTUATOR_WRITE]
        assert len(reads) == 1 and reads[0].sensor_id == SENSOR_PERIOD
        # One ref-buffer read plus one gap read per bunch.
        assert sorted(n.sensor_id for n in addr_reads) == [
            SENSOR_REF_BUFFER, SENSOR_GAP_BUFFER, SENSOR_GAP_BUFFER, SENSOR_GAP_BUFFER,
        ]
        assert sorted(n.sensor_id for n in writes) == [
            ACTUATOR_DELTA_T, ACTUATOR_DELTA_T + 1, ACTUATOR_DELTA_T + 2,
        ]

    def test_params_complete(self):
        m = compile_beam_model(n_bunches=1)
        assert set(m.graph.params) == {
            "GAMMA_R0", "QMC2", "L_R", "ALPHA_C",
            "V_SCALE", "V_SCALE_REF", "F_SAMPLE", "H_INV",
        }

    def test_default_params_helper(self):
        m = compile_beam_model(n_bunches=1)
        p = m.default_params(
            gamma_r0=1.2, q_over_mc2=5e-10, orbit_length=216.72, alpha_c=0.03,
            v_scale=5000.0, v_scale_ref=20000.0, f_sample=250e6, harmonic=4,
        )
        assert set(p) == set(m.graph.params)
        assert p["H_INV"] == pytest.approx(0.25)

    def test_compile_seconds_recorded(self):
        m = compile_beam_model(n_bunches=1)
        # The paper's "seconds, not hours" claim: our flow is sub-second.
        assert 0.0 < m.compile_seconds < 30.0


class TestPaperShape:
    """The E6 claims: pipelining and fewer bunches shorten the schedule."""

    @pytest.fixture(scope="class")
    def lengths(self):
        return {
            (nb, pipe): compile_beam_model(n_bunches=nb, pipelined=pipe).schedule_length
            for nb, pipe in [(8, False), (8, True), (4, True), (1, True)]
        }

    def test_pipelining_shortens_schedule(self, lengths):
        assert lengths[(8, True)] < lengths[(8, False)]

    def test_fewer_bunches_shorten_schedule(self, lengths):
        assert lengths[(1, True)] < lengths[(4, True)] < lengths[(8, True)]

    def test_one_mhz_crossover(self, lengths):
        """Paper: 8 bunches sustain 1 MHz only WITH pipelining."""
        clock = CgraConfig().clock_mhz * 1e6
        assert clock / lengths[(8, False)] < 1e6
        assert clock / lengths[(8, True)] >= 1e6

    def test_max_f_rev_ordering(self):
        models = [
            compile_beam_model(n_bunches=nb, pipelined=pipe)
            for nb, pipe in [(8, False), (8, True), (4, True), (1, True)]
        ]
        freqs = [m.max_f_rev for m in models]
        assert freqs == sorted(freqs)

    def test_monotone_in_bunches(self):
        lengths = [
            compile_beam_model(n_bunches=nb).schedule_length for nb in (1, 2, 4, 6, 8)
        ]
        assert all(a <= b for a, b in zip(lengths, lengths[1:]))
