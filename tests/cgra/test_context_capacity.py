"""Tests for finite context-memory capacity (hardware realism)."""

import pytest

from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.models import compile_beam_model
from repro.cgra.scheduler import ListScheduler
from repro.errors import ConfigurationError, ScheduleError


class TestCapacityAccounting:
    def test_depth_report(self):
        model = compile_beam_model(n_bunches=8, pipelined=True)
        depths = model.schedule.context_depths()
        assert sum(depths.values()) == len(model.schedule.ops)
        assert model.schedule.max_context_depth() == max(depths.values())

    def test_beam_model_fits_default_memories(self):
        for n_bunches in (1, 8):
            model = compile_beam_model(n_bunches=n_bunches)
            assert model.schedule.max_context_depth() <= model.config.context_slots

    def test_overflow_rejected(self):
        with pytest.raises(ScheduleError):
            compile_beam_model(n_bunches=8, config=CgraConfig(context_slots=4))

    def test_tight_limit_spreads_work(self):
        """A feasible-but-tight limit pushes ops onto more PEs."""
        source = """
        void k() {
            float a = 0.0;
            while (1) {
                a = a * 1.01 + 0.1;
                a = a * 1.01 + 0.1;
                a = a * 1.01 + 0.1;
                a = a * 1.01 + 0.1;
            }
        }
        """
        graph = compile_c_to_dfg(source)
        loose = ListScheduler(CgraFabric(CgraConfig(rows=3, cols=3))).schedule(graph)
        tight = ListScheduler(
            CgraFabric(CgraConfig(rows=3, cols=3, context_slots=2))
        ).schedule(graph)
        used = lambda s: sum(1 for d in s.context_depths().values() if d > 0)
        assert used(tight) >= used(loose)
        assert tight.max_context_depth() <= 2

    def test_validate_catches_corruption(self):
        # use_cache=False: this test corrupts the model's fabric config
        # in place, which must not leak into the shared compile cache.
        model = compile_beam_model(n_bunches=1, use_cache=False)
        # Shrink the limit after the fact: validation must notice.
        object.__setattr__(model.schedule.fabric.config, "context_slots", 1)
        with pytest.raises(ScheduleError):
            model.schedule.validate()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CgraConfig(context_slots=0)
