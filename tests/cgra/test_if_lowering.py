"""Tests for if/else lowering by predication."""

import pytest

from repro.cgra.executor import CgraExecutor
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.ops import Op
from repro.cgra.reference import ReferenceInterpreter
from repro.cgra.scheduler import ListScheduler
from repro.cgra.sensor import SensorBus
from repro.errors import FrontendError


def run_kernel(source, n=8, bus=None, params=None):
    graph = compile_c_to_dfg(source)
    schedule = ListScheduler(CgraFabric(CgraConfig(rows=2, cols=2))).schedule(graph)
    ex = CgraExecutor(schedule, bus or SensorBus(), params or {}, precision="double")
    ex.run(n)
    return ex


class TestBasicIf:
    def test_then_branch_taken(self):
        ex = run_kernel("""
        void k() {
            float x = 0.0;
            while (1) {
                if (x < 3.0) { x = x + 1.0; } else { x = x - 0.5; }
            }
        }
        """, n=10)
        # Saturating counter: rises to 3, dips, oscillates around 3.
        assert 2.0 <= ex.register_of("x") <= 3.5

    def test_if_without_else_keeps_value(self):
        ex = run_kernel("""
        void k() {
            float x = 0.0;
            float capped = 0.0;
            while (1) {
                x = x + 1.0;
                capped = x;
                if (5.0 < capped) { capped = 5.0; }
            }
        }
        """, n=9)
        assert ex.register_of("capped") == 5.0
        assert ex.register_of("x") == 9.0

    def test_else_if_chain(self):
        ex = run_kernel("""
        void k() {
            float x = 0.0;
            float bucket = 0.0;
            while (1) {
                x = x + 1.0;
                if (x < 3.0) { bucket = 1.0; }
                else if (x < 6.0) { bucket = 2.0; }
                else { bucket = 3.0; }
            }
        }
        """, n=7)
        assert ex.register_of("bucket") == 3.0

    def test_array_elements_merge(self):
        ex = run_kernel("""
        void k() {
            float a[2] = 0.0;
            float t = 0.0;
            while (1) {
                t = t + 1.0;
                if (t < 2.5) { a[0] = a[0] + 1.0; } else { a[1] = a[1] + 1.0; }
            }
        }
        """, n=6)
        assert ex.register_of("a[0]") == 2.0
        assert ex.register_of("a[1]") == 4.0


class TestFolding:
    def test_compile_time_condition_folds(self):
        graph = compile_c_to_dfg("""
        void k() {
            float x = 0.0;
            while (1) {
                if (1 < 2) { x = x + 1.0; } else { x = x + 100.0; }
            }
        }
        """)
        assert Op.SELECT not in [n.op for n in graph.nodes.values()]
        consts = {n.value for n in graph.nodes.values() if n.op is Op.CONST}
        assert 100.0 not in consts  # dead branch never lowered

    def test_branch_local_declarations_scoped(self):
        with pytest.raises(FrontendError):
            compile_c_to_dfg("""
            void k() {
                float x = 0.0;
                while (1) {
                    if (x < 1.0) { float tmp = 5.0; x = tmp; }
                    x = x + tmp;
                }
            }
            """)

    def test_identical_branches_no_select(self):
        graph = compile_c_to_dfg("""
        void k() {
            float x = 0.0;
            while (1) {
                if (x < 1.0) { x = x + 1.0; } else { x = x + 1.0; }
            }
        }
        """)
        # Both branches compute structurally distinct but equal updates;
        # untouched variables never get SELECTs.  Count: exactly one
        # select per divergent slot (x diverges: two separate FADD nodes).
        selects = [n for n in graph.nodes.values() if n.op is Op.SELECT]
        assert len(selects) <= 1


class TestRestrictions:
    def test_io_inside_branch_rejected(self):
        with pytest.raises(FrontendError):
            compile_c_to_dfg("""
            void k() {
                float x = 0.0;
                while (1) {
                    if (x < 1.0) { x = read_sensor(0); }
                }
            }
            """)

    def test_write_inside_branch_rejected(self):
        with pytest.raises(FrontendError):
            compile_c_to_dfg("""
            void k() {
                float x = 0.0;
                while (1) {
                    x = x + 1.0;
                    if (x < 1.0) { write_actuator(16, x); }
                }
            }
            """)

    def test_barrier_inside_branch_rejected(self):
        with pytest.raises(FrontendError):
            compile_c_to_dfg("""
            void k() {
                float x = 0.0;
                while (1) {
                    if (x < 1.0) { pipeline_barrier(); }
                    x = x + 1.0;
                }
            }
            """)


class TestDifferentialWithIf:
    def test_matches_reference_interpreter(self):
        source = """
        void k() {
            float x = 0.5;
            float y = 0.0;
            while (1) {
                float v = read_sensor(0);
                if (v < 0.0) { x = x * 0.9; y = y + v; }
                else { x = x * 1.1 + 0.01; y = y - v * 0.5; }
            }
        }
        """
        graph = compile_c_to_dfg(source)
        schedule = ListScheduler(CgraFabric(CgraConfig(rows=3, cols=3))).schedule(graph)

        def bus():
            import numpy as np

            counter = {"n": 0}
            b = SensorBus()

            def sensor():
                counter["n"] += 1
                return np.sin(counter["n"] * 0.7)

            b.register_reader(0, sensor)
            return b

        ex = CgraExecutor(schedule, bus(), {}, precision="single")
        ref = ReferenceInterpreter(graph, bus(), {}, precision="single")
        ex.run(30)
        ref.run(30)
        assert ex.register_of("x") == ref.register_of("x")
        assert ex.register_of("y") == ref.register_of("y")
