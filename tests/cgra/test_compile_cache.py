"""The keyed compile cache in repro.cgra.models.

Repeated ``compile_beam_model`` calls with the same source and fabric
must not rerun the frontend/scheduler pipeline: the cache key is
(source text, fabric config) and hits share one ``CompiledModel``.
``clear_cache()`` empties it (and the per-schedule program cache) for
isolation-sensitive callers.
"""

from __future__ import annotations

from repro import obs
from repro.cgra import clear_cache, compile_beam_model
from repro.cgra.fabric import CgraConfig


class TestCompileCache:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_hit_returns_shared_model(self):
        a = compile_beam_model(n_bunches=2, pipelined=True)
        b = compile_beam_model(n_bunches=2, pipelined=True)
        assert a is b

    def test_distinct_keys_miss(self):
        a = compile_beam_model(n_bunches=1)
        b = compile_beam_model(n_bunches=2)
        c = compile_beam_model(n_bunches=1, pipelined=False)
        d = compile_beam_model(n_bunches=1, config=CgraConfig(rows=6, cols=6))
        assert len({id(a), id(b), id(c), id(d)}) == 4

    def test_clear_cache_forces_recompile(self):
        a = compile_beam_model(n_bunches=1)
        clear_cache()
        b = compile_beam_model(n_bunches=1)
        assert a is not b

    def test_use_cache_false_bypasses(self):
        a = compile_beam_model(n_bunches=1)
        b = compile_beam_model(n_bunches=1, use_cache=False)
        assert a is not b
        # and the bypass does not poison the cache
        assert compile_beam_model(n_bunches=1) is a

    def test_obs_counters(self):
        obs.enable()
        obs.reset()
        try:
            compile_beam_model(n_bunches=2)
            compile_beam_model(n_bunches=2)
            compile_beam_model(n_bunches=2)
            registry = obs.get_registry()
            assert registry.get("cgra_compile_cache_misses_total").value() == 1
            assert registry.get("cgra_compile_cache_hits_total").value() == 2
        finally:
            obs.disable()
