"""Tests for the SensorAccess bus."""

import pytest

from repro.cgra.sensor import (
    ACTUATOR_DELTA_T,
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
    SensorBus,
)
from repro.errors import CgraError


class TestWellKnownIds:
    def test_ids_distinct(self):
        ids = {SENSOR_PERIOD, SENSOR_REF_BUFFER, SENSOR_GAP_BUFFER, ACTUATOR_DELTA_T}
        assert len(ids) == 4

    def test_bunch_actuators_do_not_collide(self):
        # Up to 8 bunches: ACTUATOR_DELTA_T..+7 must avoid the sensors.
        sensor_ids = {SENSOR_PERIOD, SENSOR_REF_BUFFER, SENSOR_GAP_BUFFER}
        for i in range(8):
            assert ACTUATOR_DELTA_T + i not in sensor_ids


class TestBus:
    def test_read(self):
        bus = SensorBus()
        bus.register_reader(0, lambda: 42.0)
        assert bus.read(0) == 42.0
        assert bus.read_counts[0] == 1

    def test_addressed_read(self):
        bus = SensorBus()
        bus.register_addr_reader(1, lambda a: a * 2.0)
        assert bus.read_addr(1, 3.0) == 6.0

    def test_write(self):
        outs = []
        bus = SensorBus()
        bus.register_writer(16, outs.append)
        bus.write(16, 1.5)
        assert outs == [1.5]
        assert bus.write_counts[16] == 1

    def test_unknown_ids_raise(self):
        bus = SensorBus()
        with pytest.raises(CgraError):
            bus.read(99)
        with pytest.raises(CgraError):
            bus.read_addr(99, 0.0)
        with pytest.raises(CgraError):
            bus.write(99, 0.0)

    def test_plain_reader_not_usable_as_addressed(self):
        bus = SensorBus()
        bus.register_reader(0, lambda: 1.0)
        with pytest.raises(CgraError):
            bus.read_addr(0, 0.0)

    def test_values_coerced_to_float(self):
        bus = SensorBus()
        bus.register_reader(0, lambda: 7)
        assert isinstance(bus.read(0), float)
