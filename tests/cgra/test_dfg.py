"""Tests for the dataflow-graph IR (SCAR)."""

import pytest

from repro.cgra.dfg import DataflowGraph
from repro.cgra.ops import Op, OperatorLatencies
from repro.errors import CgraError


def small_graph():
    """acc = acc + (c * p), actuator write of acc."""
    g = DataflowGraph("t")
    c = g.add_const(2.0)
    p = g.add_param("P")
    phi = g.add_phi("acc", init_value=0.0)
    mul = g.add_op(Op.FMUL, [c.node_id, p.node_id])
    add = g.add_op(Op.FADD, [phi.node_id, mul.node_id], name="acc")
    g.bind_phi(phi, add)
    g.add_actuator_write(17, add)
    return g


class TestConstruction:
    def test_node_count(self):
        assert len(small_graph()) == 6

    def test_params_recorded(self):
        assert small_graph().params == ["P"]

    def test_operand_must_exist(self):
        g = DataflowGraph()
        with pytest.raises(CgraError):
            g.add_op(Op.FADD, [0, 1])

    def test_phi_needs_one_init(self):
        g = DataflowGraph()
        with pytest.raises(CgraError):
            g.add_phi("x")
        with pytest.raises(CgraError):
            g.add_phi("x", init_value=1.0, init_param="P")

    def test_bind_phi_type_check(self):
        g = DataflowGraph()
        c = g.add_const(1.0)
        with pytest.raises(CgraError):
            g.bind_phi(c, c)

    def test_dedicated_adders_enforced(self):
        g = DataflowGraph()
        with pytest.raises(CgraError):
            g.add_op(Op.CONST, [])
        with pytest.raises(CgraError):
            g.add_op(Op.SENSOR_READ, [])


class TestValidation:
    def test_valid_graph_passes(self):
        small_graph().validate()

    def test_unbound_phi_fails(self):
        g = DataflowGraph()
        g.add_phi("x", init_value=0.0)
        with pytest.raises(CgraError):
            g.validate()

    def test_arity_checked(self):
        g = small_graph()
        # Corrupt an FADD to have one operand.
        add = next(n for n in g.nodes.values() if n.op is Op.FADD)
        add.operands.pop()
        with pytest.raises(CgraError):
            g.validate()

    def test_forward_cycle_detected(self):
        g = DataflowGraph()
        c = g.add_const(1.0)
        a = g.add_op(Op.FNEG, [c.node_id])
        b = g.add_op(Op.FNEG, [a.node_id])
        a.operands = [b.node_id]  # corrupt: a <-> b cycle
        with pytest.raises(CgraError):
            g.validate()

    def test_unbound_phi_message_names_bind_phi(self):
        g = DataflowGraph()
        g.add_phi("acc", init_value=0.0)
        with pytest.raises(CgraError, match=r"bind_phi"):
            g.validate()
        with pytest.raises(CgraError, match=r"'acc'"):
            g.validate()

    def test_phi_init_consistency_checked(self):
        g = small_graph()
        phi = next(n for n in g.nodes.values() if n.op is Op.PHI)
        phi.init_param = "P"  # corrupt: both init_value and init_param set
        with pytest.raises(CgraError, match="exactly one of init_value"):
            g.validate()

    def test_cycle_error_names_offending_nodes(self):
        g = DataflowGraph()
        c = g.add_const(1.0)
        a = g.add_op(Op.FNEG, [c.node_id], name="a")
        b = g.add_op(Op.FNEG, [a.node_id], name="b")
        a.operands = [b.node_id]  # corrupt: a <-> b cycle
        with pytest.raises(CgraError) as exc:
            g.validate()
        message = str(exc.value)
        assert f"%{a.node_id}" in message
        assert f"%{b.node_id}" in message
        assert "'a'" in message and "'b'" in message

    def test_cycle_error_excludes_acyclic_nodes(self):
        g = DataflowGraph()
        c = g.add_const(1.0)
        ok = g.add_op(Op.FNEG, [c.node_id], name="fine")
        a = g.add_op(Op.FNEG, [ok.node_id], name="a")
        b = g.add_op(Op.FNEG, [a.node_id], name="b")
        a.operands = [b.node_id]
        with pytest.raises(CgraError) as exc:
            g.validate()
        message = str(exc.value)
        assert "'fine'" not in message.split("cycle through nodes:")[1]


class TestQueries:
    def test_topological_order_respects_deps(self):
        g = small_graph()
        order = [n.node_id for n in g.topological_order()]
        pos = {nid: i for i, nid in enumerate(order)}
        for node in g.nodes.values():
            for operand in node.operands:
                assert pos[operand] < pos[node.node_id]

    def test_consumers(self):
        g = small_graph()
        consumers = g.consumers()
        add = next(n for n in g.nodes.values() if n.op is Op.FADD)
        # The add feeds the actuator write (its PHI edge is a back edge).
        assert len(consumers[add.node_id]) == 1

    def test_phis_and_io(self):
        g = small_graph()
        assert len(g.phis()) == 1
        assert len(g.io_nodes()) == 1

    def test_critical_path(self):
        g = small_graph()
        lat = OperatorLatencies()
        # mul -> add -> write: 3 + 3 + 2 = 8 ticks.
        assert g.critical_path_length(lat) == lat.fmul + lat.fadd + lat.actuator_write

    def test_node_lookup_error(self):
        with pytest.raises(CgraError):
            small_graph().node(999)

    def test_dump_readable(self):
        text = small_graph().dump()
        assert "fmul" in text and "phi" in text and "actuator_write" in text
