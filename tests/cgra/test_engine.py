"""Parity tests for the compiled execution engine (repro.cgra.engine).

The compiled engine lowers a verified schedule into a flat pre-resolved
Python program.  Its contract is **bit-exactness**: for every kernel,
precision and executor, the register trace, actuator writes and fault
behaviour must be identical — not approximately, to the last ULP — to
the cycle-accurate interpreter.  These tests compare the two engines
iteration by iteration on every built-in beam model, on the batched
lockstep executor, and on the pipelined (modulo-scheduled) executor.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cgra import (
    BatchSensorBus,
    BatchedCgraExecutor,
    CgraExecutor,
    PipelinedExecutor,
    SensorBus,
    compile_beam_model,
    get_default_engine,
    set_default_engine,
)
from repro.cgra.engine import compile_program, resolve_engine
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.modulo import ModuloScheduler
from repro.cgra.scheduler import ListScheduler
from repro.cgra.sensor import (
    ACTUATOR_DELTA_T,
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
)
from repro.errors import ExecutionError
from repro.physics import KNOWN_IONS, SIS18


@pytest.fixture(autouse=True)
def _restore_default_engine():
    saved = get_default_engine()
    yield
    set_default_engine(saved)


def _beam_params(model):
    gamma0 = SIS18.gamma_from_revolution_frequency(800e3)
    return model.default_params(
        gamma_r0=gamma0,
        q_over_mc2=KNOWN_IONS["14N7+"].gamma_gain_per_volt(),
        orbit_length=SIS18.circumference,
        alpha_c=SIS18.alpha_c,
        v_scale=4862.0,
        v_scale_ref=4 * 4862.0,
        f_sample=250e6,
        harmonic=4,
    )


def _scalar_bus(n_bunches):
    bus = SensorBus()
    bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
    bus.register_addr_reader(
        SENSOR_REF_BUFFER, lambda a: math.sin(2 * math.pi * 800e3 * a / 250e6)
    )
    bus.register_addr_reader(
        SENSOR_GAP_BUFFER,
        lambda a: math.sin(2 * math.pi * 3.2e6 * a / 250e6 + 0.14),
    )
    outs: list[float] = []
    for i in range(n_bunches):
        bus.register_writer(ACTUATOR_DELTA_T + i, outs.append)
    return bus, outs


class TestSequentialParity:
    """Interpreted vs compiled on the sequential executor."""

    @pytest.mark.parametrize("n_bunches", [1, 2, 4])
    @pytest.mark.parametrize("precision", ["single", "double"])
    def test_beam_model_bit_exact(self, n_bunches, precision):
        model = compile_beam_model(n_bunches=n_bunches, pipelined=True)
        params = _beam_params(model)
        bus_i, outs_i = _scalar_bus(n_bunches)
        bus_c, outs_c = _scalar_bus(n_bunches)
        ex_i = CgraExecutor(model.schedule, bus_i, params,
                            precision=precision, engine="interpreted")
        ex_c = CgraExecutor(model.schedule, bus_c, params,
                            precision=precision, engine="compiled")
        for _ in range(40):
            ex_i.run_iteration()
            ex_c.run_iteration()
            # Full register file, exact float equality every iteration.
            assert ex_c.registers == ex_i.registers
        assert outs_c == outs_i
        assert ex_c.iterations == ex_i.iterations == 40
        assert ex_c.actuator_write_ticks == ex_i.actuator_write_ticks

    def test_unpipelined_model(self):
        model = compile_beam_model(n_bunches=1, pipelined=False)
        params = _beam_params(model)
        bus_i, outs_i = _scalar_bus(1)
        bus_c, outs_c = _scalar_bus(1)
        CgraExecutor(model.schedule, bus_i, params, engine="interpreted").run(30)
        CgraExecutor(model.schedule, bus_c, params, engine="compiled").run(30)
        assert outs_c == outs_i

    def test_host_interface_matches(self):
        """set_param / set_register / register_of behave identically."""
        model = compile_beam_model(n_bunches=1)
        params = _beam_params(model)
        bus_i, _ = _scalar_bus(1)
        bus_c, _ = _scalar_bus(1)
        ex_i = CgraExecutor(model.schedule, bus_i, params, engine="interpreted")
        ex_c = CgraExecutor(model.schedule, bus_c, params, engine="compiled")
        for ex in (ex_i, ex_c):
            ex.run(5)
            ex.set_register("dt[0]", 3.5e-9)
            ex.set_param("V_SCALE", 5000.0)
            ex.run(15)
        assert ex_c.register_of("dt[0]") == ex_i.register_of("dt[0]")
        assert ex_c.register_of("gamma_r") == ex_i.register_of("gamma_r")
        assert ex_c.registers == ex_i.registers

    def test_unknown_names_raise(self):
        model = compile_beam_model(n_bunches=1)
        bus, _ = _scalar_bus(1)
        ex = CgraExecutor(model.schedule, bus, _beam_params(model), engine="compiled")
        with pytest.raises(ExecutionError):
            ex.set_param("no_such_param", 1.0)
        with pytest.raises(ExecutionError):
            ex.set_register("no_such_reg", 1.0)
        with pytest.raises(ExecutionError):
            ex.register_of("no_such_node")


class TestFaultParity:
    """Numeric faults must raise the same error text in both engines."""

    def _executors(self, source, params):
        graph = compile_c_to_dfg(source)
        schedule = ListScheduler(CgraFabric(CgraConfig(rows=2, cols=2))).schedule(graph)
        ex_i = CgraExecutor(schedule, SensorBus(), dict(params), engine="interpreted")
        ex_c = CgraExecutor(schedule, SensorBus(), dict(params), engine="compiled")
        return ex_i, ex_c

    def test_division_by_zero(self):
        source = "void k(float p) { float x = 1.0; while (1) { x = x / p; } }"
        ex_i, ex_c = self._executors(source, {"p": 0.0})
        with pytest.raises(ExecutionError) as err_i:
            ex_i.run(1)
        with pytest.raises(ExecutionError) as err_c:
            ex_c.run(1)
        assert str(err_c.value) == str(err_i.value)
        assert "division by zero in node" in str(err_c.value)

    def test_sqrt_of_negative(self):
        source = "void k(float p) { float x = 1.0; while (1) { x = sqrt(p); } }"
        ex_i, ex_c = self._executors(source, {"p": -1.0})
        with pytest.raises(ExecutionError) as err_i:
            ex_i.run(1)
        with pytest.raises(ExecutionError) as err_c:
            ex_c.run(1)
        assert str(err_c.value) == str(err_i.value)

    def test_iteration_count_after_fault(self):
        """A fault in iteration k leaves both engines at k-1 iterations."""
        source = ("void k(float p) { float c = 3.0; float x = 0.0; "
                  "while (1) { c = c - p; x = 1.0 / c; } }")
        ex_i, ex_c = self._executors(source, {"p": 1.0})
        for ex in (ex_i, ex_c):
            with pytest.raises(ExecutionError):
                ex.run(10)
        assert ex_c.iterations == ex_i.iterations == 2


class TestBatchedParity:
    """Each lane of the batched executor is bit-identical to a scalar run."""

    BATCH = 5

    @staticmethod
    def _handler(amp):
        # Bounded rational — evaluates identically in scalar Python
        # floats and elementwise NumPy float64 (IEEE mult/div/abs only).
        return lambda a: amp * (a * 1e-3) / (1.0 + abs(a) * 1e-3)

    def _scalar_run(self, model, params, amp, n_iter):
        bus = SensorBus()
        bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
        bus.register_addr_reader(SENSOR_REF_BUFFER, self._handler(amp))
        bus.register_addr_reader(SENSOR_GAP_BUFFER, self._handler(0.5 * amp))
        outs: list[float] = []
        bus.register_writer(ACTUATOR_DELTA_T, outs.append)
        ex = CgraExecutor(model.schedule, bus, params, engine="compiled")
        traces = []
        for _ in range(n_iter):
            ex.run_iteration()
            traces.append(dict(ex.registers))
        return traces, outs

    def test_lanes_match_scalar_runs(self):
        model = compile_beam_model(n_bunches=1)
        params = _beam_params(model)
        amps = [0.2, 0.5, 0.9, 1.3, 2.0]
        n_iter = 25

        bus = BatchSensorBus(batch=self.BATCH)
        bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
        amps_arr = np.asarray(amps)
        bus.register_addr_reader(
            SENSOR_REF_BUFFER,
            lambda a: amps_arr * (a * 1e-3) / (1.0 + np.abs(a) * 1e-3),
        )
        bus.register_addr_reader(
            SENSOR_GAP_BUFFER,
            lambda a: 0.5 * amps_arr * (a * 1e-3) / (1.0 + np.abs(a) * 1e-3),
        )
        writes: list[np.ndarray] = []
        bus.register_writer(ACTUATOR_DELTA_T, lambda v: writes.append(np.array(v)))
        ex = BatchedCgraExecutor(model.schedule, bus, params)
        batched_traces = []
        for _ in range(n_iter):
            ex.run_iteration()
            batched_traces.append([ex.lane_registers(lane) for lane in range(self.BATCH)])

        for lane, amp in enumerate(amps):
            scalar_traces, scalar_outs = self._scalar_run(model, params, amp, n_iter)
            for it in range(n_iter):
                assert batched_traces[it][lane] == scalar_traces[it], (
                    f"lane {lane} diverged at iteration {it}"
                )
            assert [float(w[lane]) for w in writes] == scalar_outs

    def test_host_interface_per_lane(self):
        model = compile_beam_model(n_bunches=1)
        params = _beam_params(model)
        bus = BatchSensorBus(batch=3)
        bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
        bus.register_addr_reader(SENSOR_REF_BUFFER, lambda a: a * 0.0)
        bus.register_addr_reader(SENSOR_GAP_BUFFER, lambda a: a * 0.0)
        bus.register_writer(ACTUATOR_DELTA_T, lambda v: None)
        ex = BatchedCgraExecutor(model.schedule, bus, params)
        ex.set_register("dt[0]", [1e-9, 2e-9, 3e-9])
        # Values are rounded to the kernel precision (single) on the way in.
        expect = np.asarray([1e-9, 2e-9, 3e-9], dtype=np.float32).astype(float)
        assert list(ex.register_of("dt[0]")) == list(expect)
        ex.set_param("V_SCALE", [4000.0, 4500.0, 5000.0])
        ex.run(3)
        assert ex.iterations == 3
        with pytest.raises(ExecutionError):
            ex.set_register("dt[0]", [1.0, 2.0])  # wrong lane count
        with pytest.raises(ExecutionError):
            ex.lane_registers(3)


class TestPipelinedParity:
    """Interpreted vs compiled on the modulo-scheduled executor."""

    @pytest.mark.parametrize("precision", ["single", "double"])
    def test_beam_model_bit_exact(self, precision):
        model = compile_beam_model(n_bunches=2, pipelined=True)
        msched = ModuloScheduler(model.schedule.fabric).schedule(model.graph)
        params = _beam_params(model)
        bus_i, outs_i = _scalar_bus(2)
        bus_c, outs_c = _scalar_bus(2)
        ex_i = PipelinedExecutor(msched, bus_i, params,
                                 precision=precision, engine="interpreted")
        ex_c = PipelinedExecutor(msched, bus_c, params,
                                 precision=precision, engine="compiled")
        ex_i.run(12)
        ex_c.run(12)
        ex_i.run(18)  # incremental run resumes the software pipeline
        ex_c.run(18)
        assert outs_c == outs_i
        # The compiled engine retains a rotating window of recent
        # iterations (stage_count + 3 deep); compare within it.
        for it in (27, 28, 29, None):
            assert ex_c.value_of("dt[0]", it) == ex_i.value_of("dt[0]", it)
            assert ex_c.value_of("gamma_r", it) == ex_i.value_of("gamma_r", it)

    def test_stale_read_raises_in_both(self):
        model = compile_beam_model(n_bunches=1, pipelined=True)
        msched = ModuloScheduler(model.schedule.fabric).schedule(model.graph)
        params = _beam_params(model)
        for engine in ("interpreted", "compiled"):
            bus, _ = _scalar_bus(1)
            ex = PipelinedExecutor(msched, bus, params, engine=engine)
            ex.run(4)
            with pytest.raises(ExecutionError):
                ex.value_of("dt[0]", 100)  # far beyond the rotation window


class TestEngineSelection:
    def test_resolve_and_default(self):
        assert resolve_engine(None) == get_default_engine()
        assert resolve_engine("compiled") == "compiled"
        set_default_engine("compiled")
        assert get_default_engine() == "compiled"
        model = compile_beam_model(n_bunches=1)
        bus, _ = _scalar_bus(1)
        ex = CgraExecutor(model.schedule, bus, _beam_params(model))
        assert ex.engine == "compiled"

    def test_invalid_engine_rejected(self):
        with pytest.raises(ExecutionError):
            resolve_engine("jit")
        with pytest.raises(ExecutionError):
            set_default_engine("fast")
        model = compile_beam_model(n_bunches=1)
        bus, _ = _scalar_bus(1)
        with pytest.raises(ExecutionError):
            CgraExecutor(model.schedule, bus, _beam_params(model), engine="llvm")

    def test_program_is_cached_per_schedule(self):
        model = compile_beam_model(n_bunches=1)
        p1 = compile_program(model.schedule, "single")
        p2 = compile_program(model.schedule, "single")
        assert p1 is p2
        assert compile_program(model.schedule, "double") is not p1
