"""Tests for the interval range analysis (repro.cgra.verify.range_analysis)."""

import pytest

from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.models import compile_beam_model
from repro.cgra.verify import Interval, Severity, analyze_ranges


def graph_of(source):
    return compile_c_to_dfg(source)


class TestInterval:
    def test_arithmetic(self):
        a = Interval(1.0, 2.0)
        b = Interval(-1.0, 3.0)
        assert (a + b) == Interval(0.0, 5.0)
        assert (a - b) == Interval(-2.0, 3.0)
        assert (a * b) == Interval(-2.0, 6.0)
        assert (-a) == Interval(-2.0, -1.0)

    def test_mul_zero_times_inf(self):
        z = Interval.point(0.0)
        top = Interval.top()
        assert (z * top) == Interval.point(0.0)

    def test_divide_straddling_zero_is_top(self):
        assert Interval(1.0, 2.0).divide(Interval(-1.0, 1.0)) == Interval.top()

    def test_divide_safe(self):
        q = Interval(1.0, 4.0).divide(Interval(2.0, 2.0))
        assert q == Interval(0.5, 2.0)

    def test_sqrt_clamps_negative_part(self):
        s = Interval(-4.0, 9.0).sqrt()
        assert s == Interval(0.0, 3.0)

    def test_join_and_widen(self):
        a = Interval(0.0, 1.0)
        b = Interval(0.5, 2.0)
        assert a.join(b) == Interval(0.0, 2.0)
        w = a.widen(Interval(0.0, 1.5))
        assert w.hi == float("inf") and w.lo == 0.0

    def test_malformed_interval_rejected(self):
        from repro.errors import CgraError

        with pytest.raises(CgraError):
            Interval(2.0, 1.0)


class TestPropagation:
    def test_sensor_reads_bounded_by_adc_window(self):
        src = """
        void k() {
            while (1) {
                float v = read_sensor(0);
                write_actuator(16, v);
            }
        }
        """
        graph = graph_of(src)
        report = analyze_ranges(graph)
        assert report.ok
        assert not report.has("dac-unbounded")  # ±1 V in, ±1 V out

    def test_scaled_sensor_may_saturate_dac(self):
        src = """
        void k() {
            while (1) {
                float v = read_sensor(0);
                write_actuator(16, v * 3.0);
            }
        }
        """
        report = analyze_ranges(graph_of(src))
        assert report.has("dac-may-saturate")
        assert report.ok  # warning severity: clipping, not illegal

    def test_definite_dac_saturation(self):
        src = """
        void k() {
            while (1) {
                float v = read_sensor(0);
                write_actuator(16, v * 0.1 + 5.0);
            }
        }
        """
        report = analyze_ranges(graph_of(src))
        assert report.has("dac-saturation")
        assert not report.ok

    def test_unbounded_param_gives_info_not_error(self):
        src = """
        void k(float P) {
            while (1) {
                float v = read_sensor(0);
                write_actuator(16, v * P);
            }
        }
        """
        report = analyze_ranges(graph_of(src))
        assert report.has("dac-unbounded")
        assert report.ok
        assert all(d.severity is Severity.INFO for d in report)

    def test_param_bounds_tighten_the_result(self):
        src = """
        void k(float P) {
            while (1) {
                float v = read_sensor(0);
                write_actuator(16, v * P);
            }
        }
        """
        report = analyze_ranges(
            graph_of(src), param_bounds={"P": (-0.5, 0.5)}
        )
        assert len(report) == 0  # |v * P| <= 0.5: provably inside the window

    def test_sensor_bounds_override(self):
        src = """
        void k() {
            while (1) {
                write_actuator(16, read_sensor(0));
            }
        }
        """
        report = analyze_ranges(graph_of(src), sensor_bounds=(-10.0, 10.0))
        assert report.has("dac-may-saturate")


class TestDivSqrt:
    def test_possible_div_by_zero_warning(self):
        src = """
        void k() {
            while (1) {
                float v = read_sensor(0);
                write_actuator(16, 1.0 / v);
            }
        }
        """
        report = analyze_ranges(graph_of(src))
        assert report.has("possible-div-by-zero")
        d = next(d for d in report if d.code == "possible-div-by-zero")
        assert d.severity is Severity.WARNING  # finite bounds: actionable

    def test_safe_division_is_silent(self):
        src = """
        void k() {
            while (1) {
                float v = read_sensor(0);
                write_actuator(16, v / (2.0 + v));
            }
        }
        """
        report = analyze_ranges(graph_of(src))
        assert not report.has("possible-div-by-zero")
        assert not report.has("div-by-zero")

    def test_possible_sqrt_negative(self):
        src = """
        void k() {
            while (1) {
                float v = read_sensor(0);
                write_actuator(16, sqrt(v));
            }
        }
        """
        report = analyze_ranges(graph_of(src))
        assert report.has("possible-sqrt-negative")

    def test_safe_sqrt_is_silent(self):
        src = """
        void k() {
            while (1) {
                float v = read_sensor(0);
                write_actuator(16, sqrt(v + 2.0) - 1.0);
            }
        }
        """
        report = analyze_ranges(graph_of(src))
        assert not report.has("possible-sqrt-negative")


class TestFixedPoint:
    def test_growing_accumulator_widens_to_infinity(self):
        src = """
        void k() {
            float s = 0.0;
            while (1) {
                float v = read_sensor(0);
                s = s + v * v + 0.5;
                write_actuator(16, s);
            }
        }
        """
        report = analyze_ranges(graph_of(src))
        # s grows without bound; widening must terminate the analysis
        # and the DAC sink reports the unprovable window.
        assert report.has("dac-unbounded")

    def test_contracting_recurrence_stays_bounded(self):
        src = """
        void k() {
            float s = 0.0;
            while (1) {
                float v = read_sensor(0);
                s = s * 0.5 + v * 0.25;
                write_actuator(16, s);
            }
        }
        """
        report = analyze_ranges(graph_of(src))
        # |s| <= 0.5|s| + 0.25 converges well inside ±1 V... but interval
        # iteration may over-approximate; it must at least terminate and
        # never claim definite saturation.
        assert not report.has("dac-saturation")

    def test_select_joins_branches(self):
        src = """
        void k() {
            while (1) {
                float v = read_sensor(0);
                float y = v < 0.0 ? 0.25 : 0.75;
                write_actuator(16, y);
            }
        }
        """
        report = analyze_ranges(graph_of(src))
        assert len(report) == 0

    def test_fmin_fmax_clamp(self):
        src = """
        void k(float P) {
            while (1) {
                float y = fmax(-0.5, fmin(0.5, P));
                write_actuator(16, y);
            }
        }
        """
        report = analyze_ranges(graph_of(src))
        # P is unbounded but the clamp provably confines y to ±0.5.
        assert len(report) == 0


class TestBeamModel:
    @pytest.mark.parametrize("n_bunches", [1, 4])
    def test_beam_model_has_no_errors(self, n_bunches):
        model = compile_beam_model(n_bunches=n_bunches)
        report = analyze_ranges(model.graph)
        assert report.ok

    def test_intervals_attached_to_report(self):
        model = compile_beam_model(n_bunches=1)
        report = analyze_ranges(model.graph)
        assert set(report.intervals) == set(model.graph.nodes)
