"""Failure-injection tests: the bench must fail loudly, not silently.

A HIL simulator that misses deadlines or feeds garbage produces wrong
physics that *looks* plausible — these tests pin the failure paths that
protect against that.
"""

import numpy as np
import pytest

from repro.cgra.fabric import CgraConfig
from repro.errors import RealTimeViolation, SignalError
from repro.hil.framework import FpgaFramework, FrameworkConfig
from repro.hil.simulator import CavityInTheLoop, HilConfig
from repro.physics import SIS18, KNOWN_IONS


class TestRealTimeViolations:
    def test_too_fast_revolution_raises(self):
        """8 bunches at 1.3 MHz exceed the schedule budget: the run must
        abort with RealTimeViolation, not produce a trace."""
        config = HilConfig(
            ring=SIS18,
            ion=KNOWN_IONS["14N7+"],
            revolution_frequency=1.3e6,
            n_bunches=4,
            harmonic=4,
        )
        sim = CavityInTheLoop(config)
        assert sim.model.max_f_rev < 1.3e6
        with pytest.raises(RealTimeViolation):
            sim.run(0.001)

    def test_slow_cgra_clock_raises(self):
        """Halving the overlay clock halves the budget."""
        config = HilConfig(
            ring=SIS18,
            ion=KNOWN_IONS["14N7+"],
            revolution_frequency=800e3,
            cgra_config=CgraConfig(clock_mhz=40.0),
        )
        sim = CavityInTheLoop(config)
        with pytest.raises(RealTimeViolation):
            sim.run(0.001)

    def test_fast_single_bunch_fits(self):
        """1 pipelined bunch sustains 1.3 MHz (above the paper's 1.19 MHz
        because our latency calibration is slightly optimistic)."""
        config = HilConfig(
            ring=SIS18,
            ion=KNOWN_IONS["14N7+"],
            revolution_frequency=1.3e6,
            n_bunches=1,
            jump_start_time=1e-4,
        )
        res = CavityInTheLoop(config).run(0.001)
        assert res.deadline.met


class TestFrameworkFaults:
    def _framework(self, **overrides):
        kwargs = dict(
            ring=SIS18,
            ion=KNOWN_IONS["14N7+"],
            harmonic=4,
            gap_volts_per_adc_volt=5e3,
            ref_volts_per_adc_volt=2e4,
        )
        kwargs.update(overrides)
        return FpgaFramework(FrameworkConfig(**kwargs))

    def test_dead_reference_input_never_initialises(self):
        """A dead (all-zero) reference channel: no crossings, no model
        start — and no crash."""
        fw = self._framework()
        for _ in range(20):
            fw.feed(np.zeros(312), np.zeros(312))
        assert not fw.initialised

    def test_buffer_overrun_detected(self):
        """If the model is somehow stalled while the ADC keeps writing,
        re-reading ancient samples raises instead of returning garbage."""
        fw = self._framework(ring_buffer_capacity=1024)
        from repro.signal.dds import GroupDDS

        group = GroupDDS(800e3, 4, 0.9, 250e6)
        group.reset_phase()
        # Prime until initialised.
        for _ in range(8):
            ref, gap = group.generate(312)
            fw.feed(ref.samples, gap.samples)
        # Ancient sample: global index far behind the write pointer.
        with pytest.raises(SignalError):
            fw.buffer_ref.read(0)

    def test_deadline_policy_raise_in_framework(self):
        """Reference running above the model's real-time capacity is a
        detected hardware-misuse condition."""
        fw = self._framework(
            n_bunches=4,
            cgra_config=CgraConfig(clock_mhz=30.0),
            deadline_policy="raise",
        )
        from repro.signal.dds import GroupDDS

        group = GroupDDS(800e3, 4, 0.9, 250e6)
        group.reset_phase()
        with pytest.raises(RealTimeViolation):
            for _ in range(12):
                ref, gap = group.generate(312)
                fw.feed(ref.samples, gap.samples)

    def test_count_policy_records_misses(self):
        fw = self._framework(
            n_bunches=4,
            cgra_config=CgraConfig(clock_mhz=30.0),
            deadline_policy="count",
        )
        from repro.signal.dds import GroupDDS

        group = GroupDDS(800e3, 4, 0.9, 250e6)
        group.reset_phase()
        for _ in range(12):
            ref, gap = group.generate(312)
            fw.feed(ref.samples, gap.samples)
        stats = fw.deadline.stats()
        assert stats.misses > 0 and not stats.met
