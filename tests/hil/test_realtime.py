"""Tests for deadline monitoring."""

import pytest

from repro import obs
from repro.errors import ConfigurationError, RealTimeViolation
from repro.hil.realtime import DeadlineMonitor, JitterStats


class TestDeadlineMonitor:
    def test_slack_accounting(self):
        mon = DeadlineMonitor(schedule_length_ticks=76, cgra_clock_hz=111e6)
        slack = mon.check_revolution(1 / 800e3)
        assert slack == pytest.approx(111e6 / 800e3 - 76)

    def test_raise_policy(self):
        mon = DeadlineMonitor(128, policy="raise")
        with pytest.raises(RealTimeViolation):
            mon.check_revolution(1 / 1.0e6)  # 111 ticks < 128

    def test_count_policy(self):
        mon = DeadlineMonitor(128, policy="count")
        mon.check_revolution(1 / 1.0e6)
        mon.check_revolution(1 / 800e3)
        stats = mon.stats()
        assert stats.misses == 1
        assert stats.n_iterations == 2
        assert not stats.met

    def test_count_policy_never_raises(self):
        mon = DeadlineMonitor(128, policy="count")
        for _ in range(5):
            mon.check_revolution(1 / 1.0e6)  # every one a miss
        stats = mon.stats()
        assert stats.misses == 5
        assert stats.min_slack < 0

    def test_raise_policy_still_records_the_miss(self):
        mon = DeadlineMonitor(128, policy="raise")
        with pytest.raises(RealTimeViolation):
            mon.check_revolution(1 / 1.0e6)
        stats = mon.stats()
        assert stats.misses == 1 and stats.n_iterations == 1

    def test_stats_all_met(self):
        mon = DeadlineMonitor(76)
        for _ in range(10):
            mon.check_revolution(1 / 800e3)
        stats = mon.stats()
        assert stats.met
        assert stats.min_slack == pytest.approx(stats.mean_slack)

    def test_stats_requires_data(self):
        with pytest.raises(ConfigurationError):
            DeadlineMonitor(76).stats()

    def test_stats_allow_empty_is_well_defined(self):
        stats = DeadlineMonitor(76).stats(allow_empty=True)
        assert stats.n_iterations == 0
        assert stats.misses == 0
        assert stats.mean_slack == 0.0
        assert stats.p50_slack == 0.0 and stats.p99_slack == 0.0
        # No iterations is not evidence of meeting the deadline.
        assert not stats.met

    def test_empty_classmethod_matches_allow_empty(self):
        assert DeadlineMonitor(76).stats(allow_empty=True) == JitterStats.empty()

    def test_percentiles(self):
        mon = DeadlineMonitor(10, cgra_clock_hz=1e6, policy="count")
        # Slack = 1e6/f - 10; choose periods for slacks 0..99 ticks.
        for s in range(100):
            mon.check_revolution((s + 10) / 1e6)
        stats = mon.stats()
        assert stats.p50_slack == pytest.approx(49.5)
        assert stats.p99_slack == pytest.approx(98.01)
        assert stats.min_slack == 0.0

    def test_slack_record_exposed(self):
        mon = DeadlineMonitor(76)
        mon.check_revolution(1 / 800e3)
        assert mon.n_checked == 1
        assert mon.slacks().shape == (1,)

    def test_feeds_obs_histogram_and_miss_counter(self):
        obs.reset()
        obs.enable()
        try:
            mon = DeadlineMonitor(128, policy="count")
            mon.check_revolution(1 / 800e3)
            mon.check_revolution(1 / 1.0e6)  # miss
            hist = obs.metrics().get("hil_slack_ticks")
            misses = obs.metrics().get("hil_deadline_misses_total")
            assert hist.count() == 2
            assert misses.value() == 1
        finally:
            obs.disable()
            obs.reset()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeadlineMonitor(0)
        with pytest.raises(ConfigurationError):
            DeadlineMonitor(10, policy="ignore")
        with pytest.raises(ConfigurationError):
            DeadlineMonitor(10).check_revolution(0.0)
