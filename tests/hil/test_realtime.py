"""Tests for deadline monitoring."""

import pytest

from repro.errors import ConfigurationError, RealTimeViolation
from repro.hil.realtime import DeadlineMonitor


class TestDeadlineMonitor:
    def test_slack_accounting(self):
        mon = DeadlineMonitor(schedule_length_ticks=76, cgra_clock_hz=111e6)
        slack = mon.check_revolution(1 / 800e3)
        assert slack == pytest.approx(111e6 / 800e3 - 76)

    def test_raise_policy(self):
        mon = DeadlineMonitor(128, policy="raise")
        with pytest.raises(RealTimeViolation):
            mon.check_revolution(1 / 1.0e6)  # 111 ticks < 128

    def test_count_policy(self):
        mon = DeadlineMonitor(128, policy="count")
        mon.check_revolution(1 / 1.0e6)
        mon.check_revolution(1 / 800e3)
        stats = mon.stats()
        assert stats.misses == 1
        assert stats.n_iterations == 2
        assert not stats.met

    def test_stats_all_met(self):
        mon = DeadlineMonitor(76)
        for _ in range(10):
            mon.check_revolution(1 / 800e3)
        stats = mon.stats()
        assert stats.met
        assert stats.min_slack == pytest.approx(stats.mean_slack)

    def test_stats_requires_data(self):
        with pytest.raises(ConfigurationError):
            DeadlineMonitor(76).stats()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeadlineMonitor(0)
        with pytest.raises(ConfigurationError):
            DeadlineMonitor(10, policy="ignore")
        with pytest.raises(ConfigurationError):
            DeadlineMonitor(10).check_revolution(0.0)
