"""Tests for multi-bunch operation of the HIL bench (Section VI's
"multiple bunches circulating in the ring at the same time")."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hil.simulator import CavityInTheLoop, HilConfig
from repro.physics import SIS18, KNOWN_IONS
from repro.physics.oscillation import estimate_oscillation_frequency


def config(**overrides):
    kwargs = dict(ring=SIS18, ion=KNOWN_IONS["14N7+"], record_every=4,
                  jump_start_time=0.002)
    kwargs.update(overrides)
    return HilConfig(**kwargs)


class TestValidation:
    def test_initial_offsets_length(self):
        with pytest.raises(ConfigurationError):
            config(n_bunches=4, initial_delta_t=(1e-9, 2e-9))

    def test_control_source_names(self):
        with pytest.raises(ConfigurationError):
            config(control_source="median")


class TestIndependentBunches:
    def test_offsets_produce_distinct_trajectories(self):
        offsets = (0.0, 4e-9, 8e-9, 12e-9)
        sim = CavityInTheLoop(config(n_bunches=4, initial_delta_t=offsets,
                                     jump_deg=0.0))
        res = sim.run(0.004)
        assert res.delta_t_all.shape[1] == 4
        finals = res.delta_t_all[-1]
        assert len(np.unique(np.round(finals * 1e12))) == 4

    def test_all_bunches_share_synchrotron_frequency(self):
        offsets = (2e-9, 5e-9, 8e-9, 11e-9)
        sim = CavityInTheLoop(config(
            n_bunches=4, initial_delta_t=offsets, jump_deg=0.0,
        ))
        res = sim.run(0.01)
        for b in range(4):
            trace = res.phase_deg_bunch(b, 4, 800e3)
            f = estimate_oscillation_frequency(res.time, trace)
            assert f == pytest.approx(1.28e3, rel=0.05)

    def test_amplitudes_scale_with_offsets(self):
        offsets = (2e-9, 8e-9, 2e-9, 8e-9)
        sim = CavityInTheLoop(config(n_bunches=4, initial_delta_t=offsets,
                                     jump_deg=0.0))
        res = sim.run(0.004)
        amp = np.abs(res.delta_t_all).max(axis=0)
        assert amp[1] == pytest.approx(4 * amp[0], rel=0.05)
        assert amp[3] == pytest.approx(4 * amp[2], rel=0.05)


class TestMultiBunchEngines:
    def test_cgra_python_equivalence_four_bunches(self):
        offsets = (0.0, 3e-9, 6e-9, 9e-9)
        r_cgra = CavityInTheLoop(config(
            engine="cgra", precision="double", n_bunches=4,
            initial_delta_t=offsets, record_every=1,
        )).run(0.003)
        r_py = CavityInTheLoop(config(
            engine="python", n_bunches=4,
            initial_delta_t=offsets, record_every=1,
        )).run(0.003)
        np.testing.assert_allclose(
            r_cgra.delta_t_all, r_py.delta_t_all, atol=1e-18
        )


class TestMeanControl:
    def test_mean_control_damps_common_mode_only(self):
        """The loop sees the average phase, so it kills the *common*
        (coherent) dipole; the differential bunch-vs-bunch oscillations
        are invisible to it and persist — single macro particles have no
        Landau damping.  This is the physically correct multi-bunch
        behaviour of a sum-signal beam-phase loop."""
        offsets = (0.0, 2e-9, 4e-9, 6e-9)
        sim = CavityInTheLoop(config(
            n_bunches=4, initial_delta_t=offsets, control_source="mean",
        ))
        res = sim.run(0.04)
        tail = res.delta_t_all[res.time > 0.035]
        eq = -8.0 / 360.0 / (4 * 800e3)
        # Each bunch orbits the common jump equilibrium on average...
        np.testing.assert_allclose(tail.mean(axis=0), eq, rtol=0.12)
        # ...the common mode is damped...
        common = tail.mean(axis=1)
        assert common.max() - common.min() < 1.0e-9
        # ...but the differential mode still swings.
        differential = tail - common[:, None]
        assert np.abs(differential).max() > 1.5e-9

    def test_real_time_budget_with_four_bunches(self):
        sim = CavityInTheLoop(config(n_bunches=4))
        res = sim.run(0.002)
        assert res.deadline.met
        # 4-bunch schedule is longer but still inside the 800 kHz budget.
        assert res.schedule_length > CavityInTheLoop(config()).model.schedule_length
