"""Integration tests for the sample-accurate FPGA framework (Fig. 3)."""

import numpy as np
import pytest

from repro.constants import deg_to_rad
from repro.errors import ConfigurationError, HilError
from repro.hil.framework import FpgaFramework, FrameworkConfig
from repro.physics import SIS18, KNOWN_IONS
from repro.signal.dds import GroupDDS


def make_framework(**overrides):
    gap_volts = 4862.0
    adc_amp = 0.9
    kwargs = dict(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        harmonic=4,
        gap_volts_per_adc_volt=gap_volts / adc_amp,
        ref_volts_per_adc_volt=4 * gap_volts / adc_amp,
        n_bunches=1,
    )
    kwargs.update(overrides)
    return FpgaFramework(FrameworkConfig(**kwargs))


def drive(framework, n_revolutions, f_rev=800e3, gap_phase=0.0, amplitude=0.9):
    group = GroupDDS(
        revolution_frequency=f_rev,
        harmonic=framework.config.harmonic,
        amplitude=amplitude,
        sample_rate=250e6,
        gap_phase_drive=lambda t: gap_phase,
    )
    group.reset_phase()
    block = int(round(250e6 / f_rev))
    beams = []
    for _ in range(n_revolutions):
        ref, gap = group.generate(block)
        beam, monitor = framework.feed(ref.samples, gap.samples)
        beams.append(beam)
    return beams


class TestConfig:
    def test_bunches_bounded_by_harmonic(self):
        with pytest.raises(ConfigurationError):
            make_framework(n_bunches=5)

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            make_framework(gap_volts_per_adc_volt=-1.0)


class TestInitialisation:
    def test_waits_four_periods(self):
        fw = make_framework()
        drive(fw, 3)
        assert not fw.initialised
        with pytest.raises(HilError):
            _ = fw.executor

    def test_initialises_after_four_periods(self):
        fw = make_framework()
        drive(fw, 8)
        assert fw.initialised
        assert fw.executor.iterations >= 1

    def test_gamma_from_measured_period(self):
        fw = make_framework()
        drive(fw, 10)
        gamma0 = SIS18.gamma_from_revolution_frequency(800e3)
        assert fw.executor.register_of("gamma_r") == pytest.approx(gamma0, rel=1e-4)


class TestClosedBehaviour:
    def test_stationary_beam_stays_centred(self):
        fw = make_framework()
        drive(fw, 100)
        # No phase offset: the bunch must remain at the zero crossing.
        assert abs(fw.delta_t[0]) < 0.3e-9

    def test_phase_jump_excites_oscillation(self):
        fw = make_framework()
        drive(fw, 600, gap_phase=deg_to_rad(8.0))
        # Equilibrium shifted by -8 deg of RF phase ~ -6.9 ns; starting at
        # 0 the bunch swings out to about twice that excursion.  Judge by
        # the recorded trace, not by a single end-of-run snapshot that may
        # land mid-swing near zero.
        trace = fw.recorder.as_array()[:, 2]
        assert trace.min() < -10e-9
        assert trace.max() < 1e-9

    def test_beam_pulses_present(self):
        fw = make_framework()
        beams = drive(fw, 60)
        total = np.concatenate([b.samples for b in beams[-20:]])
        assert total.max() > 0.5  # Gauss pulses being played back

    def test_pulses_once_per_revolution(self):
        fw = make_framework()
        beams = drive(fw, 100)
        tail = np.concatenate([b.samples for b in beams[-32:]])
        # Count pulse peaks: threshold crossings of half amplitude.
        above = tail > 0.4
        rising = np.count_nonzero(above[1:] & ~above[:-1])
        assert rising == pytest.approx(32, abs=2)

    def test_multi_bunch_pulse_rate(self):
        fw = make_framework(n_bunches=4)
        beams = drive(fw, 100)
        tail = np.concatenate([b.samples for b in beams[-32:]])
        above = tail > 0.4
        rising = np.count_nonzero(above[1:] & ~above[:-1])
        assert rising == pytest.approx(128, abs=4)

    def test_recorder_rows(self):
        fw = make_framework()
        drive(fw, 50)
        rows = fw.recorder.rows
        assert rows == fw.executor.iterations
        data = fw.recorder.as_array()
        np.testing.assert_allclose(data[:, 1], 1.25e-6, rtol=1e-4)

    def test_monitor_mirror_mode(self):
        fw = make_framework()
        fw.params.write("monitor_select", 1.0)
        drive(fw, 40)
        # In mirror mode the monitor equals the beam output; run one block
        # manually to compare.
        group = GroupDDS(800e3, 4, 0.9, 250e6)
        ref, gap = group.generate(312)
        beam, monitor = fw.feed(ref.samples, gap.samples)
        np.testing.assert_array_equal(beam.samples, monitor.samples)

    def test_monitor_phase_mode(self):
        """Default monitor mode: the model's phase difference at 90°/V."""
        fw = make_framework()
        drive(fw, 400, gap_phase=deg_to_rad(8.0))
        group = GroupDDS(800e3, 4, 0.9, 250e6,
                         gap_phase_drive=lambda t: deg_to_rad(8.0))
        ref, gap = group.generate(312)
        _beam, monitor = fw.feed(ref.samples, gap.samples)
        expected_deg = -360.0 * 4 * (1 / 1.25e-6) * fw.delta_t[0]
        assert monitor.samples[0] == pytest.approx(expected_deg / 90.0, abs=0.02)

    def test_output_scale_parameter(self):
        fw = make_framework()
        fw.params.write("beam_output_scale", 0.5)
        beams = drive(fw, 80)
        tail = np.concatenate([b.samples for b in beams[-20:]])
        assert 0.3 < tail.max() < 0.5

    def test_mismatched_blocks_rejected(self):
        fw = make_framework()
        with pytest.raises(HilError):
            fw.feed(np.zeros(10), np.zeros(11))

    def test_deadline_checked(self):
        fw = make_framework()
        drive(fw, 20)
        stats = fw.deadline.stats()
        assert stats.met
        assert stats.min_slack > 0
