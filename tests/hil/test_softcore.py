"""Tests for the SpartanMC-style parameter interface and DRAM recorder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, HilError
from repro.hil.softcore import DramRecorder, ParameterInterface


class TestParameterInterface:
    def test_write_read_roundtrip(self):
        p = ParameterInterface()
        p.define("scale", scale=1 / 4096, initial=1.0)
        assert p.read("scale") == pytest.approx(1.0, abs=1 / 4096)

    def test_fixed_point_quantisation(self):
        p = ParameterInterface()
        p.define("x", scale=0.25)
        p.write("x", 1.1)
        assert p.read("x") == 1.0  # rounds to nearest 0.25

    def test_18bit_clipping(self):
        p = ParameterInterface()
        p.define("x", scale=1.0)
        p.write("x", 1e9)
        assert p.read_raw("x") == 2**17 - 1
        p.write("x", -1e9)
        assert p.read_raw("x") == -(2**17)

    def test_names(self):
        p = ParameterInterface()
        p.define("b")
        p.define("a")
        assert p.names() == ["a", "b"]

    def test_unknown_register(self):
        p = ParameterInterface()
        with pytest.raises(HilError):
            p.read("nope")
        with pytest.raises(HilError):
            p.write("nope", 1.0)
        with pytest.raises(HilError):
            p.read_raw("nope")

    def test_duplicate_define(self):
        p = ParameterInterface()
        p.define("x")
        with pytest.raises(ConfigurationError):
            p.define("x")

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            ParameterInterface().define("x", scale=0.0)


class TestDramRecorder:
    def test_record_and_readback(self):
        rec = DramRecorder(n_columns=3)
        rec.record(1.0, 2.0, 3.0)
        rec.record(4.0, 5.0, 6.0)
        arr = rec.as_array()
        assert arr.shape == (2, 3)
        np.testing.assert_array_equal(arr[1], [4.0, 5.0, 6.0])

    def test_column_count_enforced(self):
        rec = DramRecorder(n_columns=2)
        with pytest.raises(HilError):
            rec.record(1.0)

    def test_capacity_stops_not_wraps(self):
        rec = DramRecorder(n_columns=1, capacity_rows=3)
        for i in range(5):
            rec.record(float(i))
        assert rec.rows == 3
        assert rec.overflowed
        np.testing.assert_array_equal(rec.as_array().ravel(), [0.0, 1.0, 2.0])

    def test_stop_start(self):
        rec = DramRecorder(n_columns=1)
        rec.record(1.0)
        rec.stop()
        rec.record(2.0)
        rec.start()
        rec.record(3.0)
        np.testing.assert_array_equal(rec.as_array().ravel(), [1.0, 3.0])

    def test_serial_readout_chunks(self):
        rec = DramRecorder(n_columns=1)
        for i in range(10):
            rec.record(float(i))
        chunks = list(rec.readout_serial(chunk_rows=4))
        assert [c.shape[0] for c in chunks] == [4, 4, 2]
        np.testing.assert_array_equal(np.vstack(chunks).ravel(), np.arange(10.0))

    def test_empty(self):
        rec = DramRecorder(n_columns=2)
        assert rec.as_array().shape == (0, 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DramRecorder(n_columns=0)
        with pytest.raises(ConfigurationError):
            DramRecorder(n_columns=1, capacity_rows=0)
        with pytest.raises(ConfigurationError):
            list(DramRecorder(n_columns=1).readout_serial(0))
