"""Tests for the closed-loop cavity-in-the-loop simulator (Fig. 4)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, HilError
from repro.hil.simulator import CavityInTheLoop, HilConfig
from repro.physics import SIS18, KNOWN_IONS
from repro.physics.oscillation import estimate_oscillation_frequency


def config(**overrides):
    kwargs = dict(ring=SIS18, ion=KNOWN_IONS["14N7+"], record_every=4,
                  jump_start_time=0.002)
    kwargs.update(overrides)
    return HilConfig(**kwargs)


class TestConfigValidation:
    def test_engine_names(self):
        with pytest.raises(ConfigurationError):
            config(engine="verilog")

    def test_bunch_bounds(self):
        with pytest.raises(ConfigurationError):
            config(n_bunches=0)
        with pytest.raises(ConfigurationError):
            config(n_bunches=5, harmonic=4)

    def test_adc_amplitude_bounds(self):
        with pytest.raises(ConfigurationError):
            config(adc_amplitude=1.5)  # beyond the 2 Vpp input limit

    def test_control_rate_must_match_revolution(self):
        from repro.control import ControlLoopConfig

        with pytest.raises(ConfigurationError):
            CavityInTheLoop(config(control=ControlLoopConfig(sample_rate=1e6)))


class TestCalibration:
    def test_gap_voltage_tuned_to_fs(self):
        sim = CavityInTheLoop(config())
        from repro.physics.rf import synchrotron_frequency

        f_s = synchrotron_frequency(
            SIS18, KNOWN_IONS["14N7+"], sim.rf, sim.gamma0
        )
        assert f_s == pytest.approx(1.28e3, rel=1e-9)

    def test_scales_relate_by_harmonic(self):
        sim = CavityInTheLoop(config())
        assert sim.ref_scale == pytest.approx(4 * sim.gap_scale)


class TestRunBehaviour:
    def test_oscillation_at_synchrotron_frequency(self):
        sim = CavityInTheLoop(config())
        res = sim.run(0.02)
        sel = (res.time > 0.002) & (res.time < 0.012)
        f = estimate_oscillation_frequency(res.time[sel], res.phase_deg[sel])
        assert f == pytest.approx(1.28e3, rel=0.08)

    def test_settles_at_jump_level(self):
        sim = CavityInTheLoop(config())
        res = sim.run(0.05)
        settled = res.phase_deg[(res.time > 0.04) & (res.time < 0.05)]
        assert settled.mean() == pytest.approx(8.0, abs=0.3)

    def test_first_peak_near_twice_jump(self):
        sim = CavityInTheLoop(config())
        res = sim.run(0.01)
        assert 13.0 < res.phase_deg.max() < 17.0

    def test_open_loop_does_not_damp(self):
        from repro.control import ControlLoopConfig

        sim = CavityInTheLoop(config(
            control=ControlLoopConfig(sample_rate=800e3, enabled=False)
        ))
        res = sim.run(0.04)
        late = res.phase_deg[res.time > 0.03]
        assert late.max() - late.min() > 10.0  # still swinging

    def test_no_jump_no_motion(self):
        sim = CavityInTheLoop(config(jump_deg=0.0))
        res = sim.run(0.01)
        assert np.abs(res.phase_deg).max() < 0.2

    def test_deadline_statistics(self):
        sim = CavityInTheLoop(config())
        res = sim.run(0.005)
        assert res.deadline.met
        assert res.schedule_length == sim.model.schedule_length

    def test_record_every_decimates(self):
        r1 = CavityInTheLoop(config(record_every=1)).run(0.002)
        r8 = CavityInTheLoop(config(record_every=8)).run(0.002)
        assert len(r1.time) == pytest.approx(8 * len(r8.time), abs=8)

    def test_smoothed_trace_same_length(self):
        res = CavityInTheLoop(config()).run(0.005)
        assert res.phase_deg_smoothed(5).shape == res.phase_deg.shape

    def test_duration_validation(self):
        sim = CavityInTheLoop(config())
        with pytest.raises(HilError):
            sim.run(0.0)

    def test_correction_trace_bounded(self):
        res = CavityInTheLoop(config()).run(0.02)
        assert np.abs(res.correction_deg).max() < 60.0

    def test_jump_trace_records_toggles(self):
        res = CavityInTheLoop(config(jump_start_time=0.001)).run(0.06)
        assert set(np.unique(res.jump_deg)) == {0.0, 8.0}


class TestEngines:
    @pytest.mark.parametrize("pipelined", [True, False])
    def test_cgra_python_equivalence(self, pipelined):
        """The headline invariant: both engines produce identical traces
        at double precision."""
        r_cgra = CavityInTheLoop(
            config(engine="cgra", precision="double", pipelined=pipelined,
                   record_every=1)
        ).run(0.004)
        r_py = CavityInTheLoop(
            config(engine="python", pipelined=pipelined, record_every=1)
        ).run(0.004)
        np.testing.assert_allclose(r_cgra.phase_deg, r_py.phase_deg, atol=1e-9)
        np.testing.assert_allclose(r_cgra.delta_t, r_py.delta_t, atol=1e-18)

    def test_single_precision_close_to_double(self):
        r32 = CavityInTheLoop(config(engine="cgra", precision="single",
                                     record_every=1)).run(0.004)
        r64 = CavityInTheLoop(config(engine="cgra", precision="double",
                                     record_every=1)).run(0.004)
        # Single-precision CGRA arithmetic stays within ~1 deg of double
        # over a 4 ms window — small against the 8-16 deg signals.
        assert np.abs(r32.phase_deg - r64.phase_deg).max() < 1.0

    def test_quantize_adc_effect_is_small(self):
        r_q = CavityInTheLoop(config(quantize_adc=True, record_every=1)).run(0.004)
        r_i = CavityInTheLoop(config(quantize_adc=False, record_every=1)).run(0.004)
        diff = np.abs(r_q.phase_deg - r_i.phase_deg).max()
        assert 0.0 < diff < 0.5  # quantisation visible but tiny
