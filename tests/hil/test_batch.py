"""Batched HIL bench vs per-lane scalar runs.

The batched bench advances B full closed loops with one compiled
program.  Its contract: each lane evolves exactly as a scalar
``CavityInTheLoop`` run with that lane's jump amplitude (same engine,
same quantisation).  The model math is bit-exact per lane; the analytic
``np.sin`` sensors match ``math.sin`` on this platform, so the traces
compare with exact equality here — fall back to allclose only if a
platform's libm disagrees (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control import ControlLoopConfig
from repro.errors import ConfigurationError, HilError
from repro.hil import BatchHilConfig, BatchedCavityInTheLoop, CavityInTheLoop, HilConfig
from repro.physics import KNOWN_IONS, SIS18

ION = KNOWN_IONS["14N7+"]
AMPS = (4.0, 8.0, 12.0)


def _batch_config(**overrides):
    defaults = dict(
        ring=SIS18,
        ion=ION,
        jump_deg=AMPS,
        jump_start_time=0.002,
        record_every=4,
    )
    defaults.update(overrides)
    return BatchHilConfig(**defaults)


def _scalar_config(jump_deg, **overrides):
    defaults = dict(
        ring=SIS18,
        ion=ION,
        jump_deg=jump_deg,
        jump_start_time=0.002,
        record_every=4,
        engine="cgra",
        cgra_engine="compiled",
    )
    defaults.update(overrides)
    return HilConfig(**defaults)


class TestBatchedHil:
    def test_lanes_match_scalar_runs(self):
        duration = 0.02
        batched = BatchedCavityInTheLoop(_batch_config()).run(duration)
        assert batched.batch == len(AMPS)
        for lane, amp in enumerate(AMPS):
            scalar = CavityInTheLoop(_scalar_config(amp)).run(duration)
            assert np.array_equal(batched.time, scalar.time)
            for name in ("phase_deg", "correction_deg", "jump_deg",
                         "delta_t", "gamma_ref"):
                got = getattr(batched, name)[:, lane]
                want = getattr(scalar, name)
                assert np.array_equal(got, want), f"{name} lane {lane} diverged"
            assert np.array_equal(batched.delta_t_all[:, lane, :],
                                  scalar.delta_t_all)

    def test_fast_loop_matches_reference_loop(self):
        """run() drives the engine's callback loop (run_driven); the
        ``_fast=False`` path keeps the original per-turn
        ``step_revolution()`` loop as an executable reference.  Both
        must produce bit-identical records and end state."""
        cfg = _batch_config(n_bunches=2, record_every=3)
        fast_bench = BatchedCavityInTheLoop(cfg)
        slow_bench = BatchedCavityInTheLoop(cfg)
        fast = fast_bench.run(0.004)
        slow = slow_bench.run(0.004, _fast=False)
        for name in ("time", "phase_deg", "correction_deg", "jump_deg",
                     "delta_t", "delta_t_all", "gamma_ref"):
            assert np.array_equal(getattr(fast, name), getattr(slow, name)), name
        assert fast_bench._turn == slow_bench._turn
        assert fast_bench._time == slow_bench._time
        assert (fast_bench.control.saturation_count
                == slow_bench.control.saturation_count)

    def test_control_damps_every_lane(self):
        cfg = _batch_config(jump_deg=(6.0, 10.0), jump_start_time=0.001)
        res = BatchedCavityInTheLoop(cfg).run(0.04)
        # After the jump, the loop steers the measured phase toward the
        # commanded shift in every lane (settled |phase - jump| small
        # relative to the jump itself).
        tail = slice(-len(res.time) // 4, None)
        for lane in range(res.batch):
            err = np.abs(res.phase_deg[tail, lane] - res.jump_deg[tail, lane])
            assert err.mean() < 0.4 * cfg.jump_deg[lane]

    def test_initial_delta_t_per_lane(self):
        initial = (1e-8, -1e-8, 0.0)
        cfg = _batch_config(
            jump_deg=(0.0, 0.0, 0.0),  # no drive: only the injection error acts
            control=ControlLoopConfig(sample_rate=800e3, enabled=False),
            initial_delta_t=initial,
        )
        bench = BatchedCavityInTheLoop(cfg)
        assert np.allclose(
            bench._executor.register_of("dt[0]"),
            np.asarray(initial, dtype=np.float32).astype(float),
        )
        res = bench.run(0.01)
        # Undriven lane stays put; offset lanes oscillate.
        assert np.ptp(res.delta_t[:, 0]) > np.ptp(res.delta_t[:, 2])

    def test_multibunch_lockstep(self):
        cfg = _batch_config(jump_deg=(5.0, 9.0), n_bunches=2)
        res = BatchedCavityInTheLoop(cfg).run(0.005)
        assert res.delta_t_all.shape == (len(res.time), 2, 2)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            _batch_config(jump_deg=())
        with pytest.raises(ConfigurationError):
            _batch_config(initial_delta_t=(1e-8,))  # lane count mismatch
        with pytest.raises(ConfigurationError):
            _batch_config(control_source="median")
        with pytest.raises(ConfigurationError):
            _batch_config(record_every=0)
        with pytest.raises(ConfigurationError):
            BatchedCavityInTheLoop(
                _batch_config(control=ControlLoopConfig(sample_rate=1e6))
            )
        with pytest.raises(HilError):
            BatchedCavityInTheLoop(_batch_config()).run(0.0)

    def test_batch_property(self):
        assert _batch_config().batch == len(AMPS)
