"""Tests for the timing/jitter models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hil.jitter import CgraTimingModel, SoftwareTimingModel, TimingSample


class TestTimingSample:
    def test_summary(self):
        lat = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
        s = TimingSample.from_latencies(lat)
        assert s.mean == pytest.approx(22.0)
        assert s.worst == 100.0
        assert s.p50 == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingSample.from_latencies(np.array([]))


class TestCgraTiming:
    def test_deterministic(self):
        m = CgraTimingModel(write_tick=20)
        s = m.sample(1000)
        assert np.all(s == s[0])
        assert s[0] == pytest.approx(20 / 111e6)

    def test_zero_jitter(self):
        stats = TimingSample.from_latencies(CgraTimingModel(20).sample(1000))
        assert stats.std < 1e-20  # exactly constant up to fp summation dust
        assert stats.worst == stats.p50

    def test_output_quantisation_is_one_dac_sample(self):
        assert CgraTimingModel(20).output_time_quantisation() == pytest.approx(4e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CgraTimingModel(-1)
        with pytest.raises(ConfigurationError):
            CgraTimingModel(1, cgra_clock_hz=0.0)


class TestSoftwareTiming:
    def test_median_near_base(self, rng):
        m = SoftwareTimingModel(base_latency=400e-9)
        s = m.sample(100_000, rng)
        assert np.median(s) == pytest.approx(400e-9, rel=0.05)

    def test_heavy_tail_present(self, rng):
        m = SoftwareTimingModel()
        s = m.sample(500_000, rng)
        # p99.9 should be far above the median: the tail events.
        assert np.percentile(s, 99.99) > 3 * np.median(s)

    def test_nonnegative(self, rng):
        s = SoftwareTimingModel().sample(100_000, rng)
        assert s.min() > 0.0

    def test_deadline_miss_rate_monotone(self, rng):
        m = SoftwareTimingModel()
        tight = m.deadline_miss_rate(0.9e-6, n=200_000, rng=np.random.default_rng(3))
        loose = m.deadline_miss_rate(100e-6, n=200_000, rng=np.random.default_rng(3))
        assert loose <= tight

    def test_misses_at_microsecond_deadline(self):
        """The paper's infeasibility claim: at ~1 us revolution periods a
        software loop with realistic OS jitter misses deadlines."""
        m = SoftwareTimingModel()
        rate = m.deadline_miss_rate(1e-6, n=500_000, rng=np.random.default_rng(4))
        assert rate > 1e-5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoftwareTimingModel(base_latency=0.0)
        with pytest.raises(ConfigurationError):
            SoftwareTimingModel(tail_probability=2.0)
        with pytest.raises(ConfigurationError):
            SoftwareTimingModel().deadline_miss_rate(0.0)
