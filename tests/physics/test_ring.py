"""Tests for the synchrotron ring and phase-slip relations (Eqs. 4–5)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError, PhysicsError
from repro.physics.ring import SIS18, SynchrotronRing


class TestSIS18:
    def test_circumference(self):
        assert SIS18.circumference == pytest.approx(216.72)

    def test_max_revolution_frequency_matches_paper(self):
        # Paper: "a maximum revolution frequency of f_R ~= 1.4 MHz"
        assert SIS18.max_revolution_frequency() == pytest.approx(1.383e6, rel=1e-3)

    def test_transition_gamma(self):
        assert SIS18.gamma_transition == pytest.approx(5.45, rel=1e-9)

    def test_mde_operating_point_below_transition(self):
        gamma = SIS18.gamma_from_revolution_frequency(800e3)
        assert gamma < SIS18.gamma_transition
        assert SIS18.phase_slip(gamma) < 0.0


class TestPhaseSlip:
    def test_sign_change_at_transition(self):
        ring = SIS18
        gt = ring.gamma_transition
        assert ring.phase_slip(gt * 0.9) < 0.0
        assert ring.phase_slip(gt * 1.1) > 0.0
        assert ring.phase_slip(gt) == pytest.approx(0.0, abs=1e-12)

    def test_array_input(self):
        etas = SIS18.phase_slip(np.array([1.1, 2.0, 10.0]))
        assert etas.shape == (3,)
        assert etas[0] < 0 < etas[2]

    def test_invalid_gamma(self):
        with pytest.raises(PhysicsError):
            SIS18.phase_slip(0.5)

    def test_eta_approaches_alpha_c(self):
        assert SIS18.phase_slip(1e9) == pytest.approx(SIS18.alpha_c, rel=1e-6)


class TestRevolutionKinematics:
    def test_revolution_time_frequency_inverse(self):
        gamma = 1.3
        t = SIS18.revolution_time(gamma)
        f = SIS18.revolution_frequency(gamma)
        assert t * f == pytest.approx(1.0, rel=1e-12)

    def test_frequency_roundtrip(self):
        for f in (100e3, 800e3, 1.2e6):
            gamma = SIS18.gamma_from_revolution_frequency(f)
            assert SIS18.revolution_frequency(gamma) == pytest.approx(f, rel=1e-12)

    def test_beta_from_frequency(self):
        beta = SIS18.beta_from_revolution_frequency(800e3)
        assert beta == pytest.approx(800e3 * 216.72 / SPEED_OF_LIGHT)

    def test_superluminal_frequency_rejected(self):
        with pytest.raises(PhysicsError):
            SIS18.beta_from_revolution_frequency(2e6)
        with pytest.raises(PhysicsError):
            SIS18.beta_from_revolution_frequency(0.0)

    @given(st.floats(min_value=1e3, max_value=1.38e6))
    def test_roundtrip_property(self, f):
        gamma = SIS18.gamma_from_revolution_frequency(f)
        assert SIS18.revolution_frequency(gamma) == pytest.approx(f, rel=1e-9)


class TestValidation:
    def test_negative_circumference(self):
        with pytest.raises(ConfigurationError):
            SynchrotronRing("bad", circumference=-1.0, alpha_c=0.03)

    def test_negative_alpha_c(self):
        with pytest.raises(ConfigurationError):
            SynchrotronRing("bad", circumference=100.0, alpha_c=-0.01)
        with pytest.raises(ConfigurationError):
            SynchrotronRing("bad", circumference=100.0, alpha_c=0.0)
