"""Tests for oscillation analysis (frequency estimation, damping fits)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PhysicsError
from repro.physics.oscillation import (
    estimate_oscillation_frequency,
    fit_damping_envelope,
    peak_to_peak,
)


def _sine(f, fs, n, phase=0.0, amp=1.0, offset=0.0):
    t = np.arange(n) / fs
    return t, offset + amp * np.sin(2 * np.pi * f * t + phase)


class TestFrequencyEstimation:
    def test_pure_sine(self):
        t, y = _sine(1280.0, 100e3, 4096)
        assert estimate_oscillation_frequency(t, y) == pytest.approx(1280.0, rel=1e-3)

    def test_sub_bin_resolution(self):
        # 1281.7 Hz with a 24 Hz bin spacing: parabolic interpolation needed.
        t, y = _sine(1281.7, 100e3, 4096)
        assert estimate_oscillation_frequency(t, y) == pytest.approx(1281.7, rel=2e-3)

    def test_dc_offset_removed(self):
        t, y = _sine(1200.0, 100e3, 4096, offset=50.0)
        assert estimate_oscillation_frequency(t, y) == pytest.approx(1200.0, rel=1e-3)

    def test_damped_sine(self):
        t = np.arange(8192) / 100e3
        y = np.exp(-t * 200) * np.sin(2 * np.pi * 1280 * t)
        assert estimate_oscillation_frequency(t, y) == pytest.approx(1280.0, rel=0.01)

    def test_noise_robust(self, rng):
        t, y = _sine(1280.0, 100e3, 8192)
        y = y + rng.normal(0, 0.2, y.shape)
        assert estimate_oscillation_frequency(t, y) == pytest.approx(1280.0, rel=0.01)

    def test_too_short_raises(self):
        with pytest.raises(PhysicsError):
            estimate_oscillation_frequency(np.array([0.0, 1.0]), np.array([0.0, 1.0]))

    def test_nonuniform_raises(self):
        t = np.array([0.0, 1.0, 3.0, 4.0, 5.0])
        with pytest.raises(PhysicsError):
            estimate_oscillation_frequency(t, np.zeros(5))

    def test_shape_mismatch_raises(self):
        with pytest.raises(PhysicsError):
            estimate_oscillation_frequency(np.zeros(10), np.zeros(11))

    @settings(max_examples=20, deadline=None)
    @given(f=st.floats(min_value=500.0, max_value=5000.0))
    def test_frequency_property(self, f):
        t, y = _sine(f, 100e3, 8192)
        assert estimate_oscillation_frequency(t, y) == pytest.approx(f, rel=5e-3)


class TestDampingFit:
    def test_known_decay_rate(self):
        t = np.arange(20000) / 100e3
        rate = 150.0
        y = np.exp(-rate * t) * np.sin(2 * np.pi * 1280 * t)
        fit = fit_damping_envelope(t, y)
        assert fit.rate == pytest.approx(rate, rel=0.05)
        assert fit.r_squared > 0.95
        assert fit.time_constant == pytest.approx(1 / rate, rel=0.05)

    def test_undamped_trace(self):
        t, y = _sine(1280.0, 100e3, 20000)
        fit = fit_damping_envelope(t, y)
        assert abs(fit.rate) < 5.0  # essentially zero

    def test_offset_invariant(self):
        t = np.arange(20000) / 100e3
        y = 42.0 + np.exp(-100 * t) * np.sin(2 * np.pi * 1280 * t)
        fit = fit_damping_envelope(t, y)
        assert fit.rate == pytest.approx(100.0, rel=0.08)

    def test_flat_trace_raises(self):
        with pytest.raises(PhysicsError):
            fit_damping_envelope(np.arange(10.0), np.zeros(10))

    def test_infinite_time_constant_for_growth(self):
        t = np.arange(20000) / 100e3
        y = np.exp(+20 * t) * np.sin(2 * np.pi * 1280 * t)
        fit = fit_damping_envelope(t, y)
        assert fit.rate < 0  # growing
        assert fit.time_constant == float("inf")


class TestPeakToPeak:
    def test_simple(self):
        assert peak_to_peak(np.array([-3.0, 1.0, 7.0])) == 10.0

    def test_constant(self):
        assert peak_to_peak(np.full(5, 2.2)) == 0.0

    def test_empty_raises(self):
        with pytest.raises(PhysicsError):
            peak_to_peak(np.array([]))
