"""Tests for the RMS-emittance figure of merit."""

import numpy as np
import pytest

from repro.physics.distributions import gaussian_bunch, matched_rms_delta_gamma
from repro.physics.multiparticle import MultiParticleTracker


class TestRmsEmittance:
    def test_gaussian_value(self, ring, ion, rf, gamma0, rng):
        sigma_t = 12e-9
        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, sigma_t, 60_000, rng)
        tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
        sigma_g = matched_rms_delta_gamma(ring, ion, rf, gamma0, sigma_t)
        # Uncorrelated Gaussian: emittance = sigma_t * sigma_g.
        assert tracker.rms_emittance() == pytest.approx(sigma_t * sigma_g, rel=0.03)

    def test_conserved_for_matched_bunch(self, ring, ion, rf, gamma0, rng):
        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 10e-9, 3000, rng)
        tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
        before = tracker.rms_emittance()
        tracker.track(4000, f_rev=800e3, record_every=4000)
        after = tracker.rms_emittance()
        assert after == pytest.approx(before, rel=0.02)

    def test_grows_under_filamentation(self, ring, ion, rf, gamma0, rng):
        """A displaced bunch filaments: the coherent offset converts into
        incoherent spread and the RMS emittance grows."""
        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 10e-9, 3000, rng,
                                centre_delta_t=30e-9)
        tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
        before = tracker.rms_emittance()
        tracker.track(50_000, f_rev=800e3, record_every=50_000)
        after = tracker.rms_emittance()
        assert after > 1.5 * before

    def test_zero_for_cold_beam(self, ring, ion, rf, gamma0):
        tracker = MultiParticleTracker(
            ring, ion, rf, np.full(100, 3e-9), np.zeros(100), gamma0
        )
        assert tracker.rms_emittance() == 0.0

    def test_correlation_reduces_emittance(self, ring, ion, rf, gamma0, rng):
        """A perfectly correlated (sheared) distribution has ~zero area."""
        dt = rng.normal(0, 10e-9, 5000)
        dg = dt * 2.0e-5 / 10e-9  # fully correlated
        tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
        assert tracker.rms_emittance() < 1e-3 * (dt.std() * dg.std())
