"""Tests for collective effects (space charge, beam loading)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PhysicsError
from repro.physics.collective import BeamLoadingCavity, SpaceChargeModel
from repro.physics.distributions import gaussian_bunch
from repro.physics.multiparticle import MultiParticleTracker


class TestSpaceChargeKick:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpaceChargeModel(-1.0)
        with pytest.raises(ConfigurationError):
            SpaceChargeModel(1.0, reference_sigma=0.0)
        with pytest.raises(ConfigurationError):
            SpaceChargeModel(1.0, bins=4)
        with pytest.raises(ConfigurationError):
            SpaceChargeModel(1.0, smoothing=0)

    def test_zero_strength_zero_kick(self, rng):
        sc = SpaceChargeModel(0.0)
        dt = rng.normal(0, 10e-9, 500)
        np.testing.assert_array_equal(sc.voltages(dt, 800e3, 0), 0.0)

    def test_calibrated_peak_voltage(self, rng):
        """A reference-length Gaussian bunch produces ~strength volts."""
        sc = SpaceChargeModel(500.0, reference_sigma=12e-9)
        dt = rng.normal(0.0, 12e-9, 50_000)
        v = sc.voltages(dt, 800e3, 0)
        assert np.abs(v).max() == pytest.approx(500.0, rel=0.25)

    def test_defocusing_sign(self, rng):
        """Particles ahead of the peak (dt < 0) gain energy."""
        sc = SpaceChargeModel(500.0, reference_sigma=12e-9)
        dt = rng.normal(0.0, 12e-9, 50_000)
        v = sc.voltages(dt, 800e3, 0)
        early = v[dt < -6e-9]
        late = v[dt > 6e-9]
        assert early.mean() > 0.0 > late.mean()

    def test_odd_symmetry(self, rng):
        sc = SpaceChargeModel(500.0, reference_sigma=12e-9)
        dt = rng.normal(0.0, 12e-9, 80_000)
        v = sc.voltages(dt, 800e3, 0)
        # Antisymmetric about the centre for a symmetric bunch.
        assert abs(v[np.argsort(dt)][:100].mean() + v[np.argsort(dt)][-100:].mean()) \
            < 0.2 * np.abs(v).max()

    def test_tiny_ensembles_skip(self):
        sc = SpaceChargeModel(500.0)
        np.testing.assert_array_equal(sc.voltages(np.zeros(4), 800e3, 0), 0.0)


class TestSpaceChargeDynamics:
    def test_bunch_lengthens_below_transition(self, ring, ion, rf, gamma0):
        def run(strength):
            rng = np.random.default_rng(3)
            dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 12e-9, 2000, rng)
            tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
            if strength:
                tracker.add_collective_effect(
                    SpaceChargeModel(strength, reference_sigma=12e-9)
                )
            rec = tracker.track(10000, f_rev=800e3, record_every=16)
            return float(rec.std_delta_t.mean())

        assert run(1500.0) > 1.05 * run(0.0)


class TestBeamLoading:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BeamLoadingCavity(-1.0)
        with pytest.raises(ConfigurationError):
            BeamLoadingCavity(1.0, quality_factor=0.0)
        with pytest.raises(ConfigurationError):
            BeamLoadingCavity(1.0, harmonic=0)

    def test_induced_voltage_accumulates_and_saturates(self):
        bl = BeamLoadingCavity(20.0, quality_factor=30.0, harmonic=4)
        dt = np.zeros(100)
        amps = []
        for turn in range(400):
            bl.voltages(dt, 800e3, turn)
            amps.append(bl.induced_voltage_amplitude())
        # Grows then saturates at kick/(1-decay).
        assert amps[5] > amps[0] - 1e-9
        assert amps[-1] == pytest.approx(amps[-2], rel=0.01)
        import math

        decay = math.exp(-math.pi * 3.2e6 / (30.0 * 800e3))
        assert amps[-1] == pytest.approx(20.0 / (1.0 - decay), rel=0.02)

    def test_causality_first_turn_sees_nothing(self):
        bl = BeamLoadingCavity(20.0)
        v = bl.voltages(np.zeros(10), 800e3, 0)
        np.testing.assert_array_equal(v, 0.0)

    def test_wake_decelerates_the_bunch(self):
        """The steady-state induced voltage opposes the beam (energy loss)."""
        bl = BeamLoadingCavity(10.0, quality_factor=30.0, harmonic=4)
        dt = np.zeros(100)
        for turn in range(200):
            v = bl.voltages(dt, 800e3, turn)
        assert v.mean() < 0.0

    def test_reset(self):
        bl = BeamLoadingCavity(10.0)
        bl.voltages(np.zeros(5), 800e3, 0)
        bl.reset()
        assert bl.induced_voltage_amplitude() == 0.0

    def test_shifts_equilibrium_in_tracker(self, ring, ion, rf, gamma0):
        def run(kick):
            rng = np.random.default_rng(3)
            dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 12e-9, 1500, rng)
            tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
            if kick:
                tracker.add_collective_effect(
                    BeamLoadingCavity(kick, quality_factor=30.0, harmonic=4)
                )
            rec = tracker.track(10000, f_rev=800e3, record_every=16)
            return float(rec.mean_delta_t[-20:].mean())

        base = run(0.0)
        loaded = run(25.0)
        # The decelerating wake moves the equilibrium to a phase where
        # the RF refills the lost energy.
        assert abs(loaded - base) > 0.2e-9

    def test_hook_validation(self, ring, ion, rf, gamma0):
        tracker = MultiParticleTracker(
            ring, ion, rf, np.zeros(4), np.zeros(4), gamma0
        )
        with pytest.raises(PhysicsError):
            tracker.add_collective_effect(object())
