"""Unit and property tests for the relativistic kinematics (Eq. 1)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import PhysicsError
from repro.physics.relativity import (
    beta_from_gamma,
    beta_gamma_product,
    gamma_from_beta,
    gamma_from_kinetic_energy,
    kinetic_energy_from_gamma,
    momentum_ev_per_c,
    velocity,
)


class TestGammaBeta:
    def test_rest_particle(self):
        assert gamma_from_beta(0.0) == 1.0
        assert beta_from_gamma(1.0) == 0.0

    def test_known_value(self):
        # beta = 0.6 -> gamma = 1.25 (3-4-5 triangle)
        assert gamma_from_beta(0.6) == pytest.approx(1.25)
        assert beta_from_gamma(1.25) == pytest.approx(0.6)

    def test_roundtrip_scalar(self):
        for beta in (0.1, 0.5783, 0.99, 0.999999):
            assert beta_from_gamma(gamma_from_beta(beta)) == pytest.approx(beta, rel=1e-12)

    def test_array_input_returns_array(self):
        betas = np.array([0.1, 0.5, 0.9])
        gammas = gamma_from_beta(betas)
        assert isinstance(gammas, np.ndarray)
        np.testing.assert_allclose(beta_from_gamma(gammas), betas)

    def test_scalar_input_returns_float(self):
        assert isinstance(gamma_from_beta(0.5), float)
        assert isinstance(beta_from_gamma(2.0), float)

    def test_superluminal_rejected(self):
        with pytest.raises(PhysicsError):
            gamma_from_beta(1.0)
        with pytest.raises(PhysicsError):
            gamma_from_beta(-1.2)

    def test_subunity_gamma_rejected(self):
        with pytest.raises(PhysicsError):
            beta_from_gamma(0.99)
        with pytest.raises(PhysicsError):
            beta_gamma_product(0.5)

    @given(st.floats(min_value=1e-3, max_value=0.999999))
    def test_roundtrip_property(self, beta):
        # Below beta ~ 1e-3 the gamma representation loses the velocity to
        # cancellation in 1 - beta^2 (gamma - 1 ~ 5e-7 eats the mantissa);
        # the tracker never operates there (injection is beta >= 0.15).
        assert beta_from_gamma(gamma_from_beta(beta)) == pytest.approx(beta, rel=1e-7)

    @given(st.floats(min_value=1.0 + 1e-9, max_value=1e6))
    def test_gamma_beta_monotonic(self, gamma):
        beta = beta_from_gamma(gamma)
        assert 0.0 <= beta < 1.0
        assert beta_from_gamma(gamma * 2) > beta


class TestEnergyMomentum:
    def test_beta_gamma_identity(self):
        # betagamma^2 = gamma^2 - 1
        for gamma in (1.0, 1.2258, 5.0):
            bg = beta_gamma_product(gamma)
            assert bg**2 == pytest.approx(gamma**2 - 1.0, rel=1e-12)

    def test_kinetic_energy_roundtrip(self):
        rest = 13.04e9  # ~14 u in eV
        for t in (0.0, 1e6, 3e9):
            gamma = gamma_from_kinetic_energy(t, rest)
            assert kinetic_energy_from_gamma(gamma, rest) == pytest.approx(t, abs=1e-3)

    def test_kinetic_energy_negative_rejected(self):
        with pytest.raises(PhysicsError):
            gamma_from_kinetic_energy(-1.0, 1e9)
        with pytest.raises(PhysicsError):
            gamma_from_kinetic_energy(1.0, 0.0)

    def test_momentum_scales_with_rest_energy(self):
        assert momentum_ev_per_c(2.0, 2e9) == pytest.approx(2 * momentum_ev_per_c(2.0, 1e9))

    def test_velocity_below_c(self):
        assert velocity(1.2258) == pytest.approx(0.5783 * 299_792_458.0, rel=1e-3)
        assert velocity(100.0) < 299_792_458.0
        # At extreme gamma, beta rounds to 1.0 in float64; never above c.
        assert velocity(1e9) <= 299_792_458.0

    @given(st.floats(min_value=0.0, max_value=1e12))
    def test_kinetic_energy_property(self, t):
        rest = 9.3e9
        gamma = gamma_from_kinetic_energy(t, rest)
        assert gamma >= 1.0
        # Absolute floor: gamma carries ~2e-16 relative precision, so T
        # round-trips to within rest_energy * eps ~ 2e-6 eV.
        assert kinetic_energy_from_gamma(gamma, rest) == pytest.approx(t, rel=1e-9, abs=1e-5)
