"""Tests for ion species definitions and parsing."""

import pytest

from repro.constants import ATOMIC_MASS_EV
from repro.errors import ConfigurationError
from repro.physics.ion import IonSpecies, KNOWN_IONS, ion_from_string


class TestIonSpecies:
    def test_n14_properties(self):
        ion = KNOWN_IONS["14N7+"]
        assert ion.mass_number == 14
        assert ion.charge_state == 7
        # rest energy ~ 14 u ~ 13.04 GeV
        assert ion.rest_energy_ev == pytest.approx(14.003074 * ATOMIC_MASS_EV)
        assert 13.0e9 < ion.rest_energy_ev < 13.1e9

    def test_default_mass_is_mass_number(self):
        ion = IonSpecies("40Ca20+", mass_number=40, charge_state=20)
        assert ion.mass_u == 40.0

    def test_gamma_gain_per_volt(self):
        ion = KNOWN_IONS["14N7+"]
        # Eq. 2: dgamma = Q/(m c^2) * V; for 1 V it is Q / rest_energy
        assert ion.gamma_gain_per_volt() == pytest.approx(7.0 / ion.rest_energy_ev)

    def test_charge_coulomb(self):
        assert KNOWN_IONS["1H1+"].charge_coulomb == pytest.approx(1.602176634e-19)

    def test_invalid_charge_state(self):
        with pytest.raises(ConfigurationError):
            IonSpecies("bad", mass_number=4, charge_state=5)
        with pytest.raises(ConfigurationError):
            IonSpecies("bad", mass_number=4, charge_state=0)

    def test_invalid_mass(self):
        with pytest.raises(ConfigurationError):
            IonSpecies("bad", mass_number=0, charge_state=1)
        with pytest.raises(ConfigurationError):
            IonSpecies("bad", mass_number=4, charge_state=2, mass_u=-1.0)

    def test_frozen(self):
        ion = KNOWN_IONS["14N7+"]
        with pytest.raises(AttributeError):
            ion.charge_state = 8


class TestIonParsing:
    def test_parse_n14(self):
        ion = ion_from_string("14N7+")
        assert ion.mass_number == 14
        assert ion.charge_state == 7
        assert ion.name == "14N7+"

    def test_parse_u238(self):
        ion = ion_from_string("238U28+")
        assert ion.mass_number == 238
        assert ion.charge_state == 28

    def test_parse_strips_whitespace(self):
        assert ion_from_string("  14N7+ ").mass_number == 14

    @pytest.mark.parametrize("bad", ["N7+", "14N", "14N7-", "14N7", "", "7+14N"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            ion_from_string(bad)

    def test_known_ions_consistent(self):
        for name, ion in KNOWN_IONS.items():
            assert ion.name == name
            assert ion.mass_u == pytest.approx(ion.mass_number, rel=0.01)
