"""Tests for the dual-harmonic RF system extension."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PhysicsError
from repro.physics.dual_harmonic import (
    DualHarmonicRF,
    dual_harmonic_synchrotron_frequency,
    synchrotron_frequency_vs_amplitude,
)
from repro.physics.rf import synchrotron_frequency
from repro.physics.tracking import MacroParticleTracker


class TestConstruction:
    def test_defaults(self):
        rf = DualHarmonicRF(harmonic=4, voltage=5e3)
        assert rf.ratio == 0.5
        assert rf.is_flat

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DualHarmonicRF(harmonic=0, voltage=1e3)
        with pytest.raises(ConfigurationError):
            DualHarmonicRF(harmonic=4, voltage=1e3, ratio=1.0)
        with pytest.raises(ConfigurationError):
            DualHarmonicRF(harmonic=4, voltage=-1.0)

    def test_copies(self):
        rf = DualHarmonicRF(harmonic=4, voltage=5e3, ratio=0.3)
        assert rf.with_voltage(1e3).voltage == 1e3
        assert rf.with_phase_offset(0.2).phase_offset == 0.2
        assert rf.with_phase_offset(0.2).ratio == 0.3


class TestVoltage:
    def test_zero_ratio_matches_single_harmonic(self):
        from repro.physics.rf import RFSystem

        dual = DualHarmonicRF(harmonic=4, voltage=5e3, ratio=0.0)
        single = RFSystem(harmonic=4, voltage=5e3)
        dts = np.linspace(-1e-7, 1e-7, 41)
        np.testing.assert_allclose(
            dual.gap_voltage_at(dts, 800e3), single.gap_voltage_at(dts, 800e3)
        )

    def test_zero_at_centre(self):
        rf = DualHarmonicRF(harmonic=4, voltage=5e3, ratio=0.5)
        assert rf.gap_voltage_at(0.0, 800e3) == pytest.approx(0.0, abs=1e-9)

    def test_flat_bucket_cubic_centre(self):
        """At r = 0.5 the voltage is cubic near the centre: V(dt)/dt → 0."""
        rf = DualHarmonicRF(harmonic=4, voltage=5e3, ratio=0.5)
        small, smaller = 1e-9, 0.5e-9
        ratio = rf.gap_voltage_at(small, 800e3) / rf.gap_voltage_at(smaller, 800e3)
        assert ratio == pytest.approx(8.0, rel=0.01)  # cubic: (2)^3

    def test_slope_formula(self):
        rf = DualHarmonicRF(harmonic=4, voltage=5e3, ratio=0.25)
        slope = rf.voltage_slope_at_centre(800e3)
        omega = 2 * np.pi * 4 * 800e3
        assert slope == pytest.approx(5e3 * omega * (1 - 0.5), rel=1e-12)


class TestSynchrotronFrequency:
    def test_sqrt_one_minus_two_r_law(self, ring, ion, gamma0, rf):
        base = synchrotron_frequency(ring, ion, rf, gamma0)
        for r in (0.0, 0.2, 0.4):
            dual = DualHarmonicRF(harmonic=4, voltage=rf.voltage, ratio=r)
            f = dual_harmonic_synchrotron_frequency(ring, ion, dual, gamma0)
            assert f == pytest.approx(base * np.sqrt(1 - 2 * r), rel=1e-6)

    def test_flat_point_zero(self, ring, ion, gamma0, rf):
        dual = DualHarmonicRF(harmonic=4, voltage=rf.voltage, ratio=0.5)
        assert dual_harmonic_synchrotron_frequency(ring, ion, dual, gamma0) == 0.0

    def test_overcompensated_raises(self, ring, ion, gamma0, rf):
        dual = DualHarmonicRF(harmonic=4, voltage=rf.voltage, ratio=0.7)
        with pytest.raises(PhysicsError):
            dual_harmonic_synchrotron_frequency(ring, ion, dual, gamma0)


class TestAmplitudeDependence:
    def test_single_harmonic_softens_with_amplitude(self, ring, ion, gamma0, rf):
        dual = DualHarmonicRF(harmonic=4, voltage=rf.voltage, ratio=0.0)
        f = synchrotron_frequency_vs_amplitude(
            ring, ion, dual, gamma0, [5e-9, 60e-9], f_rev=800e3
        )
        assert f[1] < f[0]  # pendulum softening

    def test_flat_bucket_hardens_with_amplitude(self, ring, ion, gamma0, rf):
        dual = DualHarmonicRF(harmonic=4, voltage=rf.voltage, ratio=0.5)
        f = synchrotron_frequency_vs_amplitude(
            ring, ion, dual, gamma0, [5e-9, 60e-9], f_rev=800e3
        )
        assert f[1] > 3 * f[0]  # cubic force: frequency grows with amplitude

    def test_flat_bucket_spread_dwarfs_single(self, ring, ion, gamma0, rf):
        amps = [5e-9, 50e-9]
        flat = synchrotron_frequency_vs_amplitude(
            ring, ion, DualHarmonicRF(harmonic=4, voltage=rf.voltage, ratio=0.5),
            gamma0, amps, f_rev=800e3,
        )
        single = synchrotron_frequency_vs_amplitude(
            ring, ion, DualHarmonicRF(harmonic=4, voltage=rf.voltage, ratio=0.0),
            gamma0, amps, f_rev=800e3,
        )
        spread = lambda f: abs(f[1] - f[0]) / max(f)
        assert spread(flat) > 5 * spread(single)

    def test_validation(self, ring, ion, gamma0, rf):
        dual = DualHarmonicRF(harmonic=4, voltage=rf.voltage)
        with pytest.raises(PhysicsError):
            synchrotron_frequency_vs_amplitude(ring, ion, dual, gamma0, [-1e-9])


class TestTrackerIntegration:
    def test_particle_contained_in_flat_bucket(self, ring, ion, gamma0, rf):
        dual = DualHarmonicRF(harmonic=4, voltage=rf.voltage, ratio=0.5)
        tracker = MacroParticleTracker(ring, ion, dual)
        state = tracker.initial_state(800e3, delta_t=40e-9)
        rec = tracker.track(state, 30000, f_rev=800e3)
        assert np.abs(rec.delta_t).max() < 45e-9  # bounded, no escape

    def test_reference_particle_untouched(self, ring, ion, gamma0, rf):
        dual = DualHarmonicRF(harmonic=4, voltage=rf.voltage, ratio=0.5)
        tracker = MacroParticleTracker(ring, ion, dual)
        state = tracker.initial_state(800e3, delta_t=10e-9)
        tracker.track(state, 500, f_rev=800e3)
        assert state.gamma_ref == pytest.approx(gamma0, rel=1e-12)
