"""Tests for matched bunch distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PhysicsError
from repro.physics.distributions import (
    gaussian_bunch,
    matched_rms_delta_gamma,
    parabolic_bunch,
)


class TestMatchedRatio:
    def test_positive(self, ring, ion, rf, gamma0):
        assert matched_rms_delta_gamma(ring, ion, rf, gamma0, 30e-9) > 0.0

    def test_linear_in_sigma(self, ring, ion, rf, gamma0):
        r1 = matched_rms_delta_gamma(ring, ion, rf, gamma0, 10e-9)
        r2 = matched_rms_delta_gamma(ring, ion, rf, gamma0, 20e-9)
        assert r2 == pytest.approx(2 * r1)

    def test_zero_sigma(self, ring, ion, rf, gamma0):
        assert matched_rms_delta_gamma(ring, ion, rf, gamma0, 0.0) == 0.0

    def test_negative_sigma_rejected(self, ring, ion, rf, gamma0):
        with pytest.raises(PhysicsError):
            matched_rms_delta_gamma(ring, ion, rf, gamma0, -1e-9)

    def test_unstable_bucket_rejected(self, ring, ion, rf):
        with pytest.raises(PhysicsError):
            matched_rms_delta_gamma(ring, ion, rf, ring.gamma_transition * 2, 1e-9)


class TestGaussianBunch:
    def test_shapes(self, ring, ion, rf, gamma0, rng):
        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 30e-9, 1000, rng)
        assert dt.shape == dg.shape == (1000,)

    def test_moments(self, ring, ion, rf, gamma0, rng):
        sigma = 30e-9
        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, sigma, 50000, rng)
        assert dt.std() == pytest.approx(sigma, rel=0.02)
        expected_dg = matched_rms_delta_gamma(ring, ion, rf, gamma0, sigma)
        assert dg.std() == pytest.approx(expected_dg, rel=0.02)
        assert abs(dt.mean()) < 3 * sigma / np.sqrt(50000)

    def test_centre_offset(self, ring, ion, rf, gamma0, rng):
        dt, _ = gaussian_bunch(ring, ion, rf, gamma0, 10e-9, 20000, rng, centre_delta_t=50e-9)
        assert dt.mean() == pytest.approx(50e-9, abs=1e-9)

    def test_reproducible_with_seed(self, ring, ion, rf, gamma0):
        a = gaussian_bunch(ring, ion, rf, gamma0, 30e-9, 100, np.random.default_rng(7))
        b = gaussian_bunch(ring, ion, rf, gamma0, 30e-9, 100, np.random.default_rng(7))
        np.testing.assert_array_equal(a[0], b[0])

    def test_zero_particles_rejected(self, ring, ion, rf, gamma0, rng):
        with pytest.raises(PhysicsError):
            gaussian_bunch(ring, ion, rf, gamma0, 30e-9, 0, rng)


class TestParabolicBunch:
    def test_bounded_support(self, ring, ion, rf, gamma0, rng):
        half = 100e-9
        dt, dg = parabolic_bunch(ring, ion, rf, gamma0, half, 20000, rng)
        assert np.abs(dt).max() <= half * (1 + 1e-12)
        ratio = matched_rms_delta_gamma(ring, ion, rf, gamma0, 1.0)
        assert np.abs(dg).max() <= ratio * half * (1 + 1e-12)

    def test_fills_the_ellipse(self, ring, ion, rf, gamma0, rng):
        half = 100e-9
        dt, dg = parabolic_bunch(ring, ion, rf, gamma0, half, 20000, rng)
        ratio = matched_rms_delta_gamma(ring, ion, rf, gamma0, 1.0)
        r2 = (dt / half) ** 2 + (dg / (ratio * half)) ** 2
        assert r2.max() <= 1.0 + 1e-9
        assert np.percentile(r2, 50) > 0.3  # not all piled at the centre

    def test_rms_below_uniform(self, ring, ion, rf, gamma0, rng):
        # Parabolic line density: rms = half/sqrt(5).
        half = 100e-9
        dt, _ = parabolic_bunch(ring, ion, rf, gamma0, half, 50000, rng)
        assert dt.std() == pytest.approx(half / np.sqrt(5.0), rel=0.03)

    def test_invalid_inputs(self, ring, ion, rf, gamma0, rng):
        with pytest.raises(PhysicsError):
            parabolic_bunch(ring, ion, rf, gamma0, -1e-9, 10, rng)
        with pytest.raises(PhysicsError):
            parabolic_bunch(ring, ion, rf, gamma0, 1e-9, 0, rng)


class TestMatchingProperty:
    # Upper bound 18 ns: beyond that the matched energy spread reaches
    # the bucket half-height within ~5 sigma and tail particles escape,
    # which is physical loss, not a matching failure.
    @settings(max_examples=10, deadline=None)
    @given(sigma=st.floats(min_value=5e-9, max_value=18e-9))
    def test_matched_bunch_sigma_stable_one_synchrotron_period(
        self, ring, ion, rf, gamma0, sigma
    ):
        """Property: a matched bunch's sigma oscillates < 10% over half a
        synchrotron period regardless of its length."""
        from repro.physics.multiparticle import MultiParticleTracker

        rng = np.random.default_rng(99)
        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, sigma, 1500, rng)
        tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
        rec = tracker.track(300, f_rev=800e3, record_every=30)
        assert rec.std_delta_t.max() / rec.std_delta_t.min() < 1.1
