"""Tests for the RF system, bucket stability and synchrotron frequency."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, PhysicsError
from repro.physics.rf import (
    RFSystem,
    bucket_is_stable,
    synchrotron_frequency,
    voltage_for_synchrotron_frequency,
)


class TestRFSystem:
    def test_rf_frequency_is_harmonic_multiple(self):
        rf = RFSystem(harmonic=4, voltage=5e3)
        assert rf.rf_frequency(800e3) == pytest.approx(3.2e6)

    def test_gap_voltage_zero_at_crossing(self):
        rf = RFSystem(harmonic=4, voltage=5e3)
        assert rf.gap_voltage_at(0.0, 800e3) == pytest.approx(0.0, abs=1e-9)

    def test_gap_voltage_sign_convention(self):
        # Paper Fig. 1: a late particle (dt > 0) sees a higher voltage.
        rf = RFSystem(harmonic=4, voltage=5e3)
        assert rf.gap_voltage_at(10e-9, 800e3) > 0.0
        assert rf.gap_voltage_at(-10e-9, 800e3) < 0.0

    def test_gap_voltage_periodicity(self):
        rf = RFSystem(harmonic=4, voltage=5e3)
        t_rf = 1.0 / (4 * 800e3)
        assert rf.gap_voltage_at(12e-9 + t_rf, 800e3) == pytest.approx(
            rf.gap_voltage_at(12e-9, 800e3), abs=1e-6
        )

    def test_phase_offset_shifts_voltage(self):
        rf = RFSystem(harmonic=4, voltage=5e3, phase_offset=math.radians(8))
        assert rf.gap_voltage_at(0.0, 800e3) == pytest.approx(
            5e3 * math.sin(math.radians(8))
        )

    def test_with_phase_offset_returns_copy(self):
        rf = RFSystem(harmonic=4, voltage=5e3)
        rf2 = rf.with_phase_offset(0.3)
        assert rf.phase_offset == 0.0
        assert rf2.phase_offset == 0.3
        assert rf2.voltage == rf.voltage

    def test_array_delta_t(self):
        rf = RFSystem(harmonic=2, voltage=1.0)
        v = rf.gap_voltage_at(np.array([0.0, 1e-7]), 800e3)
        assert v.shape == (2,)

    def test_invalid_harmonic(self):
        with pytest.raises(ConfigurationError):
            RFSystem(harmonic=0, voltage=1e3)

    def test_negative_voltage(self):
        with pytest.raises(ConfigurationError):
            RFSystem(harmonic=1, voltage=-5.0)


class TestStability:
    def test_below_transition_rising_slope_stable(self):
        assert bucket_is_stable(eta=-0.6, synchronous_phase=0.0)

    def test_above_transition_rising_slope_unstable(self):
        assert not bucket_is_stable(eta=0.02, synchronous_phase=0.0)

    def test_above_transition_falling_slope_stable(self):
        assert bucket_is_stable(eta=0.02, synchronous_phase=math.pi)


class TestSynchrotronFrequency:
    def test_mde_calibration(self, ring, ion, gamma0):
        """The paper's operating point: f_s = 1.28 kHz needs ~4.9 kV."""
        probe = RFSystem(harmonic=4, voltage=1.0)
        v = voltage_for_synchrotron_frequency(ring, ion, probe, gamma0, 1.28e3)
        assert 3e3 < v < 8e3  # kV scale, as the paper's "several 10 kV" ceiling allows
        rf = probe.with_voltage(v)
        assert synchrotron_frequency(ring, ion, rf, gamma0) == pytest.approx(1.28e3, rel=1e-9)

    def test_scales_with_sqrt_voltage(self, ring, ion, gamma0, rf):
        f1 = synchrotron_frequency(ring, ion, rf, gamma0)
        f2 = synchrotron_frequency(ring, ion, rf.with_voltage(4 * rf.voltage), gamma0)
        assert f2 == pytest.approx(2 * f1, rel=1e-12)

    def test_scales_with_sqrt_harmonic(self, ring, ion, gamma0, rf):
        f_h4 = synchrotron_frequency(ring, ion, rf, gamma0)
        rf_h1 = RFSystem(harmonic=1, voltage=rf.voltage)
        f_h1 = synchrotron_frequency(ring, ion, rf_h1, gamma0)
        assert f_h4 == pytest.approx(2.0 * f_h1, rel=1e-12)

    def test_much_slower_than_revolution(self, ring, ion, gamma0, rf):
        # Synchrotron motion is slow: f_s / f_R ~ 1.6e-3 at the MDE point.
        f_s = synchrotron_frequency(ring, ion, rf, gamma0)
        assert f_s < 1e-2 * ring.revolution_frequency(gamma0)

    def test_unstable_bucket_raises(self, ring, ion, rf):
        gamma_above = ring.gamma_transition * 1.5
        with pytest.raises(PhysicsError):
            synchrotron_frequency(ring, ion, rf, gamma_above)

    def test_negative_target_rejected(self, ring, ion, gamma0, rf):
        with pytest.raises(PhysicsError):
            voltage_for_synchrotron_frequency(ring, ion, rf, gamma0, -5.0)
