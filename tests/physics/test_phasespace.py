"""Tests for phase-space geometry: Hamiltonian, separatrix, bucket."""

import numpy as np
import pytest

from repro.errors import PhysicsError
from repro.physics.phasespace import (
    bucket_area,
    bucket_half_height,
    bucket_half_length,
    hamiltonian,
    map_coefficients,
    separatrix_delta_gamma,
    small_amplitude_trajectory,
)
from repro.physics.tracking import MacroParticleTracker


class TestMapCoefficients:
    def test_signs_below_transition(self, ring, ion, rf, gamma0):
        a, k_t, omega_rf = map_coefficients(ring, ion, rf, gamma0)
        assert a < 0.0  # below transition
        assert k_t > 0.0
        assert omega_rf == pytest.approx(2 * np.pi * 4 * 800e3, rel=1e-6)


class TestHamiltonian:
    def test_zero_at_centre(self, ring, ion, rf, gamma0):
        assert hamiltonian(0.0, 0.0, ring, ion, rf, gamma0) == pytest.approx(0.0, abs=1e-18)

    def test_positive_away_from_centre(self, ring, ion, rf, gamma0):
        assert hamiltonian(10e-9, 0.0, ring, ion, rf, gamma0) > 0.0
        assert hamiltonian(0.0, 1e-6, ring, ion, rf, gamma0) > 0.0

    def test_conserved_along_tracked_orbit(self, ring, ion, rf, gamma0, f_rev):
        """The tracker's orbit stays on (approximately) one H level set."""
        tracker = MacroParticleTracker(ring, ion, rf)
        st = tracker.initial_state(f_rev, delta_t=8e-9)
        values = []
        for _ in range(3000):
            tracker.step(st, f_rev)
            values.append(hamiltonian(st.delta_t, st.delta_gamma, ring, ion, rf, gamma0))
        values = np.asarray(values)
        assert values.std() / values.mean() < 0.02

    def test_array_input(self, ring, ion, rf, gamma0):
        h = hamiltonian(np.array([0.0, 5e-9]), np.array([0.0, 0.0]), ring, ion, rf, gamma0)
        assert h.shape == (2,)


class TestBucketGeometry:
    def test_half_length(self, rf):
        assert bucket_half_length(rf, 800e3) == pytest.approx(0.5 / (4 * 800e3))

    def test_half_height_positive(self, ring, ion, rf, gamma0):
        assert bucket_half_height(ring, ion, rf, gamma0) > 0.0

    def test_half_height_scales_sqrt_voltage(self, ring, ion, rf, gamma0):
        h1 = bucket_half_height(ring, ion, rf, gamma0)
        h2 = bucket_half_height(ring, ion, rf.with_voltage(4 * rf.voltage), gamma0)
        assert h2 == pytest.approx(2 * h1, rel=1e-9)

    def test_separatrix_shape(self, ring, ion, rf, gamma0, f_rev):
        half_len = bucket_half_length(rf, f_rev)
        dg_max = bucket_half_height(ring, ion, rf, gamma0)
        assert separatrix_delta_gamma(0.0, ring, ion, rf, gamma0) == pytest.approx(dg_max)
        assert separatrix_delta_gamma(half_len, ring, ion, rf, gamma0) == pytest.approx(
            0.0, abs=dg_max * 1e-9
        )

    def test_bucket_area_matches_analytic(self, ring, ion, rf, gamma0, f_rev):
        # Analytic: area = 2 * dg_max * integral |cos(w dt/2)| = 8*dg_max/w_rf.
        _, _, omega_rf = map_coefficients(ring, ion, rf, gamma0)
        dg_max = bucket_half_height(ring, ion, rf, gamma0)
        analytic = 8.0 * dg_max / omega_rf
        assert bucket_area(ring, ion, rf, gamma0) == pytest.approx(analytic, rel=1e-4)

    def test_unstable_bucket_raises(self, ring, ion, rf):
        with pytest.raises(PhysicsError):
            bucket_half_height(ring, ion, rf, ring.gamma_transition * 2)


class TestSmallAmplitudeTrajectory:
    def test_closed_ellipse(self, ring, ion, rf, gamma0):
        dt, dg = small_amplitude_trajectory(ring, ion, rf, gamma0, 5e-9, n_points=128)
        assert dt.shape == dg.shape == (128,)
        assert dt.max() == pytest.approx(5e-9)
        # All points on the same Hamiltonian level (small amplitude).
        h = hamiltonian(dt, dg, ring, ion, rf, gamma0)
        assert h.std() / h.mean() < 1e-3

    def test_tracker_follows_the_ellipse(self, ring, ion, rf, gamma0, f_rev):
        amp = 5e-9
        dt_traj, dg_traj = small_amplitude_trajectory(ring, ion, rf, gamma0, amp)
        dg_max_expected = np.abs(dg_traj).max()
        tracker = MacroParticleTracker(ring, ion, rf)
        st = tracker.initial_state(f_rev, delta_t=amp)
        rec = tracker.track(st, 20000, f_rev=f_rev)
        assert np.abs(rec.delta_gamma).max() == pytest.approx(dg_max_expected, rel=0.01)
