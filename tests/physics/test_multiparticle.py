"""Tests for the vectorised multi-macro-particle tracker."""

import numpy as np
import pytest

from repro.errors import PhysicsError
from repro.physics.multiparticle import MultiParticleTracker
from repro.physics.distributions import gaussian_bunch
from repro.physics.oscillation import estimate_oscillation_frequency
from repro.physics.rf import synchrotron_frequency
from repro.physics.tracking import MacroParticleTracker


class TestConstruction:
    def test_shapes_must_match(self, ring, ion, rf, gamma0):
        with pytest.raises(PhysicsError):
            MultiParticleTracker(ring, ion, rf, np.zeros(3), np.zeros(4), gamma0)

    def test_needs_particles(self, ring, ion, rf, gamma0):
        with pytest.raises(PhysicsError):
            MultiParticleTracker(ring, ion, rf, np.zeros(0), np.zeros(0), gamma0)

    def test_needs_1d(self, ring, ion, rf, gamma0):
        with pytest.raises(PhysicsError):
            MultiParticleTracker(ring, ion, rf, np.zeros((2, 2)), np.zeros((2, 2)), gamma0)

    def test_invalid_gamma(self, ring, ion, rf):
        with pytest.raises(PhysicsError):
            MultiParticleTracker(ring, ion, rf, np.zeros(2), np.zeros(2), 0.5)


class TestAgainstSingleParticle:
    def test_cold_beam_follows_macro_particle(self, ring, ion, rf, f_rev, gamma0):
        """A zero-spread ensemble must reproduce the single-particle orbit."""
        n = 16
        multi = MultiParticleTracker(
            ring, ion, rf, np.full(n, 5e-9), np.zeros(n), gamma0
        )
        single = MacroParticleTracker(ring, ion, rf)
        st = single.initial_state(f_rev, delta_t=5e-9)
        for _ in range(2000):
            multi.step(f_rev)
            single.step(st, f_rev)
        assert multi.moments().mean_delta_t == pytest.approx(st.delta_t, rel=1e-9)
        assert multi.moments().mean_delta_gamma == pytest.approx(st.delta_gamma, rel=1e-9)

    def test_centroid_oscillates_at_fs(self, ring, ion, rf, f_rev, gamma0, rng):
        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 12e-9, 500, rng, centre_delta_t=10e-9)
        tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
        rec = tracker.track(20000, f_rev=f_rev, record_every=4)
        f = estimate_oscillation_frequency(rec.time, rec.mean_delta_t)
        f_analytic = synchrotron_frequency(ring, ion, rf, gamma0)
        assert f == pytest.approx(f_analytic, rel=0.03)


class TestEnsembleBehaviour:
    def test_matched_bunch_moments_stationary(self, ring, ion, rf, f_rev, gamma0, rng):
        # sigma = 12 ns keeps the bunch well inside the bucket: the
        # matched energy spread puts the separatrix at ~8 sigma, so no
        # particle escapes (at 30 ns it would sit at only 3.3 sigma and
        # tail particles would leak out and blow up the moments).
        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 12e-9, 4000, rng)
        tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
        rec = tracker.track(8000, f_rev=f_rev, record_every=16)
        # Matched: sigma stays within a few percent, centroid near zero.
        assert rec.std_delta_t.max() / rec.std_delta_t.min() < 1.1
        assert np.abs(rec.mean_delta_t).max() < 0.1 * rec.std_delta_t[0]

    def test_mismatched_bunch_quadrupole_oscillation(self, ring, ion, rf, f_rev, gamma0, rng):
        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 12e-9, 3000, rng)
        dt *= 0.5  # squeeze: quadrupole mismatch
        tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
        rec = tracker.track(16000, f_rev=f_rev, record_every=4)
        f_quad = estimate_oscillation_frequency(rec.time, rec.std_delta_t)
        f_s = synchrotron_frequency(ring, ion, rf, gamma0)
        assert f_quad == pytest.approx(2 * f_s, rel=0.06)

    def test_filamentation_decoheres_displaced_bunch(self, ring, ion, rf, f_rev, gamma0, rng):
        """A displaced warm bunch loses coherent amplitude without control."""
        sigma = 12e-9
        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, sigma, 4000, rng, centre_delta_t=40e-9)
        tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
        rec = tracker.track(60000, f_rev=f_rev, record_every=32)
        first = np.abs(rec.mean_delta_t[: len(rec.mean_delta_t) // 4]).max()
        last = np.abs(rec.mean_delta_t[-len(rec.mean_delta_t) // 4 :]).max()
        assert last < 0.8 * first  # coherent dipole amplitude decayed
        assert rec.std_delta_t[-1] > rec.std_delta_t[0]  # bunch smeared out

    def test_profile_histogram(self, ring, ion, rf, gamma0, rng):
        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 12e-9, 2000, rng)
        tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
        centres, counts = tracker.profile(bins=32)
        assert centres.shape == counts.shape == (32,)
        assert counts.sum() > 1800  # most particles inside the 4-sigma window
        # Peak near the centre.
        assert abs(centres[np.argmax(counts)]) < 12e-9

    def test_step_rejects_lost_particles(self, ring, ion, rf, gamma0):
        tracker = MultiParticleTracker(
            ring, ion, rf, np.zeros(2), np.array([0.0, -(gamma0 - 1.0) * 1.01]), gamma0
        )
        with pytest.raises(PhysicsError):
            tracker.step(800e3)

    def test_moments_dipole_phase(self, ring, ion, rf, gamma0):
        tracker = MultiParticleTracker(ring, ion, rf, np.full(3, 1e-9), np.zeros(3), gamma0)
        m = tracker.moments()
        assert m.dipole_phase_deg(4, 800e3) == pytest.approx(360 * 4 * 800e3 * 1e-9)

    def test_debunching_with_rf_off(self, ring, ion, rf, gamma0, rng):
        """Coasting-beam limit (paper Section I): with no RF voltage the
        bunch debunches — sigma_t grows linearly with the momentum spread
        and nothing restores it."""
        from repro.physics.rf import RFSystem

        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 12e-9, 1000, rng)
        rf_off = RFSystem(harmonic=4, voltage=0.0)
        tracker = MultiParticleTracker(ring, ion, rf_off, dt, dg, gamma0)
        rec = tracker.track(4000, f_rev=800e3, record_every=500)
        sigmas = rec.std_delta_t
        assert sigmas[-1] > 3 * sigmas[0]
        # Linear growth: consecutive increments roughly constant.
        increments = np.diff(sigmas[2:])
        assert increments.std() < 0.2 * increments.mean()

    def test_track_validation(self, ring, ion, rf, gamma0):
        tracker = MultiParticleTracker(ring, ion, rf, np.zeros(2), np.zeros(2), gamma0)
        with pytest.raises(PhysicsError):
            tracker.track(-1)
        with pytest.raises(PhysicsError):
            tracker.track(1, record_every=0)
