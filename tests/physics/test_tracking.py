"""Tests for the two-particle recursive tracking map (Eqs. 2, 3, 6)."""

import math

import numpy as np
import pytest

from repro.errors import PhysicsError
from repro.physics.oscillation import estimate_oscillation_frequency
from repro.physics.rf import synchrotron_frequency
from repro.physics.tracking import (
    MacroParticleTracker,
    TrackingState,
    delta_gamma_update,
    delta_t_update,
    reference_gamma_update,
)


class TestUpdateEquations:
    def test_eq2_zero_voltage_constant_gamma(self, ion):
        assert reference_gamma_update(1.5, 0.0, ion) == 1.5

    def test_eq2_positive_voltage_accelerates(self, ion):
        g = reference_gamma_update(1.5, 1000.0, ion)
        assert g == pytest.approx(1.5 + 7 * 1000.0 / ion.rest_energy_ev)

    def test_eq2_overdeceleration_raises(self, ion):
        with pytest.raises(PhysicsError):
            reference_gamma_update(1.0, -1e12, ion)

    def test_eq3_voltage_difference(self, ion):
        dg = delta_gamma_update(0.0, 150.0, 100.0, ion)
        assert dg == pytest.approx(ion.gamma_gain_per_volt() * 50.0)

    def test_eq3_accumulates(self, ion):
        dg = delta_gamma_update(1e-6, 100.0, 100.0, ion)
        assert dg == 1e-6  # no relative kick, value kept

    def test_eq6_sign_below_transition(self, ring, ion, gamma0):
        # Below transition (eta < 0) a higher-energy particle arrives earlier.
        dt = delta_t_update(0.0, delta_gamma=1e-6, gamma_ref=gamma0, ring=ring)
        assert dt < 0.0

    def test_eq6_zero_dgamma_keeps_dt(self, ring, gamma0):
        assert delta_t_update(5e-9, 0.0, gamma0, ring) == 5e-9

    def test_eq6_nonphysical_gamma_raises(self, ring):
        with pytest.raises(PhysicsError):
            delta_t_update(0.0, delta_gamma=-0.5, gamma_ref=1.2, ring=ring)


class TestTrackingState:
    def test_gamma_async(self):
        st = TrackingState(gamma_ref=1.3, delta_gamma=0.01)
        assert st.gamma_async == pytest.approx(1.31)

    def test_copy_is_independent(self):
        st = TrackingState(gamma_ref=1.3)
        st2 = st.copy()
        st2.delta_t = 99.0
        assert st.delta_t == 0.0

    def test_invalid_gamma(self):
        with pytest.raises(PhysicsError):
            TrackingState(gamma_ref=0.9)


class TestMacroParticleTracker:
    def test_initial_state_from_frequency(self, ring, ion, rf, f_rev):
        tracker = MacroParticleTracker(ring, ion, rf)
        st = tracker.initial_state(f_rev)
        assert st.gamma_ref == pytest.approx(ring.gamma_from_revolution_frequency(f_rev))
        assert st.delta_gamma == 0.0 and st.delta_t == 0.0

    def test_stationary_no_offset_stays_put(self, ring, ion, rf, f_rev):
        tracker = MacroParticleTracker(ring, ion, rf)
        st = tracker.initial_state(f_rev)
        rec = tracker.track(st, 1000, f_rev=f_rev)
        np.testing.assert_allclose(rec.delta_t, 0.0, atol=1e-15)
        np.testing.assert_allclose(rec.gamma_ref, rec.gamma_ref[0])

    def test_oscillation_frequency_matches_analytic(self, ring, ion, rf, f_rev, gamma0):
        tracker = MacroParticleTracker(ring, ion, rf)
        st = tracker.initial_state(f_rev, delta_t=5e-9)
        rec = tracker.track(st, 40000, f_rev=f_rev)
        f_tracked = estimate_oscillation_frequency(rec.time, rec.delta_t)
        f_analytic = synchrotron_frequency(ring, ion, rf, gamma0)
        assert f_tracked == pytest.approx(f_analytic, rel=0.01)

    def test_amplitude_bounded_small_oscillation(self, ring, ion, rf, f_rev):
        tracker = MacroParticleTracker(ring, ion, rf)
        st = tracker.initial_state(f_rev, delta_t=5e-9)
        rec = tracker.track(st, 60000, f_rev=f_rev)
        # Symplectic-like map: amplitude must not grow beyond ~1%.
        assert np.abs(rec.delta_t).max() < 5e-9 * 1.01

    def test_oscillation_symmetric(self, ring, ion, rf, f_rev):
        tracker = MacroParticleTracker(ring, ion, rf)
        st = tracker.initial_state(f_rev, delta_t=5e-9)
        rec = tracker.track(st, 40000, f_rev=f_rev)
        assert rec.delta_t.min() == pytest.approx(-5e-9, rel=0.01)

    def test_custom_gap_voltage_callable(self, ring, ion, rf, f_rev):
        calls = []

        def gap(dt, f, turn):
            calls.append(turn)
            return 0.0

        tracker = MacroParticleTracker(ring, ion, rf, gap_voltage=gap)
        st = tracker.initial_state(f_rev, delta_t=1e-9)
        tracker.track(st, 10, f_rev=f_rev)
        assert len(calls) == 10
        # Zero gap voltage: dt drifts are zero since dgamma stays 0.
        assert st.delta_gamma == 0.0

    def test_phase_jump_shifts_equilibrium(self, ring, ion, rf, f_rev):
        jump = math.radians(8.0)
        tracker = MacroParticleTracker(ring, ion, rf.with_phase_offset(jump))
        st = tracker.initial_state(f_rev)
        rec = tracker.track(st, 40000, f_rev=f_rev)
        # Equilibrium at sin(w_rf dt + jump) = 0: dt_eq = -jump/w_rf;
        # starting at 0 the bunch oscillates between 0 and 2*dt_eq.
        dt_eq = -jump / (2 * math.pi * rf.harmonic * f_rev)
        assert rec.delta_t.min() == pytest.approx(2 * dt_eq, rel=0.02)
        assert rec.delta_t.max() == pytest.approx(0.0, abs=abs(dt_eq) * 0.05)

    def test_record_every(self, ring, ion, rf, f_rev):
        tracker = MacroParticleTracker(ring, ion, rf)
        st = tracker.initial_state(f_rev, delta_t=1e-9)
        rec = tracker.track(st, 100, f_rev=f_rev, record_every=10)
        assert len(rec.turns) == 11
        assert rec.turns[-1] == 100

    def test_phase_deg_conversion(self, ring, ion, rf, f_rev):
        tracker = MacroParticleTracker(ring, ion, rf)
        st = tracker.initial_state(f_rev, delta_t=1e-9)
        rec = tracker.track(st, 10, f_rev=f_rev)
        phases = rec.phase_deg(rf.harmonic, f_rev)
        np.testing.assert_allclose(phases, 360.0 * 4 * f_rev * rec.delta_t)

    def test_negative_turns_rejected(self, ring, ion, rf, f_rev):
        tracker = MacroParticleTracker(ring, ion, rf)
        st = tracker.initial_state(f_rev)
        with pytest.raises(PhysicsError):
            tracker.track(st, -1)
        with pytest.raises(PhysicsError):
            tracker.track(st, 10, record_every=0)

    def test_time_axis_matches_revolutions(self, ring, ion, rf, f_rev):
        tracker = MacroParticleTracker(ring, ion, rf)
        st = tracker.initial_state(f_rev)
        rec = tracker.track(st, 100, f_rev=f_rev)
        assert rec.time[-1] == pytest.approx(100 / f_rev)
