"""Tests for the DSP phase detectors."""

import numpy as np
import pytest

from repro.constants import TWO_PI
from repro.errors import SignalError
from repro.signal.phase_detector import ArrivalTimePhaseDetector, IQPhaseDetector
from repro.signal.gauss_pulse import GaussPulseGenerator


class TestArrivalTimeDetector:
    def test_linear_in_delta_t(self):
        det = ArrivalTimePhaseDetector(harmonic=4)
        assert det.phase_deg(10e-9, 800e3) == pytest.approx(360 * 4 * 800e3 * 10e-9)

    def test_zero_at_zero(self):
        det = ArrivalTimePhaseDetector(harmonic=4)
        assert det.phase_deg(0.0, 800e3) == 0.0

    def test_wraps_to_pm180(self):
        det = ArrivalTimePhaseDetector(harmonic=4)
        t_rf = 1 / (4 * 800e3)
        assert det.phase_deg(0.75 * t_rf, 800e3) == pytest.approx(-90.0)

    def test_no_wrap_option(self):
        det = ArrivalTimePhaseDetector(harmonic=4, wrap=False)
        t_rf = 1 / (4 * 800e3)
        assert det.phase_deg(t_rf, 800e3) == pytest.approx(360.0)

    def test_vectorised(self):
        det = ArrivalTimePhaseDetector(harmonic=1)
        out = det.phase_deg(np.array([0.0, 1e-7]), 800e3)
        assert out.shape == (2,)

    def test_validation(self):
        with pytest.raises(SignalError):
            ArrivalTimePhaseDetector(harmonic=0)
        det = ArrivalTimePhaseDetector(harmonic=1)
        with pytest.raises(SignalError):
            det.phase_deg(0.0, 0.0)


class TestIQDetector:
    def test_sine_phase_convention(self):
        fs, f = 250e6, 3.2e6
        t = np.arange(8000) / fs
        det = IQPhaseDetector(f)
        assert det.measure(np.sin(TWO_PI * f * t), fs) == pytest.approx(0.0, abs=0.5)
        assert det.measure(np.cos(TWO_PI * f * t), fs) == pytest.approx(90.0, abs=0.5)

    def test_phase_shift_recovered(self):
        fs, f = 250e6, 3.2e6
        t = np.arange(8000) / fs
        for deg in (-120.0, -10.0, 25.0, 170.0):
            s = np.sin(TWO_PI * f * t + np.radians(deg))
            assert IQPhaseDetector(f).measure(s, fs) == pytest.approx(deg, abs=0.5)

    def test_pulse_train_phase_linear_in_delay(self):
        """The beam observable: pulse-train phase tracks arrival delay."""
        fs, f_rf = 250e6, 3.2e6
        det = IQPhaseDetector(f_rf)

        def beam(delay):
            g = GaussPulseGenerator(sigma=20e-9, sample_rate=fs)
            for k in range(32):
                g.schedule(k / f_rf + delay + 1e-7)
            return g.render(0.0, 4000).samples

        p0 = det.measure(beam(0.0), fs)
        p1 = det.measure(beam(5e-9), fs)
        expected_shift = -360.0 * f_rf * 5e-9
        assert (p1 - p0) == pytest.approx(expected_shift, abs=0.2)

    def test_measure_difference_offset_free(self):
        fs, f_rev, h = 250e6, 800e3, 4
        t = np.arange(20000) / fs
        ref = np.sin(TWO_PI * f_rev * t)
        beam = np.sin(TWO_PI * h * f_rev * t + np.radians(30.0))
        det = IQPhaseDetector(h * f_rev)
        diff = det.measure_difference(beam, ref, fs, reference_harmonic=h)
        assert diff == pytest.approx(30.0, abs=1.0)

    def test_too_short_block(self):
        det = IQPhaseDetector(1e6)
        with pytest.raises(SignalError):
            det.measure(np.zeros(4), 250e6)

    def test_silent_block(self):
        det = IQPhaseDetector(1e6)
        with pytest.raises(SignalError):
            det.measure(np.zeros(100), 250e6)

    def test_validation(self):
        with pytest.raises(SignalError):
            IQPhaseDetector(0.0)
