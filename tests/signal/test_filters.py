"""Tests for the display/analysis filters."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SignalError
from repro.signal.filters import moving_average
from repro.signal.interpolation import linear_fetch, linear_fetch_pair


class TestMovingAverage:
    def test_width_one_identity(self):
        x = np.array([1.0, 5.0, -2.0])
        np.testing.assert_array_equal(moving_average(x, 1), x)

    def test_constant_preserved(self):
        x = np.full(20, 3.3)
        np.testing.assert_allclose(moving_average(x, 5), 3.3)

    def test_width_five_interior(self):
        x = np.arange(20.0)
        out = moving_average(x, 5)
        # Linear data: centred average equals the point itself.
        np.testing.assert_allclose(out[2:-2], x[2:-2])

    def test_edges_shrink_window(self):
        x = np.array([10.0, 0.0, 0.0, 0.0, 0.0])
        out = moving_average(x, 5)
        assert out[0] == pytest.approx(10.0 / 3)  # window [0..2]

    def test_same_length(self):
        assert moving_average(np.arange(7.0), 5).shape == (7,)

    def test_smooths_noise(self, rng):
        x = rng.normal(0, 1, 1000)
        out = moving_average(x, 5)
        assert out.std() < x.std() * 0.6

    def test_validation(self):
        with pytest.raises(SignalError):
            moving_average(np.zeros((2, 2)), 5)
        with pytest.raises(SignalError):
            moving_average(np.zeros(5), 0)

    @given(st.integers(min_value=1, max_value=21))
    def test_mean_preserving_on_constant(self, width):
        x = np.full(50, 7.7)
        np.testing.assert_allclose(moving_average(x, width), 7.7)


class TestLinearFetch:
    def test_pair(self):
        assert linear_fetch_pair(0.0, 10.0, 0.25) == pytest.approx(2.5)
        assert linear_fetch_pair(4.0, 4.0, 0.9) == 4.0

    def test_pair_fraction_bounds(self):
        with pytest.raises(SignalError):
            linear_fetch_pair(0.0, 1.0, -0.1)
        with pytest.raises(SignalError):
            linear_fetch_pair(0.0, 1.0, 1.5)

    def test_array_fetch(self):
        arr = np.array([0.0, 10.0, 20.0])
        assert linear_fetch(arr, 1.5) == pytest.approx(15.0)
        np.testing.assert_allclose(linear_fetch(arr, np.array([0.5, 2.0])), [5.0, 20.0])

    def test_array_bounds(self):
        with pytest.raises(SignalError):
            linear_fetch(np.zeros(3), 2.5)
        with pytest.raises(SignalError):
            linear_fetch(np.zeros(3), -0.1)
