"""Tests for the bit-accurate ADC and DAC converter models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SignalError
from repro.signal.adc import ADC
from repro.signal.dac import DAC
from repro.signal.waveform import Waveform


class TestADC:
    def test_fmc151_defaults(self):
        adc = ADC()
        assert adc.bits == 14
        assert adc.vpp == 2.0
        assert adc.sample_rate == 250e6
        assert adc.lsb == pytest.approx(2.0 / 2**14)

    def test_quantisation_error_bounded(self):
        adc = ADC()
        v = np.linspace(-0.99, 0.99, 1001)
        q = adc.quantize(v)
        assert np.abs(q - v).max() <= adc.lsb / 2 + 1e-12

    def test_clipping_at_rails(self):
        adc = ADC()
        q = adc.quantize(np.array([-5.0, 5.0]))
        assert q[0] == pytest.approx(adc.code_min * adc.lsb)
        assert q[1] == pytest.approx(adc.code_max * adc.lsb)

    def test_codes_integer_range(self):
        adc = ADC(bits=8, vpp=2.0)
        codes = adc.convert(np.linspace(-2, 2, 100))
        assert codes.min() >= -128 and codes.max() <= 127

    def test_code_roundtrip(self):
        adc = ADC()
        codes = adc.convert([0.25])
        assert adc.codes_to_volts(codes)[0] == pytest.approx(0.25, abs=adc.lsb)

    def test_noise_requires_rng(self):
        with pytest.raises(SignalError):
            ADC(noise_rms=1e-3)

    def test_noise_changes_output(self, rng):
        adc = ADC(noise_rms=1e-2, rng=rng)
        a = adc.quantize(np.full(100, 0.5))
        assert np.unique(a).size > 1

    def test_sample_waveform_rate_check(self):
        adc = ADC(sample_rate=250e6)
        wf = Waveform(np.zeros(10), sample_rate=100e6)
        with pytest.raises(SignalError):
            adc.sample_waveform(wf)

    def test_sample_function(self):
        adc = ADC()
        wf = adc.sample_function(lambda t: 0.5 * np.sin(2 * np.pi * 1e6 * t), 0.0, 1000)
        assert len(wf) == 1000
        assert np.abs(wf.samples).max() <= 0.5 + adc.lsb

    def test_aperture_jitter_on_fast_signal(self, rng):
        adc = ADC(aperture_jitter_rms=100e-12, rng=rng)
        f = 10e6
        wf = adc.sample_function(lambda t: 0.9 * np.sin(2 * np.pi * f * t), 0.0, 5000)
        ideal = 0.9 * np.sin(2 * np.pi * f * (np.arange(5000) / 250e6))
        err = wf.samples - ideal
        # Jitter-induced noise should be visible but small.
        assert 1e-4 < err.std() < 0.05

    def test_invalid_bits(self):
        with pytest.raises(SignalError):
            ADC(bits=0)
        with pytest.raises(SignalError):
            ADC(bits=64)

    @given(st.floats(min_value=-1.0, max_value=1.0))
    def test_quantise_idempotent(self, v):
        adc = ADC()
        once = adc.quantize(v)
        twice = adc.quantize(once)
        assert np.all(once == twice)


class TestDAC:
    def test_fmc151_defaults(self):
        dac = DAC()
        assert dac.bits == 16
        assert dac.vpp == 2.0
        assert dac.lsb == pytest.approx(2.0 / 2**16)

    def test_convert_quantises(self):
        dac = DAC()
        out = dac.convert(np.array([0.1234567]))
        assert abs(out[0] - 0.1234567) <= dac.lsb / 2

    def test_clipping(self):
        dac = DAC()
        out = dac.convert(np.array([3.0, -3.0]))
        assert out[0] == pytest.approx(dac.code_max * dac.lsb)
        assert out[1] == pytest.approx(dac.code_min * dac.lsb)

    def test_runtime_scale(self):
        dac = DAC()
        dac.set_scale(0.5)
        out = dac.convert(np.array([0.8]))
        assert out[0] == pytest.approx(0.4, abs=dac.lsb)

    def test_render_waveform(self):
        dac = DAC()
        wf = dac.render_waveform(np.array([0.1, 0.2]), t0=1.0)
        assert wf.t0 == 1.0
        assert wf.sample_rate == 250e6

    def test_zero_order_hold(self):
        dac = DAC()
        out = dac.reconstruct(np.array([0.5, -0.5]), oversample=3)
        assert out.shape == (6,)
        np.testing.assert_allclose(out[:3], out[0])

    def test_reconstruct_oversample_validation(self):
        with pytest.raises(SignalError):
            DAC().reconstruct(np.zeros(2), oversample=0)

    def test_dac_finer_than_adc(self):
        # 16-bit DAC has 4x finer steps than the 14-bit ADC at same Vpp.
        assert DAC().lsb == pytest.approx(ADC().lsb / 4)


class TestScalarFastPaths:
    """The scalar ADC/DAC entry points used by the per-revolution HIL
    loop must agree exactly with the array implementations."""

    def test_adc_convert_scalar_matches_array(self):
        adc = ADC()
        for v in (-2.0, -1.0001, -0.3, 0.0, 1e-5, 0.77, 1.0, 2.5):
            assert adc.convert_scalar(v) == int(adc.convert(v))
            assert adc.quantize_scalar(v) == float(adc.quantize(v))

    def test_adc_scalar_noise_stream_matches(self, rng=None):
        a = ADC(noise_rms=1e-4, rng=np.random.default_rng(9))
        b = ADC(noise_rms=1e-4, rng=np.random.default_rng(9))
        vs = [0.1, -0.4, 0.9, 0.0]
        got = [a.convert_scalar(v) for v in vs]
        want = [int(b.convert(v)) for v in vs]
        assert got == want

    def test_dac_scalar_matches_array(self):
        dac = DAC()
        for v in (-3.0, -1.0, -0.2, 0.0, 0.5, 1.0, 3.0):
            assert dac.volts_to_codes_scalar(v) == int(dac.volts_to_codes(v))
            assert dac.convert_scalar(v) == float(dac.convert(v))

    def test_scalar_clipping(self):
        adc = ADC()
        full = 2 ** (adc.bits - 1)
        assert adc.convert_scalar(100.0) == full - 1
        assert adc.convert_scalar(-100.0) == -full
