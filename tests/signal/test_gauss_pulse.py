"""Tests for the Gaussian beam-pulse generator."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.signal.gauss_pulse import GaussPulseGenerator, gaussian_pulse_table


class TestPulseTable:
    def test_peak_and_symmetry(self):
        table = gaussian_pulse_table(sigma=20e-9, sample_rate=250e6, amplitude=0.8)
        assert table.max() == pytest.approx(0.8)
        np.testing.assert_allclose(table, table[::-1])

    def test_length_scales_with_sigma(self):
        t1 = gaussian_pulse_table(10e-9, 250e6)
        t2 = gaussian_pulse_table(20e-9, 250e6)
        assert len(t2) > len(t1)

    def test_edges_near_zero(self):
        table = gaussian_pulse_table(20e-9, 250e6, n_sigmas=4.0)
        assert table[0] < 1e-3 * table.max()

    def test_invalid_sigma(self):
        with pytest.raises(SignalError):
            gaussian_pulse_table(0.0, 250e6)


class TestGenerator:
    def test_pulse_at_trigger_time(self):
        g = GaussPulseGenerator(sigma=20e-9, sample_rate=250e6)
        g.schedule(1e-6)
        wf = g.render(0.0, 500)
        peak_time = wf.time_axis()[np.argmax(wf.samples)]
        assert peak_time == pytest.approx(1e-6, abs=1 / 250e6)

    def test_subsample_trigger_shifts_samples(self):
        g1 = GaussPulseGenerator(sigma=20e-9, sample_rate=250e6)
        g2 = GaussPulseGenerator(sigma=20e-9, sample_rate=250e6)
        g1.schedule(1e-6)
        g2.schedule(1e-6 + 2e-9)  # half a sample later
        w1 = g1.render(0.0, 500)
        w2 = g2.render(0.0, 500)
        assert not np.allclose(w1.samples, w2.samples)
        # Centroid moves by the sub-sample amount.
        t = w1.time_axis()
        c1 = np.sum(t * w1.samples) / w1.samples.sum()
        c2 = np.sum(t * w2.samples) / w2.samples.sum()
        assert c2 - c1 == pytest.approx(2e-9, abs=0.2e-9)

    def test_pulse_spanning_blocks(self):
        g = GaussPulseGenerator(sigma=20e-9, sample_rate=250e6)
        g.schedule(1e-6)  # sample 250: pulse spans samples ~230..270
        a = g.render(0.0, 250)
        b = g.render(250 / 250e6, 250)
        joined = np.concatenate([a.samples, b.samples])
        whole = GaussPulseGenerator(sigma=20e-9, sample_rate=250e6)
        whole.schedule(1e-6)
        ref = whole.render(0.0, 500)
        np.testing.assert_allclose(joined, ref.samples, atol=1e-12)

    def test_overlapping_pulses_sum(self):
        g = GaussPulseGenerator(sigma=20e-9, sample_rate=250e6, amplitude=1.0)
        g.schedule(1e-6)
        g.schedule(1e-6 + 10e-9)
        wf = g.render(0.0, 500)
        assert wf.samples.max() > 1.5  # constructive overlap

    def test_past_trigger_rejected(self):
        g = GaussPulseGenerator(sigma=20e-9, sample_rate=250e6)
        g.render(0.0, 1000)
        with pytest.raises(SignalError):
            g.schedule(1e-6)  # 4-sigma tail already rendered

    def test_out_of_order_blocks_rejected(self):
        g = GaussPulseGenerator(sigma=20e-9, sample_rate=250e6)
        g.render(0.0, 500)
        with pytest.raises(SignalError):
            g.render(0.0, 500)

    def test_pending_triggers_discarded_after_render(self):
        g = GaussPulseGenerator(sigma=20e-9, sample_rate=250e6)
        g.schedule(1e-6)
        assert g.pending_triggers == [1e-6]
        g.render(0.0, 1000)  # pulse fully rendered
        assert g.pending_triggers == []

    def test_amplitude_runtime_adjust(self):
        g = GaussPulseGenerator(sigma=20e-9, sample_rate=250e6, amplitude=1.0)
        g.set_amplitude(0.25)
        g.schedule(1e-6)
        wf = g.render(0.0, 500)
        assert wf.samples.max() == pytest.approx(0.25, rel=1e-6)

    def test_empty_render(self):
        g = GaussPulseGenerator(sigma=20e-9, sample_rate=250e6)
        wf = g.render(0.0, 0)
        assert len(wf) == 0
