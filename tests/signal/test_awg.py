"""Tests for the AWG phase-jump pattern and transport delay."""

import math

import numpy as np
import pytest

from repro.errors import SignalError
from repro.signal.awg import PhaseJumpPattern, TransportDelay


class TestPhaseJumpPattern:
    def test_zero_before_start(self):
        p = PhaseJumpPattern(8.0, toggle_period=0.05, start_time=0.01)
        assert p.phase_deg_at(0.0) == 0.0
        assert p.phase_deg_at(0.00999) == 0.0

    def test_toggles_every_period(self):
        p = PhaseJumpPattern(8.0, toggle_period=0.05, start_time=0.0)
        assert p.phase_deg_at(0.01) == 8.0   # first window: jumped
        assert p.phase_deg_at(0.06) == 0.0   # second window: back
        assert p.phase_deg_at(0.11) == 8.0   # third: jumped again

    def test_paper_cadence(self):
        # "toggled every twentieth of a second": 20 toggles per second.
        p = PhaseJumpPattern(8.0)
        toggles = p.toggle_times(1.0)
        assert len(toggles) == 20

    def test_radians_conversion(self):
        p = PhaseJumpPattern(8.0, start_time=0.0)
        assert p.phase_rad_at(0.01) == pytest.approx(math.radians(8.0))
        assert p(0.01) == pytest.approx(math.radians(8.0))

    def test_vectorised(self):
        p = PhaseJumpPattern(8.0, toggle_period=0.05, start_time=0.0)
        t = np.array([0.01, 0.06, 0.11])
        np.testing.assert_allclose(p.phase_deg_at(t), [8.0, 0.0, 8.0])

    def test_toggle_times_window(self):
        p = PhaseJumpPattern(8.0, toggle_period=0.05, start_time=0.005)
        times = p.toggle_times(0.16)
        np.testing.assert_allclose(times, [0.005, 0.055, 0.105, 0.155])

    def test_invalid_period(self):
        with pytest.raises(SignalError):
            PhaseJumpPattern(8.0, toggle_period=0.0)


class TestTransportDelay:
    def test_shifts_in_time(self):
        p = PhaseJumpPattern(8.0, toggle_period=0.05, start_time=0.0)
        delayed = TransportDelay(p, delay=0.02)
        # At t=0.01 the delayed path still sees the pre-start value.
        assert delayed(0.01) == 0.0
        assert delayed(0.03) == pytest.approx(math.radians(8.0))

    def test_zero_delay_identity(self):
        p = PhaseJumpPattern(8.0, start_time=0.0)
        d = TransportDelay(p, delay=0.0)
        for t in (0.01, 0.06, 0.11):
            assert d(t) == p(t)

    def test_negative_delay_rejected(self):
        with pytest.raises(SignalError):
            TransportDelay(lambda t: t, delay=-1.0)
