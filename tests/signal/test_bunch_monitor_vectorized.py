"""Vectorised local-threshold re-expansion: bit-exact vs the scalar walk.

``detect_pulses`` widens each above-threshold region to its *local*
threshold's crossing points.  The production path does this with
``searchsorted`` over the at-or-below indices; these tests pin it
bit-for-bit to the straightforward sample-by-sample walk it replaced.
"""

import numpy as np

from repro.signal.bunch_monitor import (
    _expand_region,
    _expand_region_scalar,
    detect_pulses,
)
from repro.signal.parametric_pulse import ParametricPulseGenerator
from repro.signal.waveform import Waveform


def _regions(samples, threshold):
    """Contiguous above-threshold runs, as detect_pulses finds them."""
    above = samples > threshold
    edges = np.diff(above.astype(np.int8))
    starts = list(np.nonzero(edges == 1)[0] + 1)
    stops = list(np.nonzero(edges == -1)[0] + 1)
    if above[0]:
        starts.insert(0, 0)
    if above[-1]:
        stops.append(samples.size)
    return list(zip(starts, stops))


class TestExpandRegionParity:
    def test_random_waveforms_bit_exact(self):
        rng = np.random.default_rng(42)
        for _ in range(200):
            samples = rng.random(rng.integers(4, 200))
            threshold = float(rng.uniform(0.05, 0.95))
            local = threshold * float(rng.uniform(0.3, 1.0))
            for start, stop in _regions(samples, threshold):
                assert _expand_region(samples, start, stop, local) == \
                    _expand_region_scalar(samples, start, stop, local)

    def test_expansion_hits_array_edges(self):
        # Everything above the local threshold: expand to the full array.
        samples = np.ones(32)
        assert _expand_region(samples, 10, 12, 0.5) == (0, 32)
        assert _expand_region_scalar(samples, 10, 12, 0.5) == (0, 32)

    def test_no_expansion_needed(self):
        samples = np.array([0.0, 0.0, 1.0, 1.0, 0.0, 0.0])
        assert _expand_region(samples, 2, 4, 0.5) == (2, 4)
        assert _expand_region_scalar(samples, 2, 4, 0.5) == (2, 4)

    def test_asymmetric_expansion(self):
        # Local threshold below the global one: the region grows into
        # the skirt on both sides, by different amounts.
        samples = np.array([0.0, 0.3, 0.6, 1.0, 0.6, 0.3, 0.2, 0.0])
        got = _expand_region(samples, 2, 5, 0.25)
        assert got == _expand_region_scalar(samples, 2, 5, 0.25)
        assert got == (1, 6)


class TestDetectPulsesUnchanged:
    def test_pulse_train_measurements_stable(self):
        """End-to-end: varying-height pulses exercise the re-expansion."""
        centres = [0.4e-6, 1.1e-6, 1.9e-6]
        generator = ParametricPulseGenerator()
        for centre, amplitude in zip(centres, (1.0, 0.5, 0.8)):
            generator.schedule(centre, sigma=30e-9, amplitude=amplitude)
        wf = generator.render(0.0, 600)
        pulses = detect_pulses(wf, threshold_fraction=0.2)
        assert len(pulses) == 3
        for pulse, centre in zip(pulses, centres):
            assert abs(pulse.centre - centre) < 3e-9
            assert abs(pulse.rms_width - 30e-9) < 3e-9

    def test_plateau_at_threshold_boundary(self):
        # Samples exactly at the local threshold terminate the walk
        # (strict > in the scalar loop, <= in the vectorised crossing
        # set) — the historically easy place to drift off by one.
        samples = np.array([0.2, 0.2, 0.9, 1.0, 0.9, 0.2, 0.2])
        wf = Waveform(samples, 250e6)
        (pulse,) = detect_pulses(wf, threshold_fraction=0.2)
        assert pulse.peak == 1.0
