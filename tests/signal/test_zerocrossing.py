"""Tests for the zero-crossing and period-length detectors."""

import numpy as np
import pytest

from repro.constants import TWO_PI
from repro.errors import SignalError
from repro.signal.zerocrossing import PeriodLengthDetector, ZeroCrossingDetector


def sine(f, fs, n, phase=0.0, amp=1.0):
    return amp * np.sin(TWO_PI * f * np.arange(n) / fs + phase)


class TestZeroCrossingDetector:
    def test_detects_rising_crossings_only(self):
        zcd = ZeroCrossingDetector()
        fs, f = 250e6, 1e6
        crossings = zcd.feed(sine(f, fs, 1000))
        # 1000 samples = 4 periods: rising crossings at 0(not counted,
        # no preceding negative), 250, 500, 750.
        assert len(crossings) == 3
        np.testing.assert_allclose(crossings, [250.0, 500.0, 750.0], atol=0.01)

    def test_subsample_interpolation(self):
        zcd = ZeroCrossingDetector()
        fs, f = 250e6, 800e3  # period 312.5 samples: crossings at x.5
        crossings = zcd.feed(sine(f, fs, 1000, phase=0.001))
        assert len(crossings) >= 2
        # Fractional part should track the 312.5-sample period.
        assert crossings[1] - crossings[0] == pytest.approx(312.5, abs=0.01)

    def test_state_across_blocks(self):
        zcd = ZeroCrossingDetector()
        fs, f = 250e6, 1e6
        s = sine(f, fs, 1000)
        all_at_once = ZeroCrossingDetector().feed(s)
        chunked = np.concatenate([zcd.feed(chunk) for chunk in np.array_split(s, 13)])
        np.testing.assert_allclose(chunked, all_at_once, atol=1e-9)

    def test_last_crossing_tracked(self):
        zcd = ZeroCrossingDetector()
        zcd.feed(sine(1e6, 250e6, 1000))
        assert zcd.last_crossing == pytest.approx(750.0, abs=0.01)

    def test_empty_feed(self):
        zcd = ZeroCrossingDetector()
        assert zcd.feed(np.array([])).size == 0

    def test_dc_signal_no_crossings(self):
        zcd = ZeroCrossingDetector()
        assert zcd.feed(np.full(100, 0.5)).size == 0

    def test_hysteresis_suppresses_noise(self):
        rng = np.random.default_rng(5)
        fs, f = 250e6, 1e6
        noisy = sine(f, fs, 2000) + rng.normal(0, 0.02, 2000)
        plain = ZeroCrossingDetector().feed(noisy)
        filtered = ZeroCrossingDetector(hysteresis=0.1).feed(noisy)
        assert len(filtered) <= len(plain)
        # Every filtered crossing sits on a true period boundary (multiples
        # of 250 samples); no double-triggers from noise on the zero line.
        residuals = np.abs(filtered - np.round(filtered / 250.0) * 250.0)
        assert residuals.max() < 5.0
        assert len(filtered) in (7, 8)  # 8 period boundaries, first optional


class TestPeriodLengthDetector:
    def test_not_ready_before_four_periods(self):
        pld = PeriodLengthDetector(250e6, average_over=4)
        pld.feed(sine(800e3, 250e6, 700))  # ~2.2 periods
        assert not pld.ready
        with pytest.raises(SignalError):
            pld.period_samples()

    def test_paper_four_period_average(self):
        pld = PeriodLengthDetector(250e6, average_over=4)
        pld.feed(sine(800e3, 250e6, 2000))  # 6.4 periods
        assert pld.ready
        assert pld.period_samples() == pytest.approx(312.5, abs=0.01)
        assert pld.frequency() == pytest.approx(800e3, rel=1e-5)

    def test_period_seconds(self):
        pld = PeriodLengthDetector(250e6)
        pld.feed(sine(800e3, 250e6, 2000))
        assert pld.period_seconds() == pytest.approx(1.25e-6, rel=1e-5)

    def test_tracks_frequency_change(self):
        pld = PeriodLengthDetector(250e6, average_over=4)
        pld.feed(sine(800e3, 250e6, 2000))
        f1 = pld.frequency()
        # Switch to 1 MHz: after 5+ new periods, the average reflects it.
        pld.feed(sine(1e6, 250e6, 2000))
        assert pld.frequency() == pytest.approx(1e6, rel=5e-3)
        assert pld.frequency() != pytest.approx(f1, rel=1e-4)

    def test_crossing_time(self):
        pld = PeriodLengthDetector(250e6)
        pld.feed(sine(1e6, 250e6, 1000))
        assert pld.last_crossing_time == pytest.approx(750 / 250e6, rel=1e-6)

    def test_no_crossing_yet_raises(self):
        pld = PeriodLengthDetector(250e6)
        with pytest.raises(SignalError):
            _ = pld.last_crossing_index

    def test_quantised_input_accuracy(self):
        """With 14-bit quantised input the detector still finds 800 kHz to
        ppm accuracy — the rationale for the 4-period average."""
        from repro.signal.adc import ADC

        adc = ADC()
        pld = PeriodLengthDetector(250e6)
        pld.feed(adc.quantize(sine(800e3, 250e6, 4000, amp=0.9)))
        assert pld.frequency() == pytest.approx(800e3, rel=1e-4)

    def test_validation(self):
        with pytest.raises(SignalError):
            PeriodLengthDetector(0.0)
        with pytest.raises(SignalError):
            PeriodLengthDetector(1e6, average_over=0)


class _NaiveZeroCrossingDetector:
    """Sample-by-sample reference for the vectorized detector."""

    def __init__(self, hysteresis=0.0):
        self.hysteresis = hysteresis
        self._prev = None
        self._armed = True
        self._consumed = 0
        self.last_crossing = None

    def feed(self, samples):
        out = []
        for s in np.asarray(samples, dtype=float).ravel():
            prev = self._prev
            if prev is not None:
                if self.hysteresis and prev < -self.hysteresis:
                    self._armed = True
                if prev < 0.0 <= s and (self.hysteresis == 0.0 or self._armed):
                    d = s - prev
                    frac = -prev / d if d != 0.0 else 0.0
                    out.append(self._consumed - 1 + frac)
                    self._armed = False
            self._prev = s
            self._consumed += 1
        if out:
            self.last_crossing = out[-1]
        return np.asarray(out)


class TestVectorizedAgainstNaive:
    """The block-vectorized detector must match the per-sample reference
    exactly — crossings, interpolated fractions, and arming state across
    arbitrary block boundaries."""

    @pytest.mark.parametrize("hysteresis", [0.0, 0.05, 0.2])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_blocks(self, hysteresis, seed):
        rng = np.random.default_rng(seed)
        signal = np.sin(np.arange(3000) * 0.021) + rng.normal(0, 0.15, 3000)
        fast = ZeroCrossingDetector(hysteresis=hysteresis)
        naive = _NaiveZeroCrossingDetector(hysteresis=hysteresis)
        i = 0
        while i < signal.size:
            n = int(rng.integers(1, 200))
            block = signal[i:i + n]
            got = fast.feed(block)
            want = naive.feed(block)
            assert np.array_equal(got, want)
            i += n
        assert fast.last_crossing == naive.last_crossing
        assert fast.samples_consumed == naive._consumed

    def test_arm_at_candidate_index_counts(self):
        # A dip below -hyst at the very sample that then crosses zero:
        # the sequential detector arms before it checks, so this fires.
        d = ZeroCrossingDetector(hysteresis=0.1)
        d.feed([0.5])                 # starts disarmed after no crossing? armed=True initially
        d.feed([0.3, 0.2, 0.1])       # never dips: still armed from init
        first = d.feed([-0.2, 0.4])   # fires (initial arm), disarms
        assert first.size == 1
        second = d.feed([-0.05, 0.4])  # shallow dip: stays disarmed
        assert second.size == 0
        third = d.feed([-0.2, 0.4])   # deep dip re-arms at crossing index
        assert third.size == 1

    def test_single_sample_blocks_equal_one_block(self):
        signal = np.sin(np.arange(500) * 0.07)
        one = ZeroCrossingDetector(hysteresis=0.1).feed(signal)
        stream = ZeroCrossingDetector(hysteresis=0.1)
        per_sample = np.concatenate([stream.feed([v]) for v in signal])
        assert np.array_equal(one, per_sample)
