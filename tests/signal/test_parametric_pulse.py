"""Tests for the parametric pulse generator and the bunch-shape monitor
(the Section VI "parametric version of the Gauss pulse" extension)."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.signal.bunch_monitor import detect_pulses
from repro.signal.parametric_pulse import ParametricPulseGenerator
from repro.signal.waveform import Waveform


class TestParametricGenerator:
    def test_per_pulse_width(self):
        g = ParametricPulseGenerator()
        g.schedule(0.5e-6, sigma=10e-9, amplitude=0.8)
        g.schedule(1.5e-6, sigma=40e-9, amplitude=0.8)
        wf = g.render(0.0, 500)
        pulses = detect_pulses(wf)
        assert len(pulses) == 2
        assert pulses[1].rms_width > 3 * pulses[0].rms_width

    def test_matched_scheduling_conserves_area(self):
        g = ParametricPulseGenerator(reference_sigma=25e-9, reference_amplitude=0.8)
        g.schedule_matched(0.5e-6, sigma=12.5e-9)
        g.schedule_matched(1.5e-6, sigma=50e-9)
        wf = g.render(0.0, 500)
        # Constant charge at the generator level: integrate each pulse
        # window directly (the monitor's thresholded area clips tails).
        fs = 250e6
        narrow = wf.samples[: int(1.0e-6 * fs)].sum() / fs
        wide = wf.samples[int(1.0e-6 * fs):].sum() / fs
        assert narrow == pytest.approx(wide, rel=0.01)
        pulses = detect_pulses(wf, threshold_fraction=0.05)
        assert len(pulses) == 2
        # Narrow pulse is taller.
        assert pulses[0].peak > 2 * pulses[1].peak

    def test_streaming_blocks(self):
        g1 = ParametricPulseGenerator()
        g1.schedule(1e-6, 20e-9, 1.0)
        whole = g1.render(0.0, 600).samples
        g2 = ParametricPulseGenerator()
        g2.schedule(1e-6, 20e-9, 1.0)
        chunked = np.concatenate(
            [g2.render(0.0, 200).samples,
             g2.render(200 / 250e6, 200).samples,
             g2.render(400 / 250e6, 200).samples]
        )
        np.testing.assert_allclose(chunked, whole, atol=1e-12)

    def test_validation(self):
        g = ParametricPulseGenerator()
        with pytest.raises(SignalError):
            g.schedule(1e-6, sigma=0.0, amplitude=1.0)
        g.render(0.0, 1000)
        with pytest.raises(SignalError):
            g.schedule(1e-6, sigma=5e-9, amplitude=1.0)  # in the past
        with pytest.raises(SignalError):
            g.render(0.0, 10)  # out of order
        with pytest.raises(SignalError):
            ParametricPulseGenerator(sample_rate=0.0)


class TestBunchMonitor:
    def test_width_accuracy(self):
        for sigma in (10e-9, 25e-9, 40e-9):
            g = ParametricPulseGenerator()
            g.schedule(1e-6, sigma, 0.8)
            wf = g.render(0.0, 1000)
            m = detect_pulses(wf, threshold_fraction=0.2)
            assert len(m) == 1
            assert m[0].rms_width == pytest.approx(sigma, rel=0.02)

    def test_centre_accuracy(self):
        g = ParametricPulseGenerator()
        g.schedule(1.0005e-6, 20e-9, 0.8)
        wf = g.render(0.0, 1000)
        m = detect_pulses(wf)
        assert m[0].centre == pytest.approx(1.0005e-6, abs=0.2e-9)

    def test_pulse_train_counted(self):
        g = ParametricPulseGenerator()
        for k in range(8):
            g.schedule(0.3e-6 + k * 0.4e-6, 15e-9, 0.8)
        wf = g.render(0.0, 1000)
        assert len(detect_pulses(wf)) == 8

    def test_empty_and_flat(self):
        assert detect_pulses(Waveform(np.zeros(100), 250e6)) == []
        assert detect_pulses(Waveform(np.array([]), 250e6)) == []

    def test_threshold_validation(self):
        wf = Waveform(np.ones(16), 250e6)
        with pytest.raises(SignalError):
            detect_pulses(wf, threshold_fraction=0.0)
        with pytest.raises(SignalError):
            detect_pulses(wf, threshold_fraction=1.0)

    def test_quadrupole_mode_visible_in_widths(self, ring, ion, rf, gamma0, rng):
        """End-to-end: a bunch-length oscillation in the multi-particle
        model appears as a pulse-width oscillation at the monitor."""
        from repro.physics.distributions import gaussian_bunch
        from repro.physics.multiparticle import MultiParticleTracker

        dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 12e-9, 1500, rng)
        dt *= 0.6  # quadrupole mismatch
        tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)
        rec = tracker.track(2000, f_rev=800e3, record_every=50)

        g = ParametricPulseGenerator(reference_sigma=12e-9)
        for i, sigma in enumerate(rec.std_delta_t):
            g.schedule_matched(0.3e-6 + i * 0.5e-6, float(sigma))
        n = int((0.3e-6 + len(rec.std_delta_t) * 0.5e-6) * 250e6) + 200
        wf = g.render(0.0, n)
        widths = np.array([p.rms_width for p in detect_pulses(wf)])
        assert len(widths) == len(rec.std_delta_t)
        np.testing.assert_allclose(widths, rec.std_delta_t, rtol=0.05)
        # The width trace actually oscillates (quadrupole mode).
        assert widths.max() / widths.min() > 1.2
