"""Tests for the sampled-waveform container."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.signal.waveform import Waveform


class TestBasics:
    def test_duration_and_dt(self):
        wf = Waveform(np.zeros(100), sample_rate=1e6)
        assert wf.duration == pytest.approx(100e-6)
        assert wf.dt == pytest.approx(1e-6)
        assert len(wf) == 100

    def test_time_axis(self):
        wf = Waveform(np.zeros(4), sample_rate=2.0, t0=1.0)
        np.testing.assert_allclose(wf.time_axis(), [1.0, 1.5, 2.0, 2.5])

    def test_requires_1d(self):
        with pytest.raises(SignalError):
            Waveform(np.zeros((2, 2)), sample_rate=1.0)

    def test_requires_positive_rate(self):
        with pytest.raises(SignalError):
            Waveform(np.zeros(4), sample_rate=0.0)


class TestSliceTime:
    def test_inner_window(self):
        wf = Waveform(np.arange(10.0), sample_rate=1.0)
        sub = wf.slice_time(2.0, 5.0)
        np.testing.assert_array_equal(sub.samples, [2.0, 3.0, 4.0])
        assert sub.t0 == pytest.approx(2.0)

    def test_out_of_range(self):
        wf = Waveform(np.arange(10.0), sample_rate=1.0)
        with pytest.raises(SignalError):
            wf.slice_time(-1.0, 5.0)
        with pytest.raises(SignalError):
            wf.slice_time(5.0, 20.0)

    def test_empty_window_rejected(self):
        wf = Waveform(np.arange(10.0), sample_rate=1.0)
        with pytest.raises(SignalError):
            wf.slice_time(5.0, 5.0)


class TestValueAt:
    def test_exact_samples(self):
        wf = Waveform(np.array([0.0, 10.0, 20.0]), sample_rate=1.0)
        assert wf.value_at(1.0) == pytest.approx(10.0)

    def test_interpolated(self):
        wf = Waveform(np.array([0.0, 10.0]), sample_rate=1.0)
        assert wf.value_at(0.25) == pytest.approx(2.5)

    def test_vectorised(self):
        wf = Waveform(np.array([0.0, 10.0, 20.0]), sample_rate=1.0)
        np.testing.assert_allclose(wf.value_at(np.array([0.5, 1.5])), [5.0, 15.0])

    def test_out_of_span(self):
        wf = Waveform(np.zeros(3), sample_rate=1.0)
        with pytest.raises(SignalError):
            wf.value_at(5.0)


class TestConcatenate:
    def test_contiguous(self):
        a = Waveform(np.array([1.0, 2.0]), sample_rate=1.0, t0=0.0)
        b = Waveform(np.array([3.0]), sample_rate=1.0, t0=2.0)
        c = a.concatenate(b)
        np.testing.assert_array_equal(c.samples, [1.0, 2.0, 3.0])

    def test_gap_rejected(self):
        a = Waveform(np.array([1.0, 2.0]), sample_rate=1.0, t0=0.0)
        b = Waveform(np.array([3.0]), sample_rate=1.0, t0=5.0)
        with pytest.raises(SignalError):
            a.concatenate(b)

    def test_rate_mismatch_rejected(self):
        a = Waveform(np.zeros(2), sample_rate=1.0)
        b = Waveform(np.zeros(2), sample_rate=2.0, t0=2.0)
        with pytest.raises(SignalError):
            a.concatenate(b)
