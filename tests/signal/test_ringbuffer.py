"""Tests for the dual-port capture ring buffer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignalError
from repro.signal.ringbuffer import RingBuffer


class TestConstruction:
    def test_paper_capacity_is_power_of_two(self):
        rb = RingBuffer(8192)
        assert rb.capacity == 8192

    @pytest.mark.parametrize("bad", [0, 1, 3, 100, 8191])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(SignalError):
            RingBuffer(bad)


class TestWriteRead:
    def test_simple_roundtrip(self):
        rb = RingBuffer(16)
        rb.write(np.arange(10.0))
        for i in range(10):
            assert rb.read(i) == float(i)

    def test_wraparound(self):
        rb = RingBuffer(8)
        rb.write(np.arange(20.0))
        # Only the last 8 samples (12..19) remain.
        assert rb.oldest_valid_index() == 12
        for i in range(12, 20):
            assert rb.read(i) == float(i)

    def test_read_overwritten_raises(self):
        rb = RingBuffer(8)
        rb.write(np.arange(20.0))
        with pytest.raises(SignalError):
            rb.read(11)

    def test_read_ahead_of_write_raises(self):
        rb = RingBuffer(8)
        rb.write(np.arange(4.0))
        with pytest.raises(SignalError):
            rb.read(4)

    def test_negative_index_raises(self):
        rb = RingBuffer(8)
        rb.write(np.arange(4.0))
        with pytest.raises(SignalError):
            rb.read(-1)

    def test_block_write_larger_than_capacity(self):
        rb = RingBuffer(8)
        rb.write(np.arange(100.0))
        assert rb.write_count == 100
        for i in range(92, 100):
            assert rb.read(i) == float(i)

    def test_multiple_small_writes(self):
        rb = RingBuffer(16)
        for chunk in np.array_split(np.arange(50.0), 7):
            rb.write(chunk)
        for i in range(50 - 16, 50):
            assert rb.read(i) == float(i)

    def test_empty_write_noop(self):
        rb = RingBuffer(8)
        rb.write(np.array([]))
        assert rb.write_count == 0

    def test_read_block(self):
        rb = RingBuffer(16)
        rb.write(np.arange(30.0))
        np.testing.assert_array_equal(rb.read_block(20, 5), np.arange(20.0, 25.0))

    def test_read_block_crossing_wrap(self):
        rb = RingBuffer(8)
        rb.write(np.arange(12.0))
        np.testing.assert_array_equal(rb.read_block(6, 4), [6.0, 7.0, 8.0, 9.0])


class TestInterpolatedFetch:
    def test_midpoint(self):
        rb = RingBuffer(16)
        rb.write(np.array([0.0, 10.0, 20.0]))
        assert rb.fetch_interpolated(0.5) == pytest.approx(5.0)
        assert rb.fetch_interpolated(1.25) == pytest.approx(12.5)

    def test_integer_address(self):
        rb = RingBuffer(16)
        rb.write(np.array([0.0, 10.0, 20.0]))
        assert rb.fetch_interpolated(1.0) == pytest.approx(10.0)

    def test_across_wrap_boundary(self):
        rb = RingBuffer(8)
        rb.write(np.arange(12.0))  # slots now hold 4..11
        assert rb.fetch_interpolated(10.5) == pytest.approx(10.5)

    def test_needs_two_valid_samples(self):
        rb = RingBuffer(8)
        rb.write(np.array([1.0]))
        with pytest.raises(SignalError):
            rb.fetch_interpolated(0.5)  # sample 1 not written yet


class TestSineRoundtrip:
    @settings(max_examples=10, deadline=None)
    @given(n_extra=st.integers(min_value=0, max_value=5000))
    def test_fetch_matches_source_after_any_history(self, n_extra):
        """Property: after arbitrary write history, interpolated fetches
        within the valid window reproduce the source signal."""
        rb = RingBuffer(1024)
        t = np.arange(n_extra + 1024)
        signal = np.sin(0.01 * t)
        rb.write(signal)
        lo = rb.oldest_valid_index()
        addr = lo + 100.25
        expected = np.interp(addr, t, signal)
        assert rb.fetch_interpolated(addr) == pytest.approx(expected, abs=1e-12)
