"""Tests for the DDS signal sources and the synchronised group."""

import math

import numpy as np
import pytest

from repro.constants import TWO_PI, deg_to_rad
from repro.errors import SignalError
from repro.signal.dds import DDS, GroupDDS


class TestDDS:
    def test_generate_sine(self):
        dds = DDS(1e6, amplitude=0.5, sample_rate=100e6)
        wf = dds.generate(1000)
        t = wf.time_axis()
        np.testing.assert_allclose(wf.samples, 0.5 * np.sin(TWO_PI * 1e6 * t), atol=1e-12)

    def test_phase_continuous_blocks(self):
        dds = DDS(1.234e6, sample_rate=100e6)
        a = dds.generate(777)
        b = dds.generate(777)
        joined = a.concatenate(b)
        ref = DDS(1.234e6, sample_rate=100e6).generate(1554)
        np.testing.assert_allclose(joined.samples, ref.samples, atol=1e-9)

    def test_phase_continuous_frequency_change(self):
        dds = DDS(1e6, sample_rate=100e6)
        dds.generate(500)
        v_before = dds.voltage_at(dds.current_time)
        dds.set_frequency(2e6)
        v_after = dds.voltage_at(dds.current_time)
        assert v_after == pytest.approx(v_before, abs=1e-9)

    def test_analytic_matches_streamed(self):
        dds = DDS(800e3, amplitude=0.9, sample_rate=250e6)
        analytic = dds.voltage_at(np.arange(100) / 250e6)
        wf = dds.generate(100)
        np.testing.assert_allclose(wf.samples, analytic, atol=1e-12)

    def test_phase_offset_port(self):
        dds = DDS(1e6, sample_rate=100e6)
        dds.set_phase_offset(math.pi / 2)
        assert dds.voltage_at(0.0) == pytest.approx(1.0)

    def test_nyquist_rejected(self):
        with pytest.raises(SignalError):
            DDS(50e6, sample_rate=100e6)
        dds = DDS(1e6, sample_rate=100e6)
        with pytest.raises(SignalError):
            dds.set_frequency(60e6)

    def test_negative_frequency_rejected(self):
        dds = DDS(1e6, sample_rate=100e6)
        with pytest.raises(SignalError):
            dds.set_frequency(0.0)

    def test_cannot_run_backwards(self):
        dds = DDS(1e6, sample_rate=100e6)
        dds.advance_to(1e-3)
        with pytest.raises(SignalError):
            dds.advance_to(0.5e-3)

    def test_reset_phase(self):
        dds = DDS(1e6, sample_rate=100e6)
        dds.generate(12345)
        dds.reset_phase()
        assert dds.voltage_at(0.0) == pytest.approx(0.0, abs=1e-12)
        assert dds.current_time == 0.0


class TestGroupDDS:
    def test_harmonic_relationship(self):
        group = GroupDDS(800e3, harmonic=4, sample_rate=250e6)
        assert group.gap.frequency == pytest.approx(4 * group.reference.frequency)

    def test_synchronised_zero_crossings(self):
        group = GroupDDS(800e3, harmonic=4, amplitude=1.0, sample_rate=250e6)
        group.reset_phase()
        ref, gap = group.generate(625)  # two reference periods
        # Both start at a rising zero crossing.
        assert ref.samples[0] == pytest.approx(0.0, abs=1e-12)
        assert gap.samples[0] == pytest.approx(0.0, abs=1e-12)
        assert ref.samples[1] > 0 and gap.samples[1] > 0

    def test_gap_phase_drive(self):
        drive = lambda t: deg_to_rad(8.0)
        group = GroupDDS(800e3, harmonic=4, sample_rate=250e6, gap_phase_drive=drive)
        group.reset_phase()
        _, gap = group.generate(10)
        assert gap.samples[0] == pytest.approx(math.sin(deg_to_rad(8.0)), abs=1e-9)

    def test_control_phase_adds_to_drive(self):
        group = GroupDDS(800e3, harmonic=4, sample_rate=250e6,
                         gap_phase_drive=lambda t: 0.1)
        group.reset_phase()
        group.set_control_phase(0.2)
        assert group.gap.phase_offset == pytest.approx(0.3)

    def test_frequency_ramp_updates_both(self):
        group = GroupDDS(800e3, harmonic=4, sample_rate=250e6)
        group.set_revolution_frequency(900e3)
        assert group.reference.frequency == 900e3
        assert group.gap.frequency == 3.6e6

    def test_invalid_harmonic(self):
        with pytest.raises(SignalError):
            GroupDDS(800e3, harmonic=0)
