"""Tests for FIR design and the beam-phase control filter."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.signal.fir import (
    PhaseControlFilter,
    design_bandpass_fir,
    design_lowpass_fir,
    fir_frequency_response,
)


class TestLowpassDesign:
    def test_dc_gain_unity(self):
        h = design_lowpass_fir(1e3, 100e3, 101)
        assert abs(fir_frequency_response(h, 100e3, 0.0)[0]) == pytest.approx(1.0)

    def test_stopband_attenuation(self):
        h = design_lowpass_fir(1e3, 100e3, 201)
        stop = abs(fir_frequency_response(h, 100e3, 10e3)[0])
        assert stop < 0.01

    def test_passband_flat(self):
        h = design_lowpass_fir(5e3, 100e3, 201)
        passband = abs(fir_frequency_response(h, 100e3, np.array([100.0, 500.0, 1000.0])))
        np.testing.assert_allclose(passband, 1.0, atol=0.01)

    def test_validation(self):
        with pytest.raises(SignalError):
            design_lowpass_fir(60e3, 100e3, 101)  # above Nyquist
        with pytest.raises(SignalError):
            design_lowpass_fir(1e3, 100e3, 100)  # even taps
        with pytest.raises(SignalError):
            design_lowpass_fir(0.0, 100e3, 101)


class TestBandpassDesign:
    def test_band_centre_passes(self):
        h = design_bandpass_fir(1e3, 2e3, 100e3, 401)
        centre = abs(fir_frequency_response(h, 100e3, 1.5e3)[0])
        assert centre > 0.8

    def test_rejects_dc_and_high(self):
        h = design_bandpass_fir(1e3, 2e3, 100e3, 401)
        assert abs(fir_frequency_response(h, 100e3, 0.0)[0]) < 0.01
        assert abs(fir_frequency_response(h, 100e3, 20e3)[0]) < 0.05

    def test_validation(self):
        with pytest.raises(SignalError):
            design_bandpass_fir(2e3, 1e3, 100e3, 101)


class TestPhaseControlFilter:
    def test_paper_defaults(self):
        f = PhaseControlFilter()
        assert f.f_pass == 1.4e3
        assert f.gain == -5.0
        assert f.recursion_factor == 0.99

    def test_unity_normalisation_at_f_pass(self):
        f = PhaseControlFilter(gain=-5.0)
        assert abs(f.frequency_response(1.4e3))[0] == pytest.approx(5.0, rel=1e-9)

    def test_dc_blocked(self):
        f = PhaseControlFilter()
        # Constant input (the dead-time offset of Fig. 5) decays to zero.
        out = f.process(np.full(3000, 42.0))
        assert abs(out[-1]) < 1e-2 * abs(out[0]) + 1e-9

    def test_corner_frequency_near_fs(self):
        # With r = 0.99 at 800 kHz the corner lands right at the
        # synchrotron frequency — why the paper's parameters are optimal.
        f = PhaseControlFilter(recursion_factor=0.99, sample_rate=800e3)
        assert f.corner_frequency() == pytest.approx(1273.0, rel=0.01)

    def test_phase_lead_below_corner(self):
        f = PhaseControlFilter(gain=1.0)
        h = f.frequency_response(200.0)[0]
        # Positive (lead) phase at low frequency: differentiator behaviour.
        assert 45.0 < np.degrees(np.angle(h)) <= 90.5

    def test_step_equals_process(self):
        f1 = PhaseControlFilter()
        f2 = PhaseControlFilter()
        x = np.sin(np.arange(100) * 0.01)
        stepped = np.array([f1.step(v) for v in x])
        np.testing.assert_allclose(stepped, f2.process(x), atol=1e-12)

    def test_reset_clears_state(self):
        f = PhaseControlFilter()
        f.step(5.0)
        f.reset()
        assert f.step(0.0) == 0.0

    def test_impulse_response_decays_with_r(self):
        f = PhaseControlFilter(recursion_factor=0.9, sample_rate=800e3, gain=1.0)
        out = f.process(np.concatenate([[1.0], np.zeros(99)]))
        # After the first two taps the response decays geometrically by r.
        ratios = out[4:20] / out[3:19]
        np.testing.assert_allclose(ratios, 0.9, atol=1e-6)

    def test_validation(self):
        with pytest.raises(SignalError):
            PhaseControlFilter(recursion_factor=1.0)
        with pytest.raises(SignalError):
            PhaseControlFilter(f_pass=500e3, sample_rate=800e3)
        with pytest.raises(SignalError):
            PhaseControlFilter(sample_rate=-1.0)


class TestVectorizedProcess:
    """The lfilter-vectorized process() must be bit-identical to the
    scalar step() recurrence, including state carried across blocks."""

    def test_process_bit_exact_with_step(self):
        rng = np.random.default_rng(3)
        x = rng.normal(0, 5.0, 400)
        f_step = PhaseControlFilter()
        f_proc = PhaseControlFilter()
        stepped = np.array([f_step.step(v) for v in x])
        processed = f_proc.process(x)
        assert np.array_equal(stepped, processed)  # exact, not allclose
        assert f_proc._x_prev == f_step._x_prev
        assert f_proc._y_prev == f_step._y_prev

    def test_process_across_blocks(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0, 2.0, 300)
        whole = PhaseControlFilter().process(x)
        chunked = PhaseControlFilter()
        parts = [chunked.process(x[i:i + 37]) for i in range(0, 300, 37)]
        assert np.array_equal(np.concatenate(parts), whole)

    def test_process_empty_block(self):
        f = PhaseControlFilter()
        f.step(1.0)
        out = f.process(np.empty(0))
        assert out.size == 0
        assert f.step(0.0) != 0.0  # state untouched by the empty call
