"""shard_seeds: deterministic, prefix-stable, worker-count independent."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import shard_seeds


class TestShardSeeds:
    def test_deterministic(self):
        assert shard_seeds(7, 5) == shard_seeds(7, 5)

    def test_prefix_stable(self):
        """Growing the workload never changes earlier items' seeds."""
        assert shard_seeds(7, 8)[:3] == shard_seeds(7, 3)

    def test_distinct_across_items_and_bases(self):
        seeds = shard_seeds(7, 16)
        assert len(set(seeds)) == 16
        assert set(seeds).isdisjoint(shard_seeds(8, 16))

    def test_streams_are_independent(self):
        a, b = shard_seeds(0, 2)
        ra = np.random.default_rng(a).normal(size=100)
        rb = np.random.default_rng(b).normal(size=100)
        assert not np.allclose(ra, rb)

    def test_empty_and_invalid(self):
        assert shard_seeds(7, 0) == []
        with pytest.raises(ConfigurationError):
            shard_seeds(7, -1)
