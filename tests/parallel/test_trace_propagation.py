"""Cross-process trace/profile propagation through the sharded pool.

The acceptance contract of the flight recorder: a ``jobs=N`` run whose
dispatch happens inside a parent span produces ONE span tree — a single
trace id, every worker span's parent link resolving back through
``parallel.shard`` to the dispatching span — and the workers' profiler
tables merge home by addition.
"""

import pytest

from repro import obs
from repro.parallel import run_sharded


# -- module-level work functions (must pickle by reference) ---------------

def _traced_shard(x):
    with obs.get_tracer().span("shard_work", item=x):
        pass
    return x


def _profiled_shard(x):
    with obs.profiler().phase("worker_phase"):
        pass
    return x


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSingleTree:
    def test_jobs2_produces_one_trace_tree(self):
        obs.enable(trace=True)
        tracer = obs.tracer()
        with tracer.span("experiment.test") as root:
            results = run_sharded(_traced_shard, [1, 2, 3], jobs=2, primers=())
        assert [r.value for r in results] == [1, 2, 3]
        records = tracer.records
        # Root + per-shard (parallel.shard + shard_work).
        assert len(records) == 1 + 2 * 3
        assert {r.trace_id for r in records} == {root.trace_id}
        by_id = {r.span_id: r for r in records}
        for record in records:
            if record.span_id == root.span_id:
                assert record.parent_id is None
            else:
                # Every other span's parent chain reaches the root.
                hops, current = 0, record
                while current.parent_id is not None:
                    current = by_id[current.parent_id]
                    hops += 1
                    assert hops < 10
                assert current.span_id == root.span_id

    def test_worker_spans_are_tagged(self):
        obs.enable(trace=True)
        with obs.tracer().span("experiment.test"):
            run_sharded(_traced_shard, [1, 2], jobs=2, primers=())
        workers = {
            r.attrs.get("worker")
            for r in obs.tracer().records
            if r.name == "parallel.shard"
        }
        assert None not in workers  # every shard attributed to a pid

    def test_inline_jobs1_builds_the_same_shape(self):
        obs.enable(trace=True)
        tracer = obs.tracer()
        with tracer.span("experiment.test") as root:
            run_sharded(_traced_shard, [1, 2], jobs=1, primers=())
        names = sorted(r.name for r in tracer.records)
        assert names == [
            "experiment.test",
            "parallel.shard", "parallel.shard",
            "shard_work", "shard_work",
        ]
        assert {r.trace_id for r in tracer.records} == {root.trace_id}

    def test_without_parent_span_shards_root_their_own_traces(self):
        obs.enable(trace=True)
        run_sharded(_traced_shard, [1, 2], jobs=1, primers=())
        shards = [
            r for r in obs.tracer().records if r.name == "parallel.shard"
        ]
        assert all(r.parent_id is None for r in shards)


class TestProfilePropagation:
    def test_worker_profiles_merge_home(self):
        obs.enable(profile=True)
        results = run_sharded(_profiled_shard, [1, 2, 3, 4], jobs=2, primers=())
        assert [r.value for r in results] == [1, 2, 3, 4]
        entries = obs.profiler().entries()
        assert entries["worker_phase"].count == 4
        # The dispatch layer times every shard, worker-side or inline.
        assert entries["parallel.shard"].count == 4
