"""WorkerPool: sharded dispatch, containment, cache safety, telemetry.

Pooled tests fork real worker processes; each keeps the work tiny (a few
microseconds per shard) so the suite stays fast even on one core.
"""

import os
from dataclasses import dataclass

import pytest

from repro import obs
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.parallel import (
    DEFAULT_PRIMERS,
    ShardFailure,
    ShardResult,
    WorkerPool,
    prime_compile_caches,
    raise_on_failures,
    run_sharded,
)


# -- module-level work functions (must pickle by reference) ---------------

def _square(x):
    return x * x


def _boom_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


def _pid_of(_):
    return os.getpid()


def _return_compiled_model(_):
    from repro.cgra.models import compile_beam_model

    return compile_beam_model(n_bunches=1, pipelined=True)


@dataclass
class _Wrapper:
    payload: object


def _return_wrapped_schedule(_):
    from repro.cgra.models import compile_beam_model

    return _Wrapper(compile_beam_model(n_bunches=1, pipelined=True).schedule)


def _cache_probe(_):
    """Report whether this process's model cache was primed before us."""
    from repro.cgra import models

    primed = len(models._MODEL_CACHE) > 0
    model = models.compile_beam_model(n_bunches=1, pipelined=True)
    return {"pid": os.getpid(), "primed": primed, "ticks": model.schedule_length}


def _vector_probe(_):
    """Report kernel-code-cache and plan-cache state of this worker."""
    from repro.cgra import engine_vector
    from repro.cgra.autotune import plan_cache_stats

    return {
        "pid": os.getpid(),
        "kernels": len(engine_vector._KERNEL_CODE_CACHE),
        "plans": plan_cache_stats()["plans"],
    }


def _observe_some_telemetry(x):
    reg = obs.metrics()
    reg.counter("test_pool_work_total", "t").inc(x, kind="unit")
    reg.gauge("test_pool_last_item", "t").set(x)
    return x


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestInlineDispatch:
    def test_values_in_order(self):
        results = run_sharded(_square, [1, 2, 3, 4], jobs=1, primers=())
        assert [r.value for r in results] == [1, 4, 9, 16]
        assert all(r.ok for r in results)
        assert all(r.worker_pid == os.getpid() for r in results)

    def test_empty_items(self):
        assert run_sharded(_square, [], jobs=1, primers=()) == []

    def test_failure_contained(self):
        results = run_sharded(_boom_on_three, [1, 2, 3, 4], jobs=1, primers=())
        assert [r.ok for r in results] == [True, True, False, True]
        failure = results[2].failure
        assert isinstance(failure, ShardFailure)
        assert failure.index == 2
        assert failure.fn == "_boom_on_three"
        assert failure.error_type == "ValueError"
        assert "boom" in failure.message
        assert "ValueError" in failure.traceback

    def test_raise_on_failures(self):
        results = run_sharded(_boom_on_three, [1, 3], jobs=1, primers=())
        with pytest.raises(ParallelExecutionError) as err:
            raise_on_failures(results, "unit run")
        assert "1/2 shards of unit run failed" in str(err.value)
        assert "shard 1 (_boom_on_three): ValueError: boom" in str(err.value)
        ok = run_sharded(_square, [2, 3], jobs=1, primers=())
        assert raise_on_failures(ok) == [4, 9]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(jobs=0)


class TestHandleGuard:
    """Process-local CGRA handles must never cross the pool boundary."""

    def test_bare_model_rejected(self):
        (result,) = run_sharded(_return_compiled_model, [None], jobs=1)
        assert not result.ok
        assert "process-local CGRA handle" in result.failure.message
        assert "CompiledModel" in result.failure.message

    def test_handle_inside_dataclass_rejected(self):
        (result,) = run_sharded(_return_wrapped_schedule, [None], jobs=1)
        assert not result.ok
        assert "process-local CGRA handle" in result.failure.message

    def test_plain_data_passes(self):
        (result,) = run_sharded(_cache_probe, [None], jobs=1)
        assert result.ok


class TestPooledDispatch:
    def test_parity_with_inline_and_order(self):
        items = list(range(10))
        inline = [r.value for r in run_sharded(_square, items, jobs=1, primers=())]
        pooled = run_sharded(_square, items, jobs=2, primers=())
        assert [r.value for r in pooled] == inline
        assert [r.index for r in pooled] == items
        assert all(r.worker_pid != os.getpid() for r in pooled)

    def test_failure_contained_pool_survives(self):
        with WorkerPool(jobs=2, primers=()) as pool:
            results = pool.map_sharded(_boom_on_three, [1, 2, 3, 4])
            assert [r.ok for r in results] == [True, True, False, True]
            assert results[2].failure.error_type == "ValueError"
            # The pool is still alive and reusable after a shard fault.
            again = pool.map_sharded(_square, [5, 6])
            assert [r.value for r in again] == [25, 36]

    def test_workers_stay_warm_across_dispatches(self):
        with WorkerPool(jobs=2, primers=()) as pool:
            first = {r.value for r in pool.map_sharded(_pid_of, range(8))}
            second = {r.value for r in pool.map_sharded(_pid_of, range(8))}
        # The same two processes serve both dispatches (either dispatch
        # may be drained by one worker under load, so compare the union
        # rather than demanding identical per-dispatch sets).
        assert 1 <= len(first | second) <= 2

    def test_compile_cache_primed_in_workers(self):
        """Satellite regression: workers see a primed per-process cache
        (inherited over fork or rebuilt by the initializer) rather than
        sharing any handle with the parent."""
        prime_compile_caches()  # parent reference compile
        from repro.cgra.models import compile_beam_model

        parent_ticks = compile_beam_model(n_bunches=1, pipelined=True).schedule_length
        results = run_sharded(_cache_probe, [None] * 4, jobs=2)
        probes = raise_on_failures(results, "cache probe")
        assert all(p["primed"] for p in probes)
        assert all(p["pid"] != os.getpid() for p in probes)
        assert all(p["ticks"] == parent_ticks for p in probes)

    def test_default_primers_include_beam_model(self):
        assert prime_compile_caches in DEFAULT_PRIMERS

    def test_vector_kernels_and_plans_primed_in_workers(self):
        """Satellite regression: the default primer also builds the
        vector lowering (kernel code cache), and the parent's autotune
        plans ship with the pool initargs — every worker starts with
        warm codegen caches and the parent's engine decisions."""
        from repro.cgra import clear_cache, compile_beam_model
        from repro.cgra.autotune import plan_for
        from repro.cgra.engine import compile_program

        clear_cache()
        program = compile_program(
            compile_beam_model(n_bunches=1, pipelined=True).schedule
        )
        plan_for(program, batch=8, horizon=4096)  # parent decision to ship
        results = run_sharded(_vector_probe, [None] * 2, jobs=2)
        probes = raise_on_failures(results, "vector probe")
        assert all(p["kernels"] >= 1 for p in probes)
        assert all(p["plans"] >= 1 for p in probes)
        assert all(p["pid"] != os.getpid() for p in probes)


class TestPooledTelemetry:
    def test_worker_metrics_merge_into_parent(self):
        obs.enable()
        reg = obs.metrics()
        results = run_sharded(_observe_some_telemetry, [1, 2, 3, 4], jobs=2, primers=())
        assert all(r.ok for r in results)
        assert all(r.telemetry is not None for r in results)
        # Counters add across workers; the gauge holds the last shard's
        # value because snapshots merge in shard-index order.
        assert reg.counter("test_pool_work_total", "t").value(kind="unit") == 10
        assert reg.gauge("test_pool_last_item", "t").value() == 4
        shards = reg.counter("parallel_shards_total", "")
        assert shards.value(outcome="ok") == 4

    def test_obs_disabled_means_no_snapshots(self):
        results = run_sharded(_observe_some_telemetry, [1, 2], jobs=2, primers=())
        assert all(r.telemetry is None for r in results)

    def test_failed_shard_still_reports_outcome_counter(self):
        obs.enable()
        reg = obs.metrics()
        run_sharded(_boom_on_three, [1, 3], jobs=2, primers=())
        shards = reg.counter("parallel_shards_total", "")
        assert shards.value(outcome="ok") == 1
        assert shards.value(outcome="error") == 1


class TestShardResultShape:
    def test_ok_and_elapsed(self):
        (result,) = run_sharded(_square, [3], jobs=1, primers=())
        assert isinstance(result, ShardResult)
        assert result.ok
        assert result.elapsed_s >= 0.0
