"""Zero-copy shard transport: offload/restore, pool wiring, lifecycle.

Pooled tests fork real workers but ship small task payloads; the result
arrays are sized just over :data:`~repro.parallel.shm.SHM_MIN_BYTES` so
the shared-memory path engages without bulk copies.
"""

import dataclasses
import glob

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import WorkerPool, run_sharded
from repro.parallel import shm
from repro.parallel.shm import (
    SHM_MIN_BYTES,
    ShmArrayRef,
    get_shm_min_bytes,
    offload_arrays,
    restore_arrays,
    set_shm_min_bytes,
    shm_available,
    unlink_block,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

_BIG = SHM_MIN_BYTES // 8 + 16  # float64 elements comfortably over threshold


def _leftover_blocks() -> set:
    return set(glob.glob("/dev/shm/repro*"))


@dataclasses.dataclass
class _Payload:
    big: np.ndarray
    small: np.ndarray
    meta: str


# -- module-level work functions (must pickle by reference) ---------------


def _trace_of(seed):
    rng = np.random.default_rng(seed)
    return {"trace": rng.standard_normal(_BIG), "tag": seed}


def _payload_of(seed):
    rng = np.random.default_rng(seed)
    return _Payload(
        big=rng.standard_normal(_BIG),
        small=np.arange(4, dtype=np.int32),
        meta=f"seed{seed}",
    )


def _tiny_of(seed):
    return {"trace": np.arange(8, dtype=np.float64) * seed}


def _boom(_):
    raise ValueError("shard boom")


class TestOffloadRestore:
    def test_round_trip_dataclass(self):
        value = _payload_of(7)
        out, used = offload_arrays(value, "reprotest_rt_dc")
        assert used
        assert isinstance(out.big, ShmArrayRef)
        # Below-threshold arrays stay in-band.
        assert isinstance(out.small, np.ndarray)
        back = restore_arrays(out, "reprotest_rt_dc")
        assert np.array_equal(back.big, value.big)
        assert back.big.dtype == value.big.dtype
        assert np.array_equal(back.small, value.small)
        assert back.meta == value.meta

    def test_restore_unlinks_block(self):
        out, used = offload_arrays(_trace_of(1), "reprotest_rt_unlink")
        assert used
        restore_arrays(out, "reprotest_rt_unlink")
        # A second attach must fail: the block is gone.
        with pytest.raises(Exception):
            restore_arrays(out, "reprotest_rt_unlink")

    def test_containers(self):
        big = np.random.default_rng(0).standard_normal(_BIG)
        for container in ([big, big * 2], (big, "s"), {"k": big, "j": 1}):
            out, used = offload_arrays(container, "reprotest_rt_cont")
            assert used
            back = restore_arrays(out, "reprotest_rt_cont")
            assert type(back) is type(container)
            if isinstance(container, dict):
                assert np.array_equal(back["k"], big)
                assert back["j"] == 1
            else:
                assert np.array_equal(back[0], big)

    def test_small_arrays_stay_in_band(self):
        value = {"a": np.arange(4)}
        out, used = offload_arrays(value, "reprotest_rt_small")
        assert not used
        assert out is value

    def test_object_arrays_stay_in_band(self):
        value = np.array([None] * (_BIG * 2), dtype=object)
        out, used = offload_arrays(value, "reprotest_rt_obj")
        assert not used

    def test_unlink_block_tolerates_missing(self):
        unlink_block("reprotest_never_created")  # must not raise


class TestConfigurableThreshold:
    @pytest.fixture(autouse=True)
    def _restore_threshold(self):
        saved = get_shm_min_bytes()
        yield
        set_shm_min_bytes(saved)

    def test_default_matches_constant(self):
        assert get_shm_min_bytes() == SHM_MIN_BYTES == 4 * 1024

    def test_zero_threshold_offloads_small_arrays(self):
        set_shm_min_bytes(0)
        value = {"a": np.arange(4, dtype=np.float64)}
        out, used = offload_arrays(value, "reprotest_thr_zero")
        assert used
        assert isinstance(out["a"], ShmArrayRef)
        back = restore_arrays(out, "reprotest_thr_zero")
        assert np.array_equal(back["a"], value["a"])
        assert back["a"].dtype == value["a"].dtype

    def test_huge_threshold_keeps_everything_in_band(self):
        set_shm_min_bytes(1 << 30)
        out, used = offload_arrays(_trace_of(3), "reprotest_thr_huge")
        assert not used

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            set_shm_min_bytes(-1)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "123")
        assert shm._threshold_from_env() == 123
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "junk")
        assert shm._threshold_from_env() == SHM_MIN_BYTES
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "-5")
        assert shm._threshold_from_env() == SHM_MIN_BYTES
        monkeypatch.delenv("REPRO_SHM_MIN_BYTES")
        assert shm._threshold_from_env() == SHM_MIN_BYTES


class TestPoolTransport:
    def test_transport_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(jobs=2, transport="carrier-pigeon")

    def test_auto_resolution(self):
        assert WorkerPool(jobs=1, primers=()).transport == "pickle"
        assert WorkerPool(jobs=2, primers=()).transport == "shm"
        assert WorkerPool(jobs=2, primers=(), transport="pickle").transport == "pickle"

    def test_shm_pickle_parity(self):
        before = _leftover_blocks()
        with WorkerPool(jobs=2, primers=(), transport="shm") as pool:
            via_shm = pool.map_sharded(_trace_of, [1, 2, 3])
        with WorkerPool(jobs=2, primers=(), transport="pickle") as pool:
            via_pickle = pool.map_sharded(_trace_of, [1, 2, 3])
        for a, b in zip(via_shm, via_pickle):
            assert a.ok and b.ok
            assert a.shm is None  # consumed at merge time
            assert a.value["tag"] == b.value["tag"]
            assert np.array_equal(a.value["trace"], b.value["trace"])
            assert a.value["trace"].dtype == b.value["trace"].dtype
        assert _leftover_blocks() == before

    def test_dataclass_results_round_trip(self):
        results = run_sharded(
            _payload_of, [4, 5], jobs=2, primers=(), transport="shm"
        )
        for seed, result in zip([4, 5], results):
            expected = _payload_of(seed)
            assert np.array_equal(result.value.big, expected.big)
            assert result.value.meta == expected.meta

    def test_small_results_fall_back_in_band(self):
        results = run_sharded(_tiny_of, [1, 2], jobs=2, primers=(), transport="shm")
        assert all(r.ok and r.shm is None for r in results)
        assert np.array_equal(results[1].value["trace"], _tiny_of(2)["trace"])

    def test_failures_leak_no_blocks(self):
        before = _leftover_blocks()
        with WorkerPool(jobs=2, primers=(), transport="shm") as pool:
            results = pool.map_sharded(_boom, [1, 2])
        assert all(not r.ok and "shard boom" in r.failure.message for r in results)
        assert _leftover_blocks() == before

    def test_inline_jobs_ignore_shm(self):
        results = run_sharded(_trace_of, [9], jobs=1, primers=(), transport="shm")
        assert results[0].ok and results[0].shm is None
        assert np.array_equal(results[0].value["trace"], _trace_of(9)["trace"])
