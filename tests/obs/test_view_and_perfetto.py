"""Perfetto trace export and the ``python -m repro.obs.view`` CLI."""

import json

from repro import obs
from repro.obs.profile import Profiler
from repro.obs.trace import SpanRecord, Tracer
from repro.obs.view import format_span_tree, load_trace, main


def _record_tree(tracer):
    with tracer.span("experiment.demo"):
        with tracer.span("parallel.shard", shard=0):
            tracer.event("tick")


class TestPerfettoExport:
    def test_document_structure(self, tracing, tmp_path):
        _record_tree(tracing)
        path = obs.export.export_trace_perfetto(tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "profile"}
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.count("X") == 2  # two spans
        assert phases.count("i") == 1  # one instant
        assert "M" in phases  # process_name metadata
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        for event in spans:
            assert event["dur"] >= 0.0 and event["ts"] >= 0.0
            assert event["args"]["trace_id"] and event["args"]["span_id"]

    def test_timestamps_start_at_zero_microseconds(self, tracing, tmp_path):
        _record_tree(tracing)
        path = obs.export.export_trace_perfetto(tmp_path / "t.json")
        doc = json.loads(path.read_text())
        timed = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i")]
        assert min(e["ts"] for e in timed) == 0.0

    def test_worker_records_get_their_own_process_track(self, tracing, tmp_path):
        with tracing.span("parent"):
            pass
        tracing._record(SpanRecord("shard", 0.0, 0.1, {"worker": 3}))
        path = obs.export.export_trace_perfetto(tmp_path / "t.json")
        doc = json.loads(path.read_text())
        meta = {
            e["args"]["name"]: e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert set(meta) == {"parent process", "worker 3"}
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert by_name["shard"]["pid"] == meta["worker 3"]
        assert by_name["parent"]["pid"] == meta["parent process"]
        assert by_name["shard"]["pid"] != by_name["parent"]["pid"]

    def test_dropped_instant_appended(self, tracing, tmp_path):
        t = Tracer(max_records=1)
        t.event("kept")
        t.event("lost")
        path = obs.export.export_trace_perfetto(
            tmp_path / "d.json", tracer=t, profiler=Profiler()
        )
        last = json.loads(path.read_text())["traceEvents"][-1]
        assert last["name"] == "trace.dropped"
        assert last["args"]["dropped_records"] == 1

    def test_profile_table_embedded(self, tmp_path):
        obs.enable(trace=True, profile=True)
        obs.profiler().add("hil.sense", 0.5)
        path = obs.export.export_trace_perfetto(tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert doc["profile"]["hil.sense"]["count"] == 1
        assert doc["profile"]["hil.sense"]["total_s"] == 0.5


class TestLoadTrace:
    def test_perfetto_round_trip_keeps_links_and_attrs(self, tracing, tmp_path):
        _record_tree(tracing)
        path = obs.export.export_trace_perfetto(tmp_path / "t.json")
        spans, profile = load_trace(path)
        assert {s["name"] for s in spans} == {
            "experiment.demo", "parallel.shard", "tick",
        }
        by_name = {s["name"]: s for s in spans}
        assert (
            by_name["parallel.shard"]["parent_id"]
            == by_name["experiment.demo"]["span_id"]
        )
        assert by_name["tick"]["parent_id"] == by_name["parallel.shard"]["span_id"]
        assert by_name["tick"]["event"] is True
        assert by_name["parallel.shard"]["attrs"] == {"shard": 0}
        assert len({s["trace_id"] for s in spans}) == 1

    def test_jsonl_round_trip(self, tracing, tmp_path):
        _record_tree(tracing)
        path = obs.export.export_trace_jsonl(tmp_path / "t.jsonl")
        spans, profile = load_trace(path)
        assert profile == {}
        assert len(spans) == 3
        by_name = {s["name"]: s for s in spans}
        assert (
            by_name["parallel.shard"]["parent_id"]
            == by_name["experiment.demo"]["span_id"]
        )


class TestTreeRendering:
    def test_tree_nests_and_aggregates_same_named_siblings(self, tracing, tmp_path):
        with tracing.span("root"):
            for _ in range(3):
                with tracing.span("child"):
                    pass
        path = obs.export.export_trace_perfetto(tmp_path / "t.json")
        spans, _ = load_trace(path)
        lines = format_span_tree(spans)
        assert "4 record(s), 1 trace id(s)" in lines[0]
        root_line = next(line for line in lines if line.startswith("root"))
        child_line = next(line for line in lines if "child" in line)
        assert "total" in root_line
        assert "×3" in child_line
        assert child_line.startswith("  ")  # indented under root

    def test_cli_prints_tree_and_hot_list(self, tmp_path, capsys):
        obs.enable(trace=True, profile=True)
        with obs.tracer().span("root"):
            pass
        obs.profiler().add("hil.compute", 1.25)
        path = obs.export.export_trace_perfetto(tmp_path / "t.json")
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "root" in out
        assert "hot list" in out and "hil.compute" in out

    def test_cli_reads_jsonl_too(self, tracing, tmp_path, capsys):
        _record_tree(tracing)
        path = obs.export.export_trace_jsonl(tmp_path / "t.jsonl")
        assert main([str(path)]) == 0
        assert "experiment.demo" in capsys.readouterr().out

    def test_cli_unreadable_file_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_cli_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main([str(empty)]) == 0
        assert "no span/event records" in capsys.readouterr().out
