"""Counter/gauge/histogram semantics, labels and no-op mode."""

import math

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry


class TestNoOpMode:
    def test_disabled_writes_are_dropped(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        g = reg.gauge("g")
        h = reg.histogram("h")
        c.inc(10)
        g.set(3.0)
        h.observe(1.0)
        assert c.value() == 0
        assert g.value() == 0
        assert h.count() == 0

    def test_enable_disable_roundtrip(self):
        assert not obs.enabled() and not obs.trace_enabled()
        obs.enable(trace=True)
        assert obs.enabled() and obs.trace_enabled()
        obs.disable()
        assert not obs.enabled() and not obs.trace_enabled()

    def test_values_survive_disable(self, enabled):
        c = enabled.counter("survivor_total")
        c.inc(4)
        obs.disable()
        assert c.value() == 4


class TestCounter:
    def test_inc_and_total(self, enabled):
        c = enabled.counter("ops_total", "desc")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)
        assert c.total() == pytest.approx(3.5)

    def test_labels_are_independent_series(self, enabled):
        c = enabled.counter("labelled_total")
        c.inc(1, channel="ref")
        c.inc(2, channel="gap")
        c.inc(4)
        assert c.value(channel="ref") == 1
        assert c.value(channel="gap") == 2
        assert c.value() == 4
        assert c.total() == 7

    def test_label_order_does_not_matter(self, enabled):
        c = enabled.counter("order_total")
        c.inc(1, a="x", b="y")
        c.inc(1, b="y", a="x")
        assert c.value(a="x", b="y") == 2

    def test_negative_increment_rejected(self, enabled):
        with pytest.raises(ConfigurationError):
            enabled.counter("neg_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self, enabled):
        g = enabled.gauge("level")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value() == pytest.approx(4.0)

    def test_labelled_gauge(self, enabled):
        g = enabled.gauge("per_engine")
        g.set(1.0, engine="python")
        g.set(2.0, engine="cgra")
        assert g.value(engine="python") == 1.0
        assert g.value(engine="cgra") == 2.0


class TestHistogram:
    def test_moments(self, enabled):
        h = enabled.histogram("slack")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(10.0)
        assert h.mean() == pytest.approx(2.5)

    def test_percentiles_interpolate(self, enabled):
        h = enabled.histogram("p")
        h.observe_many(float(v) for v in range(1, 101))
        assert h.percentile(50) == pytest.approx(50.0, rel=0.15)
        assert h.percentile(99) == pytest.approx(99.0, rel=0.15)
        assert h.percentile(0) >= 1.0 - 1e-9
        assert h.percentile(100) == pytest.approx(100.0)

    def test_negative_values_supported(self, enabled):
        h = enabled.histogram("signed")
        h.observe(-50.0)
        h.observe(50.0)
        s = h.series()[()]
        assert s["count"] == 2
        assert s["min"] == -50.0 and s["max"] == 50.0

    def test_empty_percentile_raises(self, enabled):
        h = enabled.histogram("empty")
        with pytest.raises(ConfigurationError):
            h.percentile(50)
        with pytest.raises(ConfigurationError):
            h.mean()

    def test_bad_buckets_rejected(self, enabled):
        with pytest.raises(ConfigurationError):
            enabled.histogram("bad", buckets=[1.0, 1.0])
        with pytest.raises(ConfigurationError):
            enabled.histogram("bad2", buckets=[2.0, 1.0])

    def test_inf_bucket_appended(self, enabled):
        h = enabled.histogram("capped", buckets=[1.0, 2.0])
        assert h.buckets[-1] == math.inf
        h.observe(100.0)
        assert h.count() == 1


class TestRegistry:
    def test_get_or_create_returns_same_object(self, enabled):
        assert enabled.counter("same_total") is enabled.counter("same_total")

    def test_kind_mismatch_raises(self, enabled):
        enabled.counter("kindful")
        with pytest.raises(ConfigurationError):
            enabled.gauge("kindful")

    def test_invalid_name_rejected(self, enabled):
        with pytest.raises(ConfigurationError):
            enabled.counter("not a name")

    def test_reset_keeps_instruments(self, enabled):
        c = enabled.counter("keep_total")
        c.inc(7)
        enabled.reset()
        assert c.value() == 0
        # Same object still registered: new increments land in it.
        obs.enable()
        c.inc(1)
        assert enabled.counter("keep_total").value() == 1

    def test_snapshot_shape(self, enabled):
        c = enabled.counter("snap_total", "description here")
        c.inc(2, kind="x")
        snap = enabled.snapshot()
        entry = snap["snap_total"]
        assert entry["kind"] == "counter"
        assert entry["description"] == "description here"
        assert entry["series"] == {"kind=x": 2.0}
