"""Phase/op profiler: gating, determinism, merging, program attribution."""

import pytest

from repro import obs
from repro.obs.profile import _NULL_PHASE, Profiler, get_profiler, record_program


@pytest.fixture()
def profiling():
    """Metrics + profiling on; returns the global profiler."""
    obs.enable(profile=True)
    return obs.profiler()


class TestGating:
    def test_disabled_phase_is_shared_null_object(self):
        p = Profiler()
        assert p.phase("x") is _NULL_PHASE
        with p.phase("x"):
            pass
        p.add("x", 1.0)
        assert len(p) == 0

    def test_metrics_only_mode_does_not_profile(self, enabled):
        p = obs.profiler()
        p.add("x", 1.0)
        assert len(p) == 0

    def test_profile_flag_is_independent_of_trace(self):
        obs.enable(profile=True)
        assert obs.enabled() and obs.profile_enabled()
        assert not obs.trace_enabled()


class TestAccumulation:
    def test_phase_times_block(self, profiling):
        with profiling.phase("work"):
            pass
        entry = profiling.entries()["work"]
        assert entry.count == 1
        assert 0.0 <= entry.min_s <= entry.max_s
        assert entry.total_s >= 0.0

    def test_add_accumulates_count_total_min_max_mean(self, profiling):
        profiling.add("w", 2.0)
        profiling.add("w", 4.0)
        e = profiling.entries()["w"]
        assert e.count == 2
        assert e.total_s == 6.0
        assert (e.min_s, e.max_s, e.mean_s) == (2.0, 4.0, 3.0)

    def test_hot_list_ranks_by_total_then_name(self, profiling):
        profiling.add("b", 1.0)
        profiling.add("a", 1.0)
        profiling.add("c", 5.0)
        assert [name for name, _ in profiling.hot_list(3)] == ["c", "a", "b"]
        assert [name for name, _ in profiling.hot_list(1)] == ["c"]

    def test_entries_sorted_by_name(self, profiling):
        profiling.add("z", 1.0)
        profiling.add("a", 1.0)
        assert list(profiling.entries()) == ["a", "z"]

    def test_obs_reset_clears_profile(self, profiling):
        profiling.add("x", 1.0)
        obs.reset()
        assert len(obs.profiler()) == 0


class TestMerge:
    def test_merge_state_equals_serial(self):
        a, b, serial = Profiler(), Profiler(), Profiler()
        for p in (a, serial):
            p._add("w", 2.0)
        for p in (b, serial):
            p._add("w", 4.0)
            p._add("only_b", 1.5, count=3)
        merged = Profiler()
        merged.merge_state(a.state())
        merged.merge_state(b.state())
        assert merged.state() == serial.state()

    def test_merge_order_does_not_matter(self):
        a, b = Profiler(), Profiler()
        a._add("w", 2.0)
        b._add("w", 4.0)
        ab, ba = Profiler(), Profiler()
        ab.merge_state(a.state())
        ab.merge_state(b.state())
        ba.merge_state(b.state())
        ba.merge_state(a.state())
        assert ab.state() == ba.state()

    def test_merge_bypasses_the_profile_flag(self):
        # State transfer, not measurement: works with profiling off.
        source = Profiler()
        source._add("w", 1.0)
        target = Profiler()
        target.merge_state(source.state())
        assert target.entries()["w"].count == 1


class TestRecordProgram:
    def test_attribution_is_proportional_to_static_op_counts(self, profiling):
        record_program(
            "beam", "compiled", iterations=10, elapsed_s=8.0,
            op_class_counts={"FMUL": 3, "FADD": 1},
        )
        state = get_profiler().state()
        assert state["engine.compiled.beam"]["count"] == 10
        assert state["engine.compiled.beam"]["total_s"] == 8.0
        assert state["op.compiled.FMUL"]["total_s"] == pytest.approx(6.0)
        assert state["op.compiled.FADD"]["total_s"] == pytest.approx(2.0)
        assert state["op.compiled.FMUL"]["count"] == 30
        assert state["op.compiled.FADD"]["count"] == 10

    def test_lanes_scale_counts(self, profiling):
        record_program("beam", "batched", 2, 1.0, {"FADD": 2}, lanes=4)
        state = get_profiler().state()
        assert state["engine.batched.beam"]["count"] == 8
        assert state["op.batched.FADD"]["count"] == 16

    def test_deterministic_across_repeats(self, profiling):
        counts = {"FMUL": 2, "FSQRT": 1, "FADD": 5}
        record_program("beam", "compiled", 4, 2.0, counts)
        first = get_profiler().state()
        obs.reset()
        record_program("beam", "compiled", 4, 2.0, counts)
        assert get_profiler().state() == first

    def test_disabled_or_empty_is_a_noop(self):
        record_program("beam", "compiled", 5, 1.0, {"FADD": 1})  # profiling off
        obs.enable(profile=True)
        record_program("beam", "compiled", 0, 1.0, {"FADD": 1})  # no iterations
        record_program("beam", "compiled", 5, 1.0, {})  # no op table
        state = get_profiler().state()
        assert "op.compiled.FADD" not in state


class TestEngineHook:
    def test_compiled_program_exposes_op_class_counts(self):
        from repro.cgra.engine import compile_program
        from repro.cgra.models import compile_beam_model

        compiled = compile_beam_model(n_bunches=1, pipelined=True)
        program = compile_program(compiled.schedule)
        assert program.op_class_counts
        assert all(
            isinstance(n, int) and n > 0 for n in program.op_class_counts.values()
        )
        assert sum(program.op_class_counts.values()) == len(program.entries)
