"""Benchmark history trajectory and the regression gate."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.bench_history import (
    append_run,
    check_regressions,
    load_history,
    main,
)
from repro.obs.export import write_bench_json


def _bench_file(tmp_path, slug, means):
    entries = [
        {"name": name, "stats": {"mean": mean, "rounds": 3}}
        for name, mean in means.items()
    ]
    return write_bench_json(tmp_path / f"BENCH_{slug}.json", entries)


class TestAppend:
    def test_appends_jsonl_records_in_order(self, tmp_path):
        history = tmp_path / "history.jsonl"
        path = _bench_file(tmp_path, "a", {"fig5a": 0.10})
        record = append_run(path, history_path=history, timestamp=100.0)
        assert record["source"] == "BENCH_a.json"
        assert record["benchmarks"]["fig5a"]["mean"] == 0.10
        append_run(path, history_path=history, timestamp=200.0)
        runs = load_history(history)
        assert [r["timestamp"] for r in runs] == [100.0, 200.0]

    def test_rejects_non_bench_document(self, tmp_path):
        bogus = tmp_path / "BENCH_bogus.json"
        bogus.write_text(json.dumps({"nope": 1}))
        with pytest.raises(ConfigurationError, match="benchmarks"):
            append_run(bogus, history_path=tmp_path / "h.jsonl")

    def test_missing_history_loads_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []


class TestCheck:
    def test_injected_synthetic_slowdown_is_detected(self, tmp_path):
        """Acceptance fixture: a 2x slowdown on one benchmark trips the gate."""
        history = tmp_path / "history.jsonl"
        for ts, mean in ((1, 0.10), (2, 0.11), (3, 0.09)):
            path = _bench_file(tmp_path, f"r{ts}", {"fig5a": mean, "sweep": 1.0})
            append_run(path, history_path=history, timestamp=float(ts))
        slow = _bench_file(tmp_path, "slow", {"fig5a": 0.20, "sweep": 1.0})
        append_run(slow, history_path=history, timestamp=4.0)
        (regression,) = check_regressions(history, threshold=0.25)
        assert regression.name == "fig5a"
        assert regression.baseline_s == pytest.approx(0.10)  # median of 3
        assert regression.ratio == pytest.approx(2.0)
        assert regression.n_baseline_runs == 3
        assert "fig5a" in regression.summary()

    def test_within_threshold_is_quiet(self, tmp_path):
        history = tmp_path / "history.jsonl"
        for ts, mean in ((1, 0.10), (2, 0.11)):
            path = _bench_file(tmp_path, f"r{ts}", {"b": mean})
            append_run(path, history_path=history, timestamp=float(ts))
        assert check_regressions(history, threshold=0.25) == []

    def test_median_baseline_resists_one_outlier(self, tmp_path):
        # One historic outlier must not drag the baseline up.
        history = tmp_path / "history.jsonl"
        for ts, mean in ((1, 0.10), (2, 5.0), (3, 0.10), (4, 0.25)):
            path = _bench_file(tmp_path, f"r{ts}", {"b": mean})
            append_run(path, history_path=history, timestamp=float(ts))
        (regression,) = check_regressions(history, threshold=0.25)
        assert regression.baseline_s == pytest.approx(0.10)

    def test_single_run_has_no_baseline(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_run(
            _bench_file(tmp_path, "only", {"b": 0.1}),
            history_path=history, timestamp=1.0,
        )
        assert check_regressions(history) == []

    def test_new_and_retired_benchmarks_are_skipped(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_run(
            _bench_file(tmp_path, "old", {"retired": 0.1}),
            history_path=history, timestamp=1.0,
        )
        append_run(
            _bench_file(tmp_path, "new", {"fresh": 99.0}),
            history_path=history, timestamp=2.0,
        )
        assert check_regressions(history) == []

    def test_bad_threshold_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="threshold"):
            check_regressions(tmp_path / "h.jsonl", threshold=0.0)


class TestCli:
    def test_append_then_check_exit_codes(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        fast = _bench_file(tmp_path, "fast", {"b": 0.1})
        slow = _bench_file(tmp_path, "slowrun", {"b": 0.3})
        assert main(["append", str(fast), "--history", str(history)]) == 0
        assert main(["check", "--history", str(history)]) == 0
        assert main(["append", str(slow), "--history", str(history)]) == 0
        assert main(["check", "--history", str(history)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_warn_only_reports_but_exits_zero(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        for slug, mean in (("fast", 0.1), ("slowrun", 0.3)):
            main(["append", str(_bench_file(tmp_path, slug, {"b": mean})),
                  "--history", str(history)])
        assert main(["check", "--history", str(history), "--warn-only"]) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "warn-only" in out

    def test_append_unreadable_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "BENCH_missing.json"
        assert main(["append", str(missing), "--history",
                     str(tmp_path / "h.jsonl")]) == 2
        assert "cannot append" in capsys.readouterr().err
