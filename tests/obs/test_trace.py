"""Span/event recording, the no-op default, and JSONL export."""

import json

from repro import obs
from repro.obs.trace import Tracer, _NULL_SPAN


class TestNoOpDefault:
    def test_span_is_shared_null_object_when_disabled(self):
        t = Tracer()
        span = t.span("anything", key="value")
        assert span is _NULL_SPAN
        with span:
            pass
        t.event("ignored")
        assert len(t) == 0

    def test_metrics_only_mode_does_not_trace(self, enabled):
        t = obs.tracer()
        with t.span("nope"):
            pass
        assert len(t) == 0


class TestRecording:
    def test_span_records_duration_and_attrs(self, tracing):
        with tracing.span("work", iteration=3) as span:
            span.set(extra="yes")
        (rec,) = tracing.records
        assert rec.name == "work"
        assert rec.duration >= 0.0
        assert rec.attrs == {"iteration": 3, "extra": "yes"}
        assert not rec.is_event

    def test_manual_end_is_idempotent(self, tracing):
        span = tracing.span("manual")
        span.end()
        span.end()
        assert len(tracing) == 1

    def test_event(self, tracing):
        tracing.event("tick", n=1)
        (rec,) = tracing.records
        assert rec.is_event and rec.duration == 0.0

    def test_nested_spans_both_recorded(self, tracing):
        with tracing.span("outer"):
            with tracing.span("inner"):
                pass
        names = [r.name for r in tracing.records]
        assert names == ["inner", "outer"]  # inner finishes first

    def test_record_cap_counts_drops(self):
        obs.enable(trace=True)
        t = Tracer(max_records=2)
        for i in range(5):
            t.event(f"e{i}")
        assert len(t) == 2
        assert t.dropped == 3

    def test_reset(self, tracing):
        tracing.event("gone")
        tracing.reset()
        assert len(tracing) == 0 and tracing.dropped == 0


class TestExport:
    def test_jsonl_roundtrip(self, tracing, tmp_path):
        with tracing.span("s", a=1):
            pass
        tracing.event("e")
        path = obs.export.export_trace_jsonl(tmp_path / "t.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        # Chronological order: the span started before the event fired.
        assert lines[0]["name"] == "s" and lines[0]["attrs"] == {"a": 1}
        assert lines[1]["name"] == "e" and lines[1]["event"]

    def test_jsonl_reports_drops(self, tmp_path):
        obs.enable(trace=True)
        t = Tracer(max_records=1)
        t.event("kept")
        t.event("dropped")
        path = obs.export.export_trace_jsonl(tmp_path / "d.jsonl", tracer=t)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[-1]["name"] == "trace.dropped"
        assert lines[-1]["attrs"]["dropped_records"] == 1
