"""Shared obs test fixtures: every test leaves telemetry off and empty."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture()
def enabled():
    """Metrics on (no tracing)."""
    obs.enable()
    return obs.metrics()


@pytest.fixture()
def tracing():
    """Metrics + tracing on."""
    obs.enable(trace=True)
    return obs.tracer()
