"""Snapshot capture/merge: N worker registries fold into one parent.

The contract pinned here: merging worker snapshots (in shard order) into
an idle parent registry produces exactly the state a serial run of the
same instrument writes would have left behind.
"""

import math

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import ObsSnapshot, capture_snapshot, merge_snapshot
from repro.obs.registry import MetricsRegistry
from repro.obs.report import HilRunReport, clear_run_reports, run_reports
from repro.obs.trace import SpanRecord, Tracer


def _instrument(registry, worker_index):
    """One simulated worker's writes (parameterised so workers differ)."""
    c = registry.counter("work_items_total", "items processed")
    c.inc(worker_index + 1, outcome="ok")
    c.inc(1, outcome="error")
    registry.gauge("last_seen", "last item index").set(10.0 * worker_index)
    h = registry.histogram("latency", "seconds")
    h.observe(0.5 * (worker_index + 1))
    h.observe(200.0)


class TestMergeEqualsSerial:
    def test_three_workers_equal_serial(self, enabled):
        workers = [MetricsRegistry() for _ in range(3)]
        serial = MetricsRegistry()
        for i, registry in enumerate(workers):
            _instrument(registry, i)
            _instrument(serial, i)  # the same writes, one process

        parent = MetricsRegistry()
        for i, registry in enumerate(workers):
            snap = capture_snapshot(registry=registry, tracer=Tracer())
            merge_snapshot(snap, registry=parent, tracer=Tracer(), worker=i)

        assert parent.snapshot() == serial.snapshot()
        # Spot checks on the per-kind semantics.
        c = parent.counter("work_items_total", "")
        assert c.value(outcome="ok") == 1 + 2 + 3
        assert c.value(outcome="error") == 3
        assert parent.gauge("last_seen", "").value() == 20.0  # last merge wins
        h = parent.histogram("latency", "")
        assert h.count() == 6
        assert h.sum() == pytest.approx(0.5 + 1.0 + 1.5 + 3 * 200.0)
        assert h.percentile(100.0) == pytest.approx(200.0)

    def test_merge_into_active_parent_adds(self, enabled):
        parent = MetricsRegistry()
        parent.counter("work_items_total", "").inc(5, outcome="ok")
        worker = MetricsRegistry()
        worker.counter("work_items_total", "").inc(2, outcome="ok")
        snap = capture_snapshot(registry=worker, tracer=Tracer())
        merge_snapshot(snap, registry=parent, tracer=Tracer())
        assert parent.counter("work_items_total", "").value(outcome="ok") == 7


class TestCaptureReset:
    def test_reset_produces_disjoint_deltas(self, enabled):
        registry = MetricsRegistry()
        registry.counter("n", "").inc(4)
        first = capture_snapshot(reset=True, registry=registry, tracer=Tracer())
        assert first.metrics[0]["state"] == {(): 4.0}
        registry.counter("n", "").inc(1)
        second = capture_snapshot(reset=True, registry=registry, tracer=Tracer())
        assert second.metrics[0]["state"] == {(): 1.0}

    def test_empty_worker_snapshot(self, enabled):
        snap = capture_snapshot(registry=MetricsRegistry(), tracer=Tracer())
        assert snap.empty
        parent = MetricsRegistry()
        merge_snapshot(snap, registry=parent, tracer=Tracer())
        assert parent.names() == []

    def test_instruments_with_no_writes_are_skipped(self, enabled):
        registry = MetricsRegistry()
        registry.counter("never_written", "")
        snap = capture_snapshot(registry=registry, tracer=Tracer())
        assert snap.empty


class TestFaultedWorker:
    def test_partial_telemetry_from_faulted_worker_merges(self, enabled):
        """A shard that died mid-way still ships what it recorded."""
        registry = MetricsRegistry()
        registry.counter("work_items_total", "").inc(2, outcome="ok")
        try:
            raise ValueError("worker died here")
        except ValueError:
            snap = capture_snapshot(registry=registry, tracer=Tracer())
        parent = MetricsRegistry()
        merge_snapshot(snap, registry=parent, tracer=Tracer(), worker=99)
        assert parent.counter("work_items_total", "").value(outcome="ok") == 2


class TestMergeValidation:
    def test_histogram_bucket_mismatch_raises(self, enabled):
        worker = MetricsRegistry()
        worker.histogram("h", "", buckets=[0.0, 1.0]).observe(0.5)
        snap = capture_snapshot(registry=worker, tracer=Tracer())
        snap.metrics[0]["buckets"] = [0.0, 0.5, 1.0, math.inf]  # forged bounds
        with pytest.raises(ConfigurationError, match="cannot merge"):
            merge_snapshot(snap, registry=MetricsRegistry(), tracer=Tracer())

    def test_unknown_kind_raises(self):
        snap = ObsSnapshot(
            metrics=[{"name": "x", "kind": "summary", "description": "", "state": {}}]
        )
        with pytest.raises(ConfigurationError, match="unknown kind"):
            merge_snapshot(snap, registry=MetricsRegistry(), tracer=Tracer())


class TestGaugeOrderDeterminism:
    def test_gauge_outcome_is_fixed_by_shard_order(self, enabled):
        """Gauges are last-write-wins *in merge order* — merging shards
        in index order is what makes the outcome deterministic."""
        snaps = []
        for i in range(3):
            registry = MetricsRegistry()
            registry.gauge("g", "").set(10.0 * i)
            snaps.append(capture_snapshot(registry=registry, tracer=Tracer()))
        outcomes = []
        for _ in range(2):  # same order → same outcome, every time
            parent = MetricsRegistry()
            for snap in snaps:
                merge_snapshot(snap, registry=parent, tracer=Tracer())
            outcomes.append(parent.gauge("g", "").value())
        assert outcomes == [20.0, 20.0]
        # Completion order is NOT the contract: a different merge order
        # moves the gauge, which is why the pool merges in shard order.
        parent = MetricsRegistry()
        for snap in reversed(snaps):
            merge_snapshot(snap, registry=parent, tracer=Tracer())
        assert parent.gauge("g", "").value() == 0.0


class TestProfileMerge:
    def test_profile_tables_merge_by_addition(self, enabled):
        from repro.obs.profile import Profiler

        worker = Profiler()
        worker._add("hil.sense", 2.0)
        parent = Profiler()
        parent._add("hil.sense", 1.0)
        snap = capture_snapshot(
            registry=MetricsRegistry(), tracer=Tracer(), profiler=worker
        )
        assert snap.profile["hil.sense"]["count"] == 1
        merge_snapshot(
            snap, registry=MetricsRegistry(), tracer=Tracer(), profiler=parent
        )
        entry = parent.entries()["hil.sense"]
        assert entry.count == 2
        assert entry.total_s == 3.0
        assert (entry.min_s, entry.max_s) == (1.0, 2.0)


class TestSpansAndReports:
    def test_spans_merge_with_worker_tag(self, tracing):
        worker_tracer = Tracer()
        worker_tracer._record(SpanRecord("compile", 1.0, 0.25, {"model": "beam"}))
        worker_tracer.dropped = 3
        snap = capture_snapshot(registry=MetricsRegistry(), tracer=worker_tracer)
        parent = Tracer()
        merge_snapshot(snap, registry=MetricsRegistry(), tracer=parent, worker=42)
        assert len(parent.records) == 1
        record = parent.records[0]
        assert record.name == "compile"
        assert record.duration == 0.25
        assert record.attrs == {"model": "beam", "worker": 42}
        assert parent.dropped == 3

    def test_worker_span_merge_then_export_round_trip(self, tracing, tmp_path):
        """The worker tag and parent links survive merge → Perfetto →
        view reload."""
        from repro.obs.view import load_trace

        with tracing.span("dispatch") as dispatch:
            ctx = obs.current_context()
        worker_tracer = Tracer()  # simulated worker process
        with obs.trace_context(*ctx):
            with worker_tracer.span("shard"):
                pass
        snap = capture_snapshot(registry=MetricsRegistry(), tracer=worker_tracer)
        merge_snapshot(
            snap, registry=MetricsRegistry(), tracer=tracing, worker=7
        )
        path = obs.export.export_trace_perfetto(tmp_path / "t.json")
        spans, _ = load_trace(path)
        by_name = {s["name"]: s for s in spans}
        shard = by_name["shard"]
        assert shard["attrs"]["worker"] == 7
        assert shard["trace_id"] == by_name["dispatch"]["trace_id"]
        assert shard["parent_id"] == by_name["dispatch"]["span_id"]

    def test_span_starts_rebase_onto_parent_clock(self, tracing):
        worker_tracer = Tracer()
        worker_tracer.clock_origin = tracing.clock_origin + 100.0
        worker_tracer._record(SpanRecord("w", 5.0, 0.1))
        snap = capture_snapshot(registry=MetricsRegistry(), tracer=worker_tracer)
        assert snap.clock_origin_s == worker_tracer.clock_origin
        merge_snapshot(snap, registry=MetricsRegistry(), tracer=tracing)
        assert tracing.records[-1].start == pytest.approx(105.0)

    def test_reports_round_trip(self, enabled):
        clear_run_reports()
        report = HilRunReport(
            name="bench", engine="cgra", schedule_length=100,
            n_iterations=5000, deadline_misses=1,
            slack_min=-2.0, slack_mean=40.0, slack_p50=41.0, slack_p99=5.0,
            extras={"lane": 3},
        )
        snap = ObsSnapshot(reports=[report.to_dict()])
        merge_snapshot(snap, registry=MetricsRegistry(), tracer=Tracer())
        merged = run_reports()
        assert len(merged) == 1
        assert merged[0] == report
        assert not merged[0].met

    def test_obs_facade_exports_snapshot_api(self):
        assert obs.capture_snapshot is capture_snapshot
        assert obs.merge_snapshot is merge_snapshot
