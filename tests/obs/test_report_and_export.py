"""Run reports, metric exporters and the closed-loop telemetry smoke test."""

import json

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.experiments.mde import bench_config
from repro.hil.realtime import JitterStats
from repro.hil.simulator import CavityInTheLoop
from repro.obs.export import write_bench_json


def _stats(n=10, misses=0):
    return JitterStats(
        n_iterations=n, min_slack=50.0, mean_slack=60.0, misses=misses,
        p50_slack=60.0, p99_slack=51.0,
    )


class TestRunReport:
    def test_record_snapshots_registry_counters(self, enabled):
        enabled.counter("signal_adc_clips_total").inc(3)
        enabled.counter("cgra_ops_executed_total").inc(700, executor="sequential")
        report = obs.record_hil_run(
            name="t", stats=_stats(), schedule_length=76, engine="python"
        )
        assert report.adc_clip_count == 3
        assert report.executed_ops == 700
        assert report.met
        assert obs.run_reports() == [report]

    def test_report_dict_contains_percentiles(self, enabled):
        d = obs.record_hil_run("t", _stats(), 76, "python").to_dict()
        assert d["slack_ticks"]["p50"] == 60.0
        assert d["slack_ticks"]["p99"] == 51.0
        assert d["deadline_met"] is True

    def test_misses_flow_through(self, enabled):
        report = obs.record_hil_run("t", _stats(misses=2), 76, "python")
        assert report.deadline_misses == 2 and not report.met

    def test_reset_clears_reports(self, enabled):
        obs.record_hil_run("t", _stats(), 76, "python")
        obs.reset()
        assert obs.run_reports() == []


class TestExporters:
    def test_metrics_json_parses(self, enabled, tmp_path):
        enabled.counter("exp_total").inc(5, where="here")
        path = obs.export.export_metrics_json(tmp_path / "m.json")
        doc = json.loads(path.read_text())
        assert doc["exp_total"]["series"] == {"where=here": 5.0}

    def test_metrics_json_handles_inf(self, enabled, tmp_path):
        # Histogram buckets carry an inf bound; must not crash json.
        enabled.histogram("h").observe(1.0)
        doc = json.loads(
            obs.export.export_metrics_json(tmp_path / "m.json").read_text()
        )
        assert doc["h"]["series"][""]["count"] == 1

    def test_metrics_csv_rows(self, enabled, tmp_path):
        enabled.gauge("g").set(2.5)
        lines = obs.export.export_metrics_csv(
            tmp_path / "m.csv"
        ).read_text().splitlines()
        assert lines[0] == "metric,kind,labels,field,value"
        assert 'g,gauge,"",value,2.5' in lines

    def test_run_reports_json(self, enabled, tmp_path):
        obs.record_hil_run("a", _stats(), 76, "python")
        doc = json.loads(
            obs.export.export_run_reports_json(tmp_path / "r.json").read_text()
        )
        assert len(doc) == 1 and doc[0]["name"] == "a"


class TestBenchJson:
    def test_writes_pytest_benchmark_shape(self, tmp_path):
        path = write_bench_json(
            tmp_path / "BENCH_perf.json",
            [{"name": "t1", "stats": {"mean": 0.5}, "extra_info": {"k": "v"}}],
        )
        doc = json.loads(path.read_text())
        assert "machine_info" in doc
        (bench,) = doc["benchmarks"]
        assert bench["name"] == "t1"
        assert bench["stats"]["mean"] == 0.5
        assert bench["stats"]["rounds"] == 1  # default filled
        assert bench["extra_info"] == {"k": "v"}

    def test_rejects_bad_names_and_entries(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_bench_json(tmp_path / "perf.json", [])
        with pytest.raises(ConfigurationError):
            write_bench_json(tmp_path / "BENCH_x.json", [{"name": "n", "stats": {}}])


class TestClosedLoopSmoke:
    """End-to-end: the run report agrees with JitterStats (satellite task)."""

    def test_report_miss_count_matches_jitter_stats(self, enabled):
        sim = CavityInTheLoop(bench_config())
        result = sim.run(0.004)
        (report,) = obs.run_reports()
        assert report.deadline_misses == result.deadline.misses == 0
        assert report.n_iterations == result.deadline.n_iterations
        assert report.met == result.deadline.met
        assert report.slack_p50 == result.deadline.p50_slack
        assert report.slack_p99 == result.deadline.p99_slack
        assert report.schedule_length == result.schedule_length

    def test_slack_histogram_fed_per_iteration(self, enabled):
        sim = CavityInTheLoop(bench_config())
        result = sim.run(0.002)
        hist = enabled.get("hil_slack_ticks")
        assert hist.count() == result.deadline.n_iterations
        assert hist.percentile(50) == pytest.approx(
            result.deadline.p50_slack, rel=0.25
        )

    def test_disabled_run_records_nothing(self):
        sim = CavityInTheLoop(bench_config())
        sim.run(0.002)
        assert obs.run_reports() == []
        assert obs.metrics().get("hil_slack_ticks").count() == 0
