"""Hierarchical trace context: ids, nesting, adoption, saturation.

The tracer contract pinned here: every recorded span carries a
``trace_id``/``span_id``/``parent_id`` triple maintained on a contextvar
stack, the frozen ``(trace_id, span_id)`` pair adopts across process
boundaries, and hitting the record cap is loudly visible (one stderr
warning + the ``obs_trace_dropped_total`` counter).
"""

import pickle

from repro import obs
from repro.obs.trace import Tracer, current_context, trace_context


class TestContextIds:
    def test_root_span_mints_trace_id(self, tracing):
        with tracing.span("root"):
            pass
        (rec,) = tracing.records
        assert len(rec.trace_id) == 32
        assert rec.span_id
        assert rec.parent_id is None

    def test_nested_spans_share_trace_and_link_parent(self, tracing):
        with tracing.span("outer"):
            with tracing.span("inner"):
                pass
        inner, outer = tracing.records
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert inner.span_id != outer.span_id

    def test_sibling_roots_start_separate_traces(self, tracing):
        with tracing.span("a"):
            pass
        with tracing.span("b"):
            pass
        a, b = tracing.records
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_event_is_child_of_current_span(self, tracing):
        with tracing.span("outer"):
            tracing.event("tick")
        event, outer = tracing.records
        assert event.trace_id == outer.trace_id
        assert event.parent_id == outer.span_id
        assert event.span_id != outer.span_id

    def test_orphan_event_has_no_context(self, tracing):
        tracing.event("loose")
        (rec,) = tracing.records
        assert rec.trace_id is None and rec.parent_id is None

    def test_current_context_tracks_innermost_span(self, tracing):
        assert current_context() is None
        with tracing.span("outer") as outer:
            assert current_context() == (outer.trace_id, outer.span_id)
            with tracing.span("inner") as inner:
                assert current_context() == (inner.trace_id, inner.span_id)
            assert current_context() == (outer.trace_id, outer.span_id)
        assert current_context() is None

    def test_manual_lifo_end_restores_context(self, tracing):
        outer = tracing.span("outer")
        inner = tracing.span("inner")
        inner.end()
        assert current_context() == (outer.trace_id, outer.span_id)
        outer.end()
        assert current_context() is None

    def test_out_of_order_end_keeps_recording_safe(self, tracing):
        outer = tracing.span("outer")
        inner = tracing.span("inner")
        outer.end()  # non-LIFO: inner is still open
        # The open inner span stays current (its parent link was already
        # captured at start), so a new child still lands under it.
        assert current_context() == (inner.trace_id, inner.span_id)
        inner.end()
        with tracing.span("later"):
            pass
        assert len(tracing.records) == 3
        later = tracing.records[-1]
        # The tree stays well-formed: every parent link resolves to a
        # recorded span.
        ids = {r.span_id for r in tracing.records}
        assert later.parent_id is None or later.parent_id in ids

    def test_to_dict_carries_context(self, tracing):
        with tracing.span("s"):
            pass
        payload = tracing.records[0].to_dict()
        assert payload["trace_id"] and payload["span_id"]
        assert payload["parent_id"] is None


class TestAdoption:
    def test_trace_context_parents_spans_under_remote_span(self, tracing):
        with tracing.span("dispatch") as dispatch:
            ctx = current_context()
        worker_tracer = Tracer()  # simulated worker side
        with trace_context(*ctx):
            with worker_tracer.span("shard"):
                pass
        assert current_context() is None
        (rec,) = worker_tracer.records
        assert rec.trace_id == dispatch.trace_id
        assert rec.parent_id == dispatch.span_id

    def test_context_is_plain_picklable_data(self, tracing):
        with tracing.span("dispatch"):
            ctx = current_context()
        assert pickle.loads(pickle.dumps(ctx)) == ctx
        assert all(isinstance(part, str) for part in ctx)


class TestDisabledPath:
    def test_no_context_outside_tracing(self):
        t = Tracer()
        with t.span("nope"):
            assert current_context() is None
        assert len(t) == 0


class TestSaturation:
    def test_cap_warns_once_and_counts(self, tracing, capsys):
        t = Tracer(max_records=1)
        t.event("kept")
        t.event("lost-1")
        t.event("lost-2")
        err = capsys.readouterr().err
        assert err.count("max_records=1") == 1  # one-time warning
        assert t.dropped == 2
        counter = obs.metrics().counter("obs_trace_dropped_total", "")
        assert counter.value() == 2

    def test_reset_rearms_the_warning(self, tracing, capsys):
        t = Tracer(max_records=1)
        t.event("kept")
        t.event("lost")
        t.reset()
        t.event("kept")
        t.event("lost")
        assert capsys.readouterr().err.count("max_records=1") == 2
