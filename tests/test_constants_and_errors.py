"""Sanity tests for the constants module and the exception hierarchy."""

import math

import pytest

import repro
from repro import constants, errors


class TestConstants:
    def test_speed_of_light_exact(self):
        assert constants.SPEED_OF_LIGHT == 299_792_458.0

    def test_elementary_charge_exact(self):
        assert constants.ELEMENTARY_CHARGE == 1.602_176_634e-19

    def test_atomic_mass_energy(self):
        # u·c²/e ≈ 931.494 MeV.
        assert constants.ATOMIC_MASS_EV == pytest.approx(931.494e6, rel=1e-5)

    def test_angle_conversions(self):
        assert constants.deg_to_rad(180.0) == pytest.approx(math.pi)
        assert constants.rad_to_deg(math.pi / 2) == pytest.approx(90.0)
        assert constants.rad_to_deg(constants.deg_to_rad(37.2)) == pytest.approx(37.2)

    def test_two_pi(self):
        assert constants.TWO_PI == pytest.approx(2 * math.pi)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.ConfigurationError,
        errors.PhysicsError,
        errors.SignalError,
        errors.CgraError,
        errors.FrontendError,
        errors.ScheduleError,
        errors.ExecutionError,
        errors.RealTimeViolation,
        errors.HilError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_cgra_family(self):
        for exc in (errors.FrontendError, errors.ScheduleError, errors.ExecutionError):
            assert issubclass(exc, errors.CgraError)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.cgra
        import repro.experiments
        import repro.hil
        import repro.physics
        import repro.signal

        for module in (repro.physics, repro.signal, repro.cgra, repro.hil,
                       repro.experiments):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
