"""Tests for the rejected software simulator baseline."""

import numpy as np
import pytest

from repro.baselines.software_sim import SoftwareBeamSimulator
from repro.errors import ConfigurationError
from repro.hil.jitter import SoftwareTimingModel


class TestOutputTimes:
    def test_monotone_nominal_grid(self, rng):
        sim = SoftwareBeamSimulator()
        times = sim.output_times(800e3, 1000, rng)
        assert times.shape == (1000,)
        # Base grid plus positive latencies.
        base = np.arange(1000) / 800e3
        assert np.all(times > base)

    def test_validation(self, rng):
        sim = SoftwareBeamSimulator()
        with pytest.raises(ConfigurationError):
            sim.output_times(0.0, 10, rng)
        with pytest.raises(ConfigurationError):
            sim.output_times(800e3, 0, rng)


class TestPhaseError:
    def test_rms_grows_with_harmonic_frequency(self, rng):
        sim = SoftwareBeamSimulator()
        e1 = sim.phase_error_deg(800e3, 1, 100_000, np.random.default_rng(1))
        e4 = sim.phase_error_deg(800e3, 4, 100_000, np.random.default_rng(1))
        assert np.sqrt(np.mean(e4**2)) == pytest.approx(
            4 * np.sqrt(np.mean(e1**2)), rel=1e-9
        )

    def test_false_phase_comparable_to_signal(self, rng):
        """The feasibility killer: jitter-induced phase noise at the MDE
        point is not small against the 8-16 deg oscillations."""
        sim = SoftwareBeamSimulator()
        err = sim.phase_error_deg(800e3, 4, 300_000, rng)
        assert np.abs(err).max() > 8.0


class TestRunStats:
    def test_feasibility_flag(self, rng):
        sim = SoftwareBeamSimulator(SoftwareTimingModel(tail_probability=0.0,
                                                        gaussian_jitter=1e-9))
        stats = sim.run_stats(100e3, n_revolutions=50_000, rng=rng)
        assert stats.feasible  # slow machine, no tail: fine

    def test_infeasible_at_mhz(self, rng):
        sim = SoftwareBeamSimulator()
        stats = sim.run_stats(1.0e6, n_revolutions=300_000, rng=rng)
        assert stats.deadline_miss_rate > 0.0
        assert not stats.feasible

    def test_latency_summary_fields(self, rng):
        stats = SoftwareBeamSimulator().run_stats(800e3, n_revolutions=10_000, rng=rng)
        assert stats.latency.worst >= stats.latency.p999 >= stats.latency.p50
        assert stats.revolution_period == pytest.approx(1.25e-6)
