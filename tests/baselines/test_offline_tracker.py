"""Tests for the machine-experiment emulator (Fig. 5b stand-in)."""

import numpy as np
import pytest

from repro.baselines.offline_tracker import (
    MachineExperimentConfig,
    MachineExperimentEmulator,
)
from repro.errors import ConfigurationError
from repro.physics import SIS18, KNOWN_IONS
from repro.physics.oscillation import estimate_oscillation_frequency


def emulator(**overrides):
    kwargs = dict(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        n_particles=800,
        record_every=4,
        jump_start_time=0.002,
    )
    kwargs.update(overrides)
    return MachineExperimentEmulator(MachineExperimentConfig(**kwargs))


class TestConfig:
    def test_mde_defaults(self):
        cfg = MachineExperimentConfig(ring=SIS18, ion=KNOWN_IONS["14N7+"])
        assert cfg.jump_deg == 10.0  # machine used 10 deg
        assert cfg.synchrotron_frequency == 1.2e3
        assert cfg.seed == 20231124

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MachineExperimentConfig(ring=SIS18, ion=KNOWN_IONS["14N7+"], n_particles=1)
        with pytest.raises(ConfigurationError):
            MachineExperimentConfig(ring=SIS18, ion=KNOWN_IONS["14N7+"], sigma_delta_t=0.0)


class TestRun:
    def test_oscillates_at_machine_fs(self):
        emu = emulator()
        res = emu.run(0.02)
        sel = (res.time > 0.002) & (res.time < 0.014)
        f = estimate_oscillation_frequency(res.time[sel], res.phase_deg[sel])
        assert f == pytest.approx(1.2e3, rel=0.08)

    def test_first_peak_doubles_jump(self):
        res = emulator().run(0.006)
        assert 15.0 < res.phase_deg.max() < 22.0  # ~2 x 10 deg

    def test_loop_damps_before_next_jump(self):
        res = emulator().run(0.05)
        late = res.phase_deg[(res.time > 0.042) & (res.time < 0.052)]
        assert late.max() - late.min() < 2.0
        assert late.mean() == pytest.approx(10.0, abs=0.8)

    def test_open_loop_decays_slower_than_closed(self):
        """Open loop: only Landau damping/filamentation acts, so the
        mid-window oscillation is far larger than with the loop closed
        (which has killed it by then)."""
        window = lambda r: r.phase_deg[(r.time > 0.008) & (r.time < 0.014)]
        open_res = emulator(control_enabled=False).run(0.016)
        closed_res = emulator(control_enabled=True).run(0.016)
        pp_open = window(open_res).max() - window(open_res).min()
        pp_closed = window(closed_res).max() - window(closed_res).min()
        assert pp_open > 5.0
        assert pp_open > 3.0 * pp_closed

    def test_reproducible_by_seed(self):
        a = emulator(seed=7).run(0.003)
        b = emulator(seed=7).run(0.003)
        np.testing.assert_array_equal(a.phase_deg, b.phase_deg)

    def test_sigma_trace_recorded(self):
        res = emulator().run(0.004)
        assert res.sigma_delta_t.shape == res.time.shape
        assert np.all(res.sigma_delta_t > 0)

    def test_duration_validation(self):
        with pytest.raises(ConfigurationError):
            emulator().run(0.0)
