"""Tests for the direct-FPGA turnaround cost model."""

import pytest

from repro.baselines.fpga_direct import DirectFpgaFlow, turnaround_comparison
from repro.cgra.models import compile_beam_model
from repro.errors import ConfigurationError


class TestDirectFpgaFlow:
    def test_multiple_hours_at_paper_scale(self):
        # The paper: "hardware synthesis times of multiple hours" — our
        # default model lands in the hours range for VC707-scale designs.
        flow = DirectFpgaFlow()
        seconds = flow.synthesis_seconds(180.0)
        assert seconds > 3600.0

    def test_monotone_in_size(self):
        flow = DirectFpgaFlow()
        assert flow.synthesis_seconds(200.0) > flow.synthesis_seconds(50.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DirectFpgaFlow().synthesis_seconds(0.0)


class TestComparison:
    def test_cgra_wins_by_orders_of_magnitude(self):
        model = compile_beam_model(n_bunches=1)
        rows = turnaround_comparison(model)
        cgra = next(r for r in rows if "CGRA" in r.flow)
        fpga = next(r for r in rows if "FPGA" in r.flow)
        # "seconds ... compared to a full FPGA synthesis that can easily
        # take hours": at least 100x apart.
        assert fpga.turnaround_seconds > 100 * cgra.turnaround_seconds
        assert cgra.turnaround_seconds < 30.0
