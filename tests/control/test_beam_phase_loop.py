"""Tests for the beam-phase control loop."""

import numpy as np
import pytest

from repro.control import BeamPhaseControlLoop, ControlLoopConfig
from repro.errors import ConfigurationError


def loop(**kw):
    defaults = dict(sample_rate=800e3)
    defaults.update(kw)
    return BeamPhaseControlLoop(ControlLoopConfig(**defaults))


class TestConfig:
    def test_paper_defaults(self):
        cfg = ControlLoopConfig()
        assert cfg.f_pass == 1.4e3
        assert cfg.gain == -5.0
        assert cfg.recursion_factor == 0.99

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ControlLoopConfig(update_divider=0)
        with pytest.raises(ConfigurationError):
            ControlLoopConfig(saturation_deg=-1.0)
        with pytest.raises(ConfigurationError):
            ControlLoopConfig(gain_scale=0.0)


class TestLoopBehaviour:
    def test_zero_input_zero_output(self):
        ctl = loop()
        assert ctl.update(0.0) == 0.0

    def test_constant_offset_ignored_asymptotically(self):
        # The Fig. 5 dead-time offset must not produce a permanent kick.
        ctl = loop()
        out = [ctl.update(15.0) for _ in range(5000)]
        assert abs(out[-1]) < 1e-2 * abs(out[0]) + 1e-9

    def test_disabled_loop(self):
        ctl = loop(enabled=False)
        assert ctl.update(30.0) == 0.0
        assert ctl.last_output_deg == 0.0

    def test_saturation(self):
        ctl = loop(saturation_deg=2.0, gain=-500.0)
        out = ctl.update(100.0)
        assert abs(out) == 2.0
        assert ctl.saturation_count == 1

    def test_update_divider_holds_output(self):
        ctl = loop(update_divider=4)
        first = ctl.update(10.0)
        held = [ctl.update(10.0 + i) for i in range(3)]
        assert all(h == first for h in held)
        next_update = ctl.update(20.0)
        assert next_update != first

    def test_reset(self):
        ctl = loop()
        ctl.update(10.0)
        ctl.reset()
        assert ctl.last_output_deg == 0.0
        assert ctl.update(0.0) == 0.0

    def test_oscillation_gets_lead_response(self):
        """At f_s the loop output leads the input (damping-capable)."""
        ctl = loop()
        f_s, fs = 1.28e3, 800e3
        n = int(fs / f_s) * 20
        t = np.arange(n) / fs
        x = np.sin(2 * np.pi * f_s * t)
        y = np.array([ctl.update(v) for v in x])
        # Cross-correlate the steady-state tail: output leads input.
        tail = slice(n // 2, None)
        xc = np.correlate(y[tail], x[tail], mode="full")
        lag = np.argmax(xc) - (len(x[tail]) - 1)
        period = fs / f_s
        # Negative lag = lead; gain < 0 flips sign, so the peak sits near
        # ±(period/2 - period/4) — just require a clear non-zero shift.
        assert abs(lag) > period / 16


class TestClosedLoopDamping:
    def test_damps_synthetic_oscillator(self):
        """Feed a discrete oscillator through the loop; amplitude decays."""
        f_s, fs = 1.28e3, 800e3
        omega = 2 * np.pi * f_s / fs
        ctl = loop()
        # Oscillator state driven by gap phase u: x'' = -w^2 (x - u).
        x, v = 8.0, 0.0
        amps = []
        for n in range(400000):
            u = ctl.last_output_deg
            v += -(omega**2) * (x - u)
            x += v
            ctl.update(x)
            if n % 4000 == 0:
                amps.append(abs(x))
        assert amps[-1] < 0.05 * amps[0]

    def test_positive_gain_antidamps(self):
        f_s, fs = 1.28e3, 800e3
        omega = 2 * np.pi * f_s / fs
        ctl = loop(gain=+5.0, saturation_deg=None)
        x, v = 1.0, 0.0
        peak = 0.0
        for n in range(100000):
            u = ctl.last_output_deg
            v += -(omega**2) * (x - u)
            x += v
            ctl.update(x)
            peak = max(peak, abs(x))
        assert peak > 2.0  # grew: wrong-sign gain destabilises
