"""Shared fixtures: the MDE machine setup used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.physics import SIS18, KNOWN_IONS, RFSystem
from repro.physics.rf import voltage_for_synchrotron_frequency


@pytest.fixture(scope="session")
def ring():
    """The SIS18 ring."""
    return SIS18


@pytest.fixture(scope="session")
def ion():
    """The MDE ion species ¹⁴N⁷⁺."""
    return KNOWN_IONS["14N7+"]


@pytest.fixture(scope="session")
def f_rev():
    """The MDE revolution frequency."""
    return 800e3


@pytest.fixture(scope="session")
def gamma0(ring, f_rev):
    """Reference Lorentz factor at the MDE revolution frequency."""
    return ring.gamma_from_revolution_frequency(f_rev)


@pytest.fixture(scope="session")
def rf(ring, ion, gamma0):
    """RF system with the amplitude tuned to f_s = 1.28 kHz (h = 4)."""
    probe = RFSystem(harmonic=4, voltage=1.0)
    voltage = voltage_for_synchrotron_frequency(ring, ion, probe, gamma0, 1.28e3)
    return probe.with_voltage(voltage)


@pytest.fixture()
def rng():
    """Seeded random generator for reproducible noise."""
    return np.random.default_rng(1234)
