#!/usr/bin/env python3
"""The full Fig. 5 experiment: bench (5a) vs. emulated machine (5b).

Runs both sides of the paper's evaluation —

* 5a: the cavity-in-the-loop simulator, 8° jumps, f_s tuned to 1.28 kHz;
* 5b: the multi-particle "machine" emulation of the SIS18 MDE of
  2023-11-24 (10° jumps, f_s ≈ 1.2 kHz) —

and prints the comparison metrics the paper argues from: oscillation
frequency, first-peak-to-peak ≈ 2 × jump, damping inside the inter-jump
window and the settled phase shift.

Run:  python examples/mde_experiment.py  [--fast]
"""

import sys

from repro.experiments import fig5_metrics, fig5_run_bench, fig5_run_machine
from repro.experiments.mde import (
    MDE_DATE,
    MDE_JUMP_DEG_BENCH,
    MDE_JUMP_DEG_MACHINE,
)


def main() -> None:
    fast = "--fast" in sys.argv
    duration = 0.12 if fast else 0.30
    n_particles = 1500 if fast else 5000

    print(f"emulating the SIS18 machine development experiment of {MDE_DATE}")
    print(f"duration {duration * 1e3:.0f} ms per side\n")

    bench = fig5_run_bench(duration=duration)
    jump_time = 0.005
    mb = fig5_metrics(bench.time, bench.phase_deg_smoothed(), MDE_JUMP_DEG_BENCH, jump_time)
    print("Fig. 5a — cavity-in-the-loop bench (8 deg jumps):")
    print(f"  synchrotron frequency : {mb.synchrotron_frequency:7.1f} Hz  (paper: 1280 Hz)")
    print(f"  first peak-to-peak    : {mb.first_peak_to_peak:7.2f} deg (2x jump = {2 * MDE_JUMP_DEG_BENCH:.0f})")
    print(f"  peak ratio            : {mb.peak_ratio:7.2f}     (paper: ~1)")
    print(f"  residual before jump  : {mb.residual_peak_to_peak:7.3f} deg")
    print(f"  settled phase shift   : {mb.settled_shift:7.2f} deg (jump = {MDE_JUMP_DEG_BENCH})")
    print(f"  real-time slack       : {bench.deadline.min_slack:7.1f} ticks\n")

    machine = fig5_run_machine(duration=duration, n_particles=n_particles)
    mm = fig5_metrics(machine.time, machine.phase_deg, MDE_JUMP_DEG_MACHINE, jump_time)
    print("Fig. 5b — emulated SIS18 machine (10 deg jumps, multi-particle):")
    print(f"  synchrotron frequency : {mm.synchrotron_frequency:7.1f} Hz  (paper: 1200 Hz)")
    print(f"  first peak-to-peak    : {mm.first_peak_to_peak:7.2f} deg (2x jump = {2 * MDE_JUMP_DEG_MACHINE:.0f})")
    print(f"  peak ratio            : {mm.peak_ratio:7.2f}     (paper: ~1)")
    print(f"  residual before jump  : {mm.residual_peak_to_peak:7.3f} deg")
    print(f"  settled phase shift   : {mm.settled_shift:7.2f} deg (jump = {MDE_JUMP_DEG_MACHINE})\n")

    print("match summary (the paper's argument):")
    print(f"  frequency ratio bench/machine: {mb.synchrotron_frequency / mm.synchrotron_frequency:.3f}"
          f"  (paper: 1.28/1.2 = {1.28 / 1.2:.3f})")
    print(f"  both first peaks ~= 2x their jump: bench {mb.peak_ratio:.2f}, machine {mm.peak_ratio:.2f}")
    print("  both oscillations fully damped inside the 50 ms window: "
          f"{mb.residual_peak_to_peak < 1.0 and mm.residual_peak_to_peak < 1.5}")


if __name__ == "__main__":
    main()
