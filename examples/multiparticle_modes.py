#!/usr/bin/env python3
"""Multi-macro-particle extension: Landau damping and the quadrupole mode.

Section VI of the paper plans to "replace the single macro particle with
a set of macro particles", enabling other oscillation modes (like the
quadrupole oscillation) and a parametric bunch profile.  This example
runs that extension:

1. a *dipole* kick (whole bunch displaced) with the control loop OFF —
   the coherent oscillation decays by filamentation/Landau damping alone;
2. the same kick with the loop ON — much faster damping (the paper's
   point that loop damping dominates);
3. a *quadrupole* excitation (bunch-length mismatch) — σ_Δt oscillates
   at ≈ 2·f_s, invisible to the single-particle bench.

Run:  python examples/multiparticle_modes.py
"""

import numpy as np

from repro import SIS18, KNOWN_IONS, MultiParticleTracker, RFSystem
from repro.physics.distributions import gaussian_bunch
from repro.physics.oscillation import (
    estimate_oscillation_frequency,
    fit_damping_envelope,
)
from repro.physics.rf import synchrotron_frequency, voltage_for_synchrotron_frequency
from repro.experiments import landau_damping_comparison


def quadrupole_demo() -> None:
    ring, ion = SIS18, KNOWN_IONS["14N7+"]
    f_rev = 800e3
    gamma = ring.gamma_from_revolution_frequency(f_rev)
    probe = RFSystem(harmonic=4, voltage=1.0)
    voltage = voltage_for_synchrotron_frequency(ring, ion, probe, gamma, 1.28e3)
    rf = probe.with_voltage(voltage)
    f_s = synchrotron_frequency(ring, ion, rf, gamma)

    rng = np.random.default_rng(42)
    delta_t, delta_gamma = gaussian_bunch(ring, ion, rf, gamma, 15e-9, 4000, rng)
    # Quadrupole excitation: squeeze the bunch to 60% length (mismatch).
    delta_t *= 0.6
    tracker = MultiParticleTracker(ring, ion, rf, delta_t, delta_gamma, gamma)
    record = tracker.track(24000, f_rev=f_rev, record_every=4)

    f_quad = estimate_oscillation_frequency(record.time, record.std_delta_t)
    print("quadrupole mode (bunch-length oscillation):")
    print(f"  sigma oscillates at {f_quad:.0f} Hz ~= 2 x f_s = {2 * f_s:.0f} Hz")
    print(f"  dipole moment stays quiet: |<dt>| < "
          f"{np.abs(record.mean_delta_t).max() * 1e9:.2f} ns\n")


def main() -> None:
    print("Landau damping / filamentation vs. control-loop damping")
    rows = landau_damping_comparison(n_particles=3000, duration=0.045)
    for row in rows:
        label = "loop ON " if row.control_enabled else "loop OFF"
        print(f"  {label}: damping rate {row.damping_rate:8.1f} /s "
              f"(tau {row.time_constant * 1e3:6.1f} ms), "
              f"bunch length growth {row.bunch_length_growth * 100:5.1f}%, "
              f"residual {row.residual_amplitude_deg:.2f} deg")
    off, on = rows[0], rows[1]
    print(f"  -> loop damping is {on.damping_rate / max(off.damping_rate, 1e-9):.0f}x stronger "
          "(the paper's justification for neglecting Landau damping)\n")

    quadrupole_demo()


if __name__ == "__main__":
    main()
