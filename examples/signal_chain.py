#!/usr/bin/env python3
"""Drive the sample-accurate FPGA framework block by block (Figs. 2–3).

Builds the full Fig. 3 signal chain — group DDS → 14-bit ADCs → 8192-deep
ring buffers → zero-crossing / period detectors → CGRA beam model →
Gauss-pulse generator → 16-bit DAC — and streams a few hundred
revolutions through it at the full 250 MHz sample resolution, printing
what each stage observes.

Run:  python examples/signal_chain.py
"""

import numpy as np

from repro import SIS18, KNOWN_IONS, FpgaFramework, FrameworkConfig
from repro.constants import deg_to_rad
from repro.signal.dds import GroupDDS
from repro.signal.phase_detector import IQPhaseDetector


def main() -> None:
    f_rev, harmonic = 800e3, 4
    adc_amplitude = 0.9
    sample_rate = 250e6

    # The kV-scale calibration: 0.9 V at the ADC stands for ~4.9 kV at the gap.
    gap_volts = 4862.0
    config = FrameworkConfig(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        harmonic=harmonic,
        gap_volts_per_adc_volt=gap_volts / adc_amplitude,
        ref_volts_per_adc_volt=harmonic * gap_volts / adc_amplitude,
        n_bunches=1,
    )
    framework = FpgaFramework(config)
    print(f"CGRA model: {framework.model.schedule_length} ticks/revolution, "
          f"{len(framework.model.graph)} dataflow nodes")

    # An 8 degree gap phase jump is present from the start.
    group = GroupDDS(
        revolution_frequency=f_rev,
        harmonic=harmonic,
        amplitude=adc_amplitude,
        sample_rate=sample_rate,
        gap_phase_drive=lambda t: deg_to_rad(8.0),
    )
    group.reset_phase()

    block = int(round(sample_rate / f_rev))  # one revolution per block
    n_revolutions = 400
    beam_blocks = []
    for _ in range(n_revolutions):
        ref, gap = group.generate(block)
        beam, _monitor = framework.feed(ref.samples, gap.samples)
        beam_blocks.append(beam.samples)

    print(f"fed {n_revolutions} revolutions "
          f"({n_revolutions * block} samples at 250 MHz)")
    print(f"period detector: {framework.period_detector.frequency():.1f} Hz "
          f"(expected {f_rev:.0f})")
    print(f"model initialised: {framework.initialised}, "
          f"iterations run: {framework.executor.iterations}")
    print(f"current bunch delta_t: {framework.delta_t[0] * 1e9:.2f} ns")

    # DSP view: IQ-demodulate the last 40 revolutions of beam signal.
    tail = np.concatenate(beam_blocks[-40:])
    t0 = (n_revolutions - 40) * block / sample_rate
    detector = IQPhaseDetector(harmonic * f_rev)
    print(f"beam-signal phase at {harmonic * f_rev / 1e6:.1f} MHz: "
          f"{detector.measure(tail, sample_rate, t0):.2f} deg")

    rec = framework.recorder.as_array()
    print(f"DRAM recorder: {rec.shape[0]} revolution records "
          f"(readout via framework.recorder.readout_serial())")


if __name__ == "__main__":
    main()
