#!/usr/bin/env python3
"""Ramp-up: accelerate a bunch from injection energy (Section VI outlook).

Implements the paper's in-progress extension: the revolution frequency
ramps linearly (600 kHz → 800 kHz), the synchronous phase follows from
the per-turn energy gain the ramp demands, and the bunch's phase
excursion is tracked to confirm it stays inside the bucket.  The
real-time budget is re-checked every revolution — the budget *shrinks*
as the beam speeds up, which is exactly the challenge the paper names.

Run:  python examples/rampup.py
"""

from repro import SIS18, KNOWN_IONS
from repro.experiments import RampUpScenario, rampup_run


def main() -> None:
    scenario = RampUpScenario(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        harmonic=4,
        f_start=600e3,
        f_end=800e3,
        duration=0.15,
        voltage_start=6e3,
        voltage_end=6e3,
        initial_delta_t=15e-9,
    )
    print(f"ramping {scenario.f_start / 1e3:.0f} kHz -> {scenario.f_end / 1e3:.0f} kHz "
          f"over {scenario.duration * 1e3:.0f} ms at {scenario.voltage_start / 1e3:.1f} kV")

    result = rampup_run(scenario)

    print(f"\ntracked {len(result.time)} records")
    print(f"synchronous phase range: "
          f"[{result.synchronous_phase_deg.min():.2f}, {result.synchronous_phase_deg.max():.2f}] deg")
    print(f"reference particle follows the programme: "
          f"final |gamma error| = {result.final_gamma_error:.2e}")
    print(f"bunch stays captured: max |RF phase| = "
          f"{result.max_abs_bunch_phase_deg:.1f} deg (bucket half-height 180 deg)")
    print(f"real-time deadline through the ramp: met={result.deadline.met}, "
          f"min slack {result.deadline.min_slack:.1f} ticks "
          f"(tightest at the top of the ramp)")


if __name__ == "__main__":
    main()
