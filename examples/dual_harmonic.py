#!/usr/bin/env python3
"""Dual-harmonic cavity operation (the system of paper reference [9]).

Shows the extension in three steps:

1. bucket physics: the synchrotron frequency follows √(1 − 2r) and the
   flat bucket (r = 0.5) trades the linear frequency for a huge
   amplitude-dependent spread — the Landau-damping reservoir;
2. the multi-particle consequence: a displaced bunch decoheres fastest
   in bunch-lengthening mode;
3. the HIL bench runs closed-loop with a dual-harmonic gap signal and
   *no CGRA model change* — the beam model reads the gap ring buffer,
   whatever waveform it carries.

Run:  python examples/dual_harmonic.py
"""

import numpy as np

from repro import SIS18, KNOWN_IONS, CavityInTheLoop
from repro.experiments.dual_harmonic_study import dual_harmonic_landau_study
from repro.experiments.mde import bench_config
from repro.physics.dual_harmonic import (
    DualHarmonicRF,
    dual_harmonic_synchrotron_frequency,
)
from repro.physics.oscillation import estimate_oscillation_frequency
from repro.physics.rf import RFSystem, voltage_for_synchrotron_frequency


def bucket_physics() -> None:
    ring, ion = SIS18, KNOWN_IONS["14N7+"]
    gamma = ring.gamma_from_revolution_frequency(800e3)
    probe = RFSystem(harmonic=4, voltage=1.0)
    v1 = voltage_for_synchrotron_frequency(ring, ion, probe, gamma, 1.28e3)
    print(f"fundamental amplitude: {v1:.0f} V (f_s = 1.28 kHz single-harmonic)")
    print("ratio r    f_s linear   (the sqrt(1-2r) law)")
    for r in (0.0, 0.1, 0.25, 0.4, 0.5):
        rf = DualHarmonicRF(harmonic=4, voltage=v1, ratio=r)
        f = dual_harmonic_synchrotron_frequency(ring, ion, rf, gamma)
        print(f"  {r:4.2f}    {f:8.1f} Hz   (x {np.sqrt(max(1 - 2 * r, 0)):.3f})")
    print()


def landau_reservoir() -> None:
    print("Landau study (amplitude-dependent f_s and dipole decoherence):")
    rows = dual_harmonic_landau_study(
        SIS18, KNOWN_IONS["14N7+"], n_particles=1200, n_turns=28000
    )
    for r in rows:
        print(f"  r={r.ratio:4.2f}: f_s(5ns)={r.f_s_small:7.1f} Hz  "
              f"f_s(50ns)={r.f_s_large:7.1f} Hz  "
              f"spread={r.frequency_spread * 100:5.1f}%  "
              f"dipole retention={r.amplitude_retention * 100:5.1f}%")
    print()


def closed_loop() -> None:
    print("closed-loop bench with r = 0.3 second harmonic:")
    sim = CavityInTheLoop(bench_config(record_every=4, dual_harmonic_ratio=0.3,
                                       jump_start_time=0.002))
    print(f"  fundamental raised to {sim.gap_voltage_amplitude:.0f} V to keep f_s")
    res = sim.run(0.04)
    sel = (res.time > 0.002) & (res.time < 0.014)
    f = estimate_oscillation_frequency(res.time[sel], res.phase_deg[sel])
    tail = res.phase_deg[res.time > 0.03]
    print(f"  oscillation at {f:.0f} Hz, settled at {tail.mean():.2f} deg "
          f"(jump 8), residual pp {tail.max() - tail.min():.3f} deg")
    print("  the CGRA beam model is byte-identical to the single-harmonic one.")


def main() -> None:
    bucket_physics()
    landau_reservoir()
    closed_loop()


if __name__ == "__main__":
    main()
