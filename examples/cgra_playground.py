#!/usr/bin/env python3
"""Compile your own mini-C kernel onto the CGRA and execute it.

Shows the Section III-C tool flow in isolation: C source → SCAR dataflow
graph → list schedule → context memories → cycle-accurate execution, for
a small damped-oscillator kernel that has nothing to do with beams —
demonstrating the overlay is a general real-time compute fabric (the
paper's UltraSynth reference used the same framework for vehicle
dynamics).

Run:  python examples/cgra_playground.py
"""

from repro.cgra import (
    CgraConfig,
    CgraExecutor,
    CgraFabric,
    ListScheduler,
    SensorBus,
    compile_c_to_dfg,
)
from repro.cgra.context import images_to_json, build_context_images
from repro.cgra.visualize import render_schedule, utilisation_bars

SOURCE = """
// A driven, damped harmonic oscillator integrated per tick:
//   v += (-K*x - D*v + force) * DT;  x += v * DT
#define S_FORCE 3
#define A_POS 17

void oscillator(float K, float D, float DT) {
    float x = 1.0;
    float v = 0.0;
    while (1) {
        float force = read_sensor(S_FORCE);
        write_actuator(A_POS, x);
        pipeline_barrier();
        float accel = force - K * x - D * v;
        v = v + accel * DT;
        x = x + v * DT;
    }
}
"""


def main() -> None:
    graph = compile_c_to_dfg(SOURCE)
    print(f"dataflow graph: {len(graph)} nodes, params {graph.params}")
    print(graph.dump())

    fabric = CgraFabric(CgraConfig(rows=3, cols=3))
    schedule = ListScheduler(fabric).schedule(graph)
    print(f"\nschedule length: {schedule.length} ticks on a 3x3 fabric")
    print(render_schedule(schedule, max_width=100))
    print()
    print(utilisation_bars(schedule, width=30))

    images = build_context_images(schedule)
    payload = images_to_json(images)
    print(f"\ncontext images: {len(payload)} bytes of 'bitstream insert'")

    # Execute 200 iterations with a constant drive force.
    bus = SensorBus()
    bus.register_reader(3, lambda: 2.0)
    trace = []
    bus.register_writer(17, trace.append)
    executor = CgraExecutor(schedule, bus, {"K": 4.0, "D": 0.4, "DT": 0.05})
    executor.run(200)

    # x should settle toward force/K = 0.5.
    print(f"\nx after 200 ticks: {trace[-1]:.4f} (analytic equilibrium 0.5)")
    print(f"first few x values: {[round(v, 3) for v in trace[:6]]}")


if __name__ == "__main__":
    main()
