#!/usr/bin/env python3
"""Quickstart: run the cavity-in-the-loop bench for 100 ms.

Reproduces a short slice of the paper's headline experiment (Fig. 5a):
a beam-phase control loop damping deliberately excited longitudinal
dipole oscillations of a simulated ¹⁴N⁷⁺ bunch in SIS18.

Run:  python examples/quickstart.py
"""

from repro import SIS18, KNOWN_IONS, CavityInTheLoop, HilConfig
from repro.physics.oscillation import estimate_oscillation_frequency


def main() -> None:
    config = HilConfig(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        harmonic=4,                    # 4 bunches, gap RF at 3.2 MHz
        revolution_frequency=800e3,    # the MDE's reference frequency
        synchrotron_frequency=1.28e3,  # amplitude auto-tuned to this f_s
        jump_deg=8.0,                  # the bench's phase jumps
        record_every=8,
    )
    sim = CavityInTheLoop(config)
    print(f"gap voltage amplitude tuned to {sim.gap_voltage_amplitude:.0f} V")
    print(f"CGRA schedule: {sim.model.schedule_length} ticks "
          f"(max real-time f_rev {sim.model.max_f_rev / 1e6:.2f} MHz)")

    result = sim.run(0.1)  # 100 ms of machine time = 80 000 revolutions

    # The Fig. 5a observable: DSP phase difference, 5-sample averaged.
    phase = result.phase_deg_smoothed(width=5)
    print(f"\nrecorded {len(result.time)} points over {result.time[-1] * 1e3:.0f} ms")
    print(f"phase range: [{phase.min():.2f}, {phase.max():.2f}] deg")

    after_jump = (result.time > 0.005) & (result.time < 0.025)
    f_s = estimate_oscillation_frequency(result.time[after_jump], phase[after_jump])
    print(f"synchrotron frequency of the excited oscillation: {f_s:.0f} Hz")

    settled = phase[(result.time > 0.045) & (result.time < 0.054)]
    print(f"settled level before the next jump: {settled.mean():.2f} deg "
          f"(jump was {config.jump_deg} deg)")
    print(f"real-time deadline: met={result.deadline.met}, "
          f"min slack {result.deadline.min_slack:.1f} CGRA ticks")


if __name__ == "__main__":
    main()
