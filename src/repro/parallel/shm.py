"""Zero-copy shard result transport over POSIX shared memory.

The default path for shard results is pickling through the
``ProcessPoolExecutor`` result queue — every float of every result
array is serialised in the worker, shipped through a pipe and
deserialised in the parent.  For result-heavy experiments (sweep phase
traces, long monitor records) that serialisation dominates merge time.

This module implements the alternative the pool's ``transport="shm"``
mode uses:

* the **parent** assigns each task a deterministic block name
  (``repro<pid>_<seq>_<index>``) so it can always find — and clean up —
  the block, even when the worker died mid-task;
* the **worker** packs every large result array into one
  :class:`multiprocessing.shared_memory.SharedMemory` block under that
  name and replaces the arrays with tiny :class:`ShmArrayRef`
  descriptors ``(offset, shape, dtype)``, so the pickled result carries
  descriptors instead of data;
* the **parent** attaches the block, rebuilds the arrays as zero-copy
  views into the mapping and unlinks the block at merge time (the pages
  live on until the result arrays are garbage-collected).

**Resource-tracker discipline** (CPython 3.11 registers a block in
*both* the create and the attach path): the worker unregisters the
block right after creating it — ownership passes to the parent with the
task result — and the parent's attach/unlink pair balances itself.  Net
effect: exactly one tracked owner at any time and no "leaked
shared_memory" warnings at interpreter exit.

Everything degrades gracefully: workers fall back to in-band pickling
when the platform has no usable shared memory, when the arrays are
small (under :data:`SHM_MIN_BYTES` the descriptor machinery costs more
than pickling saves), or when block creation fails mid-flight
(``/dev/shm`` full).  The parent treats a missing or torn block as a
shard infrastructure failure, never as silent data loss.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Any

import numpy as np

__all__ = [
    "SHM_MIN_BYTES",
    "ShmArrayRef",
    "shm_available",
    "offload_arrays",
    "restore_arrays",
    "unlink_block",
    "get_shm_min_bytes",
    "set_shm_min_bytes",
]

#: Default offload threshold: arrays smaller than this stay in the
#: pickled result (descriptor + attach overhead only pays off for bulk
#: data).  One 4 KiB page is already competitive on a warm pool; tune
#: per deployment via ``REPRO_SHM_MIN_BYTES`` or :func:`set_shm_min_bytes`.
SHM_MIN_BYTES = 4 * 1024


def _threshold_from_env() -> int:
    raw = os.environ.get("REPRO_SHM_MIN_BYTES")
    if raw is None:
        return SHM_MIN_BYTES
    try:
        value = int(raw)
    except ValueError:
        return SHM_MIN_BYTES
    return value if value >= 0 else SHM_MIN_BYTES


_shm_min_bytes = _threshold_from_env()


def get_shm_min_bytes() -> int:
    """The active offload threshold in bytes."""
    return _shm_min_bytes


def set_shm_min_bytes(n_bytes: int) -> None:
    """Set the offload threshold (0 = offload every non-object array).

    Process-local; workers inherit the parent's value over fork, spawn
    platforms re-read ``REPRO_SHM_MIN_BYTES`` at import.
    """
    global _shm_min_bytes
    if n_bytes < 0:
        raise ValueError(f"threshold must be >= 0, got {n_bytes}")
    _shm_min_bytes = int(n_bytes)

_availability: bool | None = None


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here (probed once).

    Importability is not enough — containers without ``/dev/shm`` (or
    with it mounted read-only) fail at block creation, so the probe
    creates and unlinks a one-page block.
    """
    global _availability
    if _availability is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _availability = True
        except Exception:
            _availability = False
    return _availability


@dataclass(frozen=True)
class ShmArrayRef:
    """Placeholder for one array parked in a shared block (picklable)."""

    offset: int
    shape: tuple
    dtype: str


def _is_large_array(obj: Any) -> bool:
    return (
        isinstance(obj, np.ndarray)
        and obj.nbytes >= _shm_min_bytes
        # Object arrays have no flat byte image; leave them to pickle.
        and obj.dtype != object
    )


def _swap(value: Any, convert) -> Any:
    """Rebuild ``value`` with ``convert`` applied to every array slot.

    Mirrors the one-container-level traversal of the pool's
    ``_guard_value``: the top-level object, list/tuple members, dict
    values and dataclass fields.  Deeper nesting stays in-band (pickle),
    which is always correct — just not zero-copy.
    """
    if _is_large_array(value) or isinstance(value, ShmArrayRef):
        return convert(value)
    if isinstance(value, list):
        return [convert(m) for m in value]
    if isinstance(value, tuple):
        return tuple(convert(m) for m in value)
    if isinstance(value, dict):
        return {k: convert(m) for k, m in value.items()}
    if is_dataclass(value) and not isinstance(value, type):
        updates = {
            f.name: convert(getattr(value, f.name))
            for f in fields(value)
            if f.init
        }
        changed = {
            k: v for k, v in updates.items() if v is not getattr(value, k)
        }
        return replace(value, **changed) if changed else value
    return value


# -- worker side ----------------------------------------------------------


def offload_arrays(value: Any, name: str) -> tuple[Any, bool]:
    """Park ``value``'s large arrays in shared block ``name``.

    Returns ``(transformed_value, used_shm)``.  When no array clears the
    size threshold — or block creation fails — the original value is
    returned untouched with ``used_shm=False`` and the result travels
    in-band.  On success the worker has already closed its mapping and
    unregistered the block: the parent owns cleanup from here on.
    """
    plan: list[np.ndarray] = []

    def collect(obj: Any) -> Any:
        if _is_large_array(obj):
            plan.append(obj)
        return obj

    _swap(value, collect)
    if not plan:
        return value, False

    align = 64  # cache-line alignment for each parked array
    offsets: list[int] = []
    total = 0
    for arr in plan:
        offsets.append(total)
        total += (arr.nbytes + align - 1) // align * align

    try:
        from multiprocessing import resource_tracker, shared_memory

        block = shared_memory.SharedMemory(name=name, create=True, size=total)
    except Exception:
        return value, False
    try:
        # Ownership passes to the parent with the result; without this
        # unregister the same name would be tracker-registered twice
        # (worker create + parent attach) but unlinked once.
        try:
            resource_tracker.unregister(block._name, "shared_memory")
        except Exception:
            pass
        cursor = iter(zip(plan, offsets))
        refs: dict[int, ShmArrayRef] = {}
        for arr, offset in cursor:
            dest = np.ndarray(arr.shape, dtype=arr.dtype, buffer=block.buf, offset=offset)
            dest[...] = arr
            refs[id(arr)] = ShmArrayRef(
                offset=offset, shape=tuple(arr.shape), dtype=arr.dtype.str
            )

        def to_ref(obj: Any) -> Any:
            ref = refs.get(id(obj)) if isinstance(obj, np.ndarray) else None
            return ref if ref is not None else obj

        transformed = _swap(value, to_ref)
    finally:
        block.close()
    return transformed, True


# -- parent side ----------------------------------------------------------


def restore_arrays(value: Any, name: str) -> Any:
    """Rebuild a shard value whose arrays were parked in block ``name``.

    Attaches and returns **zero-copy views** into the mapping, then
    unlinks the block: the ``/dev/shm`` entry disappears immediately,
    but POSIX keeps the pages alive until the last mapping goes away —
    each view pins ``block.buf``, so the memory is released exactly when
    the result arrays are garbage-collected.  No parent-side copy ever
    happens.  Raises on a missing or torn block — the pool converts that
    into a shard infrastructure failure.
    """
    import weakref
    from multiprocessing import shared_memory

    block = shared_memory.SharedMemory(name=name)
    views: list[np.ndarray] = []
    try:
        def from_ref(obj: Any) -> Any:
            if isinstance(obj, ShmArrayRef):
                view = np.ndarray(
                    obj.shape,
                    dtype=np.dtype(obj.dtype),
                    buffer=block.buf,
                    offset=obj.offset,
                )
                views.append(view)
                return view
            return obj

        result = _swap(value, from_ref)
    except Exception:
        block.close()
        block.unlink()
        raise
    # Deliberately no block.close(): ``SharedMemory.__del__`` unmaps the
    # pages, and the ndarray views above do not hold a live buffer
    # export that would stop it — so the block must stay referenced for
    # as long as any view is alive.  Each finalizer below pins it to one
    # view's lifetime; when the last view is collected the block object
    # follows and its ``__del__`` unmaps.  ``unlink`` drops the
    # ``/dev/shm`` entry now (POSIX keeps the pages until last unmap)
    # and balances the attach's resource-tracker registration.
    block.unlink()
    for view in views:
        weakref.finalize(view, _keep_until_collected, block)
    if not views:
        block.close()
    return result


def _keep_until_collected(block) -> None:
    """No-op finalizer target: its bound ``block`` argument is the point
    — the finalize registry holds it until the watched view dies."""


def unlink_block(name: str) -> None:
    """Best-effort cleanup of a block that never reached the merge
    (worker died, dispatch aborted).  Missing blocks are fine."""
    try:
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(name=name)
        block.close()
        block.unlink()
    except Exception:
        pass
