"""Deterministic per-shard seed derivation.

Sharded experiments must not consume a shared random stream in dispatch
order — that would make the numbers depend on how work was chunked
across workers.  Instead, every item derives its own child seed from the
experiment's base seed via :class:`numpy.random.SeedSequence` spawning,
which is stable across processes, worker counts and dispatch order: the
``--jobs 1`` / ``--jobs N`` byte-identical-CSV guarantee rests on this.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["shard_seeds"]


def shard_seeds(base_seed: int, n: int) -> list[int]:
    """Derive ``n`` independent child seeds from ``base_seed``.

    Child ``i`` is always the same integer for a given ``(base_seed,
    i)`` pair, regardless of how many siblings are spawned after it or
    which process asks.
    """
    if n < 0:
        raise ConfigurationError(f"cannot derive {n} seeds")
    sequence = np.random.SeedSequence(base_seed)
    return [int(child.generate_state(1, np.uint64)[0]) for child in sequence.spawn(n)]
