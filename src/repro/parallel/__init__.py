"""``repro.parallel`` — multi-core sharded scenario execution.

The process-pool tier above the batched engine: independent HIL runs
(scenarios, f_rev points, ensemble members, lane chunks) shard across
worker processes while each worker keeps using the in-process
compiled/batched engines, so **batch × process compose** — see
docs/PERFORMANCE.md, "Parallel tier".

Public surface:

* :class:`WorkerPool` / :func:`run_sharded` — warm worker pools with
  compile-cache priming at fork, chunked order-stable dispatch, and
  failure containment (:class:`ShardFailure` records instead of a dead
  pool);
* :func:`shard_seeds` — deterministic per-shard seed derivation that is
  independent of the worker count, so ``--jobs 1`` and ``--jobs N``
  produce identical numbers;
* :func:`prime_compile_caches` — the default worker initializer, paying
  ``compile_beam_model``/program-generation costs once per worker.
"""

from __future__ import annotations

from repro.parallel.pool import (
    DEFAULT_PRIMERS,
    ShardFailure,
    ShardResult,
    WorkerPool,
    prime_compile_caches,
    raise_on_failures,
    run_sharded,
)
from repro.parallel.seeding import shard_seeds

__all__ = [
    "WorkerPool",
    "run_sharded",
    "ShardResult",
    "ShardFailure",
    "raise_on_failures",
    "shard_seeds",
    "prime_compile_caches",
    "DEFAULT_PRIMERS",
]
