"""Warm process pools for sharded scenario execution.

Design points, in the order the ISSUE states them:

* **Worker lifecycle with compile-cache priming.**  The keyed compile
  caches in :mod:`repro.cgra.models` / :mod:`repro.cgra.engine` are
  per-process (see their multiprocess-safety notes).  The pool primes
  the *parent's* caches before starting workers — with the preferred
  ``fork`` start method the children inherit the populated caches at
  fork time for free — and every worker additionally runs the primer
  functions in its initializer, so ``spawn`` platforms pay the tool-flow
  cost once per worker, never once per run.
* **Chunked dispatch, order-stable merge.**  ``map_sharded`` submits one
  task per item and returns results ordered by shard index, whatever
  order workers finished in.  Telemetry snapshots merge in the same
  index order, so last-write-wins instruments (gauges) end up exactly as
  a serial run would leave them.
* **Failure containment.**  An exception inside a shard becomes a
  structured :class:`ShardFailure` on that shard's result; the pool and
  the remaining shards keep running.  A worker that dies outright
  (broken pool) is converted into failures for the affected shards and
  the executor is rebuilt on the next dispatch.
* **Telemetry round-trip.**  When :mod:`repro.obs` is enabled in the
  parent at pool start, workers enable it too, capture a delta
  :class:`~repro.obs.snapshot.ObsSnapshot` per task, and the parent
  merges every snapshot back — worker iterations, deadline misses and
  compile-cache hits all aggregate into the parent's exported metrics.
  With tracing on, the dispatching span's ``(trace_id, span_id)`` is
  frozen into each task and adopted worker-side, so every shard's span
  subtree re-attaches under the dispatch site on merge: a ``--jobs N``
  run exports one coherent span tree with a single trace id.

* **Zero-copy result transport.**  With ``transport="shm"`` (the
  default ``"auto"`` picks it whenever POSIX shared memory works and
  the pool is actually multi-process), workers park large result arrays
  in named shared-memory blocks (:mod:`repro.parallel.shm`) and return
  only ``(offset, shape, dtype)`` descriptors; the parent rebuilds the
  arrays with one copy each and unlinks every block at merge time.
  Blocks are parent-named, so a worker that dies mid-task can never
  leak one — the broken-pool path unlinks every outstanding name.
  Values are identical either way (transport moves bytes, it never
  re-encodes them); ``transport="pickle"`` forces the in-band path.

Work functions and items must be picklable (module-level functions,
plain-data items).  Results must be plain data as well: returning
process-local CGRA handles (compiled models, schedules, executors) is
rejected in the worker with a clear error instead of leaking an object
whose caches and weakrefs are meaningless in another process.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, is_dataclass
from typing import Any, Callable, Iterable, Sequence

from repro import obs
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.obs.profile import get_profiler
from repro.obs.snapshot import ObsSnapshot, capture_snapshot, merge_snapshot
from repro.obs.trace import current_context, get_tracer, trace_context

__all__ = [
    "ShardFailure",
    "ShardResult",
    "WorkerPool",
    "run_sharded",
    "raise_on_failures",
    "prime_compile_caches",
    "DEFAULT_PRIMERS",
]

_SHARDS_TOTAL = obs.get_registry().counter(
    "parallel_shards_total", "sharded scenario runs dispatched (by outcome label)"
)
_POOL_WORKERS = obs.get_registry().gauge(
    "parallel_pool_workers", "worker processes of the most recent pool"
)
_SHARD_SECONDS = obs.get_registry().histogram(
    "parallel_shard_seconds", "per-shard wall-clock seconds (worker-side)"
)


def prime_compile_caches() -> None:
    """Default worker primer: compile the shipped beam model.

    Populates this process's keyed model cache for the configuration
    every built-in HIL bench uses (1 bunch, pipelined, default fabric),
    then builds the flat compiled program and its vector lowering so the
    generated-source and vector-kernel code caches start warm too —
    worker runs begin with cache hits instead of tool-flow/codegen runs.
    """
    from repro.cgra.engine import compile_program
    from repro.cgra.engine_vector import get_vector_program
    from repro.cgra.models import compile_beam_model

    model = compile_beam_model(n_bunches=1, pipelined=True)
    program = compile_program(model.schedule)
    get_vector_program(program)


#: Primers every pool runs unless told otherwise.
DEFAULT_PRIMERS: tuple[Callable[[], None], ...] = (prime_compile_caches,)

#: Process-wide dispatch counter: shared-memory block names stay unique
#: across map calls and across pools within one parent process.
_DISPATCH_SEQ = itertools.count(1)


@dataclass(frozen=True)
class ShardFailure:
    """Structured record of one faulted shard (picklable, parent-safe)."""

    #: Index of the work item that failed.
    index: int
    #: Name of the work function.
    fn: str
    #: Exception class name raised in the worker.
    error_type: str
    #: Exception message.
    message: str
    #: Full worker-side traceback text.
    traceback: str = ""

    def summary(self) -> str:
        return f"shard {self.index} ({self.fn}): {self.error_type}: {self.message}"


@dataclass
class ShardResult:
    """Outcome of one work item, in shard-index order."""

    index: int
    #: The work function's return value (None when the shard failed).
    value: Any
    #: Failure record, or None on success.
    failure: ShardFailure | None = None
    #: Worker telemetry delta (None when obs was off or the run was inline).
    telemetry: ObsSnapshot | None = None
    #: PID of the process that ran the shard.
    worker_pid: int = -1
    #: Worker-side wall-clock seconds spent on the shard.
    elapsed_s: float = 0.0
    #: Name of the shared-memory block holding this shard's large result
    #: arrays, or None when the value travelled in-band.  Consumed (and
    #: cleared) by the parent's merge; user code never sees it set.
    shm: str | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def _guard_value(index: int, value: Any) -> None:
    """Reject process-local CGRA handles in shard return values.

    Compiled models, schedules and executors carry process-identity
    state (keyed caches, ``id()``-keyed program caches, weakrefs, bound
    sensor callbacks); shipping one across the process boundary would
    silently detach it from those caches.  Checked one container level
    deep — deep object graphs are the caller's responsibility.
    """
    from repro.cgra.engine import BatchedCgraExecutor
    from repro.cgra.executor import CgraExecutor
    from repro.cgra.models import CompiledModel
    from repro.cgra.modulo import ModuloSchedule
    from repro.cgra.pipelined_executor import PipelinedExecutor
    from repro.cgra.scheduler import Schedule

    handles = (
        CompiledModel,
        Schedule,
        ModuloSchedule,
        CgraExecutor,
        PipelinedExecutor,
        BatchedCgraExecutor,
    )

    def check(obj: Any) -> None:
        if isinstance(obj, handles):
            raise ConfigurationError(
                f"shard {index} returned a process-local CGRA handle "
                f"({type(obj).__name__}); return plain data and recompile "
                "via the per-process cache instead of sharing handles "
                "across processes"
            )

    check(value)
    if isinstance(value, (list, tuple, set)):
        for member in value:
            check(member)
    elif isinstance(value, dict):
        for member in value.values():
            check(member)
    elif is_dataclass(value) and not isinstance(value, type):
        for name in value.__dataclass_fields__:
            check(getattr(value, name))


# -- worker side ----------------------------------------------------------

_WORKER_STATE = {"obs": False}


def _worker_init(
    obs_enabled: bool,
    trace_enabled: bool,
    profile_enabled: bool,
    primers: tuple[Callable[[], None], ...],
    plans: dict | None = None,
) -> None:
    """Per-worker initializer: clean telemetry, primed caches.

    Runs once per worker process.  Telemetry values inherited over fork
    are dropped (they belong to the parent and would double-count on
    merge); priming runs with telemetry already on, so the one
    compile-cache miss each worker pays is visible in the aggregated
    metrics.  ``plans`` is the parent's exported autotune bundle —
    adopting it makes every worker take the parent's engine decisions
    (and skip the calibration probe) even on spawn platforms.
    """
    obs.disable()
    obs.reset()
    if obs_enabled:
        obs.enable(trace=trace_enabled, profile=profile_enabled)
    _WORKER_STATE["obs"] = obs_enabled
    if plans:
        from repro.cgra.autotune import import_plans

        import_plans(plans)
    for primer in primers:
        primer()


def _execute(index: int, fn: Callable[[Any], Any], item: Any) -> tuple:
    """Run one item with containment; returns (value, failure, elapsed)."""
    t0 = time.perf_counter()
    try:
        value = fn(item)
        _guard_value(index, value)
        failure = None
    except Exception as exc:  # containment is the contract
        value = None
        failure = ShardFailure(
            index=index,
            fn=getattr(fn, "__name__", str(fn)),
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
        )
    return value, failure, time.perf_counter() - t0


def _execute_instrumented(index: int, fn, item, ctx: tuple | None) -> tuple:
    """Run one item inside a ``parallel.shard`` span / profile phase.

    ``ctx`` is the parent process's ``(trace_id, span_id)`` frozen at
    dispatch time: adopting it parents the shard's whole span subtree
    (HIL runs, engine spans, ...) under the dispatching span, so a
    ``--jobs N`` run merges into one tree with a single trace id.
    """
    adopt = trace_context(*ctx) if ctx is not None and obs.trace_enabled() else None
    if adopt is not None:
        adopt.__enter__()
    try:
        with get_tracer().span(
            "parallel.shard", shard=index, fn=getattr(fn, "__name__", str(fn))
        ):
            value, failure, elapsed = _execute(index, fn, item)
    finally:
        if adopt is not None:
            adopt.__exit__()
    get_profiler().add("parallel.shard", elapsed)
    return value, failure, elapsed


def _run_shard(payload: tuple) -> ShardResult:
    """Worker-side task wrapper: run, then snapshot-and-reset telemetry."""
    index, fn, item, ctx, shm_name = payload
    value, failure, elapsed = _execute_instrumented(index, fn, item, ctx)
    used_shm = False
    if shm_name is not None and failure is None and value is not None:
        from repro.parallel.shm import offload_arrays

        # Graceful: offload_arrays returns the untouched value when the
        # arrays are small or the block cannot be created — the result
        # then simply travels in-band.
        value, used_shm = offload_arrays(value, shm_name)
    telemetry = None
    if _WORKER_STATE["obs"]:
        _SHARD_SECONDS.observe(elapsed)
        telemetry = capture_snapshot(reset=True)
    return ShardResult(
        index=index,
        value=value,
        failure=failure,
        telemetry=telemetry,
        worker_pid=os.getpid(),
        elapsed_s=elapsed,
        shm=shm_name if used_shm else None,
    )


# -- parent side ----------------------------------------------------------


def _pick_start_method(requested: str | None) -> str:
    methods = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in methods:
            raise ConfigurationError(
                f"start method {requested!r} unavailable (have {methods})"
            )
        return requested
    # fork is preferred: children inherit the parent's primed compile
    # caches, so worker start-up costs neither a tool-flow run nor an
    # interpreter re-import.
    return "fork" if "fork" in methods else methods[0]


class WorkerPool:
    """A warm, reusable pool of primed worker processes.

    Keep one pool alive across dispatches (the experiment runner holds
    one for a whole ``--jobs N`` session): workers stay warm, so
    per-dispatch cost is task pickling only.  ``jobs=1`` never starts a
    process — shards run inline, telemetry flows into the parent
    registry directly, and results are byte-identical to the pooled path
    by construction of the deterministic shard plan.
    """

    def __init__(
        self,
        jobs: int,
        primers: Sequence[Callable[[], None]] = DEFAULT_PRIMERS,
        start_method: str | None = None,
        transport: str = "auto",
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if transport not in ("auto", "shm", "pickle"):
            raise ConfigurationError(
                f"transport must be 'auto', 'shm' or 'pickle', got {transport!r}"
            )
        self.jobs = int(jobs)
        self._primers = tuple(primers)
        self._start_method = start_method
        self._transport = transport
        self._executor: ProcessPoolExecutor | None = None

    @property
    def transport(self) -> str:
        """The resolved result transport: ``"shm"`` or ``"pickle"``."""
        if self._transport == "auto":
            from repro.parallel.shm import shm_available

            return "shm" if self.jobs > 1 and shm_available() else "pickle"
        return self._transport

    # lifecycle --------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Prime the parent before forking so children inherit the
            # populated caches; spawn platforms re-prime per worker via
            # the initializer.
            for primer in self._primers:
                primer()
            context = multiprocessing.get_context(
                _pick_start_method(self._start_method)
            )
            from repro.cgra.autotune import export_plans

            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=context,
                initializer=_worker_init,
                initargs=(
                    obs.enabled(),
                    obs.trace_enabled(),
                    obs.profile_enabled(),
                    self._primers,
                    export_plans(),
                ),
            )
            _POOL_WORKERS.set(self.jobs)
        return self._executor

    def close(self) -> None:
        """Shut the workers down (the pool can be lazily restarted)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # dispatch ---------------------------------------------------------

    def map_sharded(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[ShardResult]:
        """Run ``fn`` over ``items``; results ordered by shard index.

        Never raises for a shard-level exception — inspect
        ``result.failure`` or call :func:`raise_on_failures`.
        """
        items = list(items)
        if not items:
            return []
        if self.jobs == 1:
            results = self._map_inline(fn, items)
        else:
            results = self._map_pooled(fn, items)
        for result in results:
            _SHARDS_TOTAL.inc(outcome="error" if result.failure else "ok")
        return results

    def _map_inline(self, fn, items) -> list[ShardResult]:
        results = []
        for index, item in enumerate(items):
            # Inline shards share the parent's contextvar stack, so the
            # parallel.shard span nests under the caller's current span
            # without explicit context adoption.
            value, failure, elapsed = _execute_instrumented(index, fn, item, None)
            _SHARD_SECONDS.observe(elapsed)
            results.append(
                ShardResult(
                    index=index,
                    value=value,
                    failure=failure,
                    telemetry=None,
                    worker_pid=os.getpid(),
                    elapsed_s=elapsed,
                )
            )
        return results

    def _map_pooled(self, fn, items) -> list[ShardResult]:
        executor = self._ensure_executor()
        # Freeze the dispatching span's context once: every shard of
        # this map call is its child, whatever worker it lands on.
        ctx = current_context()
        # Parent-assigned block names: the parent can always clean up a
        # block, even for a shard whose worker died before returning.
        seq = next(_DISPATCH_SEQ)
        if self.transport == "shm":
            names: list[str | None] = [
                f"repro{os.getpid()}_{seq}_{index}" for index in range(len(items))
            ]
        else:
            names = [None] * len(items)
        futures = [
            executor.submit(_run_shard, (index, fn, item, ctx, names[index]))
            for index, item in enumerate(items)
        ]
        results: list[ShardResult] = []
        broken = False
        failed: list[int] = []
        for index, future in enumerate(futures):
            try:
                # _restore_shard consumes (and always unlinks) the
                # shard's block, so a restored result never holds one.
                results.append(_restore_shard(future.result()))
            except BrokenExecutor as exc:
                broken = True
                failed.append(index)
                results.append(_infrastructure_failure(index, fn, exc))
            except Exception as exc:  # pickling/restore errors and kin
                failed.append(index)
                results.append(_infrastructure_failure(index, fn, exc))
        if broken:
            # A dead worker poisons the whole executor; drop it so the
            # next dispatch starts a fresh pool instead of failing fast.
            self._executor.shutdown(wait=False)
            self._executor = None
        leftovers = [names[i] for i in failed if names[i] is not None]
        if leftovers:
            # Shards that failed between block creation and merge (dead
            # worker, torn result): reclaim their blocks best-effort —
            # a worker that never got as far as creating the block makes
            # this a no-op.
            from repro.parallel.shm import unlink_block

            for name in leftovers:
                unlink_block(name)
        results.sort(key=lambda r: r.index)
        # Order-stable telemetry merge: shard-index order makes gauge
        # last-writes land exactly as the serial run would leave them.
        for result in results:
            if result.telemetry is not None:
                merge_snapshot(result.telemetry, worker=result.worker_pid)
        return results


def _restore_shard(result: ShardResult) -> ShardResult:
    """Rebuild a shard value whose arrays travelled via shared memory.

    Attaching, copying out and unlinking happen here, at merge time in
    the parent; a raise (missing/torn block) surfaces to ``_map_pooled``
    as a shard infrastructure failure.
    """
    if result.shm is not None:
        from repro.parallel.shm import restore_arrays

        result.value = restore_arrays(result.value, result.shm)
        result.shm = None
    return result


def _infrastructure_failure(index, fn, exc: BaseException) -> ShardResult:
    return ShardResult(
        index=index,
        value=None,
        failure=ShardFailure(
            index=index,
            fn=getattr(fn, "__name__", str(fn)),
            error_type=type(exc).__name__,
            message=str(exc) or "worker process died",
            traceback=traceback.format_exc(),
        ),
    )


def run_sharded(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int = 1,
    primers: Sequence[Callable[[], None]] = DEFAULT_PRIMERS,
    start_method: str | None = None,
    transport: str = "auto",
) -> list[ShardResult]:
    """One-shot convenience: pool up, map, tear down.

    For repeated dispatches hold a :class:`WorkerPool` instead — its
    workers stay warm between calls.
    """
    with WorkerPool(
        jobs, primers=primers, start_method=start_method, transport=transport
    ) as pool:
        return pool.map_sharded(fn, items)


def raise_on_failures(
    results: Sequence[ShardResult], what: str = "sharded run"
) -> list[Any]:
    """Return the ordered shard values, or raise if any shard failed.

    The :class:`~repro.errors.ParallelExecutionError` message carries
    every failure's summary plus the first worker traceback, so a
    faulting lane is debuggable from the parent process.
    """
    failures = [r.failure for r in results if r.failure is not None]
    if failures:
        detail = "; ".join(f.summary() for f in failures)
        first_tb = next((f.traceback for f in failures if f.traceback), "")
        raise ParallelExecutionError(
            f"{len(failures)}/{len(results)} shards of {what} failed: {detail}"
            + (f"\nfirst worker traceback:\n{first_tb}" if first_tb else "")
        )
    return [r.value for r in results]
