"""Cavity in the Loop — a reproduction of the SC 2024 paper.

A CGRA-based hardware/software environment that simulates the
longitudinal beam dynamics of a synchrotron in real time, so that the
accelerator's beam-phase control electronics can be tested
hardware-in-the-loop instead of against the real (expensive, scarce)
beam.

Package map
-----------
``repro.physics``      longitudinal beam dynamics (Eqs. 1–6, buckets,
                       multi-particle extension)
``repro.signal``       DDS / AWG / ADC / DAC / ring buffers / detectors /
                       FIR / phase measurement
``repro.cgra``         the CGRA overlay: mini-C frontend, SCAR dataflow
                       graphs, list scheduler, context images,
                       cycle-accurate executor, timing
``repro.control``      the beam-phase control loop
``repro.hil``          the FPGA framework (Fig. 3) and the full
                       closed-loop bench (Fig. 4)
``repro.baselines``    offline tracker, software simulator, direct-FPGA
                       cost model
``repro.experiments``  per-figure/table data generators (see DESIGN.md)

Quickstart
----------
>>> from repro import CavityInTheLoop, HilConfig, SIS18, KNOWN_IONS
>>> sim = CavityInTheLoop(HilConfig(ring=SIS18, ion=KNOWN_IONS["14N7+"]))
>>> result = sim.run(0.1)            # 100 ms of machine time
>>> result.phase_deg_smoothed()      # the Fig. 5a trace
"""

from repro.constants import SPEED_OF_LIGHT, ATOMIC_MASS_EV
from repro.errors import (
    CgraError,
    ConfigurationError,
    ExecutionError,
    FrontendError,
    HilError,
    PhysicsError,
    RealTimeViolation,
    ReproError,
    ScheduleError,
    SignalError,
)
from repro.physics import (
    SIS18,
    KNOWN_IONS,
    IonSpecies,
    MacroParticleTracker,
    MultiParticleTracker,
    RFSystem,
    SynchrotronRing,
    synchrotron_frequency,
)
from repro.cgra import (
    CgraConfig,
    CgraExecutor,
    CompiledModel,
    beam_model_source,
    compile_beam_model,
    compile_c_to_dfg,
)
from repro.control import BeamPhaseControlLoop, ControlLoopConfig
from repro.hil import CavityInTheLoop, FpgaFramework, FrameworkConfig, HilConfig, HilRunResult
from repro.baselines import MachineExperimentConfig, MachineExperimentEmulator

__version__ = "1.0.0"

__all__ = [
    "SPEED_OF_LIGHT",
    "ATOMIC_MASS_EV",
    "ReproError",
    "ConfigurationError",
    "PhysicsError",
    "SignalError",
    "CgraError",
    "FrontendError",
    "ScheduleError",
    "ExecutionError",
    "RealTimeViolation",
    "HilError",
    "SIS18",
    "KNOWN_IONS",
    "IonSpecies",
    "SynchrotronRing",
    "RFSystem",
    "MacroParticleTracker",
    "MultiParticleTracker",
    "synchrotron_frequency",
    "CgraConfig",
    "CgraExecutor",
    "CompiledModel",
    "beam_model_source",
    "compile_beam_model",
    "compile_c_to_dfg",
    "BeamPhaseControlLoop",
    "ControlLoopConfig",
    "CavityInTheLoop",
    "HilConfig",
    "HilRunResult",
    "FpgaFramework",
    "FrameworkConfig",
    "MachineExperimentConfig",
    "MachineExperimentEmulator",
    "__version__",
]
