"""The machine development experiment (MDE) scenario of 2023-11-24.

All evaluation parameters from Section V in one place, so the bench run
(Fig. 5a) and the machine emulation (Fig. 5b) cannot drift apart:

* ¹⁴N⁷⁺ ions in SIS18,
* reference 800 kHz, gap 3200 kHz (harmonic number 4),
* synchrotron frequency: 1.2 kHz measured in the MDE; the bench's input
  amplitude tuned to 1.28 kHz,
* phase jumps toggled every 1/20 s: 10° in the machine, 8° in the bench,
* control loop: FIR f_pass = 1.4 kHz, gain = −5, recursion factor 0.99.
"""

from __future__ import annotations

from repro.baselines.offline_tracker import MachineExperimentConfig
from repro.control import ControlLoopConfig
from repro.hil.simulator import HilConfig
from repro.physics.ion import KNOWN_IONS, IonSpecies
from repro.physics.ring import SIS18, SynchrotronRing

__all__ = [
    "MDE_DATE",
    "MDE_ION",
    "MDE_RING",
    "MDE_REVOLUTION_FREQUENCY",
    "MDE_HARMONIC",
    "MDE_SYNCHROTRON_FREQUENCY_MACHINE",
    "MDE_SYNCHROTRON_FREQUENCY_BENCH",
    "MDE_JUMP_DEG_MACHINE",
    "MDE_JUMP_DEG_BENCH",
    "MDE_TOGGLE_PERIOD",
    "bench_config",
    "machine_config",
]

#: Date of the machine development experiment at SIS18.
MDE_DATE = "2023-11-24"
MDE_ION: IonSpecies = KNOWN_IONS["14N7+"]
MDE_RING: SynchrotronRing = SIS18
MDE_REVOLUTION_FREQUENCY = 800e3
MDE_HARMONIC = 4
#: Synchrotron frequency measured in the machine experiment.
MDE_SYNCHROTRON_FREQUENCY_MACHINE = 1.2e3
#: Synchrotron frequency the bench's amplitude was adjusted to.
MDE_SYNCHROTRON_FREQUENCY_BENCH = 1.28e3
MDE_JUMP_DEG_MACHINE = 10.0
MDE_JUMP_DEG_BENCH = 8.0
#: "The phase jump was toggled every twentieth of a second."
MDE_TOGGLE_PERIOD = 0.05


def control_config() -> ControlLoopConfig:
    """The paper's control-loop settings at the MDE revolution rate."""
    return ControlLoopConfig(
        f_pass=1.4e3,
        gain=-5.0,
        recursion_factor=0.99,
        sample_rate=MDE_REVOLUTION_FREQUENCY,
    )


def bench_config(
    engine: str = "python",
    record_every: int = 8,
    **overrides,
) -> HilConfig:
    """The Fig. 5a bench configuration (8° jumps, f_s = 1.28 kHz)."""
    kwargs = dict(
        ring=MDE_RING,
        ion=MDE_ION,
        harmonic=MDE_HARMONIC,
        revolution_frequency=MDE_REVOLUTION_FREQUENCY,
        synchrotron_frequency=MDE_SYNCHROTRON_FREQUENCY_BENCH,
        jump_deg=MDE_JUMP_DEG_BENCH,
        jump_toggle_period=MDE_TOGGLE_PERIOD,
        control=control_config(),
        engine=engine,
        record_every=record_every,
    )
    kwargs.update(overrides)
    return HilConfig(**kwargs)


def machine_config(
    n_particles: int = 5000,
    record_every: int = 8,
    **overrides,
) -> MachineExperimentConfig:
    """The Fig. 5b machine configuration (10° jumps, f_s = 1.2 kHz)."""
    kwargs = dict(
        ring=MDE_RING,
        ion=MDE_ION,
        harmonic=MDE_HARMONIC,
        revolution_frequency=MDE_REVOLUTION_FREQUENCY,
        synchrotron_frequency=MDE_SYNCHROTRON_FREQUENCY_MACHINE,
        jump_deg=MDE_JUMP_DEG_MACHINE,
        jump_toggle_period=MDE_TOGGLE_PERIOD,
        control=control_config(),
        n_particles=n_particles,
        record_every=record_every,
    )
    kwargs.update(overrides)
    return MachineExperimentConfig(**kwargs)
