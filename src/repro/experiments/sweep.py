"""Sharded jump-amplitude sweep: the batch × process workload.

The sweep runs one closed-loop scenario per jump amplitude.  Two levels
of fan-out compose:

* **batch** — each shard runs its amplitudes as lockstep lanes of one
  :class:`~repro.hil.batch.BatchedCavityInTheLoop` (one compiled program
  advances the whole shard per revolution);
* **process** — shards dispatch across a :mod:`repro.parallel` worker
  pool, one batched bench per worker at a time.

The shard plan is a pure function of the workload (``SWEEP_CHUNK`` lanes
per shard), **never** of the worker count: ``--jobs 1`` executes exactly
the same batched runs as ``--jobs N``, just serially, which is what
makes the merged CSV byte-identical across job counts (lane traces can
depend on the lane *grouping* through vector-width-sensitive libm paths,
so the grouping itself must be pinned).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = ["SweepTask", "SweepShardResult", "plan_sweep", "run_sweep_shard", "SWEEP_CHUNK"]

#: Lanes per shard.  Fixed by the workload so the shard plan (and with
#: it every lane's batch composition) is independent of ``--jobs``.
SWEEP_CHUNK = 8


@dataclass(frozen=True)
class SweepTask:
    """One shard: a contiguous slice of the amplitude scan (plain data)."""

    #: Index of the first lane of this shard in the full scan.
    offset: int
    #: Phase-jump amplitudes of this shard's lanes, degrees.
    amps: tuple[float, ...]
    #: Machine-time duration of the run, seconds.
    duration: float
    jump_start_time: float = 0.005
    record_every: int = 1
    #: Also return the per-lane phase traces (parity gates compare them
    #: bit-for-bit; costs pickle size, so off for plain sweeps).
    keep_trace: bool = False


@dataclass
class SweepShardResult:
    """Per-lane sweep observables of one shard (plain data, picklable)."""

    offset: int
    amps: np.ndarray
    f_s: np.ndarray
    first_pp: np.ndarray
    settled: np.ndarray
    n_turns: int
    #: Worker-side wall-clock of the batched run, seconds.
    elapsed_s: float
    deadline_misses: int
    #: (n_records, lanes) phase traces when the task asked for them.
    phase_deg: np.ndarray | None = None


def plan_sweep(
    amps: np.ndarray,
    duration: float,
    chunk: int = SWEEP_CHUNK,
    keep_trace: bool = False,
) -> list[SweepTask]:
    """Chunk an amplitude scan into fixed-size shard tasks."""
    amps = np.asarray(amps, dtype=float)
    return [
        SweepTask(
            offset=start,
            amps=tuple(float(a) for a in amps[start : start + chunk]),
            duration=float(duration),
            keep_trace=keep_trace,
        )
        for start in range(0, amps.size, chunk)
    ]


def run_sweep_shard(task: SweepTask) -> SweepShardResult:
    """Run one shard's lanes as a lockstep batch; extract Fig. 5 metrics.

    Module-level and imported lazily so it pickles by reference into
    worker processes, where ``compile_beam_model`` is served by the
    worker's own primed cache.
    """
    from repro.experiments.fig5 import fig5_metrics
    from repro.hil.batch import BatchedCavityInTheLoop, BatchHilConfig
    from repro.physics import KNOWN_IONS, SIS18

    config = BatchHilConfig(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        jump_deg=task.amps,
        jump_start_time=task.jump_start_time,
        record_every=task.record_every,
    )
    bench = BatchedCavityInTheLoop(config)
    t0 = time.perf_counter()
    res = bench.run(task.duration)
    elapsed = time.perf_counter() - t0
    n_lanes = len(task.amps)
    f_s = np.full(n_lanes, np.nan)
    first_pp = np.full(n_lanes, np.nan)
    settled = np.full(n_lanes, np.nan)
    # fig5_metrics needs the full settled window (one 50 ms inter-jump
    # period after the jump); shorter smoke/bench runs keep NaN metrics
    # and are compared on the raw traces instead.
    if task.duration >= task.jump_start_time + 0.055:
        for lane in range(n_lanes):
            m = fig5_metrics(
                res.time, res.phase_deg[:, lane], task.amps[lane], task.jump_start_time
            )
            f_s[lane] = m.synchrotron_frequency
            first_pp[lane] = m.first_peak_to_peak
            settled[lane] = m.settled_shift
    return SweepShardResult(
        offset=task.offset,
        amps=np.asarray(task.amps),
        f_s=f_s,
        first_pp=first_pp,
        settled=settled,
        n_turns=len(res.time) * task.record_every,
        elapsed_s=elapsed,
        deadline_misses=res.deadline.misses,
        phase_deg=res.phase_deg if task.keep_trace else None,
    )
