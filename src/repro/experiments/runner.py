"""Command-line experiment runner.

Regenerates any paper artefact from the shell and writes its data series
as CSV (plus a human-readable summary), so the figures can be re-plotted
without touching Python:

.. code-block:: bash

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner fig5a --out results/ --quick
    python -m repro.experiments.runner all --out results/
    python -m repro.experiments.runner fig5a --quick --metrics --trace
    python -m repro.experiments.runner sweep --batch 32 --jobs 4

``--quick`` shrinks durations/ensembles for smoke runs; the defaults
match EXPERIMENTS.md.  ``--metrics``/``--trace`` switch on the
:mod:`repro.obs` telemetry and write its artefacts
(``<name>_metrics.json``/``.csv``, ``<name>_trace.jsonl``,
``<name>_report.json``) next to the CSVs — see docs/OBSERVABILITY.md.
``--profile`` adds the deterministic phase/op profiler (implies
``--metrics``; writes ``<name>_profile.json`` and logs the hot list);
``--trace-out PATH`` (implies ``--trace``) additionally accumulates
every experiment's spans across the whole invocation and writes one
Chrome/Perfetto trace file at the end — each experiment runs under a
root span ``experiment.<name>``, so a ``--jobs N`` run still exports a
single coherent span tree.  Inspect it with
``python -m repro.obs.view PATH`` or at https://ui.perfetto.dev.

``--jobs N`` shards experiment fan-out (frequency points, scenario
lanes, configurations) across ``N`` worker processes through one warm
:class:`repro.parallel.WorkerPool` held for the whole session.  The
shard plan and every random seed are independent of ``N``, so the CSVs
are byte-identical between ``--jobs 1`` and ``--jobs N`` (sole
exception: ``reconfig``, whose columns are measured wall-clock
durations); worker telemetry merges back into the parent before export.

Progress/diagnostics go to **stderr** through :mod:`logging`
(``--verbose`` raises the level to DEBUG); only the ``--list`` catalogue
prints to stdout, so it stays pipeable.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["main", "EXPERIMENTS", "run_experiment"]

logger = logging.getLogger(__name__)

#: Runtime options set by CLI flags and read by individual experiments
#: (the runner signature is fixed at ``fn(out, quick)``); ``pool`` holds
#: the session :class:`repro.parallel.WorkerPool` when ``--jobs > 1``.
_RUNNER_OPTIONS = {"batch": 8, "jobs": 1, "pool": None, "engine": None}


def _dispatch(fn, items, what: str) -> list:
    """Run one experiment's shard items, inline or across the pool.

    Returns the per-item values in item order; a failed shard raises
    :class:`repro.errors.ParallelExecutionError` with the worker-side
    context (failure containment keeps the pool and sibling shards
    alive, so all outcomes are known before the raise).
    """
    from repro.parallel import raise_on_failures, run_sharded

    pool = _RUNNER_OPTIONS.get("pool")
    if pool is not None:
        results = pool.map_sharded(fn, items)
    else:
        results = run_sharded(fn, items, jobs=1)
    return raise_on_failures(results, what)


def _configure_logging(verbose: bool) -> None:
    """Route runner output to stderr; idempotent across main() calls."""
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    logger.handlers[:] = [handler]
    logger.setLevel(logging.DEBUG if verbose else logging.INFO)
    logger.propagate = False


def _write_csv(path: Path, header: str, columns: list[np.ndarray]) -> None:
    data = np.column_stack([np.asarray(c, dtype=float) for c in columns])
    np.savetxt(path, data, delimiter=",", header=header, comments="")


def _fig1(out: Path, quick: bool) -> list[str]:
    from repro.experiments.fig1 import fig1_forces_data
    from repro.physics import SIS18, KNOWN_IONS, RFSystem

    data = fig1_forces_data(SIS18, KNOWN_IONS["14N7+"], RFSystem(harmonic=4, voltage=5e3), 800e3)
    _write_csv(out / "fig1_voltage.csv", "time_s,voltage_v", [data.time, data.voltage])
    _write_csv(
        out / "fig1_particles.csv",
        "delta_t_s,voltage_v,delta_gamma_kick",
        [data.particle_delta_t, data.particle_voltage, data.particle_delta_gamma_kick],
    )
    return [f"gap voltage curve: {len(data.time)} points",
            f"kicks (early/ref/late): {data.particle_delta_gamma_kick}"]


def _fig2(out: Path, quick: bool) -> list[str]:
    from repro.experiments.fig2 import fig2_signal_snapshot

    d = fig2_signal_snapshot()
    _write_csv(
        out / "fig2_signals.csv",
        "time_s,reference_v,gap_v,beam_v",
        [d.time, d.reference, d.gap, d.beam],
    )
    return [f"{len(d.time)} samples over {d.time[-1] * 1e6:.2f} us (h = 2)"]


def _fig5a_run(duration: float):
    """Module-level fig5a work item (pickles into pool workers)."""
    from repro.experiments.fig5 import fig5_run_bench

    return fig5_run_bench(duration=duration)


def _fig5b_run(task: tuple):
    """Module-level fig5b work item (pickles into pool workers)."""
    from repro.experiments.fig5 import fig5_run_machine

    duration, n_particles = task
    return fig5_run_machine(duration=duration, n_particles=n_particles)


def _fig5a(out: Path, quick: bool) -> list[str]:
    from repro.experiments.fig5 import fig5_metrics

    duration = 0.12 if quick else 0.30
    (res,) = _dispatch(_fig5a_run, [duration], "fig5a")
    smoothed = res.phase_deg_smoothed(5)
    _write_csv(
        out / "fig5a_phase.csv",
        "time_s,phase_deg,phase_deg_smoothed,jump_deg,correction_deg",
        [res.time, res.phase_deg, smoothed, res.jump_deg, res.correction_deg],
    )
    m = fig5_metrics(res.time, smoothed, 8.0, 0.005)
    return [
        f"f_s = {m.synchrotron_frequency:.1f} Hz (paper 1280)",
        f"first pp = {m.first_peak_to_peak:.2f} deg (paper ~16)",
        f"settled shift = {m.settled_shift:.2f} deg (paper 8)",
    ]


def _fig5b(out: Path, quick: bool) -> list[str]:
    from repro.experiments.fig5 import fig5_metrics

    duration = 0.12 if quick else 0.30
    n_particles = 1200 if quick else 5000
    (res,) = _dispatch(_fig5b_run, [(duration, n_particles)], "fig5b")
    _write_csv(
        out / "fig5b_phase.csv",
        "time_s,phase_deg,sigma_delta_t_s,jump_deg,correction_deg",
        [res.time, res.phase_deg, res.sigma_delta_t, res.jump_deg, res.correction_deg],
    )
    m = fig5_metrics(res.time, res.phase_deg, 10.0, 0.005)
    return [
        f"f_s = {m.synchrotron_frequency:.1f} Hz (paper 1200)",
        f"first pp = {m.first_peak_to_peak:.2f} deg (paper ~20)",
        f"settled shift = {m.settled_shift:.2f} deg (paper 10)",
    ]


def _schedule(out: Path, quick: bool) -> list[str]:
    from repro.experiments.schedule_table import schedule_length_table

    rows = schedule_length_table()
    _write_csv(
        out / "schedule_lengths.csv",
        "n_bunches,pipelined,ticks,max_f_rev_hz,paper_ticks",
        [
            [r.n_bunches for r in rows],
            [1.0 if r.pipelined else 0.0 for r in rows],
            [r.schedule_ticks for r in rows],
            [r.max_f_rev_hz for r in rows],
            [r.paper_ticks for r in rows],
        ],
    )
    return [
        f"{r.n_bunches} bunches {'pipelined' if r.pipelined else 'plain'}: "
        f"{r.schedule_ticks} ticks (paper {r.paper_ticks})"
        for r in rows
    ]


def _jitter(out: Path, quick: bool) -> list[str]:
    from repro.experiments.jitter_study import jitter_rows_for, jitter_tasks

    tasks = jitter_tasks(n_samples=50_000 if quick else 200_000)
    rows = [row for pair in _dispatch(jitter_rows_for, tasks, "jitter") for row in pair]
    _write_csv(
        out / "jitter.csv",
        "is_cgra,f_rev_hz,p50_s,p999_s,miss_rate,false_phase_rms_deg",
        [
            [1.0 if "CGRA" in r.implementation else 0.0 for r in rows],
            [r.f_rev_hz for r in rows],
            [r.latency.p50 for r in rows],
            [r.latency.p999 for r in rows],
            [r.deadline_miss_rate for r in rows],
            [r.false_phase_rms_deg for r in rows],
        ],
    )
    return [f"{r.implementation} @ {r.f_rev_hz / 1e3:.0f} kHz: "
            f"false phase rms {r.false_phase_rms_deg:.2f} deg" for r in rows]


def _reconfig(out: Path, quick: bool) -> list[str]:
    from repro.experiments.reconfig import reconfig_row, reconfig_tasks

    rows = _dispatch(reconfig_row, reconfig_tasks(), "reconfig")
    _write_csv(
        out / "reconfig.csv",
        "n_bunches,pipelined,cgra_seconds,fpga_seconds",
        [
            [r.n_bunches for r in rows],
            [1.0 if r.pipelined else 0.0 for r in rows],
            [r.cgra_seconds for r in rows],
            [r.fpga_seconds for r in rows],
        ],
    )
    return [f"{r.n_bunches} bunches: CGRA {r.cgra_seconds * 1e3:.1f} ms "
            f"vs FPGA {r.fpga_seconds / 3600:.2f} h" for r in rows]


def _rampup(out: Path, quick: bool) -> list[str]:
    from repro.experiments.rampup import RampUpScenario, rampup_run
    from repro.physics import SIS18, KNOWN_IONS

    scenario = RampUpScenario(
        ring=SIS18, ion=KNOWN_IONS["14N7+"],
        duration=0.05 if quick else 0.15,
    )
    res = rampup_run(scenario)
    _write_csv(
        out / "rampup.csv",
        "time_s,f_rev_hz,gamma_ref,gamma_programme,delta_t_s,phi_s_deg,bunch_phase_deg",
        [res.time, res.f_rev, res.gamma_ref, res.gamma_programme,
         res.delta_t, res.synchronous_phase_deg, res.bunch_phase_deg],
    )
    return [f"final gamma error {res.final_gamma_error:.2e}, "
            f"max |bunch phase| {res.max_abs_bunch_phase_deg:.1f} deg, "
            f"deadline met {res.deadline.met}"]


def _landau(out: Path, quick: bool) -> list[str]:
    from repro.experiments.landau import landau_row, landau_tasks

    tasks = landau_tasks(n_particles=1200 if quick else 4000)
    rows = _dispatch(landau_row, tasks, "landau")
    _write_csv(
        out / "landau.csv",
        "control_enabled,damping_rate_per_s,time_constant_s,bunch_length_growth",
        [
            [1.0 if r.control_enabled else 0.0 for r in rows],
            [r.damping_rate for r in rows],
            [r.time_constant for r in rows],
            [r.bunch_length_growth for r in rows],
        ],
    )
    return [f"loop {'on' if r.control_enabled else 'off'}: "
            f"{r.damping_rate:.1f}/s" for r in rows]


def _dual(out: Path, quick: bool) -> list[str]:
    from repro.experiments.dual_harmonic_study import (
        dual_harmonic_row,
        dual_harmonic_tasks,
    )
    from repro.physics import SIS18, KNOWN_IONS

    tasks = dual_harmonic_tasks(
        SIS18, KNOWN_IONS["14N7+"],
        n_particles=1000 if quick else 2500,
        n_turns=24000 if quick else 48000,
    )
    rows = _dispatch(dual_harmonic_row, tasks, "dual")
    _write_csv(
        out / "dual_harmonic.csv",
        "ratio,f_s_linear_hz,f_s_small_hz,f_s_large_hz,amplitude_retention",
        [
            [r.ratio for r in rows],
            [r.f_s_linear for r in rows],
            [r.f_s_small for r in rows],
            [r.f_s_large for r in rows],
            [r.amplitude_retention for r in rows],
        ],
    )
    return [f"r={r.ratio}: spread {r.frequency_spread * 100:.1f} %, "
            f"retention {r.amplitude_retention * 100:.1f} %" for r in rows]


def _sweep(out: Path, quick: bool) -> list[str]:
    from repro.experiments.sweep import SWEEP_CHUNK, plan_sweep, run_sweep_shard

    batch = int(_RUNNER_OPTIONS["batch"])
    amps = np.linspace(2.0, 12.0, batch)
    duration = 0.06 if quick else 0.20
    tasks = plan_sweep(amps, duration)
    t0 = time.perf_counter()
    shards = _dispatch(run_sweep_shard, tasks, "sweep")
    elapsed = time.perf_counter() - t0
    # Shards come back in offset order (the merge is order-stable), so
    # concatenation reassembles the full scan.
    f_s = np.concatenate([s.f_s for s in shards])
    first_pp = np.concatenate([s.first_pp for s in shards])
    settled = np.concatenate([s.settled for s in shards])
    _write_csv(
        out / "sweep_jump_amplitude.csv",
        "jump_deg,f_s_hz,first_peak_to_peak_deg,settled_shift_deg",
        [amps, f_s, first_pp, settled],
    )
    n_turns = shards[0].n_turns
    rate = batch * n_turns / elapsed if elapsed > 0 else float("inf")
    lines = [
        f"{batch} lanes x {n_turns} turns in {elapsed:.1f}s "
        f"({rate / 1e3:.0f}k lane-iterations/s, "
        f"{len(shards)} shard(s) of {SWEEP_CHUNK} lanes, "
        f"jobs={_RUNNER_OPTIONS['jobs']})",
    ]
    if np.isfinite(f_s).any():
        lines += [
            f"f_s across lanes: {np.nanmin(f_s):.1f}..{np.nanmax(f_s):.1f} Hz "
            f"(paper 1280)",
            f"settled shift tracks jump: "
            f"{settled[0]:.1f} deg @ {amps[0]:.0f} -> "
            f"{settled[-1]:.1f} deg @ {amps[-1]:.0f}",
        ]
    else:
        lines.append("duration too short for settled metrics (NaN columns)")
    return lines


def _faults(out: Path, quick: bool) -> list[str]:
    from repro.faults.campaign import CampaignConfig, CampaignResult, run_campaign

    config = CampaignConfig.quick() if quick else CampaignConfig()
    result = run_campaign(config, pool=_RUNNER_OPTIONS.get("pool"))
    _write_csv(
        out / "faults_campaign.csv",
        CampaignResult.CSV_HEADER,
        result.csv_columns(),
    )
    return result.summary_lines()


#: Experiment id → (description, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[Path, bool], list[str]]]] = {
    "fig1": ("Fig. 1 — forces on a bunch", _fig1),
    "fig2": ("Fig. 2 — bench signals (h = 2)", _fig2),
    "fig5a": ("Fig. 5a — simulator phase oscillation", _fig5a),
    "fig5b": ("Fig. 5b — machine-experiment emulation", _fig5b),
    "schedule": ("Section IV-B — schedule lengths", _schedule),
    "jitter": ("E7 — software vs. CGRA jitter", _jitter),
    "reconfig": ("E8 — reconfiguration turnaround", _reconfig),
    "rampup": ("E9 — acceleration ramp", _rampup),
    "landau": ("E10 — Landau damping vs. loop", _landau),
    "dual": ("E12 — dual-harmonic study", _dual),
    "sweep": ("Batched jump-amplitude sweep (lockstep lanes)", _sweep),
    "faults": ("Fault-injection campaign (stability margins)", _faults),
}


def run_experiment(name: str, out_dir: Path, quick: bool = False) -> list[str]:
    """Run one experiment by id; returns its summary lines."""
    if name not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    out_dir.mkdir(parents=True, exist_ok=True)
    _, fn = EXPERIMENTS[name]
    return fn(out_dir, quick)


class _TraceSession:
    """Accumulates spans + profile across experiments for ``--trace-out``.

    ``_export_telemetry`` resets the global tracer/profiler after every
    experiment (per-experiment artefacts stay scoped); this object takes
    custody of the records first so the end-of-run Perfetto export sees
    the whole invocation.  It reuses a private :class:`~repro.obs.Tracer`
    /:class:`~repro.obs.Profiler` pair as the accumulator, which the
    exporter accepts directly.
    """

    def __init__(self) -> None:
        from repro import obs

        self.tracer = obs.Tracer()
        self.profiler = obs.Profiler()

    def absorb(self) -> None:
        """Take the global tracer's records/profile (call before reset)."""
        from repro import obs

        live = obs.get_tracer()
        self.tracer.records.extend(live.records)
        self.tracer.dropped += live.dropped
        self.profiler.merge_state(obs.get_profiler().state())

    def export(self, path: Path) -> Path:
        from repro import obs

        return obs.export.export_trace_perfetto(
            path, tracer=self.tracer, profiler=self.profiler
        )


def _export_telemetry(
    name: str,
    out_dir: Path,
    want_trace: bool,
    want_profile: bool = False,
    session: _TraceSession | None = None,
) -> None:
    """Write the obs artefacts for one experiment and reset for the next."""
    import json

    from repro import obs

    paths = [
        obs.export.export_metrics_json(out_dir / f"{name}_metrics.json"),
        obs.export.export_metrics_csv(out_dir / f"{name}_metrics.csv"),
    ]
    if want_trace:
        paths.append(obs.export.export_trace_jsonl(out_dir / f"{name}_trace.jsonl"))
    if want_profile:
        profiler = obs.get_profiler()
        profile_path = out_dir / f"{name}_profile.json"
        profile_path.write_text(json.dumps(profiler.state(), indent=2))
        paths.append(profile_path)
        for phase, entry in profiler.hot_list(5):
            logger.info(
                "  profile %-28s %10.4fs total  %8d calls  mean %.3g s",
                phase, entry.total_s, entry.count, entry.mean_s,
            )
    reports = obs.run_reports()
    if reports:
        paths.append(
            obs.export.export_run_reports_json(out_dir / f"{name}_report.json")
        )
        for report in reports:
            logger.debug(
                "run report %s: %d iterations, %d misses, slack p50=%.1f p99=%.1f",
                report.name, report.n_iterations, report.deadline_misses,
                report.slack_p50, report.slack_p99,
            )
    logger.info("telemetry -> %s", ", ".join(p.name for p in paths))
    if session is not None:
        session.absorb()
    obs.reset()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Regenerate 'Cavity in the Loop' figures/tables as CSV.",
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment id, or 'all' (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--quick", action="store_true",
                        help="shrink durations/ensembles for a smoke run")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="DEBUG-level progress on stderr")
    parser.add_argument("--metrics", action="store_true",
                        help="collect telemetry; write <name>_metrics.json/.csv "
                             "and <name>_report.json next to the CSVs")
    parser.add_argument("--trace", action="store_true",
                        help="also record spans; write <name>_trace.jsonl "
                             "(implies --metrics)")
    parser.add_argument("--profile", action="store_true",
                        help="time phases/ops with the deterministic "
                             "profiler; write <name>_profile.json and log "
                             "the hot list (implies --metrics)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write one Chrome/Perfetto trace file covering "
                             "the whole run (implies --trace); inspect with "
                             "python -m repro.obs.view PATH")
    parser.add_argument("--verify", action="store_true",
                        help="statically verify the built-in CGRA kernels "
                             "(lint, schedule legality, value ranges) before "
                             "running; abort on any error")
    parser.add_argument("--analyze", action="store_true",
                        help="run the whole-program static analyses "
                             "(shard-safety lint of the experiment/fault "
                             "modules, dependence certification of the "
                             "built-in kernels) before running; abort on "
                             "any error")
    parser.add_argument("--engine",
                        choices=("interpreted", "compiled", "vector", "auto"),
                        help="CGRA execution engine for this run "
                             "(default: session default, 'interpreted'; "
                             "the sweep experiment defaults to 'auto')")
    parser.add_argument("--faults", metavar="PATH", default=None,
                        help="arm ad-hoc fault injection for this run: PATH "
                             "is a JSON list of FaultSpec dicts (see "
                             "docs/FAULTS.md); every HIL bench the "
                             "experiments build — in-process or in pool "
                             "workers — runs with these faults armed")
    parser.add_argument("--batch", type=int, default=8,
                        help="number of lockstep lanes for batched "
                             "experiments such as 'sweep' (default 8)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="shard experiment fan-out across N worker "
                             "processes (default 1 = in-process); output "
                             "CSVs are byte-identical across job counts")
    args = parser.parse_args(argv)
    _configure_logging(args.verbose)
    if args.batch < 1:
        logger.error("--batch must be >= 1, got %d", args.batch)
        return 2
    if args.jobs < 1:
        logger.error("--jobs must be >= 1, got %d", args.jobs)
        return 2
    _RUNNER_OPTIONS["batch"] = args.batch
    _RUNNER_OPTIONS["jobs"] = args.jobs
    engine = args.engine
    if engine is None and args.experiment == "sweep":
        # The sweep is the workload the adaptive planner exists for:
        # let it pick compiled/vector per program and shape.
        engine = "auto"
    _RUNNER_OPTIONS["engine"] = engine
    if engine is not None:
        from repro.cgra import set_default_engine

        set_default_engine(engine)

    fault_payload = None
    if args.faults is not None:
        import json

        from repro.errors import FaultSpecError
        from repro.faults.session import arm_from_payload

        try:
            fault_payload = json.loads(Path(args.faults).read_text())
            specs = arm_from_payload(fault_payload)
        except (OSError, ValueError, FaultSpecError) as exc:
            logger.error("--faults %s: %s", args.faults, exc)
            return 2
        logger.info(
            "armed %d ad-hoc fault(s): %s",
            len(specs),
            ", ".join(s.label or s.kind.value for s in specs),
        )

    if args.list or args.experiment is None:
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0

    if args.verify:
        from repro.cgra.lint import main as lint_main

        rc = lint_main(["--all", "--fail-on-error", "-q"])
        if rc != 0:
            logger.error("static verification of the built-in kernels failed")
            return rc
        logger.info("static verification passed for all built-in kernels")

    if args.analyze:
        from repro.analysis import main as analysis_main

        rc = analysis_main(["--all", "--fail-on-error", "-q"])
        if rc != 0:
            logger.error("static analysis preflight failed (rc=%d)", rc)
            return rc
        logger.info("static analysis preflight passed "
                    "(shardlint + vectorization certificates)")

    want_trace = args.trace or args.trace_out is not None
    telemetry = args.metrics or want_trace or args.profile
    session: _TraceSession | None = None
    if telemetry:
        from repro import obs

        obs.enable(trace=want_trace, profile=args.profile)
        obs.reset()
        if args.trace_out is not None:
            session = _TraceSession()

    # The pool outlives individual experiments: workers stay warm (and
    # their compile caches primed) across every experiment of the run.
    # Created after obs.enable() so the workers inherit the telemetry
    # switches.
    if args.jobs > 1:
        import functools

        from repro.parallel import DEFAULT_PRIMERS, WorkerPool

        primers = DEFAULT_PRIMERS
        if fault_payload is not None:
            # Session faults are process-wide state; re-arm them in every
            # worker so pooled shards inject identically to inline runs.
            from repro.faults.session import arm_from_payload

            primers = primers + (
                functools.partial(arm_from_payload, fault_payload),
            )
        _RUNNER_OPTIONS["pool"] = WorkerPool(jobs=args.jobs, primers=primers)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    out_dir = Path(args.out)
    try:
        for name in names:
            logger.debug("starting %s (quick=%s)", name, args.quick)
            t0 = time.perf_counter()
            # Root span: every span the experiment records — including
            # shards dispatched to pool workers, whose context is frozen
            # from here — parents under experiment.<name>, so the
            # exported tree has a single root per experiment.
            if want_trace:
                from repro import obs

                root = obs.get_tracer().span(
                    f"experiment.{name}", quick=bool(args.quick), jobs=args.jobs
                )
            else:
                root = None
            try:
                summary = run_experiment(name, out_dir, quick=args.quick)
            except ConfigurationError as exc:
                logger.error("%s", exc)
                return 2
            finally:
                if root is not None:
                    root.end()
            elapsed = time.perf_counter() - t0
            logger.info("[%s] done in %.1fs -> %s/", name, elapsed, out_dir)
            for line in summary:
                logger.info("  %s", line)
            if telemetry:
                _export_telemetry(
                    name, out_dir,
                    want_trace=want_trace,
                    want_profile=args.profile,
                    session=session,
                )
        if session is not None:
            trace_path = session.export(Path(args.trace_out))
            logger.info(
                "perfetto trace -> %s (%d spans/events; "
                "python -m repro.obs.view %s)",
                trace_path, len(session.tracer), trace_path,
            )
    finally:
        pool = _RUNNER_OPTIONS["pool"]
        if pool is not None:
            pool.close()
            _RUNNER_OPTIONS["pool"] = None
        if fault_payload is not None:
            from repro.faults.session import clear_session_faults

            clear_session_faults()
        if telemetry:
            from repro import obs

            obs.disable()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
