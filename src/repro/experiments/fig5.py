"""E5 — Fig. 5: phase-difference traces, bench (5a) vs. machine (5b).

The headline experiment.  :func:`fig5_run_bench` runs the cavity-in-the-
loop simulator with the 8°-jump MDE scenario; :func:`fig5_run_machine`
runs the multi-particle machine emulation with 10° jumps;
:func:`fig5_metrics` extracts the quantities the paper uses to argue the
match:

* the synchrotron frequency of the post-jump oscillation
  (1.28 kHz bench / 1.2 kHz machine),
* the first post-jump peak-to-peak amplitude ≈ 2 × jump amplitude,
* damping of the oscillation well inside the 50 ms inter-jump window,
* the settled phase level equals the jump amplitude (relative phase;
  constant dead-time offsets are explicitly irrelevant in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.offline_tracker import MachineExperimentEmulator, MachineRunResult
from repro.errors import ConfigurationError
from repro.experiments.mde import bench_config, machine_config
from repro.hil.simulator import CavityInTheLoop, HilRunResult
from repro.physics.oscillation import estimate_oscillation_frequency

__all__ = ["Fig5Metrics", "fig5_run_bench", "fig5_run_machine", "fig5_metrics"]


def fig5_run_bench(duration: float = 0.30, engine: str = "python", **overrides) -> HilRunResult:
    """Run the Fig. 5a bench for ``duration`` seconds (≥ several jumps)."""
    sim = CavityInTheLoop(bench_config(engine=engine, **overrides))
    return sim.run(duration)


def fig5_run_machine(duration: float = 0.30, n_particles: int = 5000, **overrides) -> MachineRunResult:
    """Run the Fig. 5b machine emulation for ``duration`` seconds."""
    emu = MachineExperimentEmulator(machine_config(n_particles=n_particles, **overrides))
    return emu.run(duration)


@dataclass
class Fig5Metrics:
    """Quantities extracted from one phase-difference trace."""

    #: Oscillation frequency after the first jump (Hz).
    synchrotron_frequency: float
    #: Peak-to-peak of the first post-jump oscillation (degrees).
    first_peak_to_peak: float
    #: Ratio of that peak-to-peak to twice the jump amplitude (≈ 1).
    peak_ratio: float
    #: Residual peak-to-peak just before the next jump (degrees).
    residual_peak_to_peak: float
    #: Mean settled phase minus pre-jump level, degrees (≈ jump size).
    settled_shift: float


def fig5_metrics(
    time: np.ndarray,
    phase_deg: np.ndarray,
    jump_deg: float,
    jump_time: float,
    toggle_period: float = 0.05,
) -> Fig5Metrics:
    """Extract the Fig. 5 match metrics around one jump at ``jump_time``.

    The analysis windows:

    * *pre*: 5 ms before the jump (baseline level),
    * *transient*: the first 1.5 synchrotron periods after the jump
      (first peak),
    * *spectral*: 40% of the inter-jump window (frequency estimate),
    * *settled*: the last 20% of the inter-jump window.
    """
    time = np.asarray(time, dtype=float)
    phase_deg = np.asarray(phase_deg, dtype=float)
    if time.shape != phase_deg.shape:
        raise ConfigurationError("time/phase shape mismatch")
    if not time[0] <= jump_time <= time[-1] - 0.5 * toggle_period:
        raise ConfigurationError("jump_time not inside the trace (with settling room)")

    pre = phase_deg[(time > jump_time - 0.005) & (time < jump_time)]
    if pre.size == 0:
        raise ConfigurationError("no pre-jump samples in trace")
    base = float(np.median(pre))

    spectral_sel = (time > jump_time) & (time < jump_time + 0.4 * toggle_period)
    f_s = estimate_oscillation_frequency(time[spectral_sel], phase_deg[spectral_sel])

    transient_sel = (time > jump_time) & (time < jump_time + 1.5 / f_s)
    transient = phase_deg[transient_sel]
    first_pp = float(transient.max() - transient.min())

    settled_sel = (time > jump_time + 0.8 * toggle_period) & (
        time < jump_time + toggle_period
    )
    settled = phase_deg[settled_sel]
    residual_pp = float(settled.max() - settled.min())
    settled_shift = float(np.median(settled) - base)

    return Fig5Metrics(
        synchrotron_frequency=f_s,
        first_peak_to_peak=first_pp,
        peak_ratio=first_pp / (2.0 * jump_deg),
        residual_peak_to_peak=residual_pp,
        settled_shift=settled_shift,
    )
