"""E10 — Landau damping / filamentation vs. control-loop damping.

Section V of the paper explains what the single-macro-particle bench
*cannot* show: "Without the control loop, the real particle bunch in the
accelerator would also experience a decrease of the phase oscillation
amplitude due to Landau damping and filamentation. ... It would require
the simulation of tens of thousands of individual particles to see this
effect.  However, since the damping from the control loop is much
stronger, the effect of filamentation and Landau damping can be
neglected for the controlled system."

:func:`landau_damping_comparison` runs the multi-particle tracker (the
paper's future-work model) through one phase jump with the loop off and
on and fits the dipole-envelope decay rates.  The reproduced claim:
λ_loop ≫ λ_landau > 0, and the bunch length grows (filaments) in the
uncontrolled case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.offline_tracker import MachineExperimentEmulator
from repro.errors import ConfigurationError
from repro.experiments.mde import machine_config
from repro.physics.oscillation import fit_damping_envelope

__all__ = [
    "LandauRow",
    "LandauTask",
    "landau_tasks",
    "landau_row",
    "landau_damping_comparison",
]


@dataclass(frozen=True)
class LandauRow:
    """Damping behaviour of one configuration after a phase jump."""

    control_enabled: bool
    n_particles: int
    #: Fitted dipole-envelope decay rate (1/s).
    damping_rate: float
    #: Envelope 1/e time (s).
    time_constant: float
    #: Relative bunch-length growth over the window (filamentation).
    bunch_length_growth: float
    #: Residual dipole amplitude at the end of the window, degrees.
    residual_amplitude_deg: float


@dataclass(frozen=True)
class LandauTask:
    """One configuration (loop off or on) of the comparison — plain
    data, so the two runs shard across :mod:`repro.parallel` workers."""

    control_enabled: bool
    n_particles: int = 4000
    duration: float = 0.045
    sigma_delta_t: float = 8e-9
    #: Shared across both configurations on purpose: the ensembles must
    #: be identical so the on/off contrast isolates the loop.
    seed: int = 20231124


def landau_row(task: LandauTask) -> LandauRow:
    """Run one configuration's jump response and fit its decay rate."""
    emu = MachineExperimentEmulator(
        machine_config(
            n_particles=task.n_particles,
            sigma_delta_t=task.sigma_delta_t,
            control_enabled=task.control_enabled,
            seed=task.seed,
            record_every=4,
        )
    )
    res = emu.run(task.duration)
    sel = res.time > emu.jump.start_time
    fit = fit_damping_envelope(res.time[sel], res.phase_deg[sel])
    sigma0 = float(res.sigma_delta_t[0])
    sigma1 = float(res.sigma_delta_t[-1])
    tail = res.phase_deg[res.time > 0.8 * task.duration]
    centred = tail - tail.mean()
    return LandauRow(
        control_enabled=task.control_enabled,
        n_particles=task.n_particles,
        damping_rate=fit.rate,
        time_constant=fit.time_constant,
        bunch_length_growth=sigma1 / sigma0 - 1.0,
        residual_amplitude_deg=float(np.abs(centred).max()),
    )


def landau_tasks(
    n_particles: int = 4000,
    duration: float = 0.045,
    sigma_delta_t: float = 8e-9,
    seed: int = 20231124,
) -> list[LandauTask]:
    """The comparison's shard plan: loop off, then loop on."""
    if duration > 0.05:
        raise ConfigurationError("duration must fit inside one inter-jump window")
    return [
        LandauTask(
            control_enabled=enabled,
            n_particles=n_particles,
            duration=duration,
            sigma_delta_t=sigma_delta_t,
            seed=seed,
        )
        for enabled in (False, True)
    ]


def landau_damping_comparison(
    n_particles: int = 4000,
    duration: float = 0.045,
    sigma_delta_t: float = 8e-9,
    seed: int = 20231124,
) -> list[LandauRow]:
    """Run the jump response with the loop off and on; fit decay rates.

    The window covers one jump (at 5 ms) and its aftermath; ``duration``
    must stay below the 50 ms toggle period so only one jump acts.

    ``sigma_delta_t`` controls the Landau-damping strength (decoherence
    rate grows with the amplitude-dependent frequency spread, i.e. with
    the bunch length squared): 8 ns puts the uncontrolled decay clearly
    below the loop's — the paper's "much stronger" regime — while still
    being measurable within one window.
    """
    return [
        landau_row(task)
        for task in landau_tasks(n_particles, duration, sigma_delta_t, seed)
    ]
