"""Experiment scenario builders and per-figure data generators.

One module per paper artefact (see DESIGN.md §3 for the index):
``fig1`` (forces on a bunch), ``fig2`` (bench signals, h = 2),
``fig5`` (phase-oscillation traces, bench vs. machine),
``schedule_table`` (Section IV-B schedule lengths),
``jitter_study`` (software vs. CGRA timing), ``reconfig`` (turnaround),
``rampup`` (Section VI ramp-up extension), ``landau`` (multi-particle
damping extension).  ``mde`` holds the shared machine-development-
experiment scenario of 2023-11-24.
"""

from repro.experiments.mde import (
    MDE_DATE,
    bench_config,
    machine_config,
)
from repro.experiments.fig1 import fig1_forces_data
from repro.experiments.fig2 import fig2_signal_snapshot
from repro.experiments.fig5 import fig5_run_bench, fig5_run_machine, fig5_metrics
from repro.experiments.schedule_table import schedule_length_table, PAPER_SCHEDULE_LENGTHS
from repro.experiments.jitter_study import jitter_comparison
from repro.experiments.reconfig import reconfiguration_table
from repro.experiments.rampup import RampUpScenario, rampup_run
from repro.experiments.landau import landau_damping_comparison
from repro.experiments.dual_harmonic_study import dual_harmonic_landau_study
from repro.experiments.runner import run_experiment

__all__ = [
    "MDE_DATE",
    "bench_config",
    "machine_config",
    "fig1_forces_data",
    "fig2_signal_snapshot",
    "fig5_run_bench",
    "fig5_run_machine",
    "fig5_metrics",
    "schedule_length_table",
    "PAPER_SCHEDULE_LENGTHS",
    "jitter_comparison",
    "reconfiguration_table",
    "RampUpScenario",
    "rampup_run",
    "landau_damping_comparison",
    "dual_harmonic_landau_study",
    "run_experiment",
]
