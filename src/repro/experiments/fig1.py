"""E1 — Fig. 1: sample forces that influence a bunch.

Fig. 1 illustrates the stationary-bucket mechanics: the sinusoidal gap
voltage over one RF period, the reference particle in the rising zero
crossing, and the forces on early/late particles (an early particle sees
a lower voltage and is slowed down, a late one a higher voltage and is
accelerated).  :func:`fig1_forces_data` regenerates the underlying
series and the per-particle energy kicks from the actual model
(Eq. 3), so the figure is produced by the production code path rather
than a hand-drawn sketch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.ion import IonSpecies
from repro.physics.rf import RFSystem
from repro.physics.ring import SynchrotronRing
from repro.physics.tracking import delta_gamma_update

__all__ = ["Fig1Data", "fig1_forces_data"]


@dataclass
class Fig1Data:
    """Series behind Fig. 1."""

    #: Time axis across one RF period, centred on the zero crossing (s).
    time: np.ndarray
    #: Gap voltage along the time axis (V).
    voltage: np.ndarray
    #: Sample particle arrival offsets: (early, reference, late) (s).
    particle_delta_t: np.ndarray
    #: Voltage each sample particle experiences (V).
    particle_voltage: np.ndarray
    #: Energy kick each particle receives, as Δγ change per turn (Eq. 3).
    particle_delta_gamma_kick: np.ndarray


def fig1_forces_data(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    f_rev: float,
    offset_fraction: float = 0.08,
    n_points: int = 512,
) -> Fig1Data:
    """Regenerate Fig. 1's content for the given machine setup.

    ``offset_fraction`` places the early/late sample particles at
    ±(fraction of an RF period) around the reference crossing.
    """
    if not 0.0 < offset_fraction < 0.25:
        raise ConfigurationError("offset_fraction must be in (0, 0.25)")
    if n_points < 16:
        raise ConfigurationError("n_points too small for a meaningful curve")
    t_rf = 1.0 / (rf.harmonic * f_rev)
    time = np.linspace(-0.5 * t_rf, 0.5 * t_rf, n_points)
    voltage = rf.gap_voltage_at(time, f_rev)

    offsets = np.array([-offset_fraction * t_rf, 0.0, offset_fraction * t_rf])
    p_voltage = rf.gap_voltage_at(offsets, f_rev)
    v_ref = rf.gap_voltage_at(0.0, f_rev)
    kicks = np.array(
        [delta_gamma_update(0.0, float(v), v_ref, ion) for v in p_voltage]
    )
    return Fig1Data(
        time=time,
        voltage=voltage,
        particle_delta_t=offsets,
        particle_voltage=p_voltage,
        particle_delta_gamma_kick=kicks,
    )
