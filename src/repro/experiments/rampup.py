"""E9 — the ramp-up case (paper Section VI, work in progress there).

"Currently, we are also implementing the ramp-up case, which simulates
the bunches after injection into the ring.  At that point bunches have
much smaller energies and longer revolution times.  Therefore, the
challenge is to emulate the acceleration phase with variable RF
frequencies and amplitudes."

This module implements that extension on the model side: a linear
revolution-frequency ramp with the synchronous phase derived per turn
from the required energy gain, optional gap-amplitude ramp, tracking of
the asynchronous particle through the whole ramp, and the real-time
budget check at the (tightest) top of the ramp.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cgra.models import compile_beam_model
from repro.constants import TWO_PI
from repro.errors import ConfigurationError, PhysicsError
from repro.hil.realtime import DeadlineMonitor, JitterStats
from repro.physics.ion import IonSpecies
from repro.physics.rf import RFSystem
from repro.physics.ring import SynchrotronRing
from repro.physics.tracking import MacroParticleTracker

__all__ = ["RampUpScenario", "RampUpResult", "rampup_run"]


@dataclass(frozen=True)
class RampUpScenario:
    """An acceleration ramp in the synchrotron.

    The revolution frequency rises linearly from ``f_start`` to
    ``f_end`` over ``duration``; the gap amplitude ramps linearly from
    ``voltage_start`` to ``voltage_end``.  Each turn's synchronous phase
    follows from the energy gain the frequency programme demands:
    ``sin φ_s = Δγ_required / (Q·V̂ / mc²)``.
    """

    ring: SynchrotronRing
    ion: IonSpecies
    harmonic: int = 4
    f_start: float = 600e3
    f_end: float = 800e3
    duration: float = 0.2
    voltage_start: float = 6e3
    voltage_end: float = 6e3
    #: Initial bunch offset (a small injection error), seconds.
    initial_delta_t: float = 15e-9

    def __post_init__(self) -> None:
        if self.f_start <= 0 or self.f_end <= self.f_start:
            raise ConfigurationError("need 0 < f_start < f_end")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.voltage_start <= 0 or self.voltage_end <= 0:
            raise ConfigurationError("voltages must be positive")

    def frequency_at(self, t: float) -> float:
        """Programmed revolution frequency at machine time ``t``."""
        x = min(max(t / self.duration, 0.0), 1.0)
        return self.f_start + (self.f_end - self.f_start) * x

    def voltage_at(self, t: float) -> float:
        """Programmed gap amplitude at machine time ``t``."""
        x = min(max(t / self.duration, 0.0), 1.0)
        return self.voltage_start + (self.voltage_end - self.voltage_start) * x


@dataclass
class RampUpResult:
    """Traces of one ramp-up run."""

    time: np.ndarray
    f_rev: np.ndarray
    gamma_ref: np.ndarray
    #: γ the frequency programme demands at each record.
    gamma_programme: np.ndarray
    delta_t: np.ndarray
    delta_gamma: np.ndarray
    synchronous_phase_deg: np.ndarray
    #: Bunch phase relative to the RF, degrees (bounded ⇒ stable ramp).
    bunch_phase_deg: np.ndarray
    deadline: JitterStats

    @property
    def max_abs_bunch_phase_deg(self) -> float:
        """Largest RF-phase excursion of the bunch during the ramp."""
        return float(np.abs(self.bunch_phase_deg).max())

    @property
    def final_gamma_error(self) -> float:
        """|γ_R − γ_programme| at the end of the ramp."""
        return float(abs(self.gamma_ref[-1] - self.gamma_programme[-1]))


def rampup_run(
    scenario: RampUpScenario,
    record_every: int = 64,
    n_bunches: int = 1,
) -> RampUpResult:
    """Track one bunch through the acceleration ramp.

    Raises :class:`~repro.errors.PhysicsError` if the programme demands
    more energy gain per turn than the gap voltage can deliver
    (``|sin φ_s| > 1``) — an infeasible ramp.
    """
    ring, ion = scenario.ring, scenario.ion
    qmc2 = ion.gamma_gain_per_volt()

    # Real-time budget: tightest at the top of the ramp.
    model = compile_beam_model(n_bunches=n_bunches, pipelined=True)
    deadline = DeadlineMonitor(model.schedule_length)

    state_holder: dict[str, float] = {"phi_s": 0.0, "voltage": scenario.voltage_start, "f": scenario.f_start}

    def gap_voltage(delta_t: float, f_rev: float, turn: int) -> float:
        omega_rf = TWO_PI * scenario.harmonic * f_rev
        return state_holder["voltage"] * math.sin(omega_rf * delta_t + state_holder["phi_s"])

    def reference_voltage(f_rev: float, turn: int) -> float:
        return state_holder["voltage"] * math.sin(state_holder["phi_s"])

    rf = RFSystem(harmonic=scenario.harmonic, voltage=scenario.voltage_start)
    tracker = MacroParticleTracker(ring, ion, rf, gap_voltage=gap_voltage, reference_voltage=reference_voltage)
    state = tracker.initial_state(scenario.f_start, delta_t=scenario.initial_delta_t)

    records: list[tuple[float, ...]] = []
    t = 0.0
    turn = 0
    while t < scenario.duration:
        f_now = scenario.frequency_at(t)
        t_rev = 1.0 / f_now
        f_next = scenario.frequency_at(t + t_rev)
        gamma_now = ring.gamma_from_revolution_frequency(f_now)
        gamma_next = ring.gamma_from_revolution_frequency(f_next)
        dgamma_required = gamma_next - gamma_now
        voltage = scenario.voltage_at(t)
        sin_phi = dgamma_required / (qmc2 * voltage)
        if abs(sin_phi) > 1.0:
            raise PhysicsError(
                f"infeasible ramp at t={t:.4f}s: requires sin(phi_s)={sin_phi:.2f} "
                f"(raise the gap voltage or slow the ramp)"
            )
        state_holder["phi_s"] = math.asin(sin_phi)
        state_holder["voltage"] = voltage
        deadline.check_revolution(t_rev)
        tracker.step(state, f_rev=f_now)
        if turn % record_every == 0:
            records.append(
                (
                    t,
                    f_now,
                    state.gamma_ref,
                    gamma_now,
                    state.delta_t,
                    state.delta_gamma,
                    math.degrees(state_holder["phi_s"]),
                    360.0 * scenario.harmonic * f_now * state.delta_t,
                )
            )
        t += t_rev
        turn += 1

    arr = np.asarray(records)
    return RampUpResult(
        time=arr[:, 0],
        f_rev=arr[:, 1],
        gamma_ref=arr[:, 2],
        gamma_programme=arr[:, 3],
        delta_t=arr[:, 4],
        delta_gamma=arr[:, 5],
        synchronous_phase_deg=arr[:, 6],
        bunch_phase_deg=arr[:, 7],
        deadline=deadline.stats(),
    )
