"""E2 — Fig. 2: bench input/output signals, h = 2 non-equilibrium snapshot.

Fig. 2 shows, over a couple of revolutions: the reference sine (blue),
the gap sine at twice the frequency (black, h = 2), and the simulator's
beam output — Gaussian pulses (green) displaced from the gap zero
crossings because the snapshot is out of equilibrium.

:func:`fig2_signal_snapshot` produces the same three traces through the
*sample-accurate* component chain: group DDS → Gauss-pulse generator →
DAC, with the bunches given an explicit non-equilibrium Δt.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.dds import GroupDDS
from repro.signal.gauss_pulse import GaussPulseGenerator
from repro.signal.dac import DAC

__all__ = ["Fig2Data", "fig2_signal_snapshot"]


@dataclass
class Fig2Data:
    """The three Fig. 2 traces on a shared 250 MHz time axis."""

    time: np.ndarray
    reference: np.ndarray
    gap: np.ndarray
    beam: np.ndarray
    #: The Δt offsets the bunches were given (one per bunch), seconds.
    bunch_offsets: np.ndarray


def fig2_signal_snapshot(
    f_rev: float = 800e3,
    harmonic: int = 2,
    n_revolutions: int = 2,
    amplitude: float = 0.9,
    bunch_delta_t: float = 60e-9,
    pulse_sigma: float = 25e-9,
    sample_rate: float = 250e6,
    gap_phase_rad: float = 0.35,
) -> Fig2Data:
    """Produce the Fig. 2 snapshot (defaults: h = 2, visibly displaced).

    ``bunch_delta_t`` displaces every bunch from its gap zero crossing
    and ``gap_phase_rad`` offsets the gap signal, so the snapshot is
    "non-equilibrium" like the paper's.
    """
    if n_revolutions < 1:
        raise ConfigurationError("need at least one revolution")
    if harmonic < 1:
        raise ConfigurationError("harmonic must be >= 1")
    group = GroupDDS(
        revolution_frequency=f_rev,
        harmonic=harmonic,
        amplitude=amplitude,
        sample_rate=sample_rate,
        gap_phase_drive=lambda t: gap_phase_rad,
    )
    group.reset_phase()
    n_samples = int(round(n_revolutions / f_rev * sample_rate))
    ref_wf, gap_wf = group.generate(n_samples)

    pulses = GaussPulseGenerator(sigma=pulse_sigma, sample_rate=sample_rate, amplitude=amplitude)
    t_rev = 1.0 / f_rev
    offsets = []
    for rev in range(n_revolutions + 1):
        for b in range(harmonic):
            centre = rev * t_rev + b * t_rev / harmonic + bunch_delta_t
            offsets.append(bunch_delta_t)
            if centre < (n_samples + 8 * pulse_sigma * sample_rate) / sample_rate:
                pulses.schedule(centre)
    beam_wf = pulses.render(0.0, n_samples)
    dac = DAC(bits=16, vpp=2.0, sample_rate=sample_rate)
    beam = dac.convert(beam_wf.samples)
    return Fig2Data(
        time=ref_wf.time_axis(),
        reference=ref_wf.samples,
        gap=gap_wf.samples,
        beam=beam,
        bunch_offsets=np.asarray(offsets[: harmonic]),
    )
