"""E12 — dual-harmonic cavity extension (paper ref. [9]'s system).

SIS18's LLRF is a dual-harmonic system; the beam-phase control chain the
paper tests was designed for it.  This experiment exercises the
extension end to end:

1. the synchrotron-frequency-vs-amplitude curve for single-harmonic,
   intermediate and flat-bucket configurations (the Landau reservoir);
2. the uncontrolled decoherence rate of a displaced bunch under each —
   bunch-lengthening mode damps coherent oscillations far faster;
3. a closed-loop HIL bench run with a dual-harmonic gap signal,
   demonstrating the architecture's key free lunch: the CGRA beam model
   reads the gap *ring buffer*, so no model change is needed at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.distributions import gaussian_bunch
from repro.physics.dual_harmonic import (
    DualHarmonicRF,
    dual_harmonic_synchrotron_frequency,
    synchrotron_frequency_vs_amplitude,
)
from repro.physics.ion import IonSpecies
from repro.physics.multiparticle import MultiParticleTracker
from repro.physics.rf import RFSystem, voltage_for_synchrotron_frequency
from repro.physics.ring import SynchrotronRing

__all__ = [
    "DualHarmonicRow",
    "DualHarmonicTask",
    "dual_harmonic_tasks",
    "dual_harmonic_row",
    "dual_harmonic_landau_study",
]


@dataclass(frozen=True)
class DualHarmonicRow:
    """One cavity configuration's Landau behaviour."""

    ratio: float
    #: Linear (small-amplitude) synchrotron frequency, Hz.
    f_s_linear: float
    #: f_s at a 5 ns and at a 50 ns amplitude (the spread across a bunch).
    f_s_small: float
    f_s_large: float
    #: Fraction of the coherent dipole amplitude surviving the window
    #: without control (last-quarter peak / first-quarter peak): lower =
    #: stronger Landau damping/decoherence.
    amplitude_retention: float

    @property
    def frequency_spread(self) -> float:
        """Relative f_s spread between small and large amplitudes."""
        top = max(self.f_s_small, self.f_s_large)
        return abs(self.f_s_small - self.f_s_large) / top if top > 0 else 0.0


@dataclass(frozen=True)
class DualHarmonicTask:
    """One cavity ratio of the study (plain dataclass — ring/ion are
    frozen parameter records, so the task pickles into workers)."""

    ring: SynchrotronRing
    ion: IonSpecies
    ratio: float
    f_rev: float = 800e3
    f_s_target: float = 1.28e3
    n_particles: int = 2500
    sigma_delta_t: float = 10e-9
    displacement: float = 15e-9
    n_turns: int = 48000
    #: Shared across ratios on purpose: the same ensemble probes each
    #: bucket shape, so retention differences isolate the ratio.
    seed: int = 9


def dual_harmonic_row(task: DualHarmonicTask) -> DualHarmonicRow:
    """Track one ratio's ensemble and extract its Landau behaviour."""
    ring, ion, ratio = task.ring, task.ion, task.ratio
    gamma0 = ring.gamma_from_revolution_frequency(task.f_rev)
    probe = RFSystem(harmonic=4, voltage=1.0)
    v1 = voltage_for_synchrotron_frequency(ring, ion, probe, gamma0, task.f_s_target)
    rf = DualHarmonicRF(harmonic=4, voltage=v1, ratio=ratio)
    f_lin = dual_harmonic_synchrotron_frequency(ring, ion, rf, gamma0)
    f_amp = synchrotron_frequency_vs_amplitude(
        ring, ion, rf, gamma0, [5e-9, 50e-9], f_rev=task.f_rev
    )
    # Matched-ish ensemble: use the single-harmonic matching for the
    # momentum spread (conservative for the flattened bucket) and
    # displace it to excite a coherent dipole.
    rng = np.random.default_rng(task.seed)
    single = RFSystem(harmonic=4, voltage=v1)
    dt, dgamma = gaussian_bunch(
        ring, ion, single, gamma0, task.sigma_delta_t, task.n_particles, rng,
        centre_delta_t=task.displacement,
    )
    tracker = MultiParticleTracker(ring, ion, rf, dt, dgamma, gamma0)
    rec = tracker.track(task.n_turns, f_rev=task.f_rev, record_every=16)
    centred = np.abs(rec.mean_delta_t - rec.mean_delta_t.mean())
    quarter = max(1, len(centred) // 4)
    early = float(centred[:quarter].max())
    late = float(centred[-quarter:].max())
    return DualHarmonicRow(
        ratio=ratio,
        f_s_linear=f_lin,
        f_s_small=float(f_amp[0]),
        f_s_large=float(f_amp[1]),
        amplitude_retention=late / early if early > 0 else 1.0,
    )


def dual_harmonic_tasks(
    ring: SynchrotronRing,
    ion: IonSpecies,
    ratios: tuple[float, ...] = (0.0, 0.35, 0.5),
    **overrides,
) -> list[DualHarmonicTask]:
    """The study's shard plan: one task per second-harmonic ratio."""
    n_particles = overrides.get("n_particles", 2500)
    if n_particles < 10:
        raise ConfigurationError("need a meaningful ensemble")
    return [
        DualHarmonicTask(ring=ring, ion=ion, ratio=ratio, **overrides)
        for ratio in ratios
    ]


def dual_harmonic_landau_study(
    ring: SynchrotronRing,
    ion: IonSpecies,
    ratios: tuple[float, ...] = (0.0, 0.35, 0.5),
    f_rev: float = 800e3,
    f_s_target: float = 1.28e3,
    n_particles: int = 2500,
    sigma_delta_t: float = 10e-9,
    displacement: float = 15e-9,
    n_turns: int = 48000,
    seed: int = 9,
) -> list[DualHarmonicRow]:
    """Compare Landau behaviour across second-harmonic ratios.

    The fundamental amplitude is fixed to the single-harmonic value that
    gives ``f_s_target`` (as in the MDE calibration), so rising ``ratio``
    flattens the bucket at constant V̂₁ — the operational knob of a real
    dual-harmonic system.
    """
    tasks = dual_harmonic_tasks(
        ring,
        ion,
        ratios,
        f_rev=f_rev,
        f_s_target=f_s_target,
        n_particles=n_particles,
        sigma_delta_t=sigma_delta_t,
        displacement=displacement,
        n_turns=n_turns,
        seed=seed,
    )
    return [dual_harmonic_row(task) for task in tasks]
