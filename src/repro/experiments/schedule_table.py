"""E6 — the Section IV-B schedule-length "table".

The paper reports, for the beam model on the 111 MHz CGRA:

========================  ===============  =======================
configuration             schedule length  max revolution frequency
========================  ===============  =======================
8 bunches, no pipelining  128 ticks        ≈ 867 kHz
8 bunches, pipelined      111 ticks        1 MHz
4 bunches, pipelined       99 ticks        ≈ 1.12 MHz
1 bunch,   pipelined       93 ticks        ≈ 1.19 MHz
========================  ===============  =======================

:func:`schedule_length_table` reproduces the table with our tool flow.
Absolute tick counts depend on FP-core latencies we can only estimate
(see :class:`~repro.cgra.ops.OperatorLatencies`); the *shape* —
pipelining shaves the schedule below the 1 MHz line, fewer bunches
shave it further — is the reproduced claim, checked by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cgra.fabric import CgraConfig
from repro.cgra.models import compile_beam_model

__all__ = ["ScheduleRow", "PAPER_SCHEDULE_LENGTHS", "schedule_length_table"]

#: The paper's reported values: (n_bunches, pipelined) → ticks.
PAPER_SCHEDULE_LENGTHS: dict[tuple[int, bool], int] = {
    (8, False): 128,
    (8, True): 111,
    (4, True): 99,
    (1, True): 93,
}


@dataclass(frozen=True)
class ScheduleRow:
    """One row of the reproduced schedule-length table."""

    n_bunches: int
    pipelined: bool
    schedule_ticks: int
    max_f_rev_hz: float
    paper_ticks: int | None
    paper_max_f_rev_hz: float | None
    dfg_nodes: int
    critical_path_ticks: int
    io_ops: int

    @property
    def meets_1mhz(self) -> bool:
        """Whether this configuration sustains 1 MHz revolutions."""
        return self.max_f_rev_hz >= 1e6


def schedule_length_table(
    config: CgraConfig | None = None,
    configurations: list[tuple[int, bool]] | None = None,
) -> list[ScheduleRow]:
    """Compile and schedule every configuration of the paper's table."""
    config = config if config is not None else CgraConfig()
    configurations = configurations or list(PAPER_SCHEDULE_LENGTHS)
    rows: list[ScheduleRow] = []
    for n_bunches, pipelined in configurations:
        model = compile_beam_model(n_bunches=n_bunches, pipelined=pipelined, config=config)
        paper_ticks = PAPER_SCHEDULE_LENGTHS.get((n_bunches, pipelined))
        rows.append(
            ScheduleRow(
                n_bunches=n_bunches,
                pipelined=pipelined,
                schedule_ticks=model.schedule_length,
                max_f_rev_hz=model.max_f_rev,
                paper_ticks=paper_ticks,
                paper_max_f_rev_hz=(
                    config.clock_mhz * 1e6 / paper_ticks if paper_ticks else None
                ),
                dfg_nodes=len(model.graph),
                critical_path_ticks=model.graph.critical_path_length(config.latencies),
                io_ops=model.schedule.io_op_count(),
            )
        )
    return rows
