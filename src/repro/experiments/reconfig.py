"""E8 — model-change turnaround: CGRA seconds vs. FPGA synthesis hours.

"The usage of a CGRA to carry out the simulation has proven extremely
useful as the turn-around time after model changes is only in the range
of seconds (compared to a full FPGA synthesis that can easily take
hours)."

:func:`reconfiguration_table` measures our actual tool-flow wall clock
(parse → lower → schedule → context generation) for each model variant
and sets it against the direct-FPGA cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.fpga_direct import DirectFpgaFlow
from repro.cgra.fabric import CgraConfig
from repro.cgra.models import compile_beam_model

__all__ = ["ReconfigRow", "ReconfigTask", "reconfig_tasks", "reconfig_row", "reconfiguration_table"]


@dataclass(frozen=True)
class ReconfigRow:
    """Turnaround of one model variant through both flows."""

    n_bunches: int
    pipelined: bool
    cgra_seconds: float
    fpga_seconds: float

    @property
    def speedup(self) -> float:
        """How many times faster the CGRA flow iterates."""
        return self.fpga_seconds / self.cgra_seconds


@dataclass(frozen=True)
class ReconfigTask:
    """One model variant's turnaround measurement (plain data)."""

    n_bunches: int
    pipelined: bool
    config: CgraConfig
    design_kluts: float = 180.0


def reconfig_row(task: ReconfigTask) -> ReconfigRow:
    """Measure one variant's tool-flow wall clock.

    The CSV column this feeds is a *measured duration*, so it is the one
    runner output that is inherently not byte-reproducible across runs
    (any job count included).
    """
    fpga_seconds = DirectFpgaFlow().synthesis_seconds(task.design_kluts)
    # use_cache=False: this experiment *measures* the tool-flow
    # turnaround, so a cache hit would report a stale duration.
    model = compile_beam_model(
        n_bunches=task.n_bunches,
        pipelined=task.pipelined,
        config=task.config,
        use_cache=False,
    )
    return ReconfigRow(
        n_bunches=task.n_bunches,
        pipelined=task.pipelined,
        cgra_seconds=model.compile_seconds,
        fpga_seconds=fpga_seconds,
    )


def reconfig_tasks(
    configurations: list[tuple[int, bool]] | None = None,
    config: CgraConfig | None = None,
    design_kluts: float = 180.0,
) -> list[ReconfigTask]:
    """The table's shard plan: one task per model variant."""
    configurations = configurations or [(8, False), (8, True), (4, True), (1, True)]
    config = config if config is not None else CgraConfig()
    return [
        ReconfigTask(
            n_bunches=n_bunches,
            pipelined=pipelined,
            config=config,
            design_kluts=design_kluts,
        )
        for n_bunches, pipelined in configurations
    ]


def reconfiguration_table(
    configurations: list[tuple[int, bool]] | None = None,
    config: CgraConfig | None = None,
    design_kluts: float = 180.0,
    fpga: DirectFpgaFlow | None = None,
) -> list[ReconfigRow]:
    """Measure CGRA turnaround and compare with modelled FPGA synthesis."""
    tasks = reconfig_tasks(configurations, config, design_kluts)
    if fpga is not None:
        fpga_seconds = fpga.synthesis_seconds(design_kluts)
        return [
            ReconfigRow(
                n_bunches=t.n_bunches,
                pipelined=t.pipelined,
                cgra_seconds=reconfig_row(t).cgra_seconds,
                fpga_seconds=fpga_seconds,
            )
            for t in tasks
        ]
    return [reconfig_row(task) for task in tasks]
