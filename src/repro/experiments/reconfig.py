"""E8 — model-change turnaround: CGRA seconds vs. FPGA synthesis hours.

"The usage of a CGRA to carry out the simulation has proven extremely
useful as the turn-around time after model changes is only in the range
of seconds (compared to a full FPGA synthesis that can easily take
hours)."

:func:`reconfiguration_table` measures our actual tool-flow wall clock
(parse → lower → schedule → context generation) for each model variant
and sets it against the direct-FPGA cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.fpga_direct import DirectFpgaFlow
from repro.cgra.fabric import CgraConfig
from repro.cgra.models import compile_beam_model

__all__ = ["ReconfigRow", "reconfiguration_table"]


@dataclass(frozen=True)
class ReconfigRow:
    """Turnaround of one model variant through both flows."""

    n_bunches: int
    pipelined: bool
    cgra_seconds: float
    fpga_seconds: float

    @property
    def speedup(self) -> float:
        """How many times faster the CGRA flow iterates."""
        return self.fpga_seconds / self.cgra_seconds


def reconfiguration_table(
    configurations: list[tuple[int, bool]] | None = None,
    config: CgraConfig | None = None,
    design_kluts: float = 180.0,
    fpga: DirectFpgaFlow | None = None,
) -> list[ReconfigRow]:
    """Measure CGRA turnaround and compare with modelled FPGA synthesis."""
    configurations = configurations or [(8, False), (8, True), (4, True), (1, True)]
    config = config if config is not None else CgraConfig()
    fpga = fpga if fpga is not None else DirectFpgaFlow()
    fpga_seconds = fpga.synthesis_seconds(design_kluts)
    rows: list[ReconfigRow] = []
    for n_bunches, pipelined in configurations:
        # use_cache=False: this experiment *measures* the tool-flow
        # turnaround, so a cache hit would report a stale duration.
        model = compile_beam_model(
            n_bunches=n_bunches, pipelined=pipelined, config=config, use_cache=False
        )
        rows.append(
            ReconfigRow(
                n_bunches=n_bunches,
                pipelined=pipelined,
                cgra_seconds=model.compile_seconds,
                fpga_seconds=fpga_seconds,
            )
        )
    return rows
