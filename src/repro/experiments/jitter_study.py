"""E7 — quantifying the feasibility argument: software jitter vs. CGRA.

Section I of the paper: a pure-software simulator "could be fast enough,
but the time jitter induced by the microarchitecture and the interfacing
to the sensors was too high"; the CGRA's "input/output timing can be
controlled very precisely".

:func:`jitter_comparison` produces, for both implementations at the MDE
revolution rate and at the 1 MHz limit:

* the latency distribution summary (mean/σ/p99/p99.9/worst),
* the deadline-miss rate,
* the jitter-induced *false beam phase* in RF degrees — the number that
  decides feasibility, because the control loop cannot distinguish a
  late output pulse from genuine bunch motion.  It must be far below the
  degree-scale synchrotron oscillations being emulated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.software_sim import SoftwareBeamSimulator
from repro.cgra.models import compile_beam_model
from repro.cgra.sensor import ACTUATOR_DELTA_T
from repro.errors import ConfigurationError
from repro.hil.jitter import CgraTimingModel, SoftwareTimingModel, TimingSample
from repro.parallel.seeding import shard_seeds

__all__ = ["JitterRow", "JitterTask", "jitter_tasks", "jitter_rows_for", "jitter_comparison"]


@dataclass(frozen=True)
class JitterRow:
    """One implementation's timing behaviour at one revolution rate."""

    implementation: str
    f_rev_hz: float
    latency: TimingSample
    deadline_miss_rate: float
    #: RMS false beam phase induced by output jitter, RF degrees.
    false_phase_rms_deg: float
    #: Worst-case false beam phase, RF degrees.
    false_phase_worst_deg: float


@dataclass(frozen=True)
class JitterTask:
    """One revolution-rate point of the comparison (plain data, so it
    shards across :mod:`repro.parallel` workers)."""

    f_rev_hz: float
    harmonic: int = 4
    n_samples: int = 200_000
    #: Per-item child seed (see :func:`repro.parallel.shard_seeds`).
    seed: int = 7
    software_timing: SoftwareTimingModel | None = None


def jitter_rows_for(task: JitterTask) -> list[JitterRow]:
    """Both implementations' rows at one revolution rate.

    Module-level so it pickles by reference; the model compile is served
    from the per-process cache in workers.
    """
    rng = np.random.default_rng(task.seed)
    software = SoftwareBeamSimulator(task.software_timing)
    model = compile_beam_model(n_bunches=1, pipelined=True)
    write_tick = None
    for placed in model.schedule.ops.values():
        node = model.graph.node(placed.node_id)
        if node.sensor_id == ACTUATOR_DELTA_T:
            write_tick = placed.start
            break
    if write_tick is None:
        raise ConfigurationError("beam model has no Δt actuator write")
    cgra = CgraTimingModel(write_tick, cgra_clock_hz=model.config.clock_mhz * 1e6)

    f_rev, harmonic, n_samples = task.f_rev_hz, task.harmonic, task.n_samples
    t_rev = 1.0 / f_rev
    rows: list[JitterRow] = []
    # Software implementation.
    lat = software.timing.sample(n_samples, rng)
    misses = float(np.count_nonzero(lat > t_rev)) / n_samples
    dev = lat - np.median(lat)
    phase_err = 360.0 * harmonic * f_rev * dev
    rows.append(
        JitterRow(
            implementation="software (CPU)",
            f_rev_hz=f_rev,
            latency=TimingSample.from_latencies(lat),
            deadline_miss_rate=misses,
            false_phase_rms_deg=float(np.sqrt(np.mean(phase_err**2))),
            false_phase_worst_deg=float(np.abs(phase_err).max()),
        )
    )
    # CGRA: deterministic write tick; only the DAC sample clock
    # quantises the output edge (±½ sample worst case).
    clat = cgra.sample(n_samples)
    miss = 1.0 if model.schedule_length > t_rev * model.config.clock_mhz * 1e6 else 0.0
    dac_quant = 0.5 * cgra.output_time_quantisation()
    rows.append(
        JitterRow(
            implementation="CGRA (this work)",
            f_rev_hz=f_rev,
            latency=TimingSample.from_latencies(clat),
            deadline_miss_rate=miss,
            false_phase_rms_deg=360.0 * harmonic * f_rev * dac_quant / np.sqrt(3.0),
            false_phase_worst_deg=360.0 * harmonic * f_rev * dac_quant,
        )
    )
    return rows


def jitter_tasks(
    f_rev_values: tuple[float, ...] = (800e3, 1.0e6),
    harmonic: int = 4,
    n_samples: int = 200_000,
    software_timing: SoftwareTimingModel | None = None,
    seed: int = 7,
) -> list[JitterTask]:
    """Shard plan of the comparison: one task per revolution rate, each
    with its own spawned child seed — independent of the worker count."""
    if not f_rev_values:
        raise ConfigurationError("need at least one revolution frequency")
    seeds = shard_seeds(seed, len(f_rev_values))
    return [
        JitterTask(
            f_rev_hz=f_rev,
            harmonic=harmonic,
            n_samples=n_samples,
            seed=item_seed,
            software_timing=software_timing,
        )
        for f_rev, item_seed in zip(f_rev_values, seeds)
    ]


def jitter_comparison(
    f_rev_values: tuple[float, ...] = (800e3, 1.0e6),
    harmonic: int = 4,
    n_samples: int = 200_000,
    software_timing: SoftwareTimingModel | None = None,
    seed: int = 7,
) -> list[JitterRow]:
    """Build the E7 comparison table (serial reference path).

    Each revolution rate samples from its own child seed, so the table
    is identical whether the tasks run here or across a worker pool.
    """
    rows: list[JitterRow] = []
    for task in jitter_tasks(f_rev_values, harmonic, n_samples, software_timing, seed):
        rows.extend(jitter_rows_for(task))
    return rows
