"""Terminal viewer for trace artefacts: span tree + profile hot list.

.. code-block:: bash

    python -m repro.experiments.runner sweep --quick --jobs 2 --trace-out t.json
    python -m repro.obs.view t.json
    python -m repro.obs.view results/fig5a_trace.jsonl --top 20

Reads either export format — the Chrome/Perfetto JSON written by
``--trace-out`` / :func:`repro.obs.export.export_trace_perfetto`, or the
JSONL written by ``--trace`` / ``export_trace_jsonl`` — and prints:

* the **span tree**, rebuilt from ``span_id``/``parent_id`` links, with
  sibling spans of the same name aggregated into one line
  (``hil.iteration ×8000``) so repetitive hot loops stay readable;
* the **per-phase profile totals** embedded in the file (Perfetto
  export only), ranked by total time.

Everything goes to stdout; the exit code is 0 unless the file cannot be
parsed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["load_trace", "format_span_tree", "format_profile", "main"]


def load_trace(path: str | Path) -> tuple[list[dict], dict]:
    """Parse a trace artefact into (span dicts, profile table).

    Accepts the Perfetto JSON document (``traceEvents`` +
    optional ``profile``) or span-per-line JSONL.  Returned span dicts
    are normalised to the JSONL shape: ``name``, ``start_s``,
    ``duration_s``, ``attrs``, ``event``, ``trace_id``, ``span_id``,
    ``parent_id``.
    """
    text = Path(path).read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        spans = []
        for event in doc["traceEvents"]:
            if event.get("ph") not in ("X", "i"):
                continue
            args = dict(event.get("args", {}))
            span_id = args.pop("span_id", None)
            parent_id = args.pop("parent_id", None)
            trace_id = args.pop("trace_id", None)
            spans.append({
                "name": event["name"],
                "start_s": float(event.get("ts", 0.0)) / 1e6,
                "duration_s": float(event.get("dur", 0.0)) / 1e6,
                "attrs": args,
                "event": event.get("ph") == "i",
                "trace_id": trace_id,
                "span_id": span_id,
                "parent_id": parent_id,
            })
        return spans, dict(doc.get("profile", {}))
    # Fall back to JSONL (one record per line).
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        record.setdefault("attrs", {})
        record.setdefault("event", False)
        for key in ("trace_id", "span_id", "parent_id"):
            record.setdefault(key, None)
        record.setdefault("start_s", 0.0)
        record.setdefault("duration_s", 0.0)
        spans.append(record)
    return spans, {}


class _TreeNode:
    """Aggregate of same-named sibling spans under one parent line."""

    __slots__ = ("name", "count", "total_s", "children", "n_events", "workers")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.n_events = 0
        self.total_s = 0.0
        self.children: dict[str, _TreeNode] = {}
        self.workers: set = set()


def _build_tree(spans: list[dict]) -> _TreeNode:
    """Fold spans into an aggregated tree keyed by parent links."""
    by_id = {s["span_id"]: s for s in spans if s.get("span_id")}
    root = _TreeNode("<root>")
    # Node path for each span id (so children aggregate under the right
    # aggregated line, not under one specific sibling).
    node_of: dict[str, _TreeNode] = {}

    def node_for(span: dict) -> _TreeNode:
        sid = span.get("span_id")
        if sid is not None and sid in node_of:
            return node_of[sid]
        parent_id = span.get("parent_id")
        parent_span = by_id.get(parent_id) if parent_id else None
        parent_node = node_for(parent_span) if parent_span is not None else root
        node = parent_node.children.get(span["name"])
        if node is None:
            node = parent_node.children[span["name"]] = _TreeNode(span["name"])
        if sid is not None:
            node_of[sid] = node
        return node

    # Sort by start so parents (which start first) resolve before
    # children in the common case; node_for recurses regardless.
    for span in sorted(spans, key=lambda s: s.get("start_s", 0.0)):
        node = node_for(span)
        if span.get("event"):
            node.n_events += 1
        else:
            node.count += 1
            node.total_s += float(span.get("duration_s", 0.0))
        worker = span.get("attrs", {}).get("worker")
        if worker is not None:
            node.workers.add(worker)
    return root


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def format_span_tree(spans: list[dict], max_depth: int = 12) -> list[str]:
    """Render the aggregated span tree as indented text lines."""
    root = _build_tree(spans)
    trace_ids = {s.get("trace_id") for s in spans if s.get("trace_id")}
    lines = [
        f"{len(spans)} record(s), {len(trace_ids)} trace id(s)"
        + (f" [{next(iter(trace_ids))}]" if len(trace_ids) == 1 else "")
    ]

    def walk(node: _TreeNode, depth: int) -> None:
        if depth > max_depth:
            return
        ordered = sorted(
            node.children.values(), key=lambda n: (-n.total_s, n.name)
        )
        for child in ordered:
            label = child.name
            mult = f" ×{child.count}" if child.count > 1 else ""
            if child.count == 0 and child.n_events:
                body = f"{child.n_events} event(s)"
            else:
                body = f"total {_fmt_seconds(child.total_s)}"
                if child.n_events:
                    body += f", {child.n_events} event(s)"
            workers = (
                f" [workers: {', '.join(str(w) for w in sorted(child.workers))}]"
                if child.workers else ""
            )
            lines.append(f"{'  ' * depth}{label}{mult}  {body}{workers}")
            walk(child, depth + 1)

    walk(root, 0)
    return lines


def format_profile(profile: dict, top: int = 15) -> list[str]:
    """Render the embedded profile table as a ranked hot list."""
    if not profile:
        return []
    ranked = sorted(
        profile.items(), key=lambda item: (-float(item[1]["total_s"]), item[0])
    )
    lines = ["", "profile hot list (by total time):"]
    name_width = max(len(name) for name, _ in ranked[:top])
    for name, entry in ranked[:top]:
        count = int(entry["count"])
        total = float(entry["total_s"])
        per = total / count if count else 0.0
        lines.append(
            f"  {name:<{name_width}}  {_fmt_seconds(total):>9}  "
            f"×{count:<10} {_fmt_seconds(per)}/call"
        )
    if len(ranked) > top:
        lines.append(f"  ... {len(ranked) - top} more phase(s)")
    return lines


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.view",
        description="Print the span tree and profile hot list of a trace "
        "artefact (Perfetto JSON from --trace-out, or JSONL from --trace).",
    )
    parser.add_argument("trace", help="trace file (.json or .jsonl)")
    parser.add_argument("--top", type=int, default=15,
                        help="profile hot-list length (default 15)")
    parser.add_argument("--max-depth", type=int, default=12,
                        help="span-tree depth limit (default 12)")
    args = parser.parse_args(argv)
    try:
        spans, profile = load_trace(args.trace)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print("trace contains no span/event records")
    else:
        for line in format_span_tree(spans, max_depth=args.max_depth):
            print(line)
    for line in format_profile(profile, top=args.top):
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
