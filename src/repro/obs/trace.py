"""Lightweight span/event recorder.

A :class:`Tracer` records named **spans** (with wall-clock start and
duration from :func:`time.perf_counter`) and zero-duration **events**,
both carrying arbitrary key/value attributes.  The records land in an
in-memory list bounded by ``max_records`` (overflow increments a drop
counter instead of growing without bound), and export as one JSON object
per line (:func:`repro.obs.export.export_trace_jsonl`).

While tracing is disabled — the default — ``span()`` returns a shared
no-op context manager and ``event()`` returns immediately, so call sites
can stay unconditional: the cost is one flag check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs._state import STATE

__all__ = ["SpanRecord", "Tracer", "get_tracer"]


@dataclass
class SpanRecord:
    """One finished span or event."""

    name: str
    #: Start instant, seconds on the perf_counter clock.
    start: float
    #: Seconds from start to end (0.0 for events).
    duration: float
    #: Free-form attributes attached at the call site.
    attrs: dict = field(default_factory=dict)
    #: True for point events.
    is_event: bool = False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start,
            "duration_s": self.duration,
            "attrs": self.attrs,
            "event": self.is_event,
        }


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def end(self) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span; records itself on exit/end (idempotent)."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_done")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = time.perf_counter()
        self._done = False

    def set(self, **attrs) -> None:
        """Attach attributes after the span started."""
        self.attrs.update(attrs)

    def end(self) -> None:
        if self._done:
            return
        self._done = True
        duration = time.perf_counter() - self._start
        self._tracer._record(
            SpanRecord(self.name, self._start, duration, self.attrs)
        )

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class Tracer:
    """Bounded in-memory span/event recorder.

    Parameters
    ----------
    max_records:
        Cap on retained records; later records are counted in
        :attr:`dropped` instead of stored.
    """

    def __init__(self, max_records: int = 1_000_000) -> None:
        self.max_records = int(max_records)
        self.records: list[SpanRecord] = []
        #: Records discarded because the buffer was full.
        self.dropped = 0

    def _record(self, record: SpanRecord) -> None:
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)

    def span(self, name: str, **attrs):
        """Start a span; use as a context manager or call ``.end()``."""
        if not STATE.trace:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a zero-duration point event."""
        if not STATE.trace:
            return
        self._record(
            SpanRecord(name, time.perf_counter(), 0.0, attrs, is_event=True)
        )

    def reset(self) -> None:
        """Drop all records and the drop counter."""
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)


#: The process-wide tracer used by all built-in instrumentation.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The global tracer (instrumented modules record here)."""
    return _TRACER
