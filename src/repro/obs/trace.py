"""Lightweight span/event recorder with hierarchical trace context.

A :class:`Tracer` records named **spans** (with wall-clock start and
duration from :func:`time.perf_counter`) and zero-duration **events**,
both carrying arbitrary key/value attributes.  The records land in an
in-memory list bounded by ``max_records`` (overflow increments a drop
counter instead of growing without bound), and export as one JSON object
per line (:func:`repro.obs.export.export_trace_jsonl`) or as a
Chrome/Perfetto trace (:func:`repro.obs.export.export_trace_perfetto`).

Every recorded span carries **trace context**: a ``trace_id`` shared by
the whole tree, its own ``span_id``, and the ``parent_id`` of the span
that was *current* when it started.  The current span is tracked on a
:mod:`contextvars` stack, so nesting needs no plumbing — entering a span
makes it the parent of everything started underneath it, including
spans recorded by code three layers down.  The context crosses process
boundaries explicitly: :func:`current_context` freezes the parent's
``(trace_id, span_id)`` into plain strings, and :class:`trace_context`
adopts them in a worker, so a sharded ``repro.parallel`` run merges into
one coherent tree (see :mod:`repro.obs.snapshot`).

While tracing is disabled — the default — ``span()`` returns a shared
no-op context manager and ``event()`` returns immediately, so call sites
can stay unconditional: the cost is one flag check.
"""

from __future__ import annotations

import contextvars
import os
import sys
import time
import uuid
from dataclasses import dataclass, field

from repro.obs._state import STATE

__all__ = [
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "current_context",
    "trace_context",
    "new_trace_id",
]

#: ``(trace_id, span_id)`` of the innermost live span, or None outside
#: any span.  A ContextVar (not a plain global) so threads and asyncio
#: tasks each see their own stack.
_CONTEXT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_span_context", default=None
)

#: Per-process span-id sequence; combined with the pid so ids minted by
#: concurrently-running worker processes never collide.
_SPAN_SEQ = 0


def _next_span_id() -> str:
    global _SPAN_SEQ
    _SPAN_SEQ += 1
    return f"{os.getpid():x}-{_SPAN_SEQ:x}"


def new_trace_id() -> str:
    """A fresh 32-hex trace id (one per span tree)."""
    return uuid.uuid4().hex


def current_context() -> tuple[str, str] | None:
    """``(trace_id, span_id)`` of the current span, or None.

    The returned pair is plain picklable data — ship it to a worker
    process and re-enter it there with :class:`trace_context` to parent
    the worker's spans under this process's current span.
    """
    return _CONTEXT.get()


class trace_context:
    """Adopt an externally-created parent span for the enclosed code.

    Used on the worker side of a cross-process dispatch: spans started
    inside the ``with`` block join trace ``trace_id`` as children of
    ``span_id`` instead of starting a fresh tree.
    """

    __slots__ = ("_ctx", "_token")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self._ctx = (str(trace_id), str(span_id))
        self._token = None

    def __enter__(self) -> "trace_context":
        self._token = _CONTEXT.set(self._ctx)
        return self

    def __exit__(self, *exc) -> None:
        if self._token is not None:
            _CONTEXT.reset(self._token)
            self._token = None


@dataclass
class SpanRecord:
    """One finished span or event."""

    name: str
    #: Start instant, seconds on the perf_counter clock.
    start: float
    #: Seconds from start to end (0.0 for events).
    duration: float
    #: Free-form attributes attached at the call site.
    attrs: dict = field(default_factory=dict)
    #: True for point events.
    is_event: bool = False
    #: Trace tree this record belongs to (None for pre-context records).
    trace_id: str | None = None
    #: This record's own id.
    span_id: str | None = None
    #: Id of the span that was current when this one started.
    parent_id: str | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start,
            "duration_s": self.duration,
            "attrs": self.attrs,
            "event": self.is_event,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def end(self) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span; records itself on exit/end (idempotent).

    On start the span pushes itself onto the contextvar stack (becoming
    the parent of spans started underneath); on end it pops itself.
    Non-LIFO manual ``end()`` calls fall back to restoring the parent
    context directly instead of raising.
    """

    __slots__ = (
        "_tracer", "name", "attrs", "_start", "_done",
        "trace_id", "span_id", "parent_id", "_token", "_parent_ctx",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        parent = _CONTEXT.get()
        self._parent_ctx = parent
        if parent is None:
            self.trace_id = new_trace_id()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = parent[0], parent[1]
        self.span_id = _next_span_id()
        self._token = _CONTEXT.set((self.trace_id, self.span_id))
        self._start = time.perf_counter()
        self._done = False

    def set(self, **attrs) -> None:
        """Attach attributes after the span started."""
        self.attrs.update(attrs)

    def end(self) -> None:
        if self._done:
            return
        self._done = True
        duration = time.perf_counter() - self._start
        if _CONTEXT.get() == (self.trace_id, self.span_id):
            try:
                _CONTEXT.reset(self._token)
            except ValueError:  # token minted in another context
                _CONTEXT.set(self._parent_ctx)
        # else: ended out of order while a child is still open — leave
        # the stack to the spans that remain live (their parent links
        # were captured at start, so the tree stays correct).
        self._tracer._record(
            SpanRecord(
                self.name, self._start, duration, self.attrs,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
            )
        )

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class Tracer:
    """Bounded in-memory span/event recorder.

    Parameters
    ----------
    max_records:
        Cap on retained records; later records are counted in
        :attr:`dropped` instead of stored.
    """

    def __init__(self, max_records: int = 1_000_000) -> None:
        self.max_records = int(max_records)
        self.records: list[SpanRecord] = []
        #: Records discarded because the buffer was full.
        self.dropped = 0
        #: Offset mapping this process's perf_counter starts onto the
        #: epoch clock (``time.time() - time.perf_counter()`` at tracer
        #: creation).  Snapshot merges use the difference between two
        #: tracers' origins to rebase worker spans onto the parent's
        #: timeline, so a merged trace renders coherently in Perfetto.
        self.clock_origin = time.time() - time.perf_counter()
        self._drop_warned = False

    def _record(self, record: SpanRecord) -> None:
        if len(self.records) >= self.max_records:
            self.dropped += 1
            if not self._drop_warned:
                # One-time, loud: a truncated trace must never be
                # mistaken for a complete one.
                self._drop_warned = True
                print(
                    f"repro.obs: tracer hit max_records={self.max_records}; "
                    "further spans/events are dropped (see the "
                    "obs_trace_dropped_total counter and the trace.dropped "
                    "event in exports)",
                    file=sys.stderr,
                )
            _dropped_counter().inc()
            return
        self.records.append(record)

    def span(self, name: str, **attrs):
        """Start a span; use as a context manager or call ``.end()``."""
        if not STATE.trace:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a zero-duration point event (a child of the current span)."""
        if not STATE.trace:
            return
        ctx = _CONTEXT.get()
        self._record(
            SpanRecord(
                name, time.perf_counter(), 0.0, attrs, is_event=True,
                trace_id=ctx[0] if ctx is not None else None,
                span_id=_next_span_id(),
                parent_id=ctx[1] if ctx is not None else None,
            )
        )

    def reset(self) -> None:
        """Drop all records, the drop counter, and the context stack.

        Clearing the stack recovers from any stale context left by
        out-of-order manual ``end()`` calls; don't call mid-span.
        """
        self.records.clear()
        self.dropped = 0
        self._drop_warned = False
        _CONTEXT.set(None)

    def __len__(self) -> int:
        return len(self.records)


def _dropped_counter():
    """The saturation counter (lazy import: registry pulls in no trace
    code, but keep module import order decoupled anyway)."""
    from repro.obs.registry import get_registry

    return get_registry().counter(
        "obs_trace_dropped_total",
        "span/event records dropped at the tracer's max_records cap",
    )


#: The process-wide tracer used by all built-in instrumentation.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The global tracer (instrumented modules record here)."""
    return _TRACER
