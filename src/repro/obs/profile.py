"""Deterministic phase/op profiler.

Where the tracer answers "*when* did what happen", the profiler answers
"*where does the time go*": it accumulates named **phases** (count,
total/min/max seconds) into a flat per-process table with no per-sample
records, so its memory cost is O(distinct names) however long the run.

Built-in hooks (all behind the ``STATE.profile`` flag, one branch when
off — same budget as the rest of :mod:`repro.obs`):

* **compiled CGRA engine** — :func:`record_program` files one entry per
  kernel run (``engine.<engine>.<kernel>``) plus per-op-class entries
  (``op.<engine>.<OP>``) whose time share is attributed proportionally
  to the static op-class counts of the compiled program.  The
  attribution is *deterministic*: counts come from the schedule, not
  from sampling, so two runs of the same program produce identical
  shares.
* **HIL closed-loop phases** — ``hil.sense`` / ``hil.compute`` /
  ``hil.actuate`` per revolution (fast path and the sample-accurate
  bench), ``hil.model_iteration`` in the FPGA framework.
* **shard workers** — ``parallel.shard`` per work item; worker tables
  travel home inside :class:`~repro.obs.snapshot.ObsSnapshot` and merge
  by addition, so a ``--jobs N`` run aggregates into one table.

Entries are plain adds; merging across processes is count/total/min/max
composition, so the merged table equals the serial run's (order never
matters — unlike gauges there is no last-write state).
"""

from __future__ import annotations

import time

from repro.obs._state import STATE

__all__ = [
    "ProfileEntry",
    "Profiler",
    "get_profiler",
    "record_program",
]


class ProfileEntry:
    """Accumulated cost of one named phase."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = float("-inf")

    def add(self, seconds: float, count: int = 1) -> None:
        self.count += count
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }


class _NullPhase:
    """Shared do-nothing phase for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_PHASE = _NullPhase()


class _Phase:
    """Live phase timer; adds itself to the profiler on exit."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = time.perf_counter()

    def __enter__(self) -> "_Phase":
        return self

    def __exit__(self, *exc) -> None:
        self._profiler._add(self._name, time.perf_counter() - self._start)


class Profiler:
    """Flat name → :class:`ProfileEntry` accumulator."""

    def __init__(self) -> None:
        self._entries: dict[str, ProfileEntry] = {}

    # -- recording (gated) --------------------------------------------

    def phase(self, name: str):
        """Time a block: ``with profiler.phase("hil.sense"): ...``."""
        if not STATE.profile:
            return _NULL_PHASE
        return _Phase(self, name)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Accumulate ``seconds`` (over ``count`` occurrences) into a phase."""
        if not STATE.profile:
            return
        self._add(name, seconds, count)

    # -- unconditional internals (also used by snapshot merge) --------

    def _add(self, name: str, seconds: float, count: int = 1) -> None:
        entry = self._entries.get(name)
        if entry is None:
            entry = self._entries[name] = ProfileEntry()
        entry.add(seconds, count)

    # -- reading ------------------------------------------------------

    def entries(self) -> dict[str, ProfileEntry]:
        """Name → entry, sorted by name (stable across runs)."""
        return {name: self._entries[name] for name in sorted(self._entries)}

    def hot_list(self, top: int = 10) -> list[tuple[str, ProfileEntry]]:
        """The ``top`` costliest phases, by total seconds (ties by name,
        so the ordering is deterministic)."""
        ranked = sorted(
            self._entries.items(), key=lambda item: (-item[1].total_s, item[0])
        )
        return ranked[: max(0, int(top))]

    def __len__(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()

    # -- snapshot transfer --------------------------------------------

    def state(self) -> dict:
        """Plain-data view for snapshot transfer / export."""
        return {name: entry.to_dict() for name, entry in self.entries().items()}

    def merge_state(self, state: dict) -> None:
        """Fold another process's table into this one (counts/totals add,
        min/max compose).  State transfer, not measurement: bypasses the
        profile flag, like the metric ``merge_state`` methods."""
        for name, payload in state.items():
            entry = self._entries.get(name)
            if entry is None:
                entry = self._entries[name] = ProfileEntry()
            entry.count += int(payload["count"])
            entry.total_s += float(payload["total_s"])
            entry.min_s = min(entry.min_s, float(payload["min_s"]))
            entry.max_s = max(entry.max_s, float(payload["max_s"]))


def record_program(
    kernel: str,
    engine: str,
    iterations: int,
    elapsed_s: float,
    op_class_counts: dict,
    lanes: int = 1,
    segments: list | None = None,
) -> None:
    """File one compiled-program run into the global profiler.

    Adds ``engine.<engine>.<kernel>`` (count = iterations × lanes, total
    = measured elapsed) and one ``op.<engine>.<OP>`` entry per op class
    with the elapsed time attributed proportionally to the program's
    static op-class counts — a deterministic decomposition (the schedule
    fixes the counts), not a sampled one.

    ``segments`` — ``(label, units)`` pairs from the vector tier's
    certificate partition — additionally files one
    ``segment.<engine>.<kernel>.<label>`` entry per segment with the
    elapsed time attributed proportionally to ``units`` (a sequential
    segment costs ~width ops per iteration, a chunkable one ~width
    vector ops per chunk), so hot lists show where chunked runs spend
    their time.
    """
    if not STATE.profile or iterations <= 0:
        return
    profiler = get_profiler()
    profiler._add(f"engine.{engine}.{kernel}", elapsed_s, iterations * lanes)
    total_ops = sum(op_class_counts.values())
    if total_ops > 0:
        for op_name in sorted(op_class_counts):
            n = op_class_counts[op_name]
            share = elapsed_s * (n / total_ops)
            profiler._add(f"op.{engine}.{op_name}", share, n * iterations * lanes)
    if segments:
        total_units = sum(units for _label, units in segments)
        if total_units > 0:
            for label, units in segments:
                share = elapsed_s * (units / total_units)
                profiler._add(f"segment.{engine}.{kernel}.{label}", share, units)


#: The process-wide profiler used by all built-in instrumentation.
_PROFILER = Profiler()


def get_profiler() -> Profiler:
    """The global profiler (instrumented modules record here)."""
    return _PROFILER
