"""Benchmark history and regression tracking.

Every ``BENCH_*.json`` artefact (pytest-benchmark JSON shape — see
:func:`repro.obs.export.write_bench_json`) is a point-in-time snapshot;
this module strings them into a trajectory and flags regressions:

* :func:`append_run` appends one run — ``{timestamp, source,
  benchmarks: {name: stats}}`` — as a line of
  ``benchmarks/results/history.jsonl``;
* :func:`check_regressions` compares the latest run's mean per benchmark
  against the **median of the preceding runs'** means and reports every
  benchmark slower than ``(1 + threshold)`` × baseline.  The median
  baseline makes a single historic outlier (a noisy CI box) unable to
  mask or fake a regression;
* the CLI gates CI:

  .. code-block:: bash

      python -m repro.obs.bench_history append benchmarks/results/BENCH_session.json
      python -m repro.obs.bench_history check --threshold 0.30
      python -m repro.obs.bench_history check --warn-only   # 1-core CI boxes

  ``check`` exits 1 on regressions (0 with ``--warn-only``, consistent
  with the core-gated parallel-scaling thresholds: shared CI runners
  get warnings, real machines get failures).

Benchmarks present only in the latest run (new benches) or only in
history (retired benches) are skipped, so renames don't false-positive.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_HISTORY",
    "Regression",
    "append_run",
    "load_history",
    "check_regressions",
    "main",
]

#: Default trajectory file, next to the BENCH_*.json artefacts.
DEFAULT_HISTORY = Path("benchmarks/results/history.jsonl")


@dataclass(frozen=True)
class Regression:
    """One benchmark whose latest mean exceeds the baseline budget."""

    name: str
    #: Latest run's mean, seconds.
    latest_s: float
    #: Median mean of the preceding runs, seconds.
    baseline_s: float
    #: ``latest / baseline`` (> 1 means slower).
    ratio: float
    #: How many historic runs the baseline is built from.
    n_baseline_runs: int

    def summary(self) -> str:
        return (
            f"{self.name}: {self.latest_s * 1e3:.3f} ms vs baseline "
            f"{self.baseline_s * 1e3:.3f} ms ({self.ratio:+.0%} of baseline, "
            f"median of {self.n_baseline_runs} run(s))"
        )


def append_run(
    bench_path: str | Path,
    history_path: str | Path = DEFAULT_HISTORY,
    timestamp: float | None = None,
) -> dict:
    """Append one ``BENCH_*.json`` document to the history; returns the
    appended record."""
    bench_path = Path(bench_path)
    doc = json.loads(bench_path.read_text())
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ConfigurationError(
            f"{bench_path} is not a BENCH_*.json document (no 'benchmarks' list)"
        )
    entry_stats = {}
    for bench in benchmarks:
        stats = bench.get("stats", {})
        if "mean" not in stats:
            raise ConfigurationError(
                f"benchmark {bench.get('name')!r} in {bench_path} lacks stats.mean"
            )
        entry_stats[str(bench["name"])] = {
            "mean": float(stats["mean"]),
            "min": float(stats.get("min", stats["mean"])),
            "rounds": int(stats.get("rounds", 1)),
        }
    record = {
        "timestamp": float(timestamp if timestamp is not None else time.time()),
        "source": bench_path.name,
        "benchmarks": entry_stats,
    }
    history_path = Path(history_path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a") as fh:
        fh.write(json.dumps(record) + "\n")
    return record


def load_history(history_path: str | Path = DEFAULT_HISTORY) -> list[dict]:
    """All history records, in append (chronological) order."""
    history_path = Path(history_path)
    if not history_path.exists():
        return []
    records = []
    for line in history_path.read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def check_regressions(
    history_path: str | Path = DEFAULT_HISTORY,
    threshold: float = 0.25,
    min_runs: int = 2,
) -> list[Regression]:
    """Compare the latest run against the median of the preceding runs.

    Returns one :class:`Regression` per benchmark whose latest mean is
    more than ``(1 + threshold)`` × the baseline median.  With fewer
    than ``min_runs`` total runs there is nothing to compare and the
    result is empty.
    """
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be > 0, got {threshold}")
    history = load_history(history_path)
    if len(history) < max(2, min_runs):
        return []
    latest = history[-1]
    previous = history[:-1]
    regressions = []
    for name, stats in sorted(latest["benchmarks"].items()):
        baseline_means = [
            run["benchmarks"][name]["mean"]
            for run in previous
            if name in run.get("benchmarks", {})
        ]
        if not baseline_means:
            continue  # new benchmark: no baseline yet
        baseline = statistics.median(baseline_means)
        latest_mean = float(stats["mean"])
        if baseline > 0 and latest_mean > baseline * (1.0 + threshold):
            regressions.append(
                Regression(
                    name=name,
                    latest_s=latest_mean,
                    baseline_s=baseline,
                    ratio=latest_mean / baseline,
                    n_baseline_runs=len(baseline_means),
                )
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``append`` / ``check`` subcommands)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench_history",
        description="Append BENCH_*.json runs to a history file and flag "
        "perf regressions against the median baseline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_append = sub.add_parser("append", help="append a BENCH_*.json run")
    p_append.add_argument("bench", nargs="+", help="BENCH_*.json file(s)")
    p_append.add_argument("--history", default=str(DEFAULT_HISTORY))
    p_check = sub.add_parser("check", help="flag regressions in the history")
    p_check.add_argument("--history", default=str(DEFAULT_HISTORY))
    p_check.add_argument("--threshold", type=float, default=0.25,
                         help="allowed slowdown fraction (default 0.25)")
    p_check.add_argument("--warn-only", action="store_true",
                         help="report regressions but exit 0 (shared/1-core "
                              "CI boxes, where timing is unreliable)")
    args = parser.parse_args(argv)

    if args.command == "append":
        for bench in args.bench:
            try:
                record = append_run(bench, history_path=args.history)
            except (OSError, ConfigurationError, json.JSONDecodeError) as exc:
                print(f"bench_history: cannot append {bench}: {exc}",
                      file=sys.stderr)
                return 2
            print(
                f"appended {record['source']} "
                f"({len(record['benchmarks'])} benchmark(s)) -> {args.history}"
            )
        return 0

    try:
        regressions = check_regressions(
            history_path=args.history, threshold=args.threshold
        )
    except ConfigurationError as exc:
        print(f"bench_history: {exc}", file=sys.stderr)
        return 2
    n_runs = len(load_history(args.history))
    if not regressions:
        print(f"no regressions beyond {args.threshold:.0%} "
              f"across {n_runs} recorded run(s)")
        return 0
    for regression in regressions:
        print(f"REGRESSION {regression.summary()}")
    if args.warn_only:
        print("(warn-only: not failing the gate)")
        return 0
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
