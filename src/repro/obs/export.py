"""Telemetry artefact writers.

Five formats, all plain files next to the experiment CSVs:

* :func:`export_metrics_json` — the full registry snapshot as one JSON
  document (instrument kind, description, per-label-set series);
* :func:`export_metrics_csv` — flat ``metric,labels,field,value`` rows
  for spreadsheet-grade consumers;
* :func:`export_trace_jsonl` — one JSON object per span/event record;
* :func:`export_trace_perfetto` — Chrome trace-event JSON that loads
  directly in https://ui.perfetto.dev (and ``chrome://tracing``); span
  ids travel in ``args`` so :mod:`repro.obs.view` can rebuild the tree
  from the same file, and the profiler table rides along under a
  top-level ``profile`` key;
* :func:`export_run_reports_json` / :func:`write_bench_json` — run
  reports, and a pytest-benchmark-compatible ``BENCH_*.json`` so perf
  numbers from CI land in the same shape the benchmark suite emits.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.obs.profile import Profiler, get_profiler
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.report import HilRunReport, run_reports
from repro.obs.trace import Tracer, get_tracer

__all__ = [
    "export_metrics_json",
    "export_metrics_csv",
    "export_trace_jsonl",
    "export_trace_perfetto",
    "export_run_reports_json",
    "write_bench_json",
]


def _sanitize(value):
    """JSON has no inf/nan; map them to strings rather than crash."""
    if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
        return str(value)
    return value


def _json_default(value):
    try:
        return _sanitize(float(value))
    except (TypeError, ValueError):
        return str(value)


def export_metrics_json(path: str | Path, registry: MetricsRegistry | None = None) -> Path:
    """Write the registry snapshot as JSON; returns the path."""
    registry = registry if registry is not None else get_registry()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(registry.snapshot(), indent=2, default=_json_default, allow_nan=False)
    )
    return path


def export_metrics_csv(path: str | Path, registry: MetricsRegistry | None = None) -> Path:
    """Write flat CSV rows: ``metric,kind,labels,field,value``."""
    registry = registry if registry is not None else get_registry()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = ["metric,kind,labels,field,value"]

    def quote(text: str) -> str:
        return '"' + str(text).replace('"', '""') + '"'

    for name, entry in registry.snapshot().items():
        for labels, value in entry["series"].items():
            if isinstance(value, Mapping):  # histogram series
                for stat in ("count", "sum", "min", "max"):
                    lines.append(
                        f"{name},{entry['kind']},{quote(labels)},{stat},{value[stat]}"
                    )
                for bound, count in value["buckets"].items():
                    lines.append(
                        f"{name},{entry['kind']},{quote(labels)},le={bound},{count}"
                    )
            else:
                lines.append(f"{name},{entry['kind']},{quote(labels)},value,{value}")
    path.write_text("\n".join(lines) + "\n")
    return path


def export_trace_jsonl(path: str | Path, tracer: Tracer | None = None) -> Path:
    """Write every span/event as one JSON line (chronological order).

    A final ``trace.dropped`` event is appended when the tracer hit its
    record cap, so truncation is visible in the artefact.
    """
    tracer = tracer if tracer is not None else get_tracer()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = sorted(tracer.records, key=lambda r: r.start)
    with path.open("w") as fh:
        for record in records:
            fh.write(json.dumps(record.to_dict(), default=_json_default) + "\n")
        if tracer.dropped:
            fh.write(
                json.dumps(
                    {
                        "name": "trace.dropped",
                        "event": True,
                        "attrs": {"dropped_records": tracer.dropped},
                    }
                )
                + "\n"
            )
    return path


def export_trace_perfetto(
    path: str | Path,
    tracer: Tracer | None = None,
    profiler: Profiler | None = None,
) -> Path:
    """Write the trace as Chrome trace-event JSON (Perfetto-loadable).

    Spans become complete (``ph: "X"``) events and point events become
    instants (``ph: "i"``); timestamps are microseconds relative to the
    earliest record, so the timeline starts at zero.  Each event's
    ``args`` carries the span's attributes plus its
    ``trace_id``/``span_id``/``parent_id``, which is what
    ``python -m repro.obs.view`` uses to rebuild the span tree from this
    same file.  Records merged from worker processes (a ``worker``
    attribute, set by :func:`repro.obs.snapshot.merge_snapshot`) land on
    their own Perfetto process track; everything else lands on the
    parent track.  The profiler table is embedded under a top-level
    ``profile`` key (Chrome/Perfetto ignore unknown top-level keys).
    """
    tracer = tracer if tracer is not None else get_tracer()
    profiler = profiler if profiler is not None else get_profiler()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = sorted(tracer.records, key=lambda r: r.start)
    t0 = records[0].start if records else 0.0
    events: list[dict] = []
    tracks: dict = {}

    def track_of(record) -> int:
        worker = record.attrs.get("worker", "parent")
        pid = tracks.get(worker)
        if pid is None:
            pid = tracks[worker] = len(tracks) + 1
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": "parent process" if worker == "parent"
                         else f"worker {worker}"},
            })
        return pid

    for record in records:
        args = {k: _sanitize(v) if isinstance(v, float) else v
                for k, v in record.attrs.items()}
        args["trace_id"] = record.trace_id
        args["span_id"] = record.span_id
        args["parent_id"] = record.parent_id
        event = {
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "pid": track_of(record),
            "tid": 1,
            "ts": (record.start - t0) * 1e6,
            "args": args,
        }
        if record.is_event:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = record.duration * 1e6
        events.append(event)
    if tracer.dropped:
        events.append({
            "name": "trace.dropped",
            "ph": "i",
            "s": "g",
            "pid": 1,
            "tid": 1,
            "ts": (records[-1].start - t0) * 1e6 if records else 0.0,
            "args": {"dropped_records": tracer.dropped},
        })
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "profile": profiler.state(),
    }
    path.write_text(json.dumps(doc, default=_json_default))
    return path


def export_run_reports_json(
    path: str | Path, reports: Iterable[HilRunReport] | None = None
) -> Path:
    """Write HIL run reports as a JSON list."""
    reports = list(reports) if reports is not None else run_reports()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps([r.to_dict() for r in reports], indent=2, default=_json_default)
    )
    return path


def write_bench_json(
    path: str | Path,
    entries: Iterable[Mapping],
    machine_info: Mapping | None = None,
) -> Path:
    """Write a ``BENCH_*.json`` perf artefact.

    ``entries`` are mappings with at least ``name`` and ``stats`` (a
    mapping with a ``mean``; ``min``/``max``/``stddev``/``rounds`` are
    filled with defaults when absent).  The output mirrors the subset of
    the pytest-benchmark JSON schema downstream tooling reads
    (``machine_info``, ``benchmarks[].name/stats/extra_info``), so the
    perf trajectory stays comparable across emitters.
    """
    path = Path(path)
    if not path.name.startswith("BENCH_"):
        raise ConfigurationError(
            f"bench artefacts must be named BENCH_*.json, got {path.name!r}"
        )
    benchmarks = []
    for entry in entries:
        if "name" not in entry or "stats" not in entry:
            raise ConfigurationError("each bench entry needs 'name' and 'stats'")
        stats = dict(entry["stats"])
        if "mean" not in stats:
            raise ConfigurationError(f"bench entry {entry['name']!r} lacks stats.mean")
        stats.setdefault("min", stats["mean"])
        stats.setdefault("max", stats["mean"])
        stats.setdefault("stddev", 0.0)
        stats.setdefault("rounds", 1)
        benchmarks.append(
            {
                "name": str(entry["name"]),
                "stats": stats,
                "extra_info": dict(entry.get("extra_info", {})),
            }
        )
    doc = {
        "machine_info": dict(
            machine_info
            if machine_info is not None
            else {
                "python_version": platform.python_version(),
                "platform": platform.platform(),
                "processor": platform.processor(),
                "executable": sys.executable,
            }
        ),
        "benchmarks": benchmarks,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, default=_json_default))
    return path
