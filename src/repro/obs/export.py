"""Telemetry artefact writers.

Four formats, all plain files next to the experiment CSVs:

* :func:`export_metrics_json` — the full registry snapshot as one JSON
  document (instrument kind, description, per-label-set series);
* :func:`export_metrics_csv` — flat ``metric,labels,field,value`` rows
  for spreadsheet-grade consumers;
* :func:`export_trace_jsonl` — one JSON object per span/event record;
* :func:`export_run_reports_json` / :func:`write_bench_json` — run
  reports, and a pytest-benchmark-compatible ``BENCH_*.json`` so perf
  numbers from CI land in the same shape the benchmark suite emits.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.report import HilRunReport, run_reports
from repro.obs.trace import Tracer, get_tracer

__all__ = [
    "export_metrics_json",
    "export_metrics_csv",
    "export_trace_jsonl",
    "export_run_reports_json",
    "write_bench_json",
]


def _sanitize(value):
    """JSON has no inf/nan; map them to strings rather than crash."""
    if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
        return str(value)
    return value


def _json_default(value):
    try:
        return _sanitize(float(value))
    except (TypeError, ValueError):
        return str(value)


def export_metrics_json(path: str | Path, registry: MetricsRegistry | None = None) -> Path:
    """Write the registry snapshot as JSON; returns the path."""
    registry = registry if registry is not None else get_registry()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(registry.snapshot(), indent=2, default=_json_default, allow_nan=False)
    )
    return path


def export_metrics_csv(path: str | Path, registry: MetricsRegistry | None = None) -> Path:
    """Write flat CSV rows: ``metric,kind,labels,field,value``."""
    registry = registry if registry is not None else get_registry()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = ["metric,kind,labels,field,value"]

    def quote(text: str) -> str:
        return '"' + str(text).replace('"', '""') + '"'

    for name, entry in registry.snapshot().items():
        for labels, value in entry["series"].items():
            if isinstance(value, Mapping):  # histogram series
                for stat in ("count", "sum", "min", "max"):
                    lines.append(
                        f"{name},{entry['kind']},{quote(labels)},{stat},{value[stat]}"
                    )
                for bound, count in value["buckets"].items():
                    lines.append(
                        f"{name},{entry['kind']},{quote(labels)},le={bound},{count}"
                    )
            else:
                lines.append(f"{name},{entry['kind']},{quote(labels)},value,{value}")
    path.write_text("\n".join(lines) + "\n")
    return path


def export_trace_jsonl(path: str | Path, tracer: Tracer | None = None) -> Path:
    """Write every span/event as one JSON line (chronological order).

    A final ``trace.dropped`` event is appended when the tracer hit its
    record cap, so truncation is visible in the artefact.
    """
    tracer = tracer if tracer is not None else get_tracer()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = sorted(tracer.records, key=lambda r: r.start)
    with path.open("w") as fh:
        for record in records:
            fh.write(json.dumps(record.to_dict(), default=_json_default) + "\n")
        if tracer.dropped:
            fh.write(
                json.dumps(
                    {
                        "name": "trace.dropped",
                        "event": True,
                        "attrs": {"dropped_records": tracer.dropped},
                    }
                )
                + "\n"
            )
    return path


def export_run_reports_json(
    path: str | Path, reports: Iterable[HilRunReport] | None = None
) -> Path:
    """Write HIL run reports as a JSON list."""
    reports = list(reports) if reports is not None else run_reports()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps([r.to_dict() for r in reports], indent=2, default=_json_default)
    )
    return path


def write_bench_json(
    path: str | Path,
    entries: Iterable[Mapping],
    machine_info: Mapping | None = None,
) -> Path:
    """Write a ``BENCH_*.json`` perf artefact.

    ``entries`` are mappings with at least ``name`` and ``stats`` (a
    mapping with a ``mean``; ``min``/``max``/``stddev``/``rounds`` are
    filled with defaults when absent).  The output mirrors the subset of
    the pytest-benchmark JSON schema downstream tooling reads
    (``machine_info``, ``benchmarks[].name/stats/extra_info``), so the
    perf trajectory stays comparable across emitters.
    """
    path = Path(path)
    if not path.name.startswith("BENCH_"):
        raise ConfigurationError(
            f"bench artefacts must be named BENCH_*.json, got {path.name!r}"
        )
    benchmarks = []
    for entry in entries:
        if "name" not in entry or "stats" not in entry:
            raise ConfigurationError("each bench entry needs 'name' and 'stats'")
        stats = dict(entry["stats"])
        if "mean" not in stats:
            raise ConfigurationError(f"bench entry {entry['name']!r} lacks stats.mean")
        stats.setdefault("min", stats["mean"])
        stats.setdefault("max", stats["mean"])
        stats.setdefault("stddev", 0.0)
        stats.setdefault("rounds", 1)
        benchmarks.append(
            {
                "name": str(entry["name"]),
                "stats": stats,
                "extra_info": dict(entry.get("extra_info", {})),
            }
        )
    doc = {
        "machine_info": dict(
            machine_info
            if machine_info is not None
            else {
                "python_version": platform.python_version(),
                "platform": platform.platform(),
                "processor": platform.processor(),
                "executable": sys.executable,
            }
        ),
        "benchmarks": benchmarks,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, default=_json_default))
    return path
