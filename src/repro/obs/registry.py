"""Metric instruments and the process-wide registry.

Three instrument kinds, modelled on the Prometheus data model but kept
dependency-free and laptop-scale:

* :class:`Counter` — monotonically increasing totals (executed ops,
  ADC clips, deadline misses);
* :class:`Gauge` — last-written values (revolution period, ticks per
  iteration, ring-buffer occupancy);
* :class:`Histogram` — bucketed distributions with exact count/sum/
  min/max and interpolated percentiles (per-iteration slack).

Every instrument supports **labels** passed as keyword arguments to the
write methods; each distinct label set keeps its own series.  All write
methods are no-ops while observability is disabled
(:data:`repro.obs._state.STATE`), so a module can create its instruments
at import time and call them unconditionally.

Instruments are get-or-create: asking the registry for an existing name
returns the same object (and raises on a kind mismatch), which lets
independent modules share a metric.  :meth:`MetricsRegistry.reset`
clears recorded *values* but keeps the instrument objects, so references
captured at import time stay live across runs.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.obs._state import STATE

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_BUCKETS",
]

#: Key of the unlabelled series.
_NO_LABELS: tuple = ()

#: Default histogram bucket upper bounds: two-decades-per-side symmetric
#: log spread around zero plus ±inf rails, wide enough for slack-in-ticks
#: (1e-1 … 1e6) without configuration.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    [-(10.0**e) for e in range(6, -2, -1)]
    + [0.0]
    + [10.0**e for e in range(-1, 7)]
    + [math.inf]
)


def _label_key(labels: dict) -> tuple:
    if not labels:
        return _NO_LABELS
    return tuple(sorted(labels.items()))


def _key_to_dict(key: tuple) -> dict:
    return dict(key)


class _Instrument:
    """Common name/description/label bookkeeping."""

    kind = "instrument"

    def __init__(self, name: str, description: str = "") -> None:
        if not name or not name.replace("_", "a").isidentifier():
            raise ConfigurationError(f"invalid metric name {name!r}")
        self.name = name
        self.description = description

    def reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def series(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonic counter; ``inc`` with a negative amount raises."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not STATE.enabled:
            return
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (amount={amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current total of one label set (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(self._values.values())

    def reset(self) -> None:
        self._values.clear()

    def series(self) -> dict:
        return {key: value for key, value in self._values.items()}

    def state(self) -> dict:
        """Raw per-label-set totals, for snapshot transfer."""
        return dict(self._values)

    def merge_state(self, state: dict) -> None:
        """Add another process's totals into this counter.

        State transfer, not measurement: merging bypasses the enabled
        flag so a parent can aggregate worker snapshots even after
        telemetry was switched off.
        """
        for key, value in state.items():
            self._values[key] = self._values.get(key, 0.0) + float(value)


class Gauge(_Instrument):
    """Last-value instrument with ``set``/``inc``/``dec``."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        if not STATE.enabled:
            return
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not STATE.enabled:
            return
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """Current value of one label set (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def reset(self) -> None:
        self._values.clear()

    def series(self) -> dict:
        return {key: value for key, value in self._values.items()}

    def state(self) -> dict:
        """Raw per-label-set values, for snapshot transfer."""
        return dict(self._values)

    def merge_state(self, state: dict) -> None:
        """Adopt another process's values (last merge wins per series).

        Gauges are last-write instruments, so merging in shard order
        reproduces the value a serial run would have ended with.
        """
        for key, value in state.items():
            self._values[key] = float(value)


class _HistogramSeries:
    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


class Histogram(_Instrument):
    """Bucketed distribution with exact moments and percentile estimates.

    Parameters
    ----------
    buckets:
        Strictly increasing upper bounds; the last must be ``+inf``
        (appended automatically if missing).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, description)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if bounds and bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        if len(bounds) < 2 or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ConfigurationError("histogram buckets must be strictly increasing")
        self.buckets = bounds
        self._series: dict[tuple, _HistogramSeries] = {}

    def _get(self, labels: dict) -> _HistogramSeries:
        key = _label_key(labels)
        s = self._series.get(key)
        if s is None:
            s = self._series[key] = _HistogramSeries(len(self.buckets))
        return s

    def _bucket_index(self, value: float) -> int:
        # Linear scan is fine: bucket lists are short and observe() sits
        # behind the enabled check.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return len(self.buckets) - 1  # pragma: no cover - inf catches all

    def observe(self, value: float, **labels) -> None:
        if not STATE.enabled:
            return
        value = float(value)
        s = self._get(labels)
        s.counts[self._bucket_index(value)] += 1
        s.count += 1
        s.sum += value
        if value < s.min:
            s.min = value
        if value > s.max:
            s.max = value

    def observe_many(self, values: Iterable[float], **labels) -> None:
        if not STATE.enabled:
            return
        for v in values:
            self.observe(float(v), **labels)

    def count(self, **labels) -> int:
        s = self._series.get(_label_key(labels))
        return s.count if s is not None else 0

    def sum(self, **labels) -> float:
        s = self._series.get(_label_key(labels))
        return s.sum if s is not None else 0.0

    def mean(self, **labels) -> float:
        s = self._series.get(_label_key(labels))
        if s is None or s.count == 0:
            raise ConfigurationError(f"histogram {self.name} has no observations")
        return s.sum / s.count

    def percentile(self, q: float, **labels) -> float:
        """Estimated q-th percentile (linear interpolation inside the
        containing bucket, clamped to the observed min/max)."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        s = self._series.get(_label_key(labels))
        if s is None or s.count == 0:
            raise ConfigurationError(f"histogram {self.name} has no observations")
        target = q / 100.0 * s.count
        cumulative = 0
        for i, n in enumerate(s.counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = self.buckets[i - 1] if i > 0 else s.min
                hi = self.buckets[i]
                lo = max(lo, s.min)
                hi = min(hi, s.max)
                if n == 0 or hi <= lo:  # degenerate bucket
                    return float(hi)
                frac = (target - cumulative) / n
                return float(lo + frac * (hi - lo))
            cumulative += n
        return float(s.max)  # pragma: no cover - loop always returns

    def reset(self) -> None:
        self._series.clear()

    def state(self) -> dict:
        """Raw per-label-set bucket counts and moments, for transfer."""
        return {
            key: {
                "counts": list(s.counts),
                "count": s.count,
                "sum": s.sum,
                "min": s.min,
                "max": s.max,
            }
            for key, s in self._series.items()
        }

    def merge_state(self, state: dict) -> None:
        """Add another process's distributions into this histogram.

        The source must have been recorded with identical bucket bounds
        (all built-in instruments use :data:`DEFAULT_BUCKETS`); a length
        mismatch raises rather than silently mis-binning.
        """
        for key, payload in state.items():
            counts = payload["counts"]
            if len(counts) != len(self.buckets):
                raise ConfigurationError(
                    f"histogram {self.name}: cannot merge series with "
                    f"{len(counts)} buckets into {len(self.buckets)}"
                )
            s = self._series.get(key)
            if s is None:
                s = self._series[key] = _HistogramSeries(len(self.buckets))
            for i, c in enumerate(counts):
                s.counts[i] += int(c)
            s.count += int(payload["count"])
            s.sum += float(payload["sum"])
            s.min = min(s.min, float(payload["min"]))
            s.max = max(s.max, float(payload["max"]))

    def series(self) -> dict:
        out = {}
        for key, s in self._series.items():
            out[key] = {
                "count": s.count,
                "sum": s.sum,
                "min": s.min if s.count else None,
                "max": s.max if s.count else None,
                "buckets": {str(b): c for b, c in zip(self.buckets, s.counts)},
            }
        return out


class MetricsRegistry:
    """Named collection of instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, description: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = cls(name, description, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self, name: str, description: str = "", buckets: Sequence[float] | None = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, description, buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        """Look up an instrument by name (None if absent)."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        """Zero all recorded values; instrument objects stay registered."""
        for instrument in self._instruments.values():
            instrument.reset()

    def snapshot(self) -> dict:
        """JSON-ready view of every instrument and series.

        Label keys serialise as ``"k=v,k2=v2"`` strings ("" for the
        unlabelled series).
        """
        out: dict = {}
        for name in self.names():
            instrument = self._instruments[name]
            series = {
                ",".join(f"{k}={v}" for k, v in key): value
                for key, value in instrument.series().items()
            }
            out[name] = {
                "kind": instrument.kind,
                "description": instrument.description,
                "series": series,
            }
        return out


#: The process-wide registry used by all built-in instrumentation.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The global registry (module-level instruments live here)."""
    return _REGISTRY
