"""Mergeable telemetry snapshots for multi-process runs.

Worker processes of :mod:`repro.parallel` collect metrics, spans and HIL
run reports into their *own* process-wide registry/tracer (module-level
instruments are per-process objects — see the multiprocess-safety notes
in :mod:`repro.cgra.models`).  Without help, that telemetry dies with the
worker.  This module makes it transportable:

* :func:`capture_snapshot` freezes the current process's telemetry into
  a plain-data :class:`ObsSnapshot` (picklable: dicts/lists/floats only)
  and can atomically reset afterwards, so one warm worker produces one
  delta snapshot per task;
* :func:`merge_snapshot` folds a snapshot into the parent's registry,
  tracer, profiler and report list with per-kind semantics: **counters
  add**, **gauges last-write-wins in merge order** (merging shards in
  index order reproduces the serial outcome), **histograms add bucket
  counts and moments**, **profile entries add** (count/total, min/max
  compose), spans append (tagged with the worker id), reports append.

Spans keep their ``trace_id``/``span_id``/``parent_id`` through the
round trip, so a worker span whose parent context was propagated from
the parent process (:func:`repro.obs.trace.current_context` →
:class:`repro.obs.trace.trace_context`) re-attaches to the parent's
span tree on merge.  Span start times are **rebased** onto the parent
tracer's clock using the two tracers' epoch origins, so a merged trace
renders as one coherent timeline in Perfetto.

Merging ``N`` worker snapshots into an idle parent registry yields the
same totals a serial run of the same work would have produced — pinned
by ``tests/obs/test_snapshot_merge.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.profile import Profiler, get_profiler
from repro.obs.registry import Histogram, MetricsRegistry, get_registry
from repro.obs.report import HilRunReport, add_run_report, run_reports
from repro.obs.trace import SpanRecord, Tracer, get_tracer

__all__ = ["ObsSnapshot", "capture_snapshot", "merge_snapshot"]


@dataclass
class ObsSnapshot:
    """Frozen, picklable view of one process's telemetry.

    ``metrics`` entries carry ``name``/``kind``/``description`` plus the
    instrument's raw :meth:`state` payload (and bucket bounds for
    histograms); ``spans``/``reports`` are ``to_dict()`` records;
    ``profile`` is the profiler's :meth:`~repro.obs.profile.Profiler.state`.
    """

    metrics: list[dict] = field(default_factory=list)
    spans: list[dict] = field(default_factory=list)
    reports: list[dict] = field(default_factory=list)
    #: Spans the worker's tracer discarded at its record cap.
    dropped_spans: int = 0
    #: Phase/op profile table (name → count/total/min/max payload).
    profile: dict = field(default_factory=dict)
    #: The capturing tracer's epoch origin (``time.time() -
    #: time.perf_counter()``); merge uses it to rebase span starts onto
    #: the parent's clock.  None in snapshots from older emitters.
    clock_origin_s: float | None = None

    @property
    def empty(self) -> bool:
        """True when nothing was recorded (idle worker)."""
        return not (self.metrics or self.spans or self.reports or self.profile)


def capture_snapshot(
    reset: bool = False,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    profiler: Profiler | None = None,
) -> ObsSnapshot:
    """Freeze the current telemetry state into an :class:`ObsSnapshot`.

    With ``reset=True`` the captured values/spans/reports are cleared
    afterwards (instrument objects stay registered), so consecutive
    captures from a warm worker are non-overlapping deltas.
    """
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    profiler = profiler if profiler is not None else get_profiler()
    metrics: list[dict] = []
    for name in registry.names():
        instrument = registry.get(name)
        state = instrument.state()
        if not state:
            continue
        entry = {
            "name": name,
            "kind": instrument.kind,
            "description": instrument.description,
            "state": state,
        }
        if isinstance(instrument, Histogram):
            entry["buckets"] = list(instrument.buckets)
        metrics.append(entry)
    snapshot = ObsSnapshot(
        metrics=metrics,
        spans=[record.to_dict() for record in tracer.records],
        reports=[report.to_dict() for report in run_reports()],
        dropped_spans=tracer.dropped,
        profile=profiler.state(),
        clock_origin_s=tracer.clock_origin,
    )
    if reset:
        registry.reset()
        tracer.reset()
        profiler.reset()
        from repro.obs.report import clear_run_reports

        clear_run_reports()
    return snapshot


def merge_snapshot(
    snapshot: ObsSnapshot,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    profiler: Profiler | None = None,
    worker: int | str | None = None,
) -> None:
    """Fold one worker snapshot into the parent-side telemetry.

    Instruments are created on demand (same get-or-create semantics as
    direct instrumentation), so the parent need not have touched a
    metric for a worker's series to survive.  ``worker`` tags every
    merged span with a ``worker`` attribute for attribution; span start
    times are rebased onto the parent tracer's clock when the snapshot
    carries its origin (older snapshots merge un-rebased).
    """
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    profiler = profiler if profiler is not None else get_profiler()
    for entry in snapshot.metrics:
        kind = entry["kind"]
        if kind == "counter":
            instrument = registry.counter(entry["name"], entry["description"])
        elif kind == "gauge":
            instrument = registry.gauge(entry["name"], entry["description"])
        elif kind == "histogram":
            instrument = registry.histogram(
                entry["name"], entry["description"], buckets=entry.get("buckets")
            )
        else:
            raise ConfigurationError(
                f"snapshot metric {entry['name']!r} has unknown kind {kind!r}"
            )
        instrument.merge_state(entry["state"])
    # Rebase worker perf_counter starts onto the parent's clock so the
    # merged trace is one coherent timeline.
    shift = 0.0
    if snapshot.clock_origin_s is not None:
        shift = snapshot.clock_origin_s - tracer.clock_origin
    for span in snapshot.spans:
        attrs = dict(span.get("attrs", {}))
        if worker is not None:
            attrs.setdefault("worker", worker)
        tracer._record(
            SpanRecord(
                name=span["name"],
                start=float(span["start_s"]) + shift,
                duration=float(span["duration_s"]),
                attrs=attrs,
                is_event=bool(span.get("event", False)),
                trace_id=span.get("trace_id"),
                span_id=span.get("span_id"),
                parent_id=span.get("parent_id"),
            )
        )
    tracer.dropped += snapshot.dropped_spans
    profiler.merge_state(snapshot.profile)
    for report in snapshot.reports:
        add_run_report(HilRunReport.from_dict(report))
