"""``repro.obs`` — telemetry for the cavity-in-the-loop reproduction.

Metrics (counters/gauges/histograms with labels), trace spans/events,
and per-run HIL reports, wired through the CGRA executors, the signal
chain and the HIL loop.  See ``docs/OBSERVABILITY.md`` for the full
metric/span name catalogue and export formats.

Design rule: **off by default, ~free when off**.  Every instrument
checks one global flag before doing work, so the cycle-accurate
executors pay a single branch per iteration when telemetry is disabled
(pinned by ``benchmarks/test_obs_overhead.py``).  Instrumented modules
create their instruments at import time and call them unconditionally.

Usage::

    from repro import obs

    obs.enable(trace=True)          # or: --metrics / --trace on the runner
    ...run a bench...
    obs.export.export_metrics_json("metrics.json")
    obs.export.export_trace_jsonl("trace.jsonl")
    obs.export.export_run_reports_json("report.json")
    obs.reset()                     # zero values, drop spans + reports
"""

from __future__ import annotations

from repro.obs import export, report
from repro.obs._state import STATE
from repro.obs.profile import ProfileEntry, Profiler, get_profiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.report import (
    HilRunReport,
    add_run_report,
    clear_run_reports,
    record_hil_run,
    run_reports,
)
from repro.obs.snapshot import ObsSnapshot, capture_snapshot, merge_snapshot
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    current_context,
    get_tracer,
    trace_context,
)

__all__ = [
    "enable",
    "disable",
    "enabled",
    "trace_enabled",
    "profile_enabled",
    "reset",
    "metrics",
    "tracer",
    "profiler",
    "get_registry",
    "get_tracer",
    "get_profiler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "SpanRecord",
    "current_context",
    "trace_context",
    "Profiler",
    "ProfileEntry",
    "HilRunReport",
    "record_hil_run",
    "add_run_report",
    "run_reports",
    "clear_run_reports",
    "ObsSnapshot",
    "capture_snapshot",
    "merge_snapshot",
    "export",
    "report",
]


def enable(trace: bool = False, profile: bool = False) -> None:
    """Turn metrics collection on (and optionally spans / profiling)."""
    STATE.enabled = True
    STATE.trace = bool(trace)
    STATE.profile = bool(profile)


def disable() -> None:
    """Turn all telemetry off (instruments keep their recorded values)."""
    STATE.enabled = False
    STATE.trace = False
    STATE.profile = False


def enabled() -> bool:
    """True when metrics collection is on."""
    return STATE.enabled


def trace_enabled() -> bool:
    """True when span/event recording is on."""
    return STATE.trace


def profile_enabled() -> bool:
    """True when phase/op profiling is on."""
    return STATE.profile


def metrics() -> MetricsRegistry:
    """The global metric registry."""
    return get_registry()


def tracer() -> Tracer:
    """The global tracer."""
    return get_tracer()


def profiler() -> Profiler:
    """The global phase/op profiler."""
    return get_profiler()


def reset() -> None:
    """Zero all metric values, drop spans/events, profiles and reports.

    The enable/disable switches are left as they are; instrument objects
    stay registered so import-time references remain valid.
    """
    get_registry().reset()
    get_tracer().reset()
    get_profiler().reset()
    clear_run_reports()
