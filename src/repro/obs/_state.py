"""Global observability switch.

One module-level flag object, checked by every instrument before doing
any work.  The disabled path is a single attribute load and branch, so
instrumented hot loops (the cycle-accurate executors, the per-revolution
HIL step) stay honest when telemetry is off — the overhead benchmark
(``benchmarks/test_obs_overhead.py``) pins that cost.

``enabled`` gates metrics; ``trace`` additionally gates span/event
recording and ``profile`` gates the phase/op profiler
(:mod:`repro.obs.profile`).  Tracing and profiling imply metrics:
:func:`repro.obs.enable` enforces that ordering.
"""

from __future__ import annotations

__all__ = ["ObsState", "STATE"]


class ObsState:
    """Mutable global switches (attribute access is the fast path)."""

    __slots__ = ("enabled", "trace", "profile")

    def __init__(self) -> None:
        self.enabled = False
        self.trace = False
        self.profile = False


#: The process-wide switch every instrument checks.
STATE = ObsState()
