"""Per-run HIL reports.

A :class:`HilRunReport` condenses one bench run into the numbers the
paper's real-time argument needs: iteration count, the slack
distribution (min/mean/p50/p99 in CGRA ticks), deadline misses, signal
chain health (ADC/DAC clip counts, ring-buffer occupancy) and CGRA
execution totals.  :func:`record_hil_run` builds one from a finished
run's :class:`~repro.hil.realtime.JitterStats` plus a snapshot of the
global metric registry, and appends it to a process-wide list that the
experiment runner exports next to the CSV artefacts.

The module deliberately imports nothing from :mod:`repro.hil` (the HIL
stack imports *us*); the stats argument is duck-typed on the
``JitterStats`` fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.registry import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hil.realtime import JitterStats

__all__ = [
    "HilRunReport",
    "record_hil_run",
    "add_run_report",
    "run_reports",
    "clear_run_reports",
]


@dataclass
class HilRunReport:
    """Summary of one HIL run (all tick quantities in CGRA ticks)."""

    #: Run label (experiment id or bench class name).
    name: str
    #: ``"python"``, ``"cgra"`` or ``"sample-accurate"``.
    engine: str
    #: Compiled schedule length (the per-iteration budget consumer).
    schedule_length: int
    #: Model iterations executed.
    n_iterations: int
    #: Iterations whose slack went negative.
    deadline_misses: int
    slack_min: float
    slack_mean: float
    slack_p50: float
    slack_p99: float
    #: ADC samples pushed against the rails.
    adc_clip_count: int = 0
    #: DAC codes pushed against the rails.
    dac_clip_count: int = 0
    #: CGRA operations executed across the run.
    executed_ops: int = 0
    #: CGRA context switches (ticks) across the run.
    context_switches: int = 0
    #: Most recent ring-buffer fill fraction [0, 1] (0 when unused).
    ring_buffer_fill: float = 0.0
    #: Control-loop corrections clipped at the saturation limit.
    control_saturation_count: int = 0
    #: Anything experiment-specific.
    extras: dict = field(default_factory=dict)

    @property
    def met(self) -> bool:
        """True when no iteration missed its deadline."""
        return self.deadline_misses == 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "engine": self.engine,
            "schedule_length_ticks": self.schedule_length,
            "n_iterations": self.n_iterations,
            "deadline_misses": self.deadline_misses,
            "deadline_met": self.met,
            "slack_ticks": {
                "min": self.slack_min,
                "mean": self.slack_mean,
                "p50": self.slack_p50,
                "p99": self.slack_p99,
            },
            "adc_clip_count": self.adc_clip_count,
            "dac_clip_count": self.dac_clip_count,
            "executed_ops": self.executed_ops,
            "context_switches": self.context_switches,
            "ring_buffer_fill": self.ring_buffer_fill,
            "control_saturation_count": self.control_saturation_count,
            "extras": self.extras,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HilRunReport":
        """Rebuild a report from :meth:`to_dict` output (round-trip safe);
        used when worker-process reports are merged into the parent."""
        slack = data.get("slack_ticks", {})
        return cls(
            name=data["name"],
            engine=data["engine"],
            schedule_length=int(data["schedule_length_ticks"]),
            n_iterations=int(data["n_iterations"]),
            deadline_misses=int(data["deadline_misses"]),
            slack_min=float(slack.get("min", 0.0)),
            slack_mean=float(slack.get("mean", 0.0)),
            slack_p50=float(slack.get("p50", 0.0)),
            slack_p99=float(slack.get("p99", 0.0)),
            adc_clip_count=int(data.get("adc_clip_count", 0)),
            dac_clip_count=int(data.get("dac_clip_count", 0)),
            executed_ops=int(data.get("executed_ops", 0)),
            context_switches=int(data.get("context_switches", 0)),
            ring_buffer_fill=float(data.get("ring_buffer_fill", 0.0)),
            control_saturation_count=int(data.get("control_saturation_count", 0)),
            extras=dict(data.get("extras", {})),
        )


#: Reports recorded since the last :func:`clear_run_reports`.
_REPORTS: list[HilRunReport] = []


def _counter_total(registry: MetricsRegistry, name: str) -> int:
    instrument = registry.get(name)
    total = getattr(instrument, "total", None)
    return int(total()) if total is not None else 0


def _gauge_value(registry: MetricsRegistry, name: str) -> float:
    instrument = registry.get(name)
    value = getattr(instrument, "value", None)
    return float(value()) if value is not None else 0.0


def record_hil_run(
    name: str,
    stats: "JitterStats",
    schedule_length: int,
    engine: str,
    registry: MetricsRegistry | None = None,
    **extras,
) -> HilRunReport:
    """Build a report from run stats + the current registry and file it.

    Counter-derived fields (clips, executed ops, …) snapshot the
    registry *totals at call time*; the runner resets the registry
    between experiments so each report covers exactly one run.
    """
    registry = registry if registry is not None else get_registry()
    report = HilRunReport(
        name=name,
        engine=engine,
        schedule_length=int(schedule_length),
        n_iterations=stats.n_iterations,
        deadline_misses=stats.misses,
        slack_min=stats.min_slack,
        slack_mean=stats.mean_slack,
        slack_p50=stats.p50_slack,
        slack_p99=stats.p99_slack,
        adc_clip_count=_counter_total(registry, "signal_adc_clips_total"),
        dac_clip_count=_counter_total(registry, "signal_dac_clips_total"),
        executed_ops=_counter_total(registry, "cgra_ops_executed_total"),
        context_switches=_counter_total(registry, "cgra_context_switches_total"),
        ring_buffer_fill=_gauge_value(registry, "signal_ringbuffer_fill"),
        control_saturation_count=_counter_total(
            registry, "control_saturation_total"
        ),
        extras=dict(extras),
    )
    _REPORTS.append(report)
    return report


def add_run_report(report: HilRunReport) -> None:
    """File an already-built report (merging worker snapshots)."""
    _REPORTS.append(report)


def run_reports() -> list[HilRunReport]:
    """Reports recorded so far (live list copy)."""
    return list(_REPORTS)


def clear_run_reports() -> None:
    """Forget all recorded reports."""
    _REPORTS.clear()
