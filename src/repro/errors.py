"""Exception hierarchy for :mod:`repro`.

Every error raised by the package derives from :class:`ReproError`, so
downstream users can catch the package's failures with a single handler
while still discriminating the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A parameter object is inconsistent or out of its physical range."""


class PhysicsError(ReproError):
    """A beam-dynamics computation left its domain of validity.

    Examples: requesting γ < 1, an unstable RF bucket where stability was
    required, or a velocity at or above the speed of light.
    """


class SignalError(ReproError):
    """A signal-chain component was driven outside its contract.

    Examples: reading an unwritten ring-buffer address, a DDS frequency
    above Nyquist of its sample clock, or an ADC input with no samples.
    """


class CgraError(ReproError):
    """Base class of CGRA subsystem failures."""


class FrontendError(CgraError):
    """The mini-C frontend rejected a model source (lex/parse/lowering)."""


class ScheduleError(CgraError):
    """The scheduler could not map the dataflow graph onto the fabric."""


class VerificationError(CgraError):
    """Static verification of a schedule/context-image set found errors.

    Raised by the executors' optional verify-on-load path; the message
    embeds the formatted :class:`repro.cgra.verify.Diagnostic` records.
    """


class ExecutionError(CgraError):
    """Cycle-accurate execution of scheduled contexts failed."""


class RealTimeViolation(ReproError):
    """A hard deadline in the cycle domain was missed.

    Raised (or recorded, depending on policy) when the schedule length in
    CGRA ticks exceeds the revolution period — the paper's core real-time
    criterion.
    """


class HilError(ReproError):
    """Hardware-in-the-loop framework wiring or run-time error."""


class ParallelExecutionError(ReproError):
    """One or more sharded scenario runs failed inside a worker process.

    The message embeds the structured :class:`repro.parallel.ShardFailure`
    records (shard index, exception type, message, traceback), so a single
    faulting lane surfaces with full context instead of killing the pool.
    """


class FaultError(ReproError):
    """Fault-injection campaign wiring or run-time error."""


class FaultSpecError(FaultError):
    """A fault specification failed validation.

    Raised by :class:`repro.faults.FaultSpec` when a spec's kind,
    magnitude window, timing or target is inconsistent — specs are
    validated at construction so campaign sweeps fail fast, before any
    shard is dispatched.
    """
