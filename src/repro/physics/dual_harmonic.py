"""Dual-harmonic RF system (bunch-lengthening mode).

SIS18's LLRF operates a *dual-harmonic* cavity system — the beam-phase
control paper the authors build on is literally titled "A Digital
Beam-Phase Control System for a Heavy-Ion Synchrotron With a
Dual-Harmonic Cavity System" (paper reference [9]).  A second cavity at
twice the RF frequency, in counter-phase with amplitude ratio r = V₂/V₁,
produces the gap voltage

.. math::

    V(\\Delta t) = \\hat V_1\\,[\\sin(\\omega_{RF}\\Delta t)
                   - r\\,\\sin(2\\,\\omega_{RF}\\Delta t + \\varphi_2')]

whose slope at the bunch centre is ∝ (1 − 2r): at r = 0.5 the bucket
bottom is *flat* (bunch-lengthening mode), the small-amplitude
synchrotron frequency collapses, and the synchrotron-frequency spread
across the bunch — hence Landau damping — grows strongly.

Everything downstream of :class:`DualHarmonicRF` works unchanged: the
trackers only call ``gap_voltage_at``, and the HIL bench's beam model
reads the gap *ring buffer*, so driving the bench with a dual-harmonic
signal requires no CGRA model change at all — a genuinely free extension
of the paper's architecture (exercised by E12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.constants import TWO_PI
from repro.errors import ConfigurationError, PhysicsError
from repro.physics.ion import IonSpecies
from repro.physics.relativity import beta_from_gamma
from repro.physics.ring import SynchrotronRing

__all__ = [
    "DualHarmonicRF",
    "dual_harmonic_synchrotron_frequency",
    "synchrotron_frequency_vs_amplitude",
]


@dataclass(frozen=True)
class DualHarmonicRF:
    """Two-cavity RF system: fundamental at h·f_R plus 2h·f_R component.

    Parameters
    ----------
    harmonic:
        Fundamental harmonic number h.
    voltage:
        Peak fundamental amplitude V̂₁ in volts.
    ratio:
        Amplitude ratio r = V̂₂/V̂₁ ∈ [0, 1).  0 reduces to the single-
        harmonic system; 0.5 is the flat-bucket (bunch lengthening)
        operating point.
    phase_offset:
        Common phase offset (control-loop/jump actuation), radians on
        the fundamental scale — both components shift together, as when
        the reference of the DDS group moves.
    synchronous_phase:
        Synchronous phase φ_s of the fundamental (0 = stationary).
    second_phase:
        Extra phase of the second harmonic relative to counter-phase; 0
        is the standard bunch-lengthening configuration.
    """

    harmonic: int
    voltage: float
    ratio: float = 0.5
    phase_offset: float = 0.0
    synchronous_phase: float = 0.0
    second_phase: float = 0.0

    def __post_init__(self) -> None:
        if self.harmonic < 1:
            raise ConfigurationError("harmonic must be >= 1")
        if self.voltage < 0.0:
            raise ConfigurationError("voltage must be non-negative")
        if not 0.0 <= self.ratio < 1.0:
            raise ConfigurationError(f"ratio must be in [0, 1), got {self.ratio}")

    def rf_frequency(self, f_rev: float) -> float:
        """Fundamental RF frequency h·f_R."""
        return self.harmonic * f_rev

    def gap_voltage_at(self, delta_t, f_rev: float):
        """Total gap voltage at arrival offset ``delta_t`` (scalar/array)."""
        omega = TWO_PI * self.harmonic * f_rev
        base = omega * np.asarray(delta_t, dtype=float) + self.phase_offset + self.synchronous_phase
        v = self.voltage * (
            np.sin(base) - self.ratio * np.sin(2.0 * base + self.second_phase)
        )
        return float(v) if np.isscalar(delta_t) else v

    def voltage_slope_at_centre(self, f_rev: float) -> float:
        """dV/dΔt at Δt = 0 (V/s); ∝ (1 − 2r) in the stationary case."""
        omega = TWO_PI * self.harmonic * f_rev
        p = self.phase_offset + self.synchronous_phase
        return self.voltage * omega * (
            math.cos(p) - 2.0 * self.ratio * math.cos(2.0 * p + self.second_phase)
        )

    def with_phase_offset(self, phase_offset: float) -> "DualHarmonicRF":
        """Copy with a new common phase offset (control actuation)."""
        return replace(self, phase_offset=phase_offset)

    def with_voltage(self, voltage: float) -> "DualHarmonicRF":
        """Copy with a new fundamental amplitude."""
        return replace(self, voltage=voltage)

    @property
    def is_flat(self) -> bool:
        """True at the exact bunch-lengthening point (zero centre slope)."""
        return (
            self.synchronous_phase == 0.0
            and self.second_phase == 0.0
            and abs(self.ratio - 0.5) < 1e-12
        )


def dual_harmonic_synchrotron_frequency(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: DualHarmonicRF,
    gamma: float,
) -> float:
    """Small-amplitude synchrotron frequency of the dual-harmonic bucket.

    The single-harmonic formula with the effective slope (1 − 2r)·V̂₁ω:
    f_s(r) = f_s(0)·√(1 − 2r).  Exactly zero at the flat point — callers
    studying the flat bucket need the amplitude-dependent frequency
    (:func:`synchrotron_frequency_vs_amplitude`).
    """
    slope = rf.voltage_slope_at_centre(ring.revolution_frequency(gamma))
    if slope <= 0.0:
        if rf.is_flat:
            return 0.0
        raise PhysicsError(
            "negative centre slope: bucket is unstable at this ratio/phase"
        )
    beta = beta_from_gamma(gamma)
    eta = ring.phase_slip(gamma)
    if eta >= 0.0:
        raise PhysicsError("dual-harmonic helper assumes operation below transition")
    f_rev = ring.revolution_frequency(gamma)
    k_t = ion.charge_state * slope / ion.rest_energy_ev  # dΔγ/dn per second of Δt
    a = ring.circumference * eta / (beta**3 * 299_792_458.0 * gamma)
    return math.sqrt(-a * k_t) * f_rev / TWO_PI


def synchrotron_frequency_vs_amplitude(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: DualHarmonicRF,
    gamma: float,
    amplitudes,
    f_rev: float | None = None,
    max_turns: int = 60000,
) -> np.ndarray:
    """Synchrotron frequency as a function of oscillation amplitude.

    Tracks one particle per requested Δt amplitude through the actual
    (nonlinear, dual-harmonic) map and measures its oscillation period
    from the zero crossings of Δt.  The spread of this curve across the
    bunch is the Landau-damping reservoir that the bunch-lengthening
    mode is used to enlarge.
    """
    from repro.physics.tracking import MacroParticleTracker

    if f_rev is None:
        f_rev = ring.revolution_frequency(gamma)
    amplitudes = np.atleast_1d(np.asarray(amplitudes, dtype=float))
    if np.any(amplitudes <= 0.0):
        raise PhysicsError("amplitudes must be positive")
    out = np.empty(amplitudes.shape)
    tracker = MacroParticleTracker(ring, ion, rf)  # duck-typed RF system
    for i, amp in enumerate(amplitudes):
        state = tracker.initial_state(f_rev, delta_t=float(amp))
        crossings = []
        prev = state.delta_t
        for turn in range(max_turns):
            tracker.step(state, f_rev)
            if prev < 0.0 <= state.delta_t:
                crossings.append(turn)
                if len(crossings) >= 4:
                    break
            prev = state.delta_t
        if len(crossings) < 2:
            out[i] = float("nan")
        else:
            periods = np.diff(crossings)
            out[i] = f_rev / float(periods.mean())
    return out
