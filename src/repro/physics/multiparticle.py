"""Vectorised multi-macro-particle longitudinal tracker.

The paper's simulator deliberately collapses the bunch to a single macro
particle; Section V notes that reproducing Landau damping and
filamentation "would require the simulation of tens of thousands of
individual particles", and Section VI lists a multi-macro-particle model
as future work.  This module implements that model as a NumPy-vectorised
tracker.  It serves three purposes here:

1. the "real machine" stand-in for Fig. 5b (via
   :mod:`repro.baselines.offline_tracker`),
2. the paper's future-work extension (quadrupole mode, adaptive bunch
   profile),
3. a ground-truth cross-check for the single-particle map (the bunch
   centroid of a cold beam must follow the macro-particle trajectory).

All particles share the reference particle of
:mod:`repro.physics.tracking`; states are arrays ``delta_t[N]`` and
``delta_gamma[N]`` advanced by the same Eqs. 3 and 6 in vector form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import PhysicsError
from repro.physics.ion import IonSpecies
from repro.physics.relativity import beta_from_gamma
from repro.physics.rf import RFSystem
from repro.physics.ring import SynchrotronRing
from repro.physics.tracking import reference_gamma_update

__all__ = ["MultiParticleTracker", "BunchMoments", "MultiTrackRecord"]


@dataclass
class BunchMoments:
    """First and second moments of the bunch at one revolution."""

    mean_delta_t: float
    std_delta_t: float
    mean_delta_gamma: float
    std_delta_gamma: float

    def dipole_phase_deg(self, harmonic: int, f_rev: float) -> float:
        """Coherent dipole offset expressed as RF phase in degrees."""
        return 360.0 * harmonic * f_rev * self.mean_delta_t


@dataclass
class MultiTrackRecord:
    """Per-turn moment traces recorded by :meth:`MultiParticleTracker.track`."""

    turns: np.ndarray
    time: np.ndarray
    mean_delta_t: np.ndarray
    std_delta_t: np.ndarray
    mean_delta_gamma: np.ndarray
    std_delta_gamma: np.ndarray

    def dipole_phase_deg(self, harmonic: int, f_rev) -> np.ndarray:
        """Coherent dipole trace as RF phase in degrees."""
        return 360.0 * harmonic * np.asarray(f_rev, dtype=float) * self.mean_delta_t

    def quadrupole_trace(self) -> np.ndarray:
        """Bunch-length trace (σ_Δt) whose oscillation is the quadrupole mode."""
        return self.std_delta_t


class MultiParticleTracker:
    """Track N macro particles through the longitudinal map.

    Parameters
    ----------
    ring, ion, rf:
        Machine, species and RF parameters (same objects as the
        single-particle tracker).
    delta_t, delta_gamma:
        Initial phase-space coordinates, 1-D arrays of equal length.
    gap_voltage:
        Optional callable ``(delta_t_array, f_rev, turn) -> volts_array``
        overriding the analytic RF voltage — used to drive the ensemble
        with the same (possibly phase-jumped, quantised) gap signal the
        HIL bench produces.
    """

    def __init__(
        self,
        ring: SynchrotronRing,
        ion: IonSpecies,
        rf: RFSystem,
        delta_t: np.ndarray,
        delta_gamma: np.ndarray,
        gamma_ref: float,
        gap_voltage: Callable[[np.ndarray, float, int], np.ndarray] | None = None,
    ) -> None:
        delta_t = np.ascontiguousarray(delta_t, dtype=float)
        delta_gamma = np.ascontiguousarray(delta_gamma, dtype=float)
        if delta_t.ndim != 1 or delta_gamma.ndim != 1:
            raise PhysicsError("delta_t and delta_gamma must be 1-D arrays")
        if delta_t.shape != delta_gamma.shape:
            raise PhysicsError(
                f"shape mismatch: delta_t {delta_t.shape} vs delta_gamma {delta_gamma.shape}"
            )
        if delta_t.size == 0:
            raise PhysicsError("need at least one macro particle")
        if gamma_ref < 1.0:
            raise PhysicsError(f"gamma_ref must be >= 1, got {gamma_ref}")
        self.ring = ring
        self.ion = ion
        self.rf = rf
        self.delta_t = delta_t
        self.delta_gamma = delta_gamma
        self.gamma_ref = float(gamma_ref)
        self.turn = 0
        self._gap_voltage = gap_voltage
        # Scratch buffers reused every turn to avoid per-turn allocation
        # (the guides' "in-place operations / be easy on the memory" rule).
        self._scratch = np.empty_like(delta_t)
        self._scratch2 = np.empty_like(delta_t)
        #: Collective-effect hooks: objects with
        #: ``voltages(delta_t, f_rev, turn) -> volts_array`` applied as
        #: additional per-particle kicks each turn (space charge, beam
        #: loading — see :mod:`repro.physics.collective`).
        self._collective: list = []

    def add_collective_effect(self, effect) -> None:
        """Register a collective-effect kick (applied in add order)."""
        if not hasattr(effect, "voltages"):
            raise PhysicsError("collective effect needs a voltages() method")
        self._collective.append(effect)

    @property
    def n_particles(self) -> int:
        """Number of macro particles in the ensemble."""
        return self.delta_t.size

    def moments(self) -> BunchMoments:
        """Current bunch moments."""
        return BunchMoments(
            mean_delta_t=float(self.delta_t.mean()),
            std_delta_t=float(self.delta_t.std()),
            mean_delta_gamma=float(self.delta_gamma.mean()),
            std_delta_gamma=float(self.delta_gamma.std()),
        )

    def rms_emittance(self) -> float:
        """Statistical RMS emittance √(⟨Δt²⟩⟨Δγ²⟩ − ⟨ΔtΔγ⟩²) (s·Δγ units).

        Conserved by the symplectic single-particle motion for a matched
        bunch; *grows* when a mismatched or displaced distribution
        filaments — the standard beam-quality figure of merit, and the
        quantity the paper's "beam quality should be preserved" is
        ultimately about.
        """
        dt = self.delta_t - self.delta_t.mean()
        dg = self.delta_gamma - self.delta_gamma.mean()
        var_t = float(np.mean(dt * dt))
        var_g = float(np.mean(dg * dg))
        cov = float(np.mean(dt * dg))
        return math.sqrt(max(var_t * var_g - cov * cov, 0.0))

    def profile(self, bins: int = 64, span: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Longitudinal bunch profile (histogram of Δt).

        Returns ``(bin_centres, counts)``.  ``span`` is the half-width of
        the histogram window in seconds; defaults to 4σ around the mean.
        """
        m = self.delta_t.mean()
        if span is None:
            span = 4.0 * max(self.delta_t.std(), 1e-12)
        counts, edges = np.histogram(self.delta_t, bins=bins, range=(m - span, m + span))
        centres = 0.5 * (edges[:-1] + edges[1:])
        return centres, counts.astype(float)

    def step(self, f_rev: float | None = None) -> None:
        """Advance the whole ensemble by one revolution.

        Vector form of Eqs. 2, 3 and 6; the reference-particle update and
        the η/β coefficients are scalars shared by all particles, so one
        turn costs two fused array operations plus the voltage evaluation.
        """
        if f_rev is None:
            f_rev = self.ring.revolution_frequency(self.gamma_ref)
        if self._gap_voltage is not None:
            v_async = self._gap_voltage(self.delta_t, f_rev, self.turn)
        else:
            v_async = self.rf.gap_voltage_at(self.delta_t, f_rev)
        if self._collective:
            v_async = np.asarray(v_async, dtype=float).copy()
            for effect in self._collective:
                v_async += effect.voltages(self.delta_t, f_rev, self.turn)
        # The reference particle sees only the synchronous-phase voltage
        # (it is pinned to the undisturbed reference signal; phase jumps
        # and control corrections act on the bunches, not on it).
        v_ref = self.rf.voltage * math.sin(self.rf.synchronous_phase)

        self.gamma_ref = reference_gamma_update(self.gamma_ref, v_ref, self.ion)

        gain = self.ion.gamma_gain_per_volt()
        # Eq. 3 vectorised, in place:
        np.subtract(v_async, v_ref, out=self._scratch)
        self._scratch *= gain
        self.delta_gamma += self._scratch

        # Eq. 6 vectorised.  β of each particle differs; compute it from
        # γ = γ_R + Δγ (all particles stay far from γ=1 in valid runs).
        # The γ chain runs entirely in the second scratch buffer —
        # elementwise identical to the allocating expressions.
        gamma_async = np.add(self.delta_gamma, self.gamma_ref, out=self._scratch2)
        if (gamma_async < 1.0).any():
            raise PhysicsError("a macro particle dropped below gamma=1")
        beta_ref = beta_from_gamma(self.gamma_ref)
        eta = self.ring.phase_slip(self.gamma_ref)
        np.multiply(gamma_async, gamma_async, out=self._scratch)
        np.divide(1.0, self._scratch, out=self._scratch)
        np.subtract(1.0, self._scratch, out=self._scratch)
        np.sqrt(self._scratch, out=self._scratch)  # beta_async
        coeff = self.ring.circumference * eta / (beta_ref * beta_ref * SPEED_OF_LIGHT)
        # delta_t += coeff / beta_async * delta_gamma / gamma_ref
        np.divide(self.delta_gamma, self._scratch, out=self._scratch)
        self._scratch *= coeff / self.gamma_ref
        self.delta_t += self._scratch
        self.turn += 1

    def track(
        self,
        n_turns: int,
        f_rev: float | None = None,
        record_every: int = 1,
    ) -> MultiTrackRecord:
        """Track ``n_turns`` revolutions recording bunch moments.

        The moment traces (not per-particle trajectories) are recorded to
        keep memory bounded for 10⁴–10⁵ particle runs.
        """
        if n_turns < 0:
            raise PhysicsError("n_turns must be non-negative")
        if record_every < 1:
            raise PhysicsError("record_every must be >= 1")
        n_rec = n_turns // record_every + 1
        turns = np.empty(n_rec, dtype=np.int64)
        time = np.empty(n_rec, dtype=float)
        m_dt = np.empty(n_rec, dtype=float)
        s_dt = np.empty(n_rec, dtype=float)
        m_dg = np.empty(n_rec, dtype=float)
        s_dg = np.empty(n_rec, dtype=float)

        elapsed = 0.0
        idx = 0

        def record() -> None:
            nonlocal idx
            turns[idx] = self.turn
            time[idx] = elapsed
            m_dt[idx] = self.delta_t.mean()
            s_dt[idx] = self.delta_t.std()
            m_dg[idx] = self.delta_gamma.mean()
            s_dg[idx] = self.delta_gamma.std()
            idx += 1

        record()
        for i in range(n_turns):
            current_f = f_rev if f_rev is not None else self.ring.revolution_frequency(self.gamma_ref)
            self.step(current_f)
            elapsed += 1.0 / current_f
            if (i + 1) % record_every == 0:
                record()
        return MultiTrackRecord(
            turns=turns[:idx],
            time=time[:idx],
            mean_delta_t=m_dt[:idx],
            std_delta_t=s_dt[:idx],
            mean_delta_gamma=m_dg[:idx],
            std_delta_gamma=s_dg[:idx],
        )
