"""RF system: gap voltage, synchronous phase, bucket stability and the
small-amplitude synchrotron frequency.

The cavity applies a sinusoidal voltage across the ceramic gap.  In the
stationary case the bunch centre sits in the positive-slope zero crossing
(paper Section I): a particle arriving *late* (Δt > 0) sees a higher
voltage and is accelerated relative to the reference particle, an early
particle is decelerated — Fig. 1 of the paper.

The small-amplitude synchrotron frequency used to calibrate the
experiment (the paper adjusts the input amplitude until f_s ≈ 1.28 kHz)
follows from linearising the tracking map (Eqs. 2, 3, 6):

.. math::

    f_s = f_R \\sqrt{\\frac{-\\,h\\,\\eta\\,\\cos\\varphi_s\\; Q \\hat V}
                          {2\\pi\\,\\beta^2\\,\\gamma\\,m c^2}}

with the argument positive below transition (η < 0, cos φ_s > 0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.constants import SPEED_OF_LIGHT, TWO_PI
from repro.errors import ConfigurationError, PhysicsError
from repro.physics.ion import IonSpecies
from repro.physics.relativity import beta_from_gamma
from repro.physics.ring import SynchrotronRing

__all__ = [
    "RFSystem",
    "synchrotron_frequency",
    "voltage_for_synchrotron_frequency",
    "bucket_is_stable",
]


@dataclass(frozen=True)
class RFSystem:
    """One RF cavity system of a synchrotron.

    Parameters
    ----------
    harmonic:
        Harmonic number h; the RF frequency is f_RF = h · f_R and h bunches
        can circulate simultaneously (paper Section I).
    voltage:
        Peak gap voltage V̂ in volts (several kV at GSI).
    phase_offset:
        Additional phase of the gap voltage in radians, relative to the
        reference signal's positive zero crossing.  The beam-phase control
        loop actuates exactly this quantity.
    synchronous_phase:
        Synchronous phase φ_s in radians. 0 for the stationary case.
    """

    harmonic: int
    voltage: float
    phase_offset: float = 0.0
    synchronous_phase: float = 0.0

    def __post_init__(self) -> None:
        if self.harmonic < 1:
            raise ConfigurationError(f"harmonic must be >= 1, got {self.harmonic}")
        if self.voltage < 0.0:
            raise ConfigurationError(f"voltage must be non-negative, got {self.voltage}")

    def rf_frequency(self, f_rev: float) -> float:
        """RF frequency f_RF = h · f_R."""
        return self.harmonic * f_rev

    def gap_voltage_at(self, delta_t, f_rev: float):
        """Gap voltage seen by a particle arriving ``delta_t`` after the
        reference particle's zero crossing (stationary convention).

        V(Δt) = V̂ · sin(2π h f_R Δt + φ_offset + φ_s).  Accepts scalar or
        array ``delta_t``.
        """
        omega_rf = TWO_PI * self.harmonic * f_rev
        phase = omega_rf * np.asarray(delta_t, dtype=float) + self.phase_offset + self.synchronous_phase
        v = self.voltage * np.sin(phase)
        return float(v) if np.isscalar(delta_t) else v

    def with_phase_offset(self, phase_offset: float) -> "RFSystem":
        """Return a copy with a new phase offset (control-loop actuation)."""
        return replace(self, phase_offset=phase_offset)

    def with_voltage(self, voltage: float) -> "RFSystem":
        """Return a copy with a new peak voltage (amplitude ramp)."""
        return replace(self, voltage=voltage)


def bucket_is_stable(eta: float, synchronous_phase: float) -> bool:
    """Longitudinal stability criterion η · cos φ_s < 0.

    Below transition (η < 0) the rising-slope zero crossing (cos φ_s > 0)
    is stable; above transition the falling slope is.
    """
    return eta * math.cos(synchronous_phase) < 0.0


def synchrotron_frequency(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    gamma: float,
) -> float:
    """Small-amplitude synchrotron frequency f_s in Hz.

    Derived from the linearised per-turn map: with
    ``k = Q·V̂·ω_RF·cosφ_s / (m c²)`` (change of Δγ per second of Δt) and
    ``a = l_R·η / (β³ c γ)`` (change of Δt per unit Δγ per turn, Eq. 6),
    the discrete map approximates a harmonic oscillator with per-turn
    angular frequency √(−a·k) when a·k < 0.

    Raises :class:`~repro.errors.PhysicsError` when the bucket is unstable
    at the given parameters.
    """
    beta = beta_from_gamma(gamma)
    eta = ring.phase_slip(gamma)
    if not bucket_is_stable(eta, rf.synchronous_phase):
        raise PhysicsError(
            f"unstable bucket: eta={eta:.4g}, phi_s={rf.synchronous_phase:.4g}"
        )
    f_rev = ring.revolution_frequency(gamma)
    omega_rf = TWO_PI * rf.harmonic * f_rev
    # Δγ gain per second of arrival-time error:
    k = ion.charge_state * rf.voltage * omega_rf * math.cos(rf.synchronous_phase) / ion.rest_energy_ev
    # Δt change per turn per unit Δγ (Eq. 6 coefficient):
    a = ring.circumference * eta / (beta**3 * SPEED_OF_LIGHT * gamma)
    # Per-turn phase advance of the linearised oscillator (a·k is
    # dimensionless: a is seconds/turn per unit Δγ, k is Δγ per second):
    omega_turn = math.sqrt(-a * k)
    return omega_turn * f_rev / TWO_PI


def voltage_for_synchrotron_frequency(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    gamma: float,
    f_s_target: float,
) -> float:
    """Peak gap voltage that yields a desired synchrotron frequency.

    The paper's evaluation states "the input voltage amplitude was
    adjusted to achieve a similar synchrotron frequency of 1.28 kHz" —
    this function performs that adjustment analytically (f_s ∝ √V̂).
    """
    if f_s_target <= 0.0:
        raise PhysicsError("target synchrotron frequency must be positive")
    probe = rf.with_voltage(1.0)
    f_s_unit = synchrotron_frequency(ring, ion, probe, gamma)
    return (f_s_target / f_s_unit) ** 2
