"""Initial bunch distributions for the multi-particle tracker.

The paper observes Gaussian pickup pulses ("Observing such a bunch leads
to a pickup signal pulse which is often Gaussian but can have different
distributions as well", Section I), so the default ensemble is a
bi-Gaussian matched to the small-amplitude bucket.  A parabolic
(elliptic) distribution is provided as the common alternative.

Matching: for small amplitudes the (Δt, Δγ) motion is a harmonic
oscillator whose amplitude ratio is fixed by the per-turn map
coefficients (see :func:`matched_rms_delta_gamma`).  A distribution with
σ_Δγ = ratio · σ_Δt fills phase-space ellipses uniformly in phase and is
stationary — its moments do not oscillate, which the property tests
verify.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import SPEED_OF_LIGHT, TWO_PI
from repro.errors import PhysicsError
from repro.physics.ion import IonSpecies
from repro.physics.rf import RFSystem, bucket_is_stable
from repro.physics.relativity import beta_from_gamma
from repro.physics.ring import SynchrotronRing

__all__ = [
    "matched_rms_delta_gamma",
    "gaussian_bunch",
    "parabolic_bunch",
]


def matched_rms_delta_gamma(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    gamma: float,
    sigma_delta_t: float,
) -> float:
    """σ_Δγ that matches a given σ_Δt for small-amplitude motion.

    From the linearised map ``dΔγ/dn = k_t Δt`` and ``dΔt/dn = a Δγ`` the
    matched ellipse satisfies ``Δγ_max / Δt_max = sqrt(-k_t / a)``.
    """
    if sigma_delta_t < 0.0:
        raise PhysicsError("sigma_delta_t must be non-negative")
    beta = beta_from_gamma(gamma)
    eta = ring.phase_slip(gamma)
    if not bucket_is_stable(eta, rf.synchronous_phase):
        raise PhysicsError("cannot match a bunch in an unstable bucket")
    f_rev = ring.revolution_frequency(gamma)
    omega_rf = TWO_PI * rf.harmonic * f_rev
    k_t = ion.charge_state * rf.voltage * omega_rf * math.cos(rf.synchronous_phase) / ion.rest_energy_ev
    a = ring.circumference * eta / (beta**3 * SPEED_OF_LIGHT * gamma)
    return math.sqrt(-k_t / a) * sigma_delta_t


def gaussian_bunch(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    gamma: float,
    sigma_delta_t: float,
    n_particles: int,
    rng: np.random.Generator | None = None,
    centre_delta_t: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Matched bi-Gaussian bunch: returns ``(delta_t, delta_gamma)`` arrays.

    ``sigma_delta_t`` is the RMS bunch length in seconds;
    ``centre_delta_t`` shifts the whole bunch (a coherent dipole offset).
    """
    if n_particles <= 0:
        raise PhysicsError("n_particles must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    sigma_dg = matched_rms_delta_gamma(ring, ion, rf, gamma, sigma_delta_t)
    delta_t = rng.normal(centre_delta_t, sigma_delta_t, n_particles)
    delta_gamma = rng.normal(0.0, sigma_dg, n_particles)
    return delta_t, delta_gamma


def parabolic_bunch(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    gamma: float,
    half_length_delta_t: float,
    n_particles: int,
    rng: np.random.Generator | None = None,
    centre_delta_t: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Matched parabolic (elliptic in 2-D) bunch.

    Particles fill the matched ellipse of half-axis ``half_length_delta_t``
    with density ∝ sqrt(1 − r²), whose line-density projection is the
    parabolic profile common in longitudinal dynamics.
    """
    if n_particles <= 0:
        raise PhysicsError("n_particles must be positive")
    if half_length_delta_t <= 0.0:
        raise PhysicsError("half_length_delta_t must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    ratio = matched_rms_delta_gamma(ring, ion, rf, gamma, 1.0)
    # Sample radius with density f(r) ∝ r·sqrt(1-r²) on [0,1] (2-D measure):
    # CDF u = 1-(1-r²)^{3/2}  =>  r = sqrt(1-(1-u)^{2/3}).
    u = rng.random(n_particles)
    r = np.sqrt(1.0 - np.power(1.0 - u, 2.0 / 3.0))
    phi = rng.uniform(0.0, TWO_PI, n_particles)
    delta_t = centre_delta_t + half_length_delta_t * r * np.cos(phi)
    delta_gamma = ratio * half_length_delta_t * r * np.sin(phi)
    return delta_t, delta_gamma
