"""Synchrotron ring parameters and the momentum-compaction relations.

Implements paper Eqs. 4 and 5: the momentum compaction factor α_c relates
a momentum deviation to an orbit-length deviation, and the phase-slip
factor

.. math::

    \\eta_{R,n} = \\alpha_c - \\frac{1}{\\gamma_{R,n}^2}

relates it to the revolution-time deviation.  Below transition energy
(γ < γ_t = 1/√α_c) the phase-slip factor is negative: a higher-energy
particle arrives *earlier*, which is what makes the stationary bucket at
the rising zero crossing stable (paper Fig. 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError, PhysicsError
from repro.physics.relativity import beta_from_gamma

__all__ = ["SynchrotronRing", "SIS18"]


@dataclass(frozen=True)
class SynchrotronRing:
    """Static lattice parameters of a synchrotron.

    Parameters
    ----------
    name:
        Label for reports.
    circumference:
        Reference-orbit length l_R in metres (constant for the reference
        particle, paper Section IV-A).
    alpha_c:
        Momentum compaction factor α_c.  Positive "as in most cases"
        (paper, after Eq. 3); for SIS18 α_c = 1/γ_t² with γ_t ≈ 5.45.
    """

    name: str
    circumference: float
    alpha_c: float

    def __post_init__(self) -> None:
        if self.circumference <= 0.0:
            raise ConfigurationError("circumference must be positive")
        if self.alpha_c <= 0.0:
            raise ConfigurationError(
                "alpha_c must be positive for this model (paper assumes "
                f"a positive momentum compaction), got {self.alpha_c}"
            )

    @property
    def gamma_transition(self) -> float:
        """Transition energy γ_t = 1/√α_c."""
        return 1.0 / math.sqrt(self.alpha_c)

    def phase_slip(self, gamma):
        """Phase-slip factor η(γ) = α_c − 1/γ² (paper Eq. 5).

        Accepts scalars or arrays; negative below transition.
        """
        g = np.asarray(gamma, dtype=float)
        if np.any(g < 1.0):
            raise PhysicsError(f"gamma must be >= 1, got {gamma!r}")
        eta = self.alpha_c - 1.0 / (g * g)
        return float(eta) if np.isscalar(gamma) else eta

    def revolution_time(self, gamma) -> float:
        """Revolution time T_R = l_R / (β c) of a particle with factor γ."""
        beta = beta_from_gamma(gamma)
        return self.circumference / (beta * SPEED_OF_LIGHT)

    def revolution_frequency(self, gamma) -> float:
        """Revolution frequency f_R = β c / l_R."""
        beta = beta_from_gamma(gamma)
        return beta * SPEED_OF_LIGHT / self.circumference

    def beta_from_revolution_frequency(self, f_rev: float) -> float:
        """Invert f_R = β c / l_R; used by the simulator's initialisation.

        The paper's CGRA program measures the reference period with the
        period-length detector and derives β_R,0 and γ_R,0 from it
        (Section IV-B); this is the same computation.
        """
        if f_rev <= 0.0:
            raise PhysicsError("revolution frequency must be positive")
        beta = f_rev * self.circumference / SPEED_OF_LIGHT
        if beta >= 1.0:
            raise PhysicsError(
                f"revolution frequency {f_rev} Hz implies beta={beta:.4f} >= 1 "
                f"for circumference {self.circumference} m"
            )
        return beta

    def gamma_from_revolution_frequency(self, f_rev: float) -> float:
        """γ of a particle circulating at revolution frequency ``f_rev``."""
        beta = self.beta_from_revolution_frequency(f_rev)
        return 1.0 / math.sqrt(1.0 - beta * beta)

    def max_revolution_frequency(self) -> float:
        """Ultrarelativistic limit c / l_R (β → 1).

        For SIS18 this is ≈ 1.38 MHz, matching the paper's statement that
        bunches circulate "with a maximum revolution frequency of
        f_R ≈ 1.4 MHz".
        """
        return SPEED_OF_LIGHT / self.circumference


#: The GSI heavy-ion synchrotron SIS18 (Darmstadt): 216.72 m circumference,
#: transition gamma ≈ 5.45.
SIS18 = SynchrotronRing(name="SIS18", circumference=216.72, alpha_c=1.0 / 5.45**2)
