"""Collective effects: longitudinal space charge and beam loading.

The paper positions offline trackers (ESME, Long1D, BLonD) as including
"many important beam dynamics effects that often have to be taken into
account in realistic accelerator scenarios, such as beam loading or
space-charge effects".  To make this repository's offline baseline a
genuine member of that class, this module implements both as per-turn
voltage kicks that plug into :class:`~repro.physics.multiparticle.
MultiParticleTracker` via its collective-effect hook.

**Longitudinal space charge** (below transition): the beam's own field
produces a voltage proportional to the *slope* of the line density,

.. math::

    V_{sc}(\\tau) = -\\,\\frac{g_0 Z_0 N q}{2\\beta\\gamma^2}\\;
                    \\frac{\\partial\\lambda(\\tau)}{\\partial\\tau}
                    \\cdot C_{norm},

which on a Gaussian bunch is *defocusing* below transition: it reduces
the restoring slope, lowering the synchrotron frequency and lengthening
the bunch.  The prefactor is collapsed into one effective strength
parameter (volts per unit of normalised density slope) because the
geometry factor g₀ depends on unpublished chamber dimensions.

**Beam loading**: each bunch passage deposits charge into the cavity,
which rings at (approximately) the RF frequency with loaded quality
factor Q_L.  The induced voltage is tracked turn-by-turn as a rotating
phasor with exponential decay — the standard single-mode cavity model:

.. math::

    \\tilde V_{n+1} = \\tilde V_n\\, e^{(i\\,2\\pi\\,\\delta f - \\,
    \\pi f_r / Q_L)\\,T_R} \\; - \\; k\\,I_n,

and every particle receives the real part of the phasor evaluated at
its arrival time.  Without compensation, beam loading shifts the
equilibrium phase and, at high intensity, distorts the bucket.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import TWO_PI
from repro.errors import ConfigurationError

__all__ = ["SpaceChargeModel", "BeamLoadingCavity"]


class SpaceChargeModel:
    """Line-density-slope space-charge kick.

    Parameters
    ----------
    strength_volts:
        Peak space-charge voltage (volts) induced by a *reference*
        Gaussian bunch of ``reference_sigma`` length; the kick scales
        with the actual instantaneous density slope, so it grows as the
        bunch shortens.
    reference_sigma:
        Bunch length at which ``strength_volts`` is calibrated.
    bins:
        Histogram bins for the line-density estimate.
    smoothing:
        Width (bins) of the moving-average applied to the density before
        differentiation — the derivative of a raw histogram is noisy.
    """

    def __init__(
        self,
        strength_volts: float,
        reference_sigma: float = 15e-9,
        bins: int = 64,
        smoothing: int = 5,
    ) -> None:
        if strength_volts < 0.0:
            raise ConfigurationError("strength_volts must be non-negative")
        if reference_sigma <= 0.0:
            raise ConfigurationError("reference_sigma must be positive")
        if bins < 8:
            raise ConfigurationError("need at least 8 bins")
        if smoothing < 1:
            raise ConfigurationError("smoothing must be >= 1")
        self.strength_volts = float(strength_volts)
        self.reference_sigma = float(reference_sigma)
        self.bins = int(bins)
        self.smoothing = int(smoothing)

    def voltages(self, delta_t: np.ndarray, f_rev: float, turn: int) -> np.ndarray:
        """Per-particle space-charge voltage for this turn."""
        if self.strength_volts == 0.0 or delta_t.size < 8:
            return np.zeros_like(delta_t)
        centre = delta_t.mean()
        sigma = max(float(delta_t.std()), 1e-12)
        span = 4.0 * sigma
        counts, edges = np.histogram(
            delta_t, bins=self.bins, range=(centre - span, centre + span)
        )
        bin_width = edges[1] - edges[0]
        # Normalised line density λ(τ) with ∫λ dτ = 1 (units 1/s).
        density = counts.astype(float) / (delta_t.size * bin_width)
        if self.smoothing > 1:
            kernel = np.ones(self.smoothing) / self.smoothing
            density = np.convolve(density, kernel, mode="same")
        dt_bin = edges[1] - edges[0]
        slope = np.gradient(density, dt_bin)
        # Normalisation: a reference Gaussian's peak |dλ/dτ| is
        # 1/(σ_ref²·√(2πe)); the kick is strength · slope / that peak.
        ref_peak_slope = 1.0 / (
            self.reference_sigma**2 * math.sqrt(TWO_PI * math.e)
        )
        centres = 0.5 * (edges[:-1] + edges[1:])
        # Sign: the space-charge field pushes particles away from the
        # density peak — a particle *ahead* of the peak (τ < 0, where
        # ∂λ/∂τ > 0) gains energy.  Below transition that is defocusing:
        # the bunch lengthens and the synchrotron frequency drops.
        v = self.strength_volts * slope / ref_peak_slope
        return np.interp(delta_t, centres, v, left=0.0, right=0.0)


class BeamLoadingCavity:
    """Single-mode cavity wake: turn-by-turn induced-voltage phasor.

    Parameters
    ----------
    kick_volts_per_passage:
        Voltage a single bunch passage leaves in the cavity (∝ N·q·(R/Q)·ω/2).
    quality_factor:
        Loaded Q_L of the cavity mode.
    detuning_hz:
        Resonant-frequency offset from the RF frequency (cavity tuning).
    harmonic:
        RF harmonic number h.
    """

    def __init__(
        self,
        kick_volts_per_passage: float,
        quality_factor: float = 40.0,
        detuning_hz: float = 0.0,
        harmonic: int = 4,
    ) -> None:
        if kick_volts_per_passage < 0.0:
            raise ConfigurationError("kick must be non-negative")
        if quality_factor <= 0.0:
            raise ConfigurationError("quality_factor must be positive")
        if harmonic < 1:
            raise ConfigurationError("harmonic must be >= 1")
        self.kick = float(kick_volts_per_passage)
        self.quality_factor = float(quality_factor)
        self.detuning_hz = float(detuning_hz)
        self.harmonic = int(harmonic)
        #: Complex induced-voltage phasor in the frame rotating at f_RF.
        self.phasor: complex = 0.0 + 0.0j

    def reset(self) -> None:
        """Clear the stored cavity field."""
        self.phasor = 0.0 + 0.0j

    def induced_voltage_amplitude(self) -> float:
        """Current magnitude of the induced voltage (volts)."""
        return abs(self.phasor)

    def voltages(self, delta_t: np.ndarray, f_rev: float, turn: int) -> np.ndarray:
        """Per-particle induced voltage, then deposit this turn's wake.

        Order matters: particles first see the field left by *previous*
        turns (causality), then the bunch's own passage adds to the
        phasor.  The intra-turn self-wake is neglected — standard for
        revolution-period ≫ fill-time/h studies.
        """
        f_rf = self.harmonic * f_rev
        t_rev = 1.0 / f_rev
        # Decay + rotation accumulated over one revolution.
        decay = math.exp(-math.pi * f_rf * t_rev / self.quality_factor)
        rotation = complex(
            math.cos(TWO_PI * self.detuning_hz * t_rev),
            math.sin(TWO_PI * self.detuning_hz * t_rev),
        )
        if turn > 0:
            self.phasor *= decay * rotation
        omega_rf = TWO_PI * f_rf
        volts = np.real(self.phasor * np.exp(1j * omega_rf * delta_t))
        # Bunch passage deposits a decelerating wake at the bunch phase.
        centre = float(delta_t.mean()) if delta_t.size else 0.0
        self.phasor -= self.kick * complex(
            math.cos(omega_rf * centre), -math.sin(omega_rf * centre)
        )
        return volts
