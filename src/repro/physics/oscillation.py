"""Oscillation analysis of recorded traces.

The paper's evaluation characterises the longitudinal dipole oscillation
by (i) its frequency — the synchrotron frequency, 1.2 kHz in the MDE and
1.28 kHz in the simulator run — and (ii) how quickly the closed-loop
control damps it.  This module estimates both quantities from sampled
traces, and extracts dipole / quadrupole mode traces from multi-particle
records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PhysicsError

__all__ = [
    "estimate_oscillation_frequency",
    "fit_damping_envelope",
    "DampingFit",
    "dipole_moment_trace",
    "quadrupole_moment_trace",
    "peak_to_peak",
]


def estimate_oscillation_frequency(
    time: np.ndarray,
    trace: np.ndarray,
    detrend: bool = True,
) -> float:
    """Dominant oscillation frequency of a uniformly sampled trace, in Hz.

    Uses the FFT magnitude peak with three-point parabolic interpolation,
    which resolves frequencies well below the bin spacing — needed because
    a 50 ms inter-jump window contains only ~64 synchrotron periods.

    Raises :class:`~repro.errors.PhysicsError` for traces shorter than
    four samples or with non-uniform sampling.
    """
    time = np.asarray(time, dtype=float)
    trace = np.asarray(trace, dtype=float)
    if time.shape != trace.shape or time.ndim != 1:
        raise PhysicsError("time and trace must be equal-length 1-D arrays")
    if time.size < 4:
        raise PhysicsError("need at least 4 samples to estimate a frequency")
    dts = np.diff(time)
    dt = float(dts.mean())
    if dt <= 0.0 or np.any(np.abs(dts - dt) > 1e-6 * dt + 1e-15):
        raise PhysicsError("trace must be uniformly sampled in time")
    y = trace - trace.mean() if detrend else trace
    window = np.hanning(y.size)
    spec = np.abs(np.fft.rfft(y * window))
    if spec.size < 3:
        raise PhysicsError("trace too short for spectral estimation")
    spec[0] = 0.0
    k = int(np.argmax(spec))
    if k == 0 or k == spec.size - 1:
        return float(k / (dt * y.size))
    # Parabolic interpolation on log magnitude around the peak bin.
    with np.errstate(divide="ignore"):
        s = np.log(spec[k - 1 : k + 2] + 1e-300)
    denom = s[0] - 2.0 * s[1] + s[2]
    delta = 0.0 if denom == 0.0 else 0.5 * (s[0] - s[2]) / denom
    delta = float(np.clip(delta, -0.5, 0.5))
    return float((k + delta) / (dt * y.size))


@dataclass
class DampingFit:
    """Result of :func:`fit_damping_envelope`.

    ``rate`` is the exponential decay rate λ (1/s) of the oscillation
    envelope A(t) = A₀·exp(−λ t); ``time_constant`` is 1/λ; ``r_squared``
    is the goodness of the log-linear fit on the extracted peaks.
    """

    amplitude0: float
    rate: float
    r_squared: float

    @property
    def time_constant(self) -> float:
        """Envelope 1/e time in seconds (inf for undamped traces)."""
        return float("inf") if self.rate <= 0.0 else 1.0 / self.rate


def fit_damping_envelope(
    time: np.ndarray, trace: np.ndarray, peak_floor: float = 1e-3
) -> DampingFit:
    """Fit an exponential envelope to an oscillating, decaying trace.

    The trace is centred on its *median* (a decayed trace spends most of
    its time at the settled level, so the median is the baseline even
    with the constant dead-time offsets the paper notes in Fig. 5), its
    local |extrema| extracted, and a straight line fitted to log|peak|
    vs. time.  Peaks below ``peak_floor`` × the largest peak are
    discarded — they are baseline noise, not oscillation extrema.
    """
    time = np.asarray(time, dtype=float)
    trace = np.asarray(trace, dtype=float)
    if time.shape != trace.shape or time.ndim != 1:
        raise PhysicsError("time and trace must be equal-length 1-D arrays")
    y = trace - np.median(trace)
    # Local extrema: sign change of the discrete derivative.
    dy = np.diff(y)
    idx = np.nonzero(dy[:-1] * dy[1:] < 0.0)[0] + 1
    if idx.size:
        idx = idx[np.abs(y[idx]) > peak_floor * np.abs(y[idx]).max() + 1e-300]
    if idx.size < 3:
        raise PhysicsError("trace has too few oscillation peaks to fit an envelope")
    t_pk = time[idx]
    a_pk = np.abs(y[idx])
    logs = np.log(a_pk)
    coeffs, residuals, *_ = np.polyfit(t_pk, logs, 1, full=True)
    slope, intercept = float(coeffs[0]), float(coeffs[1])
    ss_tot = float(np.sum((logs - logs.mean()) ** 2))
    ss_res = float(residuals[0]) if residuals.size else 0.0
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return DampingFit(amplitude0=float(np.exp(intercept)), rate=-slope, r_squared=r2)


def peak_to_peak(trace: np.ndarray) -> float:
    """Peak-to-peak amplitude of a trace.

    Used for the paper's check that "the peak-to-peak phase amplitude of
    this oscillation is twice the amplitude of the phase jump".
    """
    trace = np.asarray(trace, dtype=float)
    if trace.size == 0:
        raise PhysicsError("empty trace")
    return float(trace.max() - trace.min())


def dipole_moment_trace(record) -> np.ndarray:
    """Coherent dipole trace ⟨Δt⟩(n) from a multi-particle record."""
    return np.asarray(record.mean_delta_t, dtype=float)


def quadrupole_moment_trace(record) -> np.ndarray:
    """Quadrupole (bunch-length) trace σ_Δt(n) from a multi-particle record."""
    return np.asarray(record.std_delta_t, dtype=float)
