"""Longitudinal beam-dynamics substrate.

Implements the physics of Section IV of the paper: relativistic
kinematics (Eq. 1), the synchrotron ring and phase-slip relations
(Eqs. 4–5), RF bucket theory, and the recursive two-particle tracking map
(Eqs. 2, 3 and 6), plus the multi-macro-particle extension discussed in
the paper's outlook (Section VI).
"""

from repro.physics.relativity import (
    beta_from_gamma,
    gamma_from_beta,
    beta_gamma_product,
    gamma_from_kinetic_energy,
    kinetic_energy_from_gamma,
    momentum_ev_per_c,
    velocity,
)
from repro.physics.ion import IonSpecies, ion_from_string, KNOWN_IONS
from repro.physics.ring import SynchrotronRing, SIS18
from repro.physics.rf import RFSystem, synchrotron_frequency, bucket_is_stable
from repro.physics.tracking import (
    TrackingState,
    MacroParticleTracker,
    reference_gamma_update,
    delta_gamma_update,
    delta_t_update,
)
from repro.physics.multiparticle import MultiParticleTracker, BunchMoments
from repro.physics.distributions import (
    gaussian_bunch,
    parabolic_bunch,
    matched_rms_delta_gamma,
)
from repro.physics.phasespace import (
    hamiltonian,
    separatrix_delta_gamma,
    bucket_half_height,
    bucket_area,
    small_amplitude_trajectory,
)
from repro.physics.oscillation import (
    estimate_oscillation_frequency,
    fit_damping_envelope,
    dipole_moment_trace,
    quadrupole_moment_trace,
)
from repro.physics.dual_harmonic import (
    DualHarmonicRF,
    dual_harmonic_synchrotron_frequency,
    synchrotron_frequency_vs_amplitude,
)
from repro.physics.collective import BeamLoadingCavity, SpaceChargeModel

__all__ = [
    "beta_from_gamma",
    "gamma_from_beta",
    "beta_gamma_product",
    "gamma_from_kinetic_energy",
    "kinetic_energy_from_gamma",
    "momentum_ev_per_c",
    "velocity",
    "IonSpecies",
    "ion_from_string",
    "KNOWN_IONS",
    "SynchrotronRing",
    "SIS18",
    "RFSystem",
    "synchrotron_frequency",
    "bucket_is_stable",
    "TrackingState",
    "MacroParticleTracker",
    "reference_gamma_update",
    "delta_gamma_update",
    "delta_t_update",
    "MultiParticleTracker",
    "BunchMoments",
    "gaussian_bunch",
    "parabolic_bunch",
    "matched_rms_delta_gamma",
    "hamiltonian",
    "separatrix_delta_gamma",
    "bucket_half_height",
    "bucket_area",
    "small_amplitude_trajectory",
    "estimate_oscillation_frequency",
    "fit_damping_envelope",
    "dipole_moment_trace",
    "quadrupole_moment_trace",
    "DualHarmonicRF",
    "dual_harmonic_synchrotron_frequency",
    "synchrotron_frequency_vs_amplitude",
    "BeamLoadingCavity",
    "SpaceChargeModel",
]
