"""The paper's two-particle recursive tracking map (Section IV-A).

The beam model consists of a *reference particle* (index R, a mathematical
construct that stays on the design orbit) and one *asynchronous macro
particle* representing a whole bunch.  Per revolution ``n`` the model
updates

* Eq. 2 — the reference Lorentz factor:
  ``γ_{R,n} = γ_{R,n-1} + (Q/mc²)·V_{R,n-1}``
* Eq. 3 — the Lorentz-factor difference:
  ``Δγ_n = Δγ_{n-1} + (Q/mc²)·ΔV_{n-1}`` with ``ΔV = V_{n-1} − V_{R,n-1}``
* Eq. 6 — the arrival-time difference:
  ``Δt_n = Δt_{n-1} + l_R·η_{R,n}/(β_n·β_{R,n}²·c) · Δγ_n/γ_{R,n}``

where the gap voltages are sampled at the arrival times of the two
particles.  :class:`MacroParticleTracker` binds the map to a ring, an ion
species and voltage sources; the free functions below expose the three
update equations individually (they are also the operations compiled onto
the CGRA by :mod:`repro.cgra`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import PhysicsError
from repro.physics.ion import IonSpecies
from repro.physics.rf import RFSystem
from repro.physics.ring import SynchrotronRing

__all__ = [
    "TrackingState",
    "TrackRecord",
    "MacroParticleTracker",
    "reference_gamma_update",
    "delta_gamma_update",
    "delta_t_update",
]


def reference_gamma_update(gamma_ref: float, v_ref: float, ion: IonSpecies) -> float:
    """Paper Eq. 2: advance the reference particle's Lorentz factor.

    ``v_ref`` is the effective gap voltage (volts) seen by the reference
    particle on this passage.  In the stationary case the reference
    particle crosses at the RF zero, so ``v_ref == 0`` and γ_R stays
    constant.
    """
    gamma_new = gamma_ref + ion.gamma_gain_per_volt() * v_ref
    if gamma_new < 1.0:
        raise PhysicsError(
            f"reference gamma dropped below 1 ({gamma_new}); "
            "decelerating voltage exceeds the particle energy"
        )
    return gamma_new


def delta_gamma_update(delta_gamma: float, v_async: float, v_ref: float, ion: IonSpecies) -> float:
    """Paper Eq. 3: advance the Lorentz-factor difference Δγ."""
    return delta_gamma + ion.gamma_gain_per_volt() * (v_async - v_ref)


def delta_t_update(
    delta_t: float,
    delta_gamma: float,
    gamma_ref: float,
    ring: SynchrotronRing,
) -> float:
    """Paper Eq. 6: advance the arrival-time difference Δt.

    Uses β of the asynchronous particle (γ = γ_R + Δγ) in the first power
    and β_R² of the reference particle, exactly as printed in Eq. 6.
    """
    gamma_async = gamma_ref + delta_gamma
    if gamma_async < 1.0:
        raise PhysicsError(
            f"asynchronous gamma dropped below 1 ({gamma_async})"
        )
    # Scalar forms of beta_from_gamma / ring.phase_slip: same expressions
    # without the ndarray round-trip (math.sqrt and np.sqrt are both
    # correctly-rounded IEEE sqrt, so results are bit-identical).  γ_R ≥ 1
    # is guaranteed by reference_gamma_update, γ checked above.
    beta_ref = math.sqrt(1.0 - 1.0 / (gamma_ref * gamma_ref))
    beta_async = math.sqrt(1.0 - 1.0 / (gamma_async * gamma_async))
    eta = ring.alpha_c - 1.0 / (gamma_ref * gamma_ref)
    coeff = ring.circumference * eta / (beta_async * beta_ref * beta_ref * SPEED_OF_LIGHT)
    return delta_t + coeff * delta_gamma / gamma_ref


@dataclass
class TrackingState:
    """Mutable longitudinal phase-space state of the two-particle model."""

    gamma_ref: float
    delta_gamma: float = 0.0
    delta_t: float = 0.0
    turn: int = 0

    def __post_init__(self) -> None:
        if self.gamma_ref < 1.0:
            raise PhysicsError(f"gamma_ref must be >= 1, got {self.gamma_ref}")

    @property
    def gamma_async(self) -> float:
        """Lorentz factor of the asynchronous macro particle."""
        return self.gamma_ref + self.delta_gamma

    def copy(self) -> "TrackingState":
        """Independent copy of the state."""
        return TrackingState(self.gamma_ref, self.delta_gamma, self.delta_t, self.turn)


@dataclass
class TrackRecord:
    """Turn-by-turn arrays recorded by :meth:`MacroParticleTracker.track`."""

    turns: np.ndarray
    time: np.ndarray
    delta_t: np.ndarray
    delta_gamma: np.ndarray
    gamma_ref: np.ndarray

    def phase_deg(self, harmonic: int, f_rev) -> np.ndarray:
        """Convert Δt to RF phase in degrees: 360°·h·f_R·Δt.

        ``f_rev`` may be a scalar or a per-turn array (acceleration ramps).
        """
        return 360.0 * harmonic * np.asarray(f_rev, dtype=float) * self.delta_t


class MacroParticleTracker:
    """Turn-by-turn tracker for the two-particle model.

    Parameters
    ----------
    ring, ion, rf:
        Machine, species and RF-system parameters.
    gap_voltage:
        Optional override: a callable ``(delta_t, f_rev, turn) -> volts``
        returning the gap voltage at arrival-time offset ``delta_t``.  When
        omitted, the analytic ``rf.gap_voltage_at`` is used.  The HIL
        framework passes a callable backed by the sampled/quantised ring
        buffer here, so the identical map runs in both fidelities.
    reference_voltage:
        Optional callable ``(f_rev, turn) -> volts`` for the voltage seen
        by the reference particle; defaults to sampling ``gap_voltage`` at
        ``delta_t = 0``.
    """

    def __init__(
        self,
        ring: SynchrotronRing,
        ion: IonSpecies,
        rf: RFSystem,
        gap_voltage: Callable[[float, float, int], float] | None = None,
        reference_voltage: Callable[[float, int], float] | None = None,
    ) -> None:
        self.ring = ring
        self.ion = ion
        self.rf = rf
        self._gap_voltage = gap_voltage
        self._reference_voltage = reference_voltage
        # V̂·sin(φ_s) is a run constant (rf is bound at construction);
        # hoisted out of the per-turn step.
        self._v_ref_default = rf.voltage * math.sin(rf.synchronous_phase)

    def initial_state(self, f_rev: float, delta_gamma: float = 0.0, delta_t: float = 0.0) -> TrackingState:
        """Build the initial state from a measured revolution frequency.

        Mirrors the CGRA program's initialisation (Section IV-B): the
        period-length detector yields T_R, from which β_R,0 and γ_R,0
        follow via Eq. 1.  Δγ₀ and Δt₀ default to zero — the paper excites
        oscillations through the input signals, not the initial state.
        """
        gamma0 = self.ring.gamma_from_revolution_frequency(f_rev)
        return TrackingState(gamma_ref=gamma0, delta_gamma=delta_gamma, delta_t=delta_t)

    def _voltages(self, state: TrackingState, f_rev: float) -> tuple[float, float]:
        if self._gap_voltage is not None:
            v_async = self._gap_voltage(state.delta_t, f_rev, state.turn)
            if self._reference_voltage is not None:
                v_ref = self._reference_voltage(f_rev, state.turn)
            else:
                v_ref = self._default_reference_voltage()
        else:
            v_async = self.rf.gap_voltage_at(state.delta_t, f_rev)
            v_ref = self._default_reference_voltage()
        return v_ref, v_async

    def _default_reference_voltage(self) -> float:
        """Voltage seen by the reference particle: V̂·sin(φ_s).

        The reference particle is a mathematical construct pinned to the
        *undisturbed* reference signal (in the bench it reads the
        reference ring buffer, not the gap buffer), so control-loop and
        phase-jump offsets of the gap signal do not act on it — only the
        synchronous phase does.
        """
        return self._v_ref_default

    def step(self, state: TrackingState, f_rev: float | None = None) -> TrackingState:
        """Advance the state by one revolution (Eqs. 2, 3, 6 in order).

        Mutates and returns ``state``.  ``f_rev`` defaults to the
        revolution frequency implied by the current γ_R, which is the
        self-consistent stationary behaviour; pass an explicit value to
        follow an external frequency programme (ramp-up case).
        """
        if f_rev is None:
            f_rev = self.ring.revolution_frequency(state.gamma_ref)
        v_ref, v_async = self._voltages(state, f_rev)
        state.gamma_ref = reference_gamma_update(state.gamma_ref, v_ref, self.ion)
        state.delta_gamma = delta_gamma_update(state.delta_gamma, v_async, v_ref, self.ion)
        state.delta_t = delta_t_update(state.delta_t, state.delta_gamma, state.gamma_ref, self.ring)
        state.turn += 1
        return state

    def track(
        self,
        state: TrackingState,
        n_turns: int,
        f_rev: float | None = None,
        record_every: int = 1,
    ) -> TrackRecord:
        """Track ``n_turns`` revolutions, recording every ``record_every``-th.

        Returns a :class:`TrackRecord` with elapsed machine time computed
        from the accumulated revolution periods.
        """
        if n_turns < 0:
            raise PhysicsError("n_turns must be non-negative")
        if record_every < 1:
            raise PhysicsError("record_every must be >= 1")
        n_rec = n_turns // record_every + 1
        turns = np.empty(n_rec, dtype=np.int64)
        time = np.empty(n_rec, dtype=float)
        dts = np.empty(n_rec, dtype=float)
        dgs = np.empty(n_rec, dtype=float)
        grs = np.empty(n_rec, dtype=float)

        elapsed = 0.0
        idx = 0

        def record() -> None:
            nonlocal idx
            turns[idx] = state.turn
            time[idx] = elapsed
            dts[idx] = state.delta_t
            dgs[idx] = state.delta_gamma
            grs[idx] = state.gamma_ref
            idx += 1

        record()
        for i in range(n_turns):
            current_f = f_rev if f_rev is not None else self.ring.revolution_frequency(state.gamma_ref)
            self.step(state, current_f)
            elapsed += 1.0 / current_f
            if (i + 1) % record_every == 0:
                record()
        return TrackRecord(
            turns=turns[:idx],
            time=time[:idx],
            delta_t=dts[:idx],
            delta_gamma=dgs[:idx],
            gamma_ref=grs[:idx],
        )
