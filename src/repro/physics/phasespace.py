"""Longitudinal phase-space geometry: Hamiltonian, separatrix, bucket.

The tracking map of :mod:`repro.physics.tracking` is the discrete-time
form of the synchrotron Hamiltonian

.. math::

    H(\\Delta t, \\Delta\\gamma) = \\tfrac12 a\\,\\Delta\\gamma^2
        + \\frac{k_t}{\\omega_{RF}^2}\\,
          \\big(\\cos(\\omega_{RF}\\Delta t) - 1\\big) \\cdot (-1)

(stationary case, per-turn units), whose level sets are the particle
trajectories.  These utilities are used for matched-distribution
validation, for the separatrix overlay in examples, and for property
tests ("tracked particles conserve H to first order").
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import SPEED_OF_LIGHT, TWO_PI
from repro.errors import PhysicsError
from repro.physics.ion import IonSpecies
from repro.physics.relativity import beta_from_gamma
from repro.physics.rf import RFSystem, bucket_is_stable
from repro.physics.ring import SynchrotronRing

__all__ = [
    "map_coefficients",
    "hamiltonian",
    "separatrix_delta_gamma",
    "bucket_half_height",
    "bucket_half_length",
    "bucket_area",
    "small_amplitude_trajectory",
]


def map_coefficients(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    gamma: float,
) -> tuple[float, float, float]:
    """Return ``(a, k_t, omega_rf)`` of the linearised per-turn map.

    ``a`` — Δt change per turn per unit Δγ (Eq. 6 coefficient, seconds);
    ``k_t`` — Δγ change per second of Δt per turn (voltage slope, 1/s);
    ``omega_rf`` — angular RF frequency (rad/s).
    """
    beta = beta_from_gamma(gamma)
    eta = ring.phase_slip(gamma)
    f_rev = ring.revolution_frequency(gamma)
    omega_rf = TWO_PI * rf.harmonic * f_rev
    k_t = ion.charge_state * rf.voltage * omega_rf * math.cos(rf.synchronous_phase) / ion.rest_energy_ev
    a = ring.circumference * eta / (beta**3 * SPEED_OF_LIGHT * gamma)
    return a, k_t, omega_rf


def hamiltonian(
    delta_t,
    delta_gamma,
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    gamma: float,
):
    """Per-turn Hamiltonian value for phase-space points (stationary case).

    Normalised so that H = 0 at the bucket centre and H = H_sx > 0 on the
    separatrix.  Accepts scalar or array coordinates.
    """
    a, k_t, omega_rf = map_coefficients(ring, ion, rf, gamma)
    if not bucket_is_stable(ring.phase_slip(gamma), rf.synchronous_phase):
        raise PhysicsError("hamiltonian() currently supports stable stationary buckets")
    dt = np.asarray(delta_t, dtype=float)
    dg = np.asarray(delta_gamma, dtype=float)
    # Canonical form: H0 = a/2·Δγ² + (k_t/ω²)(cos(ωΔt) − 1); below
    # transition a < 0 makes H0 negative-definite around the centre, so
    # flip the orientation to report wells pointing upward (H ≥ 0, zero
    # at the bucket centre).
    h0 = 0.5 * a * dg * dg + (k_t / omega_rf**2) * (np.cos(omega_rf * dt) - 1.0)
    h = -h0 if a < 0 else h0
    return float(h) if (np.isscalar(delta_t) and np.isscalar(delta_gamma)) else h


def bucket_half_length(rf: RFSystem, f_rev: float) -> float:
    """Half-length of the stationary bucket in seconds: T_RF/2."""
    return 0.5 / (rf.harmonic * f_rev)


def bucket_half_height(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    gamma: float,
) -> float:
    """Maximum |Δγ| inside the stationary bucket.

    From H(0, Δγ_max) = H(T_RF/2, 0): Δγ_max = sqrt(4 k_t / (|a| ω_RF²))·
    sqrt(...) — evaluated directly from the Hamiltonian coefficients.
    """
    a, k_t, omega_rf = map_coefficients(ring, ion, rf, gamma)
    if a * k_t >= 0.0:
        raise PhysicsError("unstable bucket: a and k_t must have opposite signs")
    return math.sqrt(4.0 * abs(k_t) / (abs(a) * omega_rf * omega_rf))


def separatrix_delta_gamma(
    delta_t,
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    gamma: float,
):
    """|Δγ| of the separatrix at arrival-time offset Δt (stationary case).

    Δγ_sx(Δt) = Δγ_max · |cos(ω_RF Δt / 2)|.
    """
    _, _, omega_rf = map_coefficients(ring, ion, rf, gamma)
    dg_max = bucket_half_height(ring, ion, rf, gamma)
    dt = np.asarray(delta_t, dtype=float)
    val = dg_max * np.abs(np.cos(0.5 * omega_rf * dt))
    return float(val) if np.isscalar(delta_t) else val


def bucket_area(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    gamma: float,
    n_points: int = 2001,
) -> float:
    """Phase-space area enclosed by the stationary separatrix (s·Δγ units).

    Integrates 2·Δγ_sx(Δt) over one bucket length numerically; the
    analytic value is 16·Δγ_max/(2·ω_RF) — used as a cross-check in tests.
    """
    f_rev = ring.revolution_frequency(gamma)
    half = bucket_half_length(rf, f_rev)
    dts = np.linspace(-half, half, n_points)
    heights = separatrix_delta_gamma(dts, ring, ion, rf, gamma)
    return float(2.0 * np.trapezoid(heights, dts))


def small_amplitude_trajectory(
    ring: SynchrotronRing,
    ion: IonSpecies,
    rf: RFSystem,
    gamma: float,
    delta_t_amplitude: float,
    n_points: int = 256,
) -> tuple[np.ndarray, np.ndarray]:
    """Closed small-amplitude trajectory (ellipse) through (Δt_amp, 0).

    Returns ``(delta_t, delta_gamma)`` arrays tracing the matched ellipse;
    useful for phase-space plots and matched-distribution tests.
    """
    a, k_t, _ = map_coefficients(ring, ion, rf, gamma)
    if a * k_t >= 0.0:
        raise PhysicsError("unstable bucket: no closed trajectories")
    ratio = math.sqrt(-k_t / a)
    phases = np.linspace(0.0, TWO_PI, n_points, endpoint=False)
    return (
        delta_t_amplitude * np.cos(phases),
        delta_t_amplitude * ratio * np.sin(phases),
    )
