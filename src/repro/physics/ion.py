"""Ion species definitions.

The paper's evaluation simulates the acceleration of ¹⁴N⁷⁺ ions in the GSI
SIS18 (Fig. 5 caption).  :class:`IonSpecies` captures what the tracking
equations need: the rest energy m·c² and the charge state Q (paper Eq. 2
uses the ratio Q/(m c²) to convert gap voltage into a change of γ).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.constants import ATOMIC_MASS_EV, ATOMIC_MASS_KG, ELEMENTARY_CHARGE
from repro.errors import ConfigurationError

__all__ = ["IonSpecies", "ion_from_string", "KNOWN_IONS"]


@dataclass(frozen=True)
class IonSpecies:
    """A fully ionised or partially stripped ion.

    Parameters
    ----------
    name:
        Human-readable label, e.g. ``"14N7+"``.
    mass_number:
        Nucleon count A (used as the default mass in u).
    charge_state:
        Charge state Q in units of the elementary charge.
    mass_u:
        Ion mass in unified atomic mass units.  Defaults to the mass
        number; pass a precise isotopic mass when it matters.
    """

    name: str
    mass_number: int
    charge_state: int
    mass_u: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.mass_number <= 0:
            raise ConfigurationError(f"mass_number must be positive, got {self.mass_number}")
        if self.charge_state <= 0:
            raise ConfigurationError(f"charge_state must be positive, got {self.charge_state}")
        if self.charge_state > self.mass_number:
            raise ConfigurationError(
                f"charge_state {self.charge_state} exceeds mass_number {self.mass_number}"
            )
        if self.mass_u == 0.0:
            object.__setattr__(self, "mass_u", float(self.mass_number))
        if self.mass_u <= 0.0:
            raise ConfigurationError(f"mass_u must be positive, got {self.mass_u}")

    @property
    def rest_energy_ev(self) -> float:
        """Rest energy m·c² in eV."""
        return self.mass_u * ATOMIC_MASS_EV

    @property
    def mass_kg(self) -> float:
        """Rest mass in kilograms."""
        return self.mass_u * ATOMIC_MASS_KG

    @property
    def charge_coulomb(self) -> float:
        """Charge in coulombs."""
        return self.charge_state * ELEMENTARY_CHARGE

    def gamma_gain_per_volt(self) -> float:
        """Δγ produced by one volt of effective gap voltage (Eq. 2 factor Q/mc²)."""
        return self.charge_state / self.rest_energy_ev


_ION_RE = re.compile(r"^(?P<a>\d+)(?P<sym>[A-Za-z]{1,3})(?P<q>\d+)\+$")


def ion_from_string(spec: str) -> IonSpecies:
    """Parse specifications like ``"14N7+"`` or ``"238U28+"``.

    The format is ``<mass number><element symbol><charge state>+``.
    """
    match = _ION_RE.match(spec.strip())
    if match is None:
        raise ConfigurationError(
            f"cannot parse ion spec {spec!r}; expected e.g. '14N7+'"
        )
    return IonSpecies(
        name=spec.strip(),
        mass_number=int(match.group("a")),
        charge_state=int(match.group("q")),
    )


#: Species used in the paper and commonly at SIS18.
KNOWN_IONS: dict[str, IonSpecies] = {
    "14N7+": IonSpecies("14N7+", mass_number=14, charge_state=7, mass_u=14.003074),
    "40Ar18+": IonSpecies("40Ar18+", mass_number=40, charge_state=18, mass_u=39.9623831),
    "238U28+": IonSpecies("238U28+", mass_number=238, charge_state=28, mass_u=238.0507882),
    "1H1+": IonSpecies("1H1+", mass_number=1, charge_state=1, mass_u=1.007276466),
}
