"""Relativistic kinematics helpers (paper Eq. 1).

The paper works exclusively with the two Lorentz factors

.. math::

    \\beta_v = v / c, \\qquad \\gamma_v = 1 / \\sqrt{1 - \\beta_v^2},

noting that "these factors are interdependent, so knowing one of them is
sufficient for all further calculations".  This module provides the
conversions in both directions plus the energy/momentum relations the
tracker needs.  All functions accept scalars or NumPy arrays and return
the matching type (NumPy broadcasting rules apply).
"""

from __future__ import annotations

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import PhysicsError

__all__ = [
    "beta_from_gamma",
    "gamma_from_beta",
    "beta_gamma_product",
    "gamma_from_kinetic_energy",
    "kinetic_energy_from_gamma",
    "momentum_ev_per_c",
    "velocity",
]


def gamma_from_beta(beta):
    """Lorentz factor γ for a velocity fraction β = v/c.

    Raises :class:`~repro.errors.PhysicsError` if any ``|beta| >= 1``
    (massive particles cannot reach the speed of light).
    """
    beta_arr = np.asarray(beta, dtype=float)
    if np.any(np.abs(beta_arr) >= 1.0):
        raise PhysicsError(f"|beta| must be < 1, got {beta!r}")
    gamma = 1.0 / np.sqrt(1.0 - beta_arr * beta_arr)
    return float(gamma) if np.isscalar(beta) else gamma


def beta_from_gamma(gamma):
    """Velocity fraction β = v/c for a Lorentz factor γ ≥ 1.

    Raises :class:`~repro.errors.PhysicsError` for γ < 1, which has no
    physical meaning for a free particle.
    """
    gamma_arr = np.asarray(gamma, dtype=float)
    if np.any(gamma_arr < 1.0):
        raise PhysicsError(f"gamma must be >= 1, got {gamma!r}")
    beta = np.sqrt(1.0 - 1.0 / (gamma_arr * gamma_arr))
    return float(beta) if np.isscalar(gamma) else beta


def beta_gamma_product(gamma):
    """The product βγ = sqrt(γ² − 1), proportional to momentum."""
    gamma_arr = np.asarray(gamma, dtype=float)
    if np.any(gamma_arr < 1.0):
        raise PhysicsError(f"gamma must be >= 1, got {gamma!r}")
    bg = np.sqrt(gamma_arr * gamma_arr - 1.0)
    return float(bg) if np.isscalar(gamma) else bg


def gamma_from_kinetic_energy(kinetic_energy_ev: float, rest_energy_ev: float):
    """γ = 1 + T / (m c²) for kinetic energy ``T`` in eV.

    ``rest_energy_ev`` is the particle's rest energy m·c² in eV.
    """
    if rest_energy_ev <= 0.0:
        raise PhysicsError("rest energy must be positive")
    t_arr = np.asarray(kinetic_energy_ev, dtype=float)
    if np.any(t_arr < 0.0):
        raise PhysicsError("kinetic energy must be non-negative")
    gamma = 1.0 + t_arr / rest_energy_ev
    return float(gamma) if np.isscalar(kinetic_energy_ev) else gamma


def kinetic_energy_from_gamma(gamma, rest_energy_ev: float):
    """Kinetic energy T = (γ − 1)·m c² in eV."""
    if rest_energy_ev <= 0.0:
        raise PhysicsError("rest energy must be positive")
    g_arr = np.asarray(gamma, dtype=float)
    if np.any(g_arr < 1.0):
        raise PhysicsError(f"gamma must be >= 1, got {gamma!r}")
    t = (g_arr - 1.0) * rest_energy_ev
    return float(t) if np.isscalar(gamma) else t


def momentum_ev_per_c(gamma, rest_energy_ev: float):
    """Momentum p·c = βγ·m c² in eV (i.e. momentum in eV/c units)."""
    return beta_gamma_product(gamma) * rest_energy_ev


def velocity(gamma):
    """Particle velocity in m/s for a Lorentz factor γ."""
    return beta_from_gamma(gamma) * SPEED_OF_LIGHT
