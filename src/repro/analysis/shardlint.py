"""AST-based shard-safety/determinism lint for experiment task modules.

The parallel tier (:mod:`repro.parallel`) guarantees byte-identical
results regardless of worker count — but only if the task modules play
by the rules: seeds flow through :class:`numpy.random.SeedSequence`
spawns, results never embed wall-clock time, task payloads never capture
process-local CGRA handles (``_guard_value`` enforces this at runtime;
this pass is its *static* counterpart), and task dataclasses never share
mutable default state between shards.  ``shardlint`` checks those rules
without importing the module under analysis — pure :mod:`ast` walking
with import-alias tracking — and reports findings through the shared
:class:`~repro.cgra.verify.diagnostics.Diagnostic` machinery under pass
id ``"shardlint"``.

Rules
-----
``SHARD001`` (error)
    Unseeded global RNG: any ``np.random.*`` module-level function
    (the shared global ``RandomState``), ``numpy.random.default_rng()``
    / ``Generator``/bit-generator constructors called *without* a seed,
    and any stdlib ``random.*`` use (module-global Mersenne Twister or
    OS-entropy ``SystemRandom``).
``SHARD002`` (warning)
    Wall-clock read in a result path: ``time.time``/``time.time_ns``,
    ``datetime.datetime.now``/``utcnow``/``today``, ``datetime.date.today``.
    Monotonic duration clocks (``perf_counter``, ``monotonic``,
    ``process_time``, ``thread_time``) are fine — durations are
    measurements, not identities.
``SHARD003`` (error)
    Process-local CGRA/executor handle in a task payload: a dataclass
    field annotated with one of the handle types ``_guard_value``
    rejects at runtime (``CompiledModel``, ``Schedule``,
    ``ModuloSchedule``, ``CgraExecutor``, ``PipelinedExecutor``,
    ``BatchedCgraExecutor``, ``CompiledProgram``).
``SHARD004`` (warning)
    Mutable default argument: a ``list``/``dict``/``set`` literal or
    zero-argument constructor as a function default or a dataclass field
    default (shared across every shard of a run).

Suppression: append ``# shardlint: disable=SHARD001`` (comma-separated
codes, or ``all``) to the flagged line.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.cgra.verify.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    SourceLocation,
)

__all__ = [
    "PASS_ID",
    "RULES",
    "HANDLE_TYPES",
    "lint_shard_source",
    "lint_shard_file",
    "default_targets",
]

#: Diagnostic pass id of this analysis.
PASS_ID = "shardlint"

#: Rule id → (severity, one-line summary).
RULES: dict[str, tuple[Severity, str]] = {
    "SHARD001": (Severity.ERROR, "unseeded global RNG"),
    "SHARD002": (Severity.WARNING, "wall-clock read in result path"),
    "SHARD003": (Severity.ERROR, "process-local CGRA handle in task payload"),
    "SHARD004": (Severity.WARNING, "mutable default argument"),
}

#: Handle types ``repro.parallel.pool._guard_value`` rejects at runtime
#: (plus ``CompiledProgram``, same per-process nature).
HANDLE_TYPES = frozenset({
    "CompiledModel",
    "CompiledProgram",
    "Schedule",
    "ModuloSchedule",
    "CgraExecutor",
    "PipelinedExecutor",
    "BatchedCgraExecutor",
})

#: numpy.random constructors that are deterministic *when seeded*.
_SEEDABLE_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: Monotonic/process clocks allowed in result paths.
_ALLOWED_CLOCKS = frozenset({
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
})

_WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_SUPPRESS_RE = re.compile(r"#\s*shardlint:\s*disable=([A-Za-z0-9_,\s]+)")


def _suppressions(source: str) -> dict[int, set[str]]:
    """Line number → set of suppressed rule ids (or ``{"all"}``)."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            codes = {c.strip().upper() for c in match.group(1).split(",") if c.strip()}
            out[lineno] = {"ALL" if c == "ALL" else c for c in codes}
    return out


class _Aliases(ast.NodeVisitor):
    """Collect import aliases so dotted uses resolve to canonical names."""

    def __init__(self) -> None:
        self.names: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.names[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never shadow numpy/random/time
        for alias in node.names:
            self.names[alias.asname or alias.name] = f"{node.module}.{alias.name}"


def _dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve ``np.random.default_rng`` → ``"numpy.random.default_rng"``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray") and not (
            node.args or node.keywords
        )
    return False


def _annotation_handles(node: ast.AST) -> set[str]:
    """Handle-type names mentioned anywhere in an annotation expression."""
    found: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in HANDLE_TYPES:
            found.add(child.id)
        elif isinstance(child, ast.Attribute) and child.attr in HANDLE_TYPES:
            found.add(child.attr)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            for handle in HANDLE_TYPES:  # string annotations
                if re.search(rf"\b{handle}\b", child.value):
                    found.add(handle)
    return found


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "dataclass":
            return True
    return False


class _ShardLinter(ast.NodeVisitor):
    def __init__(self, aliases: dict[str, str], report: DiagnosticReport,
                 suppressed: dict[int, set[str]]) -> None:
        self.aliases = aliases
        self.report = report
        self.suppressed = suppressed

    def flag(self, code: str, message: str, node: ast.AST) -> None:
        lineno = getattr(node, "lineno", 0)
        rules = self.suppressed.get(lineno, set())
        if code in rules or "ALL" in rules:
            return
        severity, summary = RULES[code]
        self.report.add(
            Diagnostic(
                severity=severity,
                pass_id=PASS_ID,
                code=code,
                message=f"{summary}: {message}",
                location=SourceLocation(
                    line=lineno, col=getattr(node, "col_offset", -1) + 1
                ),
            )
        )

    # -- SHARD001 / SHARD002 -------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func, self.aliases)
        if dotted is not None:
            self._check_rng(dotted, node)
            self._check_clock(dotted, node)
        self.generic_visit(node)

    def _check_rng(self, dotted: str, node: ast.Call) -> None:
        if dotted.startswith("numpy.random."):
            tail = dotted.split(".", 2)[2]
            if tail in _SEEDABLE_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    self.flag(
                        "SHARD001",
                        f"{dotted}() without a seed draws OS entropy — pass a "
                        "shard seed from repro.parallel.seeding.shard_seeds",
                        node,
                    )
            else:
                self.flag(
                    "SHARD001",
                    f"{dotted} uses numpy's process-global RandomState — use a "
                    "seeded Generator per task instead",
                    node,
                )
        elif dotted == "random" or dotted.startswith("random."):
            tail = dotted.partition(".")[2]
            if tail == "Random":
                if not node.args and not node.keywords:
                    self.flag(
                        "SHARD001",
                        "random.Random() without a seed draws OS entropy",
                        node,
                    )
            elif tail == "SystemRandom":
                self.flag(
                    "SHARD001",
                    "random.SystemRandom is OS entropy — never reproducible",
                    node,
                )
            elif tail:
                self.flag(
                    "SHARD001",
                    f"stdlib random.{tail} uses the process-global Mersenne "
                    "Twister — use a seeded generator per task",
                    node,
                )

    def _check_clock(self, dotted: str, node: ast.Call) -> None:
        if dotted in _ALLOWED_CLOCKS:
            return
        if dotted in _WALL_CLOCKS:
            self.flag(
                "SHARD002",
                f"{dotted}() is nondeterministic across runs and shards — use "
                "time.perf_counter for durations or stamp results at merge time",
                node,
            )

    # -- SHARD003 / SHARD004 -------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if _is_dataclass(node):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign):
                    for handle in sorted(_annotation_handles(stmt.annotation)):
                        self.flag(
                            "SHARD003",
                            f"dataclass {node.name}.{self._field_name(stmt)} is "
                            f"annotated {handle} — process-local handles do not "
                            "survive pickling to workers (rebuild from plain "
                            "data inside the shard; see parallel.pool._guard_value)",
                            stmt,
                        )
                    if stmt.value is not None and _is_mutable_default(stmt.value):
                        self.flag(
                            "SHARD004",
                            f"dataclass {node.name}.{self._field_name(stmt)} has "
                            "a mutable default shared across shards — use "
                            "dataclasses.field(default_factory=...)",
                            stmt,
                        )
        self.generic_visit(node)

    @staticmethod
    def _field_name(stmt: ast.AnnAssign) -> str:
        return stmt.target.id if isinstance(stmt.target, ast.Name) else "<field>"

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                self.flag(
                    "SHARD004",
                    f"function {node.name!r} has a mutable default argument "
                    "shared between calls (and shards)",
                    default,
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


def lint_shard_source(source: str, filename: str = "<source>") -> DiagnosticReport:
    """Lint one module's source text; returns the diagnostic report."""
    report = DiagnosticReport()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.emit(
            Severity.ERROR, PASS_ID, "syntax-error",
            f"cannot parse {filename}: {exc.msg}",
            location=SourceLocation(line=exc.lineno or 0, col=exc.offset or 0),
        )
        return report
    aliases = _Aliases()
    aliases.visit(tree)
    _ShardLinter(aliases.names, report, _suppressions(source)).visit(tree)
    return report


def lint_shard_file(path: Path | str) -> DiagnosticReport:
    """Lint one module by path (read errors raise ``OSError``)."""
    path = Path(path)
    return lint_shard_source(path.read_text(), filename=str(path))


def default_targets() -> list[Path]:
    """The modules the CI gate lints: experiments + faults packages."""
    import repro.experiments
    import repro.faults

    targets: list[Path] = []
    for package in (repro.experiments, repro.faults):
        root = Path(package.__file__).parent
        targets.extend(sorted(root.glob("*.py")))
    return targets
