"""Command line for ``python -m repro.analysis``.

Runs the shard-safety lint over explicit paths, or (``--all``) the full
static-analysis sweep the CI gate uses: shardlint across the experiment
and fault task modules plus dependence certification of every built-in
beam-model kernel variant.  One line / JSON object per target.

Exit status follows the three-way convention shared with
``python -m repro.cgra.lint``: **0** no gate tripped, **1** diagnostics
tripped ``--fail-on-error`` (the default) or ``--fail-on-warning``,
**2** an internal analyzer error (unreadable file, analyzer crash) —
tooling can tell "the code is dirty" from "the analyzer is broken".
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from pathlib import Path

from repro.cgra.verify.diagnostics import DiagnosticReport, Severity

__all__ = ["main"]


def _print_target(name: str, analyzer: str, report: DiagnosticReport,
                  as_json: bool, quiet: bool, extra: dict | None = None) -> None:
    errors, warnings = len(report.errors()), len(report.warnings())
    if as_json:
        payload: dict = {
            "target": name,
            "analyzer": analyzer,
            "errors": errors,
            "warnings": warnings,
            "diagnostics": report.to_dicts(),
        }
        if extra:
            payload.update(extra)
        print(json.dumps(payload))
        return
    status = "FAIL" if errors else "ok"
    print(f"{name} [{analyzer}]: {status} ({errors} errors, {warnings} warnings, "
          f"{len(report)} total)")
    min_severity = Severity.WARNING if quiet else Severity.INFO
    for diagnostic in sorted(report, key=lambda d: -int(d.severity)):
        if diagnostic.severity >= min_severity:
            print(f"  {diagnostic.render()}")
    if extra and not quiet:
        for key, value in extra.items():
            print(f"  {key}: {json.dumps(value)}")


def _certificate_targets() -> list:
    """(name, schedule) for every built-in kernel variant."""
    from repro.cgra.models import compile_beam_model

    out = []
    for n_bunches in (1, 4, 8):
        for pipelined in (True, False):
            name = f"beam_model[n={n_bunches},{'pipelined' if pipelined else 'plain'}]"
            model = compile_beam_model(n_bunches=n_bunches, pipelined=pipelined)
            out.append((name, model.schedule))
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Shard-safety/determinism lint of task modules plus "
        "vectorization certificates for the built-in kernels.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="Python modules (or directories) to shardlint",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="lint the experiment/fault packages and certify every "
        "built-in kernel variant (the CI configuration)",
    )
    parser.add_argument(
        "--fail-on-error", action="store_true",
        help="exit 1 when any ERROR diagnostic is produced (the default)",
    )
    parser.add_argument(
        "--fail-on-warning", action="store_true",
        help="exit 1 when any WARNING or ERROR diagnostic is produced",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one JSON object per target instead of text",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress INFO diagnostics in the text output",
    )
    args = parser.parse_args(argv)
    if not args.paths and not args.all:
        parser.error("nothing to analyse: pass module paths or --all")

    from repro.analysis.shardlint import default_targets, lint_shard_file

    lint_paths: list[Path] = []
    if args.all:
        lint_paths.extend(default_targets())
    for path in args.paths:
        if path.is_dir():
            lint_paths.extend(sorted(path.glob("*.py")))
        else:
            lint_paths.append(path)

    worst = Severity.INFO
    internal_error = False

    def observe(report: DiagnosticReport) -> None:
        nonlocal worst
        if report.errors():
            worst = Severity.ERROR
        elif report.warnings() and worst is not Severity.ERROR:
            worst = Severity.WARNING

    for path in lint_paths:
        try:
            report = lint_shard_file(path)
        except OSError as exc:
            print(f"internal error: cannot read {path}: {exc}", file=sys.stderr)
            internal_error = True
            continue
        except Exception:
            print(f"internal error: shardlint crashed on {path}:", file=sys.stderr)
            traceback.print_exc()
            internal_error = True
            continue
        observe(report)
        _print_target(str(path), "shardlint", report, args.as_json, args.quiet)

    if args.all:
        try:
            targets = _certificate_targets()
        except Exception:
            print("internal error: kernel compilation crashed:", file=sys.stderr)
            traceback.print_exc()
            targets = []
            internal_error = True
        for name, schedule in targets:
            try:
                from repro.cgra.verify.dependence import certify_vectorization

                result = certify_vectorization(schedule)
            except Exception:
                print(f"internal error: dependence pass crashed on {name}:",
                      file=sys.stderr)
                traceback.print_exc()
                internal_error = True
                continue
            observe(result.report)
            _print_target(
                name, "dependence", result.report, args.as_json, args.quiet,
                extra={"certificate": result.certificate.stats()},
            )

    if internal_error:
        return 2
    if args.fail_on_warning and worst >= Severity.WARNING:
        return 1
    if worst is Severity.ERROR:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
