"""``repro.analysis`` — whole-program static analysis front ends.

Two analyses share the :mod:`repro.cgra.verify` diagnostics machinery:

* :mod:`repro.analysis.shardlint` — AST-based shard-safety/determinism
  lint of the experiment/fault task modules (pass id ``"shardlint"``,
  rules ``SHARD001``–``SHARD004``), the static counterpart of the
  runtime ``_guard_value`` check in :mod:`repro.parallel.pool`;
* the dependence pass (:mod:`repro.cgra.verify.dependence`) — per-op
  effect summaries, loop-carried dependence chains and
  :class:`~repro.cgra.verify.dependence.VectorizationCertificate`
  emission for every built-in kernel.

``python -m repro.analysis`` runs both (``--all``) or shardlint over
explicit paths, with ``--json`` per-target output and
``--fail-on-error``/``--fail-on-warning`` gates.  Exit status: 0 clean,
1 diagnostics tripped a gate, 2 internal analyzer error.
"""

from repro.analysis.shardlint import (
    HANDLE_TYPES,
    RULES,
    default_targets,
    lint_shard_file,
    lint_shard_source,
)

__all__ = [
    "RULES",
    "HANDLE_TYPES",
    "lint_shard_source",
    "lint_shard_file",
    "default_targets",
    "main",
]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (see :mod:`repro.analysis.cli`)."""
    from repro.analysis.cli import main as cli_main

    return cli_main(argv)
