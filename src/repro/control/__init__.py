"""Beam-phase closed-loop control.

The LLRF system's beam phase control loop "measures the longitudinal
position of the bunches and actively changes the phase of the gap voltage
in the cavities" (paper Section I).  This package implements the
controller used in the evaluation: FIR filter with f_pass = 1.4 kHz,
gain = −5 and recursion factor = 0.99 (the optimum of Klingbeil et al.
2007), updating once per revolution.
"""

from repro.control.beam_phase_loop import BeamPhaseControlLoop, ControlLoopConfig

__all__ = ["BeamPhaseControlLoop", "ControlLoopConfig"]
