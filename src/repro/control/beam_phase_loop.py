"""The beam-phase control loop.

Wiring (sign conventions, fixed here once for the whole repository):

* the DSP phase detector reports the bunch position as
  ``φ_meas = −360°·h·f_R·Δt`` — with this polarity an applied gap phase
  jump of +8° moves the *equilibrium* reading to +8°, which is how
  Fig. 5 plots it;
* the filter output ``u`` (degrees) is *added* to the gap phase.  The
  filter's first-difference stage leads the synchrotron oscillation by
  ≈ +90°, so with the paper's negative gain the loop feeds back
  ``−dφ/dt`` — velocity feedback, i.e. damping.

The loop may saturate its correction (hardware phase shifters have
limited range); saturation events are counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.obs import get_registry, get_tracer
from repro.obs._state import STATE as _OBS
from repro.signal.fir import PhaseControlFilter

__all__ = ["ControlLoopConfig", "BeamPhaseControlLoop"]

_PHASE_ERROR = get_registry().gauge(
    "control_phase_error_deg", "most recent measured phase error fed to the loop"
)
_CORRECTION = get_registry().gauge(
    "control_correction_deg", "most recent correction applied to the gap phase"
)
_SATURATION = get_registry().counter(
    "control_saturation_total", "updates clipped at the saturation limit"
)
_UPDATES = get_registry().counter(
    "control_updates_total", "control-loop filter updates executed"
)


@dataclass(frozen=True)
class ControlLoopConfig:
    """Parameters of the beam-phase control loop.

    Defaults are the paper's: "f_pass = 1.4 kHz, gain = −5 and recursion
    factor = 0.99, which are the optimal parameters according to [8]".
    """

    f_pass: float = 1.4e3
    gain: float = -5.0
    recursion_factor: float = 0.99
    #: Calibration of the paper's dimensionless DSP gain register onto the
    #: unity-normalised :class:`~repro.signal.fir.PhaseControlFilter`: the
    #: effective filter gain is ``gain · gain_scale``.  0.02 is chosen so
    #: the closed-loop transient matches Fig. 5 — the first post-jump peak
    #: reaches ≈ 2× the jump amplitude and the oscillation settles well
    #: within the 50 ms inter-jump window (see EXPERIMENTS.md, E5).
    gain_scale: float = 0.02
    #: Control updates per second (once per revolution in the bench).
    sample_rate: float = 800e3
    #: Run the loop every N-th revolution (1 = every revolution).
    update_divider: int = 1
    #: Correction saturation in degrees (|u| clip); None disables.
    saturation_deg: float | None = 60.0
    #: Master enable — disabled loops output 0 (open-loop studies).
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.update_divider < 1:
            raise ConfigurationError("update_divider must be >= 1")
        if self.gain_scale <= 0.0:
            raise ConfigurationError("gain_scale must be positive")
        if self.saturation_deg is not None and self.saturation_deg <= 0.0:
            raise ConfigurationError("saturation_deg must be positive or None")


class BeamPhaseControlLoop:
    """Stateful controller: measured phase (deg) in → gap correction (deg) out."""

    def __init__(self, config: ControlLoopConfig) -> None:
        self.config = config
        self._filter = PhaseControlFilter(
            f_pass=config.f_pass,
            gain=config.gain * config.gain_scale,
            recursion_factor=config.recursion_factor,
            sample_rate=config.sample_rate / config.update_divider,
        )
        self._tick = 0
        self._last_output = 0.0
        #: Number of updates that hit the saturation limit.
        self.saturation_count = 0
        self._observers: list[Callable[[int, float, float], None]] = []

    def add_observer(self, fn: Callable[[int, float, float], None]) -> None:
        """Register a time-series hook ``fn(tick, phase_deg, correction_deg)``.

        Called on every *executed* update (after decimation), regardless
        of the global observability switch — this is the API for
        experiment-side recording, not background telemetry.
        """
        self._observers.append(fn)

    @property
    def last_output_deg(self) -> float:
        """Most recent correction, in degrees."""
        return self._last_output

    def reset(self) -> None:
        """Clear the filter and output state."""
        self._filter.reset()
        self._tick = 0
        self._last_output = 0.0
        self.saturation_count = 0

    def update(self, measured_phase_deg: float) -> float:
        """Feed one phase measurement; returns the current correction.

        Honors ``update_divider`` (measurements between updates are
        skipped, holding the previous output, as a decimating DSP would)
        and ``enabled``.
        """
        if not self.config.enabled:
            self._last_output = 0.0
            return 0.0
        run_now = (self._tick % self.config.update_divider) == 0
        self._tick += 1
        if not run_now:
            return self._last_output
        u = self._filter.step(float(measured_phase_deg))
        limit = self.config.saturation_deg
        saturated = limit is not None and abs(u) > limit
        if saturated:
            u = limit if u > 0 else -limit
            self.saturation_count += 1
        self._last_output = u
        if _OBS.enabled:
            _PHASE_ERROR.set(measured_phase_deg)
            _CORRECTION.set(u)
            _UPDATES.inc()
            if saturated:
                _SATURATION.inc()
                get_tracer().event(
                    "control.saturated", phase_deg=measured_phase_deg, output_deg=u
                )
        if self._observers:
            for fn in self._observers:
                fn(self._tick - 1, float(measured_phase_deg), u)
        return u
