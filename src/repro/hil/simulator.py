"""The complete cavity-in-the-loop bench (paper Fig. 4).

:class:`CavityInTheLoop` assembles the whole experiment: synchronised
DDS signals (reference at f_R, gap at h·f_R), the AWG phase-jump drive,
the beam simulator (CGRA model or its bit-identical Python fast path),
the DSP phase detector and the beam-phase control loop closing the loop
on the gap phase.

Two engines share identical physics and calibration:

* ``engine="cgra"`` — every revolution runs one cycle-accurate iteration
  of the compiled CGRA contexts against analytic (optionally
  ADC-quantised) sensor handlers.  This is the reference implementation
  and validates the real hardware path, at interpreter speed.
* ``engine="python"`` — the same model equations inlined in Python
  floats, ~100× faster; used for second-scale Fig.-5 runs.  A dedicated
  test pins both engines against each other turn by turn.

Real-time accounting: the CGRA model is compiled either way, its
schedule length is checked against the revolution period once per run
(the budget is time-invariant for a fixed f_R), and the per-revolution
:class:`~repro.hil.realtime.DeadlineMonitor` records slack.  Wall-clock
Python time is *not* the real-time claim — see DESIGN.md §5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.cgra.executor import CgraExecutor
from repro.cgra.fabric import CgraConfig
from repro.cgra.models import CompiledModel, compile_beam_model
from repro.cgra.sensor import (
    ACTUATOR_DELTA_T,
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
    SensorBus,
)
from repro.constants import SPEED_OF_LIGHT, TWO_PI, deg_to_rad
from repro.control import BeamPhaseControlLoop, ControlLoopConfig
from repro.errors import ConfigurationError, HilError
from repro.faults.spec import FaultSpec
from repro.hil.realtime import DeadlineMonitor, JitterStats
from repro.obs import get_registry, get_tracer, record_hil_run
from repro.obs._state import STATE as _OBS
from repro.obs.profile import get_profiler
from repro.physics.ion import IonSpecies
from repro.physics.rf import RFSystem, voltage_for_synchrotron_frequency
from repro.physics.ring import SynchrotronRing
from repro.signal.adc import ADC
from repro.signal.awg import PhaseJumpPattern
from repro.signal.filters import moving_average

__all__ = ["HilConfig", "HilRunResult", "CavityInTheLoop"]

#: Shared with the framework path (get-or-create by name).
_HIL_ITERATIONS = get_registry().counter(
    "hil_iterations_total", "HIL model iterations run"
)


@dataclass(frozen=True)
class HilConfig:
    """Configuration of a cavity-in-the-loop run.

    Defaults reproduce the paper's evaluation scenario: SIS18 parameters
    are supplied by the caller (see :mod:`repro.experiments.mde` for the
    exact MDE configuration: ¹⁴N⁷⁺, f_ref = 800 kHz, h = 4, f_s ≈
    1.28 kHz, 8° jumps every 0.05 s).
    """

    ring: SynchrotronRing
    ion: IonSpecies
    harmonic: int = 4
    revolution_frequency: float = 800e3
    #: Target small-amplitude synchrotron frequency; the gap-voltage
    #: amplitude is derived from it ("the input voltage amplitude was
    #: adjusted to achieve a similar synchrotron frequency of 1.28 kHz").
    synchrotron_frequency: float = 1.28e3
    #: Phase jump amplitude in degrees (8° bench / 10° machine).
    jump_deg: float = 8.0
    #: Jump toggle period in seconds ("every twentieth of a second").
    jump_toggle_period: float = 0.05
    #: First toggle instant.
    jump_start_time: float = 0.005
    control: ControlLoopConfig | None = None
    n_bunches: int = 1
    engine: str = "python"
    #: CGRA execution engine when ``engine="cgra"``: ``"interpreted"``,
    #: ``"compiled"``, or None for the session default
    #: (:func:`repro.cgra.set_default_engine`).  Both are bit-exact.
    cgra_engine: str | None = None
    precision: str = "single"
    pipelined: bool = True
    cgra_config: CgraConfig = field(default_factory=CgraConfig)
    #: Model the 14-bit ADC quantisation of the sensed voltages.
    quantize_adc: bool = True
    #: DDS amplitude at the ADC input, volts (2 Vpp limit ⇒ ≤ 1.0).
    adc_amplitude: float = 0.9
    #: Record every N-th revolution.
    record_every: int = 1
    #: Dual-harmonic amplitude ratio r = V̂₂/V̂₁ (counter-phase second
    #: harmonic at 2h·f_R, paper ref. [9]'s cavity system).  0 = single
    #: harmonic.  Must stay below 0.5 so the bucket keeps a defined
    #: small-amplitude synchrotron frequency to calibrate against; the
    #: fundamental amplitude is raised by 1/(1−2r) to keep f_s on target.
    dual_harmonic_ratio: float = 0.0
    #: Per-bunch initial arrival offsets in seconds (injection errors);
    #: None = all bunches start on their zero crossings.  Length must
    #: equal ``n_bunches``.
    initial_delta_t: tuple[float, ...] | None = None
    #: What the DSP feeds the control loop when several bunches are
    #: simulated: the first bunch ("bunch0") or the average dipole phase
    #: across all bunches ("mean") — the multi-bunch LLRF behaviour.
    control_source: str = "bunch0"
    #: Faults to arm for this run (see :mod:`repro.faults.inject`).  The
    #: empty default also consults the session faults armed by the
    #: runner's ``--faults`` flag; benches with no faults armed carry no
    #: injection state at all.
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.engine not in ("python", "cgra"):
            raise ConfigurationError(f"engine must be 'python' or 'cgra', got {self.engine!r}")
        if self.cgra_engine not in (None, "interpreted", "compiled", "vector", "auto"):
            raise ConfigurationError(
                "cgra_engine must be None, 'interpreted', 'compiled', 'vector' or 'auto', "
                f"got {self.cgra_engine!r}"
            )
        if self.harmonic < 1:
            raise ConfigurationError("harmonic must be >= 1")
        if self.n_bunches < 1 or self.n_bunches > self.harmonic:
            raise ConfigurationError("n_bunches must be in [1, harmonic]")
        if self.revolution_frequency <= 0:
            raise ConfigurationError("revolution_frequency must be positive")
        if self.synchrotron_frequency <= 0:
            raise ConfigurationError("synchrotron_frequency must be positive")
        if not 0 < self.adc_amplitude <= 1.0:
            raise ConfigurationError("adc_amplitude must be in (0, 1] volts")
        if self.record_every < 1:
            raise ConfigurationError("record_every must be >= 1")
        if self.jump_toggle_period <= 0:
            raise ConfigurationError("jump_toggle_period must be positive")
        if not 0.0 <= self.dual_harmonic_ratio < 0.5:
            raise ConfigurationError(
                "dual_harmonic_ratio must be in [0, 0.5); the flat bucket "
                "(0.5) has no small-amplitude f_s to calibrate against"
            )
        if self.initial_delta_t is not None and len(self.initial_delta_t) != self.n_bunches:
            raise ConfigurationError(
                f"initial_delta_t needs {self.n_bunches} entries, "
                f"got {len(self.initial_delta_t)}"
            )
        if self.control_source not in ("bunch0", "mean"):
            raise ConfigurationError(
                f"control_source must be 'bunch0' or 'mean', got {self.control_source!r}"
            )
        for s in self.faults:
            if not isinstance(s, FaultSpec):
                raise ConfigurationError(
                    f"faults must be FaultSpec instances, got {type(s).__name__}"
                )


@dataclass
class HilRunResult:
    """Recorded traces of one bench run (decimated by ``record_every``)."""

    #: Machine time of each record, seconds.
    time: np.ndarray
    #: DSP phase difference beam-vs-reference, degrees at h·f_R.
    phase_deg: np.ndarray
    #: Control-loop correction applied to the gap phase, degrees.
    correction_deg: np.ndarray
    #: Commanded jump drive at each record, degrees.
    jump_deg: np.ndarray
    #: Arrival-time offset of bunch 0, seconds.
    delta_t: np.ndarray
    #: Arrival-time offsets of every bunch, shape (n_records, n_bunches).
    delta_t_all: np.ndarray
    #: Reference Lorentz factor trace.
    gamma_ref: np.ndarray
    #: Real-time slack statistics of the run.
    deadline: JitterStats
    #: Schedule length of the compiled model, CGRA ticks.
    schedule_length: int
    #: Engine that produced the run.
    engine: str

    def phase_deg_smoothed(self, width: int = 5) -> np.ndarray:
        """Fig. 5a's display filter: width-5 moving average."""
        return moving_average(self.phase_deg, width)

    def phase_deg_bunch(self, bunch: int, harmonic: int, f_rev: float) -> np.ndarray:
        """DSP phase trace of one specific bunch (degrees at h·f_R)."""
        return -360.0 * harmonic * f_rev * self.delta_t_all[:, bunch]


class CavityInTheLoop:
    """The closed-loop HIL bench.

    Build it from a :class:`HilConfig`, then :meth:`run` a time span.
    The gap-voltage amplitude, the per-revolution model parameters and
    the control loop are derived exactly as in the evaluation section of
    the paper.
    """

    def __init__(self, config: HilConfig) -> None:
        self.config = config
        ring, ion = config.ring, config.ion
        self.f_rev = config.revolution_frequency
        self.gamma0 = ring.gamma_from_revolution_frequency(self.f_rev)
        probe = RFSystem(harmonic=config.harmonic, voltage=1.0)
        single_equivalent = voltage_for_synchrotron_frequency(
            ring, ion, probe, self.gamma0, config.synchrotron_frequency
        )
        # Dual-harmonic: the effective centre slope is (1 - 2r)·V̂₁ω, so
        # the fundamental is raised to keep the calibrated f_s.
        self._dh_ratio = config.dual_harmonic_ratio
        self.gap_voltage_amplitude = single_equivalent / (1.0 - 2.0 * self._dh_ratio)
        self.rf = probe.with_voltage(self.gap_voltage_amplitude)
        self.jump = PhaseJumpPattern(
            jump_deg=config.jump_deg,
            toggle_period=config.jump_toggle_period,
            start_time=config.jump_start_time,
        )
        control_cfg = config.control or ControlLoopConfig(sample_rate=self.f_rev)
        if abs(control_cfg.sample_rate - self.f_rev) > 1e-6 * self.f_rev:
            raise ConfigurationError(
                "control sample_rate must equal the revolution frequency "
                f"({self.f_rev}), got {control_cfg.sample_rate}"
            )
        self.control = BeamPhaseControlLoop(control_cfg)

        #: ADC volts ↔ gap volts calibration (the bench scales kV-scale
        #: gap voltages into the 2 Vpp ADC range).  The dual-harmonic sum
        #: peaks at up to (1 + r)·V̂₁, so the ADC-side signal is shrunk by
        #: (1 + r) to stay inside the rails and the scale grows to match.
        self._dh_headroom = 1.0 + self._dh_ratio
        self.gap_scale = (
            self.gap_voltage_amplitude * self._dh_headroom / config.adc_amplitude
        )
        self.ref_scale = config.harmonic * self.gap_voltage_amplitude * (
            1.0 - 2.0 * self._dh_ratio
        ) / config.adc_amplitude
        self._adc = ADC(bits=14, vpp=2.0, sample_rate=250e6)

        # Fault injection: explicit config faults win; an empty config
        # consults the session faults armed by the runner's --faults
        # flag.  Unfaulted benches keep self._faults is None, so the hot
        # path pays exactly one None check per revolution.
        faults = config.faults
        if not faults:
            from repro.faults.session import session_faults

            faults = session_faults()
        if faults:
            from repro.faults.inject import FaultProgram
            from repro.signal.dac import DAC

            self._faults = FaultProgram(
                faults,
                adc_bits=self._adc.bits,
                dac_full_scale=DAC(bits=16, vpp=2.0).full_scale,
            )
        else:
            self._faults = None

        self.model: CompiledModel = compile_beam_model(
            n_bunches=config.n_bunches,
            pipelined=config.pipelined,
            config=config.cgra_config,
        )
        self.deadline = DeadlineMonitor(
            self.model.schedule_length,
            cgra_clock_hz=config.cgra_config.clock_mhz * 1e6,
        )

        # Mutable run state:
        self._gap_phase_rad = 0.0
        self._time = 0.0
        self._turn = 0
        self._delta_t = np.zeros(config.n_bunches)
        self._executor: CgraExecutor | None = None
        initial = (
            np.asarray(config.initial_delta_t, dtype=float)
            if config.initial_delta_t is not None
            else np.zeros(config.n_bunches)
        )
        if config.engine == "cgra":
            self._executor = self._build_executor()
            for i, value in enumerate(initial):
                if value != 0.0:
                    self._executor.set_register(f"dt[{i}]", float(value))
        else:
            self._py_gamma_r = self.gamma0
            self._py_dgamma = np.zeros(config.n_bunches)
            self._py_dt = initial.copy()
            # Pipelined semantics: stage 2 consumes the voltages sensed in
            # the *previous* iteration (the pipeline_barrier() registers).
            self._py_prev_v_r = 0.0
            self._py_prev_v_a = np.zeros(config.n_bunches)
        self._delta_t[:] = initial

    # -- engine plumbing -------------------------------------------------

    def _maybe_quantize(self, adc_volts: float) -> float:
        if not self.config.quantize_adc:
            return adc_volts
        return self._adc.quantize_scalar(adc_volts)

    def _ref_adc_voltage(self, addr_samples: float) -> float:
        """Reference-buffer read: undisturbed sine at f_R, ADC volts.

        Deliberately fault-free: the reference leg doubles as the
        synchronous-energy bookkeeping (``gamma_r += q/mc² · v_r``), so
        all signal-chain faults act on the gap leg (see
        :mod:`repro.faults.inject`).
        """
        t = addr_samples / 250e6
        v = self.config.adc_amplitude * math.sin(TWO_PI * self.f_rev * t)
        return self._maybe_quantize(v)

    def _gap_adc_voltage(self, addr_samples: float) -> float:
        """Gap-buffer read: (dual-)harmonic signal with the commanded phase."""
        t = addr_samples / 250e6
        base = TWO_PI * self.config.harmonic * self.f_rev * t + self._gap_phase_rad
        f = self._faults
        if f is not None and f.active:
            return self._faulted_gap_voltage(base, f)
        if self._dh_ratio:
            v = (self.config.adc_amplitude / self._dh_headroom) * (
                math.sin(base) - self._dh_ratio * math.sin(2.0 * base)
            )
        else:
            v = self.config.adc_amplitude * math.sin(base)
        return self._maybe_quantize(v)

    def _faulted_gap_voltage(self, base: float, f) -> float:
        """Gap transfer with the active fault channels folded in.

        Same physics as the clean branch plus phase offset, gradient
        loss, clip level and stuck ADC bits; a stuck bit acts on output
        *codes*, so it forces the conversion even with ``quantize_adc``
        off (the fault is defined in the code domain).
        """
        base += f.gap_phase
        if self._dh_ratio:
            v = (self.config.adc_amplitude / self._dh_headroom) * (
                math.sin(base) - self._dh_ratio * math.sin(2.0 * base)
            )
        else:
            v = self.config.adc_amplitude * math.sin(base)
        v *= f.gap_gain
        clip = f.gap_clip
        if v > clip:
            v = clip
        elif v < -clip:
            v = -clip
        if f.stuck_any:
            code = self._adc.apply_stuck_mask_scalar(
                self._adc.convert_scalar(v), f.stuck_mask
            )
            return code * self._adc.lsb
        return self._maybe_quantize(v)

    def _build_executor(self) -> CgraExecutor:
        bus = SensorBus()
        t_rev = 1.0 / self.f_rev
        bus.register_reader(SENSOR_PERIOD, lambda: t_rev)
        bus.register_addr_reader(SENSOR_REF_BUFFER, self._ref_adc_voltage)
        bus.register_addr_reader(SENSOR_GAP_BUFFER, self._gap_adc_voltage)
        for i in range(self.config.n_bunches):
            def writer(value: float, i: int = i) -> None:
                self._delta_t[i] = value
            bus.register_writer(ACTUATOR_DELTA_T + i, writer)
        params = self.model.default_params(
            gamma_r0=self.gamma0,
            q_over_mc2=self.config.ion.gamma_gain_per_volt(),
            orbit_length=self.config.ring.circumference,
            alpha_c=self.config.ring.alpha_c,
            v_scale=self.gap_scale,
            v_scale_ref=self.ref_scale,
            f_sample=250e6,
            harmonic=self.config.harmonic,
        )
        return CgraExecutor(
            self.model.schedule,
            bus,
            params,
            precision=self.config.precision,
            engine=self.config.cgra_engine,
        )

    def _python_step(self) -> None:
        """One revolution of the model equations, mirroring the C model.

        The Δt outputs are latched *before* the update (stage-1 IO), so
        the visible output matches the CGRA's by construction.
        """
        cfg = self.config
        self._delta_t[:] = self._py_dt
        t_rev = 1.0 / self.f_rev
        gamma_r = self._py_gamma_r
        inv_g2 = 1.0 / (gamma_r * gamma_r)
        beta_r = math.sqrt(1.0 - inv_g2)
        t_ref = cfg.ring.circumference / (beta_r * SPEED_OF_LIGHT)
        d_t = t_ref - t_rev
        v_r = self._ref_adc_voltage(d_t * 250e6) * self.ref_scale
        spacing = t_rev / cfg.harmonic
        qmc2 = cfg.ion.gamma_gain_per_volt()
        v_a = np.empty(cfg.n_bunches)
        for i in range(cfg.n_bunches):
            addr = (d_t + spacing * i + self._py_dt[i]) * 250e6
            v_a[i] = self._gap_adc_voltage(addr) * self.gap_scale
        if cfg.pipelined:
            # Swap in the previous iteration's voltages (pipeline registers).
            v_r, self._py_prev_v_r = self._py_prev_v_r, v_r
            v_a, self._py_prev_v_a = self._py_prev_v_a, v_a
        gamma_r = gamma_r + qmc2 * v_r
        inv_g2n = 1.0 / (gamma_r * gamma_r)
        eta = cfg.ring.alpha_c - inv_g2n
        beta_r2 = 1.0 - inv_g2n
        k_dt = cfg.ring.circumference * eta / (beta_r2 * SPEED_OF_LIGHT * gamma_r)
        for i in range(cfg.n_bunches):
            self._py_dgamma[i] += qmc2 * (v_a[i] - v_r)
            gamma_a = gamma_r + self._py_dgamma[i]
            beta_a = math.sqrt(1.0 - 1.0 / (gamma_a * gamma_a))
            self._py_dt[i] += k_dt * self._py_dgamma[i] / beta_a
        self._py_gamma_r = gamma_r

    # -- the loop ---------------------------------------------------------

    def measured_phase_deg(self) -> float:
        """DSP phase detector reading (degrees at h·f_R).

        ``control_source`` selects bunch 0 or the average dipole phase of
        all simulated bunches.  Polarity: a +x° gap phase jump settles at
        a +x° reading (the Fig. 5 convention) — see
        :mod:`repro.control.beam_phase_loop` for the sign derivation.
        """
        if self.config.control_source == "mean":
            dt = float(self._delta_t.mean())
        else:
            dt = float(self._delta_t[0])
        return -360.0 * self.config.harmonic * self.f_rev * dt

    def step_revolution(self) -> None:
        """Advance the closed loop by one revolution.

        The three stages map onto the profiler's closed-loop phases:
        **actuate** (gap phase programming), **compute** (beam model
        iteration), **sense** (DSP measurement + control update).  Off
        the profiled path this costs a single flag check per revolution.
        """
        if _OBS.profile:
            self._step_revolution_profiled()
            return
        f = self._faults
        if f is not None:
            f.update(self._time)
        # 1. gap phase for this revolution: AWG drive + control correction.
        jump_rad = float(self.jump.phase_rad_at(self._time))
        self._gap_phase_rad = jump_rad + deg_to_rad(self.control.last_output_deg)
        # 2. beam model iteration (emits Δt of this revolution).
        if self._executor is not None:
            self._executor.run_iteration()
        else:
            self._python_step()
        # 3. DSP measurement + control update.
        self.control.update(self.measured_phase_deg())
        self._turn += 1
        self._time += 1.0 / self.f_rev

    def _step_revolution_profiled(self) -> None:
        """step_revolution with per-phase timing (profiling on)."""
        profiler = get_profiler()
        f = self._faults
        if f is not None:
            f.update(self._time)
        t0 = perf_counter()
        jump_rad = float(self.jump.phase_rad_at(self._time))
        self._gap_phase_rad = jump_rad + deg_to_rad(self.control.last_output_deg)
        t1 = perf_counter()
        if self._executor is not None:
            self._executor.run_iteration()
        else:
            self._python_step()
        t2 = perf_counter()
        self.control.update(self.measured_phase_deg())
        t3 = perf_counter()
        profiler.add("hil.actuate", t1 - t0)
        profiler.add("hil.compute", t2 - t1)
        profiler.add("hil.sense", t3 - t2)
        self._turn += 1
        self._time += 1.0 / self.f_rev

    def run(self, duration: float) -> HilRunResult:
        """Run the bench for ``duration`` seconds of machine time."""
        if duration <= 0:
            raise HilError("duration must be positive")
        n_turns = int(round(duration * self.f_rev))
        # The revolution period is constant in this scenario: check the
        # real-time budget once per revolution via the monitor (cheap).
        rec_every = self.config.record_every
        n_rec = n_turns // rec_every + 1
        time = np.empty(n_rec)
        phase = np.empty(n_rec)
        corr = np.empty(n_rec)
        jump = np.empty(n_rec)
        dts = np.empty(n_rec)
        dts_all = np.empty((n_rec, self.config.n_bunches))
        gam = np.empty(n_rec)
        idx = 0

        def record() -> None:
            nonlocal idx
            time[idx] = self._time
            phase[idx] = self.measured_phase_deg()
            corr[idx] = self.control.last_output_deg
            jump[idx] = float(self.jump.phase_deg_at(self._time))
            dts[idx] = float(self._delta_t[0])
            dts_all[idx] = self._delta_t
            gam[idx] = (
                self._executor.register_of("gamma_r")
                if self._executor is not None
                else self._py_gamma_r
            )
            idx += 1

        record()
        t_rev = 1.0 / self.f_rev
        span_attrs = dict(
            engine=self.config.engine, duration_s=duration, n_turns=n_turns
        )
        if self._faults is not None:
            span_attrs["fault"] = self._faults.label
        with get_tracer().span("hil.run", **span_attrs):
            for n in range(n_turns):
                self.deadline.check_revolution(t_rev)
                self.step_revolution()
                if (n + 1) % rec_every == 0:
                    record()
        # allow_empty guards the degenerate sub-revolution duration
        # (n_turns == 0): well-defined empty stats, not a crash.
        stats = self.deadline.stats(allow_empty=True)
        if _OBS.enabled:
            _HIL_ITERATIONS.inc(n_turns, engine=self.config.engine)
            extras = {}
            if self._faults is not None:
                extras["fault"] = self._faults.label
            record_hil_run(
                name="cavity_in_the_loop",
                stats=stats,
                schedule_length=self.model.schedule_length,
                engine=self.config.engine,
                duration_s=duration,
                f_rev_hz=self.f_rev,
                control_saturations=self.control.saturation_count,
                **extras,
            )
        return HilRunResult(
            time=time[:idx],
            phase_deg=phase[:idx],
            correction_deg=corr[:idx],
            jump_deg=jump[:idx],
            delta_t=dts[:idx],
            delta_t_all=dts_all[:idx],
            gamma_ref=gam[:idx],
            deadline=stats,
            schedule_length=self.model.schedule_length,
            engine=self.config.engine,
        )
