"""Sample-accurate FPGA framework top level (paper Fig. 3).

Wires together, at the 250 MHz sample clock, exactly the blocks of the
block diagram: two ADC channels into two 8192-deep ring buffers, the
zero-crossing + period-length detectors on the reference channel, the
CGRA running one model iteration per reference period through the
SensorAccess bus, the Gauss-pulse generator triggered by the model's Δt
outputs, and the DAC producing the beam (and monitor) output.

Initialisation follows Section IV-B: the model is not started until the
period-length detector has seen **four full sine periods**; γ_R,0 is then
derived from the measured revolution time (Eq. 1), and Δγ₀ = Δt₀ = 0.

Ring-buffer addressing: the model sends addresses in (fractional) samples
relative to a positive zero crossing of the reference.  Because bunch
positions extend up to one full revolution *ahead* of the most recent
crossing — samples that have not been captured yet — the framework
resolves addresses against the crossing **one period earlier**, i.e.
within the last fully captured period.  This is exactly why the paper's
buffers "need to hold at least two full cycles of the reference voltage".

A :class:`~repro.hil.softcore.ParameterInterface` exposes the runtime
knobs (output scaling, monitor-source select, recording), and every
iteration is checked against the revolution deadline by a
:class:`~repro.hil.realtime.DeadlineMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cgra.executor import CgraExecutor
from repro.cgra.fabric import CgraConfig
from repro.cgra.models import CompiledModel, compile_beam_model
from repro.cgra.sensor import (
    ACTUATOR_DELTA_T,
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
    SensorBus,
)
from repro.errors import ConfigurationError, HilError
from repro.hil.realtime import DeadlineMonitor
from repro.hil.softcore import DramRecorder, ParameterInterface
from repro.obs import get_registry, get_tracer
from repro.obs._state import STATE as _OBS
from repro.obs.profile import get_profiler
from repro.physics.ion import IonSpecies
from repro.physics.ring import SynchrotronRing
from repro.signal.adc import ADC
from repro.signal.dac import DAC
from repro.signal.gauss_pulse import GaussPulseGenerator
from repro.signal.ringbuffer import RingBuffer
from repro.signal.waveform import Waveform
from repro.signal.zerocrossing import PeriodLengthDetector

__all__ = ["FrameworkConfig", "FpgaFramework"]

_REV_PERIOD = get_registry().gauge(
    "hil_revolution_period_seconds", "most recent measured revolution period"
)
_RB_FILL = get_registry().gauge(
    "signal_ringbuffer_fill", "ring-buffer fill fraction [0, 1]"
)
_FRAMEWORK_ITERATIONS = get_registry().counter(
    "hil_iterations_total", "HIL model iterations run"
)
_SAMPLES_FED = get_registry().counter(
    "hil_samples_fed_total", "ADC sample pairs fed through the framework"
)


@dataclass(frozen=True)
class FrameworkConfig:
    """Static configuration of the FPGA framework instance.

    The scaling fields are the bench's calibration: the DDS amplitudes at
    the ADC inputs are volts-scale stand-ins for kV-scale gap voltages,
    "scaled down on the beam side of the setup to fit within the
    acceptable ADC and DAC voltage ranges".
    """

    ring: SynchrotronRing
    ion: IonSpecies
    harmonic: int
    #: ADC volts → real gap volts for the gap channel.
    gap_volts_per_adc_volt: float
    #: ADC volts → effective gap volts for the reference channel (carries
    #: the harmonic factor, see :mod:`repro.cgra.models`).
    ref_volts_per_adc_volt: float
    sample_rate: float = 250e6
    ring_buffer_capacity: int = 8192
    n_bunches: int = 1
    pipelined: bool = True
    precision: str = "single"
    #: CGRA execution engine: ``"interpreted"``, ``"compiled"``, or None
    #: for the session default.  Both are bit-exact.
    engine: str | None = None
    cgra_config: CgraConfig = field(default_factory=CgraConfig)
    #: Beam pickup pulse sigma in seconds.
    pulse_sigma: float = 25e-9
    pulse_amplitude: float = 0.8
    deadline_policy: str = "raise"

    def __post_init__(self) -> None:
        if self.harmonic < 1:
            raise ConfigurationError("harmonic must be >= 1")
        if self.n_bunches < 1 or self.n_bunches > self.harmonic:
            raise ConfigurationError(
                f"n_bunches must be in [1, harmonic={self.harmonic}], got {self.n_bunches}"
            )
        if self.gap_volts_per_adc_volt <= 0 or self.ref_volts_per_adc_volt <= 0:
            raise ConfigurationError("voltage scales must be positive")
        if self.engine not in (None, "interpreted", "compiled", "vector", "auto"):
            raise ConfigurationError(
                "engine must be None, 'interpreted', 'compiled', 'vector' or 'auto', "
                f"got {self.engine!r}"
            )


class FpgaFramework:
    """The Fig. 3 design, processing ADC sample blocks."""

    def __init__(self, config: FrameworkConfig) -> None:
        self.config = config
        self.adc_ref = ADC(bits=14, vpp=2.0, sample_rate=config.sample_rate)
        self.adc_gap = ADC(bits=14, vpp=2.0, sample_rate=config.sample_rate)
        self.dac_beam = DAC(bits=16, vpp=2.0, sample_rate=config.sample_rate)
        self.dac_monitor = DAC(bits=16, vpp=2.0, sample_rate=config.sample_rate)
        self.buffer_ref = RingBuffer(config.ring_buffer_capacity)
        self.buffer_gap = RingBuffer(config.ring_buffer_capacity)
        self.period_detector = PeriodLengthDetector(config.sample_rate, average_over=4)
        self.pulse_generator = GaussPulseGenerator(
            sigma=config.pulse_sigma,
            sample_rate=config.sample_rate,
            amplitude=config.pulse_amplitude,
        )
        self.model: CompiledModel = compile_beam_model(
            n_bunches=config.n_bunches,
            pipelined=config.pipelined,
            config=config.cgra_config,
        )
        self.deadline = DeadlineMonitor(
            self.model.schedule_length,
            cgra_clock_hz=config.cgra_config.clock_mhz * 1e6,
            policy=config.deadline_policy,
        )
        # Parameter interface (SpartanMC): runtime-adjustable knobs.
        self.params = ParameterInterface()
        self.params.define("beam_output_scale", scale=1.0 / 4096, initial=1.0)
        self.params.define("monitor_select", scale=1.0, initial=0.0)  # 0=Δt, 1=mirror
        self.params.define("record_enable", scale=1.0, initial=1.0)
        #: Per-revolution record: [iteration, period_s, delta_t_0.., ]
        self.recorder = DramRecorder(n_columns=2 + config.n_bunches)

        self._bus = SensorBus()
        self._bus.register_reader(SENSOR_PERIOD, self._sensor_period)
        self._bus.register_addr_reader(SENSOR_REF_BUFFER, self._fetch_ref)
        self._bus.register_addr_reader(SENSOR_GAP_BUFFER, self._fetch_gap)
        for i in range(config.n_bunches):
            self._bus.register_writer(ACTUATOR_DELTA_T + i, self._make_delta_t_writer(i))

        self._executor: CgraExecutor | None = None
        self._last_iteration_crossing: float | None = None
        self._current_delta_t = np.zeros(config.n_bunches)
        self._samples_fed = 0
        #: Most recent measured period (samples) cached per iteration.
        self._iteration_period_s: float | None = None
        self._iteration_base_index: float | None = None

    # -- sensor handlers -----------------------------------------------

    def _sensor_period(self) -> float:
        return self.period_detector.period_seconds()

    def _resolve_address(self, addr: float) -> float:
        """Model-relative address → absolute fractional buffer index.

        Resolved against the zero crossing one period before the latest
        one, so every reachable bunch position lies in captured data.
        """
        if self._iteration_base_index is None:
            raise HilError("buffer fetch outside a model iteration")
        return self._iteration_base_index + addr

    def _fetch_ref(self, addr: float) -> float:
        return self.buffer_ref.fetch_interpolated(self._resolve_address(addr))

    def _fetch_gap(self, addr: float) -> float:
        return self.buffer_gap.fetch_interpolated(self._resolve_address(addr))

    def _make_delta_t_writer(self, bunch: int):
        def write(value: float) -> None:
            self._current_delta_t[bunch] = value
            # Trigger time: next passage of bunch `bunch` at the gap —
            # one period after the latest crossing plus the bunch spacing
            # plus the model's Δt.
            period = self._iteration_period_s
            crossing_t = self.period_detector.last_crossing_time
            spacing = period / self.config.harmonic
            trigger = crossing_t + period + spacing * bunch + value
            self.pulse_generator.schedule(trigger)

        return write

    # -- public interface ------------------------------------------------

    @property
    def initialised(self) -> bool:
        """True once four periods were measured and the model started."""
        return self._executor is not None

    @property
    def executor(self) -> CgraExecutor:
        """The running CGRA executor (after initialisation)."""
        if self._executor is None:
            raise HilError("model not initialised yet (waiting for four sine periods)")
        return self._executor

    @property
    def delta_t(self) -> np.ndarray:
        """Most recent Δt per bunch (seconds)."""
        return self._current_delta_t.copy()

    def _initialise_executor(self) -> None:
        cfg = self.config
        f_rev = self.period_detector.frequency()
        gamma0 = cfg.ring.gamma_from_revolution_frequency(f_rev)
        params = self.model.default_params(
            gamma_r0=gamma0,
            q_over_mc2=cfg.ion.gamma_gain_per_volt(),
            orbit_length=cfg.ring.circumference,
            alpha_c=cfg.ring.alpha_c,
            v_scale=cfg.gap_volts_per_adc_volt,
            v_scale_ref=cfg.ref_volts_per_adc_volt,
            f_sample=cfg.sample_rate,
            harmonic=cfg.harmonic,
        )
        self._executor = CgraExecutor(
            self.model.schedule, self._bus, params, precision=cfg.precision, engine=cfg.engine
        )

    def feed(self, ref_samples: np.ndarray, gap_samples: np.ndarray) -> tuple[Waveform, Waveform]:
        """Process one block of analogue input; returns (beam, monitor) output.

        Blocks are consumed contiguously; one model iteration runs for
        every *new* positive zero crossing of the reference once the
        four-period initialisation is complete.
        """
        ref_samples = np.asarray(ref_samples, dtype=float)
        gap_samples = np.asarray(gap_samples, dtype=float)
        if ref_samples.shape != gap_samples.shape or ref_samples.ndim != 1:
            raise HilError("ref and gap blocks must be equal-length 1-D arrays")
        t0 = self._samples_fed / self.config.sample_rate
        n = ref_samples.size

        ref_q = self.adc_ref.quantize(ref_samples)
        gap_q = self.adc_gap.quantize(gap_samples)
        self.buffer_ref.write(ref_q)
        self.buffer_gap.write(gap_q)
        self.period_detector.feed(ref_q)
        self._samples_fed += n
        if _OBS.enabled:
            _SAMPLES_FED.inc(n)
            _RB_FILL.set(self.buffer_ref.fill_fraction)

        if self.period_detector.ready:
            if self._executor is None:
                self._initialise_executor()
            latest = self.period_detector.last_crossing_index
            if self._last_iteration_crossing is None or latest > self._last_iteration_crossing:
                self._run_iteration()
                self._last_iteration_crossing = latest

        beam = self.pulse_generator.render(t0, n)
        scale = self.params.read("beam_output_scale")
        beam_out = self.dac_beam.render_waveform(beam.samples * scale, t0)
        monitor_out = self._monitor_block(beam_out)
        return beam_out, monitor_out

    def _run_iteration(self) -> None:
        period_s = self.period_detector.period_seconds()
        period_samples = self.period_detector.period_samples()
        self._iteration_period_s = period_s
        self._iteration_base_index = (
            self.period_detector.last_crossing_index - period_samples
        )
        with get_tracer().span(
            "hil.iteration", iteration=self.executor.iterations, period_s=period_s
        ):
            self.deadline.check_revolution(period_s)
            # The framework's model step is the closed loop's "compute"
            # phase; one profiler phase per iteration when profiling on.
            with get_profiler().phase("hil.model_iteration"):
                self.executor.run_iteration()
        if _OBS.enabled:
            _REV_PERIOD.set(period_s)
            _FRAMEWORK_ITERATIONS.inc(engine="framework")
        self._iteration_base_index = None
        if self.params.read("record_enable") >= 1.0:
            self.recorder.record(
                float(self.executor.iterations), period_s, *self._current_delta_t
            )

    def _monitor_block(self, beam_out: Waveform) -> Waveform:
        """Second DAC channel (paper: "either show the phase difference
        calculated in the model or mirror the generated signal").

        ``monitor_select`` = 0: the model's phase difference of bunch 0
        as a DC level, 90° per volt; = 1: mirror of the beam output.
        """
        if self.params.read("monitor_select") >= 1.0:
            return Waveform(beam_out.samples.copy(), beam_out.sample_rate, beam_out.t0)
        phase_deg = (
            -360.0
            * self.config.harmonic
            * (1.0 / self._iteration_period_s if self._iteration_period_s else 0.0)
            * float(self._current_delta_t[0])
        )
        level = phase_deg / 90.0  # 90 degrees per volt
        return self.dac_monitor.render_waveform(
            np.full(len(beam_out), level), beam_out.t0
        )
