"""Batched closed-loop bench: B independent scenarios in lockstep.

One compiled CGRA program advances ``B`` independent closed-loop
scenarios simultaneously (:class:`repro.cgra.BatchedCgraExecutor` with
NumPy ``[B]`` array registers).  Every lane is a full Fig. 4 loop —
analytic DDS sensors, optional ADC quantisation, DSP phase detector and
the beam-phase control filter — but sensor reads, actuator writes and
the control update happen once per revolution for the whole batch, so
experiment sweeps (jump-amplitude scans, ablations, Monte-Carlo jitter
studies) pay one engine iteration per revolution instead of ``B``.

Per-lane semantics match :class:`repro.hil.simulator.CavityInTheLoop`
with ``engine="cgra"``: the model math is bit-exact with the scalar
compiled engine (the batch register file applies the same per-op
float32/float64 rounding elementwise), while the analytic sensor
handlers use NumPy transcendentals (``np.sin``) whose results may differ
from ``math.sin`` by the platform libm's ULP — lane traces therefore
agree with scalar runs to floating-point noise, not necessarily
bit-for-bit (see docs/PERFORMANCE.md).

The per-lane sweep variable is the phase-jump amplitude; ring, ion and
RF calibration are lane-uniform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cgra.engine import BatchedCgraExecutor
from repro.cgra.fabric import CgraConfig
from repro.cgra.models import CompiledModel, compile_beam_model
from repro.cgra.sensor import (
    ACTUATOR_DELTA_T,
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
    BatchSensorBus,
)
from repro.constants import TWO_PI, deg_to_rad
from repro.control import ControlLoopConfig
from repro.errors import ConfigurationError, HilError
from repro.faults.spec import FaultSpec
from repro.hil.realtime import DeadlineMonitor, JitterStats
from repro.obs import get_registry, get_tracer, record_hil_run
from repro.obs._state import STATE as _OBS
from repro.obs.profile import get_profiler
from repro.physics.ion import IonSpecies
from repro.physics.rf import RFSystem, voltage_for_synchrotron_frequency
from repro.physics.ring import SynchrotronRing
from repro.signal.adc import ADC
from repro.signal.awg import PhaseJumpPattern
from repro.signal.fir import PhaseControlFilter

__all__ = ["BatchHilConfig", "BatchHilRunResult", "BatchedCavityInTheLoop"]

_HIL_ITERATIONS = get_registry().counter(
    "hil_iterations_total", "HIL model iterations run"
)
_LANE_ITERATIONS = get_registry().counter(
    "hil_lane_iterations_total", "batched HIL lane-iterations run (iterations x lanes)"
)


@dataclass(frozen=True)
class BatchHilConfig:
    """Configuration of a batched cavity-in-the-loop run.

    ``jump_deg`` holds one phase-jump amplitude per lane; its length is
    the batch size B.
    """

    ring: SynchrotronRing
    ion: IonSpecies
    #: Per-lane phase-jump amplitudes in degrees; length = batch size.
    jump_deg: tuple[float, ...]
    harmonic: int = 4
    revolution_frequency: float = 800e3
    synchrotron_frequency: float = 1.28e3
    jump_toggle_period: float = 0.05
    jump_start_time: float = 0.005
    control: ControlLoopConfig | None = None
    n_bunches: int = 1
    precision: str = "single"
    pipelined: bool = True
    cgra_config: CgraConfig = field(default_factory=CgraConfig)
    quantize_adc: bool = True
    adc_amplitude: float = 0.9
    record_every: int = 1
    #: Per-lane initial arrival offset (seconds), applied to every bunch
    #: of that lane; None = all lanes start on their zero crossings.
    initial_delta_t: tuple[float, ...] | None = None
    control_source: str = "bunch0"
    #: Faults to arm; each spec's ``target`` selects the lane it acts
    #: on (see :mod:`repro.faults.inject`).  The empty default also
    #: consults the session faults armed by the runner's ``--faults``
    #: flag.
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if len(self.jump_deg) < 1:
            raise ConfigurationError("jump_deg needs at least one lane")
        if self.harmonic < 1:
            raise ConfigurationError("harmonic must be >= 1")
        if self.n_bunches < 1 or self.n_bunches > self.harmonic:
            raise ConfigurationError("n_bunches must be in [1, harmonic]")
        if self.revolution_frequency <= 0:
            raise ConfigurationError("revolution_frequency must be positive")
        if self.synchrotron_frequency <= 0:
            raise ConfigurationError("synchrotron_frequency must be positive")
        if not 0 < self.adc_amplitude <= 1.0:
            raise ConfigurationError("adc_amplitude must be in (0, 1] volts")
        if self.record_every < 1:
            raise ConfigurationError("record_every must be >= 1")
        if self.jump_toggle_period <= 0:
            raise ConfigurationError("jump_toggle_period must be positive")
        if self.initial_delta_t is not None and len(self.initial_delta_t) != len(self.jump_deg):
            raise ConfigurationError(
                f"initial_delta_t needs {len(self.jump_deg)} entries, "
                f"got {len(self.initial_delta_t)}"
            )
        if self.control_source not in ("bunch0", "mean"):
            raise ConfigurationError(
                f"control_source must be 'bunch0' or 'mean', got {self.control_source!r}"
            )
        for s in self.faults:
            if not isinstance(s, FaultSpec):
                raise ConfigurationError(
                    f"faults must be FaultSpec instances, got {type(s).__name__}"
                )

    @property
    def batch(self) -> int:
        """Number of lanes."""
        return len(self.jump_deg)


@dataclass
class BatchHilRunResult:
    """Recorded traces of one batched run (decimated by ``record_every``).

    Per-record arrays carry one column per lane.
    """

    #: Machine time of each record, seconds — shape (n_records,).
    time: np.ndarray
    #: DSP phase difference per lane, degrees at h·f_R — (n_records, B).
    phase_deg: np.ndarray
    #: Control correction per lane, degrees — (n_records, B).
    correction_deg: np.ndarray
    #: Commanded jump drive per lane, degrees — (n_records, B).
    jump_deg: np.ndarray
    #: Arrival-time offset of bunch 0 per lane, seconds — (n_records, B).
    delta_t: np.ndarray
    #: All bunches — (n_records, B, n_bunches).
    delta_t_all: np.ndarray
    #: Reference Lorentz factor per lane — (n_records, B).
    gamma_ref: np.ndarray
    #: Real-time slack statistics of the run.
    deadline: JitterStats
    schedule_length: int
    batch: int


class _VectorControlLoop:
    """Array-valued mirror of :class:`repro.control.BeamPhaseControlLoop`.

    Runs B independent control filters in lockstep: identical recurrence,
    decimation, enable and saturation semantics, with ``saturation_count``
    totalled across lanes.
    """

    def __init__(self, config: ControlLoopConfig, batch: int) -> None:
        self.config = config
        # Reuse the scalar filter's normalisation math (r, g·C).
        template = PhaseControlFilter(
            f_pass=config.f_pass,
            gain=config.gain * config.gain_scale,
            recursion_factor=config.recursion_factor,
            sample_rate=config.sample_rate / config.update_divider,
        )
        self._r = template.recursion_factor
        self._gc = template.gain * template._c
        self._x_prev = np.zeros(batch)
        self._y_prev = np.zeros(batch)
        self._tick = 0
        self._last_output = np.zeros(batch)
        self.saturation_count = 0
        # Scratch buffers for the allocation-free update below.
        self._t1 = np.empty(batch)
        self._t2 = np.empty(batch)
        self._u = np.empty(batch)

    @property
    def last_output_deg(self) -> np.ndarray:
        """Most recent per-lane correction, degrees — shape (B,)."""
        return self._last_output

    def update(self, measured_phase_deg: np.ndarray) -> np.ndarray:
        """Feed one phase measurement per lane; returns the corrections."""
        if not self.config.enabled:
            self._last_output = np.zeros_like(self._last_output)
            return self._last_output
        run_now = (self._tick % self.config.update_divider) == 0
        self._tick += 1
        if not run_now:
            return self._last_output
        x = np.asarray(measured_phase_deg, dtype=float)
        # In-place form of u = r*y_prev + gc*(x - x_prev): each elementwise
        # op matches the allocating expression (scalar multiplies commute
        # bit-exactly), so results are identical with zero per-call arrays.
        t1, t2, u = self._t1, self._t2, self._u
        np.multiply(self._y_prev, self._r, out=t1)
        np.subtract(x, self._x_prev, out=t2)
        np.multiply(t2, self._gc, out=t2)
        np.add(t1, t2, out=u)
        np.copyto(self._x_prev, x)
        # y_prev feeds back the *unclipped* output, matching the scalar loop.
        np.copyto(self._y_prev, u)
        limit = self.config.saturation_deg
        if limit is not None:
            saturated = int(np.count_nonzero(np.abs(u) > limit))
            if saturated:
                self.saturation_count += saturated
                np.clip(u, -limit, limit, out=u)
        self._last_output = u
        return u


class BatchedCavityInTheLoop:
    """The Fig. 4 closed loop, B lanes per revolution."""

    def __init__(self, config: BatchHilConfig) -> None:
        self.config = config
        self.batch = config.batch
        ring, ion = config.ring, config.ion
        self.f_rev = config.revolution_frequency
        self.gamma0 = ring.gamma_from_revolution_frequency(self.f_rev)
        probe = RFSystem(harmonic=config.harmonic, voltage=1.0)
        self.gap_voltage_amplitude = voltage_for_synchrotron_frequency(
            ring, ion, probe, self.gamma0, config.synchrotron_frequency
        )
        self.rf = probe.with_voltage(self.gap_voltage_amplitude)
        self._jump_unit = PhaseJumpPattern(
            jump_deg=1.0,
            toggle_period=config.jump_toggle_period,
            start_time=config.jump_start_time,
        )
        self._jump_amps = np.asarray(config.jump_deg, dtype=float)
        control_cfg = config.control or ControlLoopConfig(sample_rate=self.f_rev)
        if abs(control_cfg.sample_rate - self.f_rev) > 1e-6 * self.f_rev:
            raise ConfigurationError(
                "control sample_rate must equal the revolution frequency "
                f"({self.f_rev}), got {control_cfg.sample_rate}"
            )
        self.control = _VectorControlLoop(control_cfg, self.batch)

        self.gap_scale = self.gap_voltage_amplitude / config.adc_amplitude
        self.ref_scale = config.harmonic * self.gap_voltage_amplitude / config.adc_amplitude
        self._adc = ADC(bits=14, vpp=2.0, sample_rate=250e6)

        # Fault injection (same contract as the scalar bench): per-lane
        # faults via each spec's target index, None when disarmed.
        faults = config.faults
        if not faults:
            from repro.faults.session import session_faults

            faults = session_faults()
        if faults:
            from repro.faults.inject import FaultProgram
            from repro.signal.dac import DAC

            self._faults = FaultProgram(
                faults,
                batch=self.batch,
                adc_bits=self._adc.bits,
                dac_full_scale=DAC(bits=16, vpp=2.0).full_scale,
            )
        else:
            self._faults = None

        self.model: CompiledModel = compile_beam_model(
            n_bunches=config.n_bunches,
            pipelined=config.pipelined,
            config=config.cgra_config,
        )
        self.deadline = DeadlineMonitor(
            self.model.schedule_length,
            cgra_clock_hz=config.cgra_config.clock_mhz * 1e6,
        )

        self._gap_phase_rad = np.zeros(self.batch)
        self._time = 0.0
        self._turn = 0
        self._delta_t = np.zeros((self.batch, config.n_bunches))
        self._executor = self._build_executor()
        if config.initial_delta_t is not None:
            initial = np.asarray(config.initial_delta_t, dtype=float)
            for i in range(config.n_bunches):
                self._executor.set_register(f"dt[{i}]", initial)
            self._delta_t[:] = initial[:, None]

    # -- engine plumbing -------------------------------------------------

    def _maybe_quantize(self, adc_volts: np.ndarray) -> np.ndarray:
        if not self.config.quantize_adc:
            return adc_volts
        return self._adc.quantize(adc_volts)

    def _ref_adc_voltage(self, addr_samples: np.ndarray) -> np.ndarray:
        """Reference-buffer read: undisturbed sine at f_R, ADC volts.

        Deliberately fault-free: the reference leg doubles as the
        synchronous-energy bookkeeping, so all signal-chain faults act
        on the gap leg (see :mod:`repro.faults.inject`).
        """
        t = addr_samples / 250e6
        v = self.config.adc_amplitude * np.sin(TWO_PI * self.f_rev * t)
        return self._maybe_quantize(v)

    def _gap_adc_voltage(self, addr_samples: np.ndarray) -> np.ndarray:
        """Gap-buffer read: harmonic signal with the commanded phase."""
        t = addr_samples / 250e6
        base = TWO_PI * self.config.harmonic * self.f_rev * t + self._gap_phase_rad
        f = self._faults
        if f is not None and f.active:
            # Per-lane fault channels; unfaulted lanes carry neutral
            # elements (+0.0, x1.0, clip at inf, mask 0), which are
            # bitwise no-ops, so co-resident lanes are undisturbed.
            v = self.config.adc_amplitude * np.sin(base + f.gap_phase)
            v = v * f.gap_gain
            np.clip(v, -f.gap_clip, f.gap_clip, out=v)
            if f.stuck_any:
                codes = self._adc.apply_stuck_mask(self._adc.convert(v), f.stuck_mask)
                return self._adc.codes_to_volts(codes)
            return self._maybe_quantize(v)
        v = self.config.adc_amplitude * np.sin(base)
        return self._maybe_quantize(v)

    def _build_executor(self) -> BatchedCgraExecutor:
        bus = BatchSensorBus(self.batch)
        t_rev = 1.0 / self.f_rev
        # Pre-broadcast the lane-uniform period once; the bus passes a
        # float64 [B] array straight through instead of re-broadcasting
        # the scalar on every revolution.
        t_rev_lanes = np.full(self.batch, t_rev)
        bus.register_reader(SENSOR_PERIOD, lambda: t_rev_lanes)
        bus.register_addr_reader(SENSOR_REF_BUFFER, self._ref_adc_voltage)
        bus.register_addr_reader(SENSOR_GAP_BUFFER, self._gap_adc_voltage)
        for i in range(self.config.n_bunches):
            def writer(value: np.ndarray, i: int = i) -> None:
                self._delta_t[:, i] = value
            bus.register_writer(ACTUATOR_DELTA_T + i, writer)
        params = self.model.default_params(
            gamma_r0=self.gamma0,
            q_over_mc2=self.config.ion.gamma_gain_per_volt(),
            orbit_length=self.config.ring.circumference,
            alpha_c=self.config.ring.alpha_c,
            v_scale=self.gap_scale,
            v_scale_ref=self.ref_scale,
            f_sample=250e6,
            harmonic=self.config.harmonic,
        )
        return BatchedCgraExecutor(
            self.model.schedule, bus, params, precision=self.config.precision
        )

    # -- the loop ---------------------------------------------------------

    def measured_phase_deg(self) -> np.ndarray:
        """DSP phase detector reading per lane (degrees at h·f_R)."""
        if self.config.control_source == "mean":
            dt = self._delta_t.mean(axis=1)
        else:
            dt = self._delta_t[:, 0]
        return -360.0 * self.config.harmonic * self.f_rev * dt

    def step_revolution(self) -> None:
        """Advance all lanes by one revolution."""
        f = self._faults
        if f is not None:
            f.update(self._time)
        jump_rad = float(self._jump_unit.phase_rad_at(self._time)) * self._jump_amps
        self._gap_phase_rad = jump_rad + deg_to_rad(self.control.last_output_deg)
        self._executor.run_iteration()
        self.control.update(self.measured_phase_deg())
        self._turn += 1
        self._time += 1.0 / self.f_rev

    def _run_fast(self, n_turns: int, t_rev: float, rec_every: int, record) -> None:
        """Drive ``n_turns`` revolutions through the batched engine's
        callback loop (:meth:`BatchedCgraExecutor.run_driven`).

        Per turn this performs exactly the :meth:`step_revolution`
        sequence — deadline check, gap-phase update, engine iteration,
        control update, time advance, optional record — but with one
        errstate/telemetry envelope for the whole run and the per-turn
        arrays updated in place instead of reallocated (each elementwise
        op matches the allocating expression bit for bit).
        """
        amps = self._jump_amps
        gap = self._gap_phase_rad
        ctrl = self.control
        jump_unit = self._jump_unit
        deadline = self.deadline
        d2r = math.pi / 180.0
        m = -360.0 * self.config.harmonic * self.f_rev
        use_bunch0 = self.config.control_source == "bunch0"
        dt0 = self._delta_t[:, 0]
        mbuf = np.empty(self.batch)
        tmp = np.empty(self.batch)

        faults = self._faults

        def pre(i: int) -> None:
            deadline.check_revolution(t_rev)
            if faults is not None:
                faults.update(self._time)
            jr = jump_unit.phase_rad_at(self._time)
            np.multiply(amps, jr, out=gap)
            np.multiply(ctrl.last_output_deg, d2r, out=tmp)
            np.add(gap, tmp, out=gap)

        def post(i: int) -> None:
            if use_bunch0:
                np.multiply(dt0, m, out=mbuf)
                ctrl.update(mbuf)
            else:
                ctrl.update(self.measured_phase_deg())
            self._turn += 1
            self._time += t_rev
            if (i + 1) % rec_every == 0:
                record()

        self._executor.run_driven(n_turns, pre=pre, post=post)

    def run(self, duration: float, *, _fast: bool = True) -> BatchHilRunResult:
        """Run all lanes for ``duration`` seconds of machine time.

        ``_fast`` selects the driven batched-engine loop (one telemetry
        envelope for the whole run, scratch buffers reused across turns);
        ``_fast=False`` keeps the per-turn :meth:`step_revolution` loop.
        Both produce bit-identical results — the slow form exists as the
        parity reference for tests.
        """
        if duration <= 0:
            raise HilError("duration must be positive")
        n_turns = int(round(duration * self.f_rev))
        rec_every = self.config.record_every
        n_rec = n_turns // rec_every + 1
        B = self.batch
        time = np.empty(n_rec)
        phase = np.empty((n_rec, B))
        corr = np.empty((n_rec, B))
        jump = np.empty((n_rec, B))
        dts = np.empty((n_rec, B))
        dts_all = np.empty((n_rec, B, self.config.n_bunches))
        gam = np.empty((n_rec, B))
        idx = 0

        # Hot-loop constants.  ``m`` folds the phase-detector scale the
        # same way measured_phase_deg evaluates it left to right, and
        # ``dt0`` is a persistent view (the delta_t buffer is written in
        # place by the actuator handlers, never rebound).
        m = -360.0 * self.config.harmonic * self.f_rev
        dt0 = self._delta_t[:, 0]
        use_bunch0 = self.config.control_source == "bunch0"
        amps = self._jump_amps

        def record() -> None:
            nonlocal idx
            time[idx] = self._time
            if use_bunch0:
                np.multiply(dt0, m, out=phase[idx])
            else:
                phase[idx] = self.measured_phase_deg()
            corr[idx] = self.control.last_output_deg
            np.multiply(amps, self._jump_unit.phase_deg_at(self._time), out=jump[idx])
            dts[idx] = dt0
            dts_all[idx] = self._delta_t
            gam[idx] = self._executor.register_view("gamma_r")
            idx += 1

        record()
        t_rev = 1.0 / self.f_rev
        span_attrs = dict(batch=B, duration_s=duration, n_turns=n_turns)
        if self._faults is not None:
            span_attrs["fault"] = self._faults.label
        with get_tracer().span("hil.run_batched", **span_attrs):
            # One profiler phase for the whole lockstep loop (the
            # batched engine hook below it adds per-op-class detail).
            with get_profiler().phase("hil.run_batched"):
                if _fast:
                    self._run_fast(n_turns, t_rev, rec_every, record)
                else:
                    for n in range(n_turns):
                        self.deadline.check_revolution(t_rev)
                        self.step_revolution()
                        if (n + 1) % rec_every == 0:
                            record()
        stats = self.deadline.stats(allow_empty=True)
        if _OBS.enabled:
            _HIL_ITERATIONS.inc(n_turns, engine="batched")
            _LANE_ITERATIONS.inc(n_turns * B)
            extras = {}
            if self._faults is not None:
                extras["fault"] = self._faults.label
            record_hil_run(
                name="batched_cavity_in_the_loop",
                stats=stats,
                schedule_length=self.model.schedule_length,
                engine="batched",
                duration_s=duration,
                f_rev_hz=self.f_rev,
                batch=B,
                control_saturations=self.control.saturation_count,
                **extras,
            )
        return BatchHilRunResult(
            time=time[:idx],
            phase_deg=phase[:idx],
            correction_deg=corr[:idx],
            jump_deg=jump[:idx],
            delta_t=dts[:idx],
            delta_t_all=dts_all[:idx],
            gamma_ref=gam[:idx],
            deadline=stats,
            schedule_length=self.model.schedule_length,
            batch=B,
        )
