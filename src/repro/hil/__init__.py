"""Hardware-in-the-loop framework (paper Sections III and V).

``framework`` is the sample-accurate FPGA top level of Fig. 3 (ADC →
ring buffers → detectors → CGRA → Gauss pulse generator → DAC);
``simulator`` is the full closed-loop bench of Fig. 4, including the
revolution-level fast path used for second-scale runs; ``softcore`` is
the SpartanMC-style parameter/monitoring interface; ``realtime`` and
``jitter`` provide the deadline accounting and the timing models behind
the paper's "software is too jittery, the CGRA is deterministic"
argument.
"""

from repro.hil.jitter import CgraTimingModel, SoftwareTimingModel, TimingSample
from repro.hil.realtime import DeadlineMonitor, JitterStats
from repro.hil.softcore import ParameterInterface, DramRecorder
from repro.hil.framework import FpgaFramework, FrameworkConfig
from repro.hil.simulator import CavityInTheLoop, HilConfig, HilRunResult
from repro.hil.batch import BatchedCavityInTheLoop, BatchHilConfig, BatchHilRunResult
from repro.hil.closed_loop import (
    SampleAccurateBench,
    SampleAccurateBenchConfig,
    SampleAccurateRun,
)

__all__ = [
    "CgraTimingModel",
    "SoftwareTimingModel",
    "TimingSample",
    "DeadlineMonitor",
    "JitterStats",
    "ParameterInterface",
    "DramRecorder",
    "FpgaFramework",
    "FrameworkConfig",
    "CavityInTheLoop",
    "HilConfig",
    "HilRunResult",
    "BatchedCavityInTheLoop",
    "BatchHilConfig",
    "BatchHilRunResult",
    "SampleAccurateBench",
    "SampleAccurateBenchConfig",
    "SampleAccurateRun",
]
