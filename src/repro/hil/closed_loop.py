"""Fully sample-accurate closed-loop bench.

The fast path (:class:`~repro.hil.simulator.CavityInTheLoop`) closes the
loop on the model's Δt output directly.  This module closes it the way
the *real bench* does: the DSP sees only the analogue beam waveform the
DAC produced, IQ-demodulates it against the RF frequency, and feeds the
resulting phase into the control filter, which actuates the gap DDS —
every stage at the 250 MHz sample level:

    GroupDDS ──► ADCs ──► ring buffers ──► CGRA model ──► Gauss pulses
        ▲                                                     │
        └── control filter ◄── IQ phase detector ◄── DAC ◄────┘

This validates the measurement chain end to end: the IQ detector must
recover the bunch phase from the pulse train accurately enough for the
loop to damp, through ADC quantisation, pulse shaping and DAC
reconstruction.  It is slow (Python at 250 MHz), so it is used on
hundred-millisecond-scale windows in tests; the fast path covers
second-scale runs (their equivalence is pinned by
``tests/integration/test_cross_fidelity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.constants import deg_to_rad
from repro.control import BeamPhaseControlLoop, ControlLoopConfig
from repro.errors import ConfigurationError
from repro.hil.framework import FpgaFramework, FrameworkConfig
from repro.obs import get_tracer, record_hil_run
from repro.obs._state import STATE as _OBS
from repro.obs.profile import get_profiler
from repro.physics.ion import IonSpecies
from repro.physics.rf import RFSystem, voltage_for_synchrotron_frequency
from repro.physics.ring import SynchrotronRing
from repro.signal.awg import PhaseJumpPattern
from repro.signal.dds import GroupDDS
from repro.signal.phase_detector import IQPhaseDetector

__all__ = ["SampleAccurateBenchConfig", "SampleAccurateBench", "SampleAccurateRun"]


@dataclass(frozen=True)
class SampleAccurateBenchConfig:
    """Configuration of the sample-accurate closed loop."""

    ring: SynchrotronRing
    ion: IonSpecies
    harmonic: int = 4
    revolution_frequency: float = 800e3
    synchrotron_frequency: float = 1.28e3
    jump_deg: float = 8.0
    jump_toggle_period: float = 0.05
    jump_start_time: float = 0.0
    adc_amplitude: float = 0.9
    sample_rate: float = 250e6
    control: ControlLoopConfig | None = None
    n_bunches: int = 1
    #: CGRA execution engine forwarded to the framework: ``"interpreted"``,
    #: ``"compiled"``, or None for the session default.
    engine: str | None = None
    #: IQ integration window in revolutions (longer = less noise, more lag).
    detector_window_revolutions: int = 2

    def __post_init__(self) -> None:
        if self.detector_window_revolutions < 1:
            raise ConfigurationError("detector window must be >= 1 revolution")
        if self.harmonic < 1:
            raise ConfigurationError("harmonic must be >= 1")
        if self.engine not in (None, "interpreted", "compiled", "vector", "auto"):
            raise ConfigurationError(
                "engine must be None, 'interpreted', 'compiled', 'vector' or 'auto', "
                f"got {self.engine!r}"
            )


@dataclass
class SampleAccurateRun:
    """Per-revolution traces of a sample-accurate closed-loop run."""

    time: np.ndarray
    #: Phase measured by the IQ DSP on the beam waveform, degrees.
    phase_deg: np.ndarray
    #: Model-internal Δt of bunch 0 (ground truth), seconds.
    delta_t: np.ndarray
    correction_deg: np.ndarray


class SampleAccurateBench:
    """Runs the whole Fig. 4 loop at 250 MHz sample resolution."""

    def __init__(self, config: SampleAccurateBenchConfig) -> None:
        self.config = config
        ring, ion = config.ring, config.ion
        gamma0 = ring.gamma_from_revolution_frequency(config.revolution_frequency)
        probe = RFSystem(harmonic=config.harmonic, voltage=1.0)
        self.gap_voltage_amplitude = voltage_for_synchrotron_frequency(
            ring, ion, probe, gamma0, config.synchrotron_frequency
        )
        self.framework = FpgaFramework(FrameworkConfig(
            ring=ring,
            ion=ion,
            harmonic=config.harmonic,
            gap_volts_per_adc_volt=self.gap_voltage_amplitude / config.adc_amplitude,
            ref_volts_per_adc_volt=(
                config.harmonic * self.gap_voltage_amplitude / config.adc_amplitude
            ),
            n_bunches=config.n_bunches,
            sample_rate=config.sample_rate,
            engine=config.engine,
        ))
        self.jump = PhaseJumpPattern(
            jump_deg=config.jump_deg,
            toggle_period=config.jump_toggle_period,
            start_time=config.jump_start_time,
        )
        self.control = BeamPhaseControlLoop(
            config.control
            or ControlLoopConfig(sample_rate=config.revolution_frequency)
        )
        self.group = GroupDDS(
            revolution_frequency=config.revolution_frequency,
            harmonic=config.harmonic,
            amplitude=config.adc_amplitude,
            sample_rate=config.sample_rate,
            gap_phase_drive=self._gap_drive,
        )
        self.group.reset_phase()
        self.detector = IQPhaseDetector(config.harmonic * config.revolution_frequency)
        self._samples_per_rev = config.sample_rate / config.revolution_frequency
        self._sample_accum = 0.0
        self._beam_history: list[np.ndarray] = []
        self._history_t0 = 0.0

    def _gap_drive(self, t: float) -> float:
        return float(self.jump.phase_rad_at(t)) + deg_to_rad(self.control.last_output_deg)

    def _next_block_size(self) -> int:
        """Alternate block sizes so block boundaries track the exact
        (non-integer) samples-per-revolution ratio."""
        self._sample_accum += self._samples_per_rev
        n = int(self._sample_accum)
        self._sample_accum -= n
        return n

    def _measure_phase(self) -> float | None:
        """IQ-demodulate the most recent detector window of beam signal."""
        window = self.config.detector_window_revolutions
        if len(self._beam_history) < window:
            return None
        block = np.concatenate(self._beam_history[-window:])
        if block.max() < 0.05:  # no pulses yet
            return None
        t0 = self._history_t0
        for earlier in self._beam_history[:-window]:
            t0 += earlier.size / self.config.sample_rate
        measured = self.detector.measure(block, self.config.sample_rate, t0)
        # Pulse-train convention (see signal.phase_detector): the measure
        # of a train at offset dt is 90 - 360·f_rf·dt; map onto the
        # bench's phase convention  -360·h·f_R·dt.
        phase = measured - 90.0
        return (phase + 180.0) % 360.0 - 180.0

    def run_revolutions(self, n_revolutions: int) -> SampleAccurateRun:
        """Run ``n_revolutions`` of the fully closed loop."""
        if n_revolutions < 1:
            raise ConfigurationError("need at least one revolution")
        time = np.empty(n_revolutions)
        phase = np.empty(n_revolutions)
        delta_t = np.empty(n_revolutions)
        correction = np.empty(n_revolutions)
        tracer = get_tracer()
        profiler = get_profiler()
        t = 0.0
        for i in range(n_revolutions):
            # sense → compute → actuate, timed per phase when profiling
            # is on (one flag check per revolution otherwise).
            profiling = _OBS.profile
            span = tracer.span("closed_loop.revolution", revolution=i)
            if profiling:
                t0 = perf_counter()
            n = self._next_block_size()
            ref, gap = self.group.generate(n)
            beam, _monitor = self.framework.feed(ref.samples, gap.samples)
            self._beam_history.append(beam.samples)
            # Bound the history (keep a few windows).
            keep = 4 * self.config.detector_window_revolutions
            while len(self._beam_history) > keep:
                dropped = self._beam_history.pop(0)
                self._history_t0 += dropped.size / self.config.sample_rate
            if profiling:
                t1 = perf_counter()
            measured = self._measure_phase()
            if profiling:
                t2 = perf_counter()
            if measured is not None:
                self.control.update(measured)
            if profiling:
                t3 = perf_counter()
                profiler.add("hil.sense", t1 - t0)
                profiler.add("hil.compute", t2 - t1)
                profiler.add("hil.actuate", t3 - t2)
            time[i] = t
            phase[i] = measured if measured is not None else 0.0
            delta_t[i] = self.framework.delta_t[0] if self.framework.initialised else 0.0
            correction[i] = self.control.last_output_deg
            t += n / self.config.sample_rate
            span.end()
        if _OBS.enabled:
            record_hil_run(
                name="sample_accurate_bench",
                stats=self.framework.deadline.stats(allow_empty=True),
                schedule_length=self.framework.model.schedule_length,
                engine="sample-accurate",
                n_revolutions=n_revolutions,
                control_saturations=self.control.saturation_count,
            )
        return SampleAccurateRun(
            time=time, phase_deg=phase, delta_t=delta_t, correction_deg=correction
        )
