"""Hard real-time deadline accounting in the cycle domain.

The bench's real-time criterion (paper Section IV-B): "the calculation
must be completed within one period length of the reference sine wave,
which can be faster than one microsecond".  :class:`DeadlineMonitor`
checks that criterion for every revolution of a run and accumulates
slack statistics; by default a miss raises
:class:`~repro.errors.RealTimeViolation`, because a HIL bench that
silently overruns its deadline produces wrong physics, not just late
answers.

Telemetry: every checked revolution feeds the ``hil_slack_ticks``
histogram and, on a miss, ``hil_deadline_misses_total`` in the global
:mod:`repro.obs` registry (no-ops while observability is disabled);
:meth:`DeadlineMonitor.stats` reports exact p50/p99 slack percentiles
from the full per-iteration record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, RealTimeViolation
from repro.obs import get_registry
from repro.obs._state import STATE as _OBS

__all__ = ["JitterStats", "DeadlineMonitor"]

_SLACK_HIST = get_registry().histogram(
    "hil_slack_ticks", "per-iteration deadline slack in CGRA ticks"
)
_MISSES = get_registry().counter(
    "hil_deadline_misses_total", "iterations whose slack went negative"
)


@dataclass(frozen=True)
class JitterStats:
    """Slack statistics over a run (in CGRA ticks).

    ``p50_slack``/``p99_slack`` are exact percentiles over the full
    per-iteration slack record (not bucket estimates).
    """

    n_iterations: int
    min_slack: float
    mean_slack: float
    misses: int
    p50_slack: float = 0.0
    p99_slack: float = 0.0

    @property
    def met(self) -> bool:
        """True when every iteration met its deadline.

        An empty record (``n_iterations == 0``) reports *not* met: no
        evidence is not a pass.
        """
        return self.n_iterations > 0 and self.misses == 0

    @classmethod
    def empty(cls) -> "JitterStats":
        """Well-defined stats for a run that checked no revolutions."""
        return cls(
            n_iterations=0,
            min_slack=0.0,
            mean_slack=0.0,
            misses=0,
            p50_slack=0.0,
            p99_slack=0.0,
        )


class DeadlineMonitor:
    """Per-iteration deadline bookkeeping.

    Parameters
    ----------
    schedule_length_ticks:
        Ticks one iteration occupies (from the CGRA schedule).
    cgra_clock_hz:
        Overlay clock.
    policy:
        ``"raise"`` (default) raises on the first miss; ``"count"``
        records misses and keeps going (used by capacity sweeps that
        probe beyond the real-time limit on purpose).
    """

    def __init__(
        self,
        schedule_length_ticks: int,
        cgra_clock_hz: float = 111e6,
        policy: str = "raise",
    ) -> None:
        if schedule_length_ticks <= 0:
            raise ConfigurationError("schedule_length_ticks must be positive")
        if cgra_clock_hz <= 0:
            raise ConfigurationError("cgra_clock_hz must be positive")
        if policy not in ("raise", "count"):
            raise ConfigurationError(f"policy must be 'raise' or 'count', got {policy!r}")
        self.schedule_length_ticks = int(schedule_length_ticks)
        self.cgra_clock_hz = float(cgra_clock_hz)
        self.policy = policy
        self._slacks: list[float] = []
        self._misses = 0

    def check_revolution(self, revolution_period_s: float) -> float:
        """Account one revolution; returns the slack in ticks."""
        if revolution_period_s <= 0:
            raise ConfigurationError("revolution period must be positive")
        budget = revolution_period_s * self.cgra_clock_hz
        slack = budget - self.schedule_length_ticks
        self._slacks.append(slack)
        if _OBS.enabled:
            _SLACK_HIST.observe(slack)
        if slack < 0:
            self._misses += 1
            if _OBS.enabled:
                _MISSES.inc()
            if self.policy == "raise":
                raise RealTimeViolation(
                    f"iteration needs {self.schedule_length_ticks} ticks but the "
                    f"revolution budget is {budget:.1f} ticks "
                    f"(f_rev={1.0 / revolution_period_s:.3e} Hz)"
                )
        return slack

    @property
    def n_checked(self) -> int:
        """Revolutions accounted so far."""
        return len(self._slacks)

    def slacks(self) -> np.ndarray:
        """The full per-iteration slack record (ticks), oldest first."""
        return np.asarray(self._slacks, dtype=float)

    def stats(self, allow_empty: bool = False) -> JitterStats:
        """Summary over all checked revolutions.

        With no revolutions checked this raises, unless ``allow_empty``
        asks for the well-defined :meth:`JitterStats.empty` instead —
        no division by zero, no nan percentiles, ``met`` is False.
        """
        if not self._slacks:
            if allow_empty:
                return JitterStats.empty()
            raise ConfigurationError("no revolutions checked yet")
        arr = np.asarray(self._slacks)
        return JitterStats(
            n_iterations=arr.size,
            min_slack=float(arr.min()),
            mean_slack=float(arr.mean()),
            misses=self._misses,
            p50_slack=float(np.percentile(arr, 50)),
            p99_slack=float(np.percentile(arr, 99)),
        )
