"""Hard real-time deadline accounting in the cycle domain.

The bench's real-time criterion (paper Section IV-B): "the calculation
must be completed within one period length of the reference sine wave,
which can be faster than one microsecond".  :class:`DeadlineMonitor`
checks that criterion for every revolution of a run and accumulates
slack statistics; by default a miss raises
:class:`~repro.errors.RealTimeViolation`, because a HIL bench that
silently overruns its deadline produces wrong physics, not just late
answers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, RealTimeViolation

__all__ = ["JitterStats", "DeadlineMonitor"]


@dataclass(frozen=True)
class JitterStats:
    """Slack statistics over a run (in CGRA ticks)."""

    n_iterations: int
    min_slack: float
    mean_slack: float
    misses: int

    @property
    def met(self) -> bool:
        """True when every iteration met its deadline."""
        return self.misses == 0


class DeadlineMonitor:
    """Per-iteration deadline bookkeeping.

    Parameters
    ----------
    schedule_length_ticks:
        Ticks one iteration occupies (from the CGRA schedule).
    cgra_clock_hz:
        Overlay clock.
    policy:
        ``"raise"`` (default) raises on the first miss; ``"count"``
        records misses and keeps going (used by capacity sweeps that
        probe beyond the real-time limit on purpose).
    """

    def __init__(
        self,
        schedule_length_ticks: int,
        cgra_clock_hz: float = 111e6,
        policy: str = "raise",
    ) -> None:
        if schedule_length_ticks <= 0:
            raise ConfigurationError("schedule_length_ticks must be positive")
        if cgra_clock_hz <= 0:
            raise ConfigurationError("cgra_clock_hz must be positive")
        if policy not in ("raise", "count"):
            raise ConfigurationError(f"policy must be 'raise' or 'count', got {policy!r}")
        self.schedule_length_ticks = int(schedule_length_ticks)
        self.cgra_clock_hz = float(cgra_clock_hz)
        self.policy = policy
        self._slacks: list[float] = []
        self._misses = 0

    def check_revolution(self, revolution_period_s: float) -> float:
        """Account one revolution; returns the slack in ticks."""
        if revolution_period_s <= 0:
            raise ConfigurationError("revolution period must be positive")
        budget = revolution_period_s * self.cgra_clock_hz
        slack = budget - self.schedule_length_ticks
        self._slacks.append(slack)
        if slack < 0:
            self._misses += 1
            if self.policy == "raise":
                raise RealTimeViolation(
                    f"iteration needs {self.schedule_length_ticks} ticks but the "
                    f"revolution budget is {budget:.1f} ticks "
                    f"(f_rev={1.0 / revolution_period_s:.3e} Hz)"
                )
        return slack

    def stats(self) -> JitterStats:
        """Summary over all checked revolutions."""
        if not self._slacks:
            raise ConfigurationError("no revolutions checked yet")
        arr = np.asarray(self._slacks)
        return JitterStats(
            n_iterations=arr.size,
            min_slack=float(arr.min()),
            mean_slack=float(arr.mean()),
            misses=self._misses,
        )
