"""SpartanMC-style parameter interface and DRAM recorder.

"The SpartanMC softcore processor is a custom 18-bit processor optimised
for FPGA architectures and serves as a parameter interface.  It can
control basic parameters of the simulation, adjust the scaling of output
voltages and change which monitoring signal is produced.  Furthermore,
it allows to record the simulation into the DRAM memory of the FPGA
board, which can be read out from a computer via the serial port."

:class:`ParameterInterface` models the 18-bit register file (values are
stored as 18-bit two's-complement words; float parameters go through a
per-register fixed-point scale — writing a parameter and reading it back
shows exactly the quantisation the softcore path imposes).
:class:`DramRecorder` models the bounded capture memory with a
serial-port-style streaming read-out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, HilError

__all__ = ["ParameterInterface", "DramRecorder"]

_WORD_BITS = 18
_WORD_MIN = -(2 ** (_WORD_BITS - 1))
_WORD_MAX = 2 ** (_WORD_BITS - 1) - 1


@dataclass(frozen=True)
class _Register:
    """One named 18-bit register with a fixed-point scale."""

    name: str
    scale: float  # engineering value = raw * scale


class ParameterInterface:
    """18-bit register file for runtime simulation parameters."""

    def __init__(self) -> None:
        self._registers: dict[str, _Register] = {}
        self._raw: dict[str, int] = {}

    def define(self, name: str, scale: float = 1.0, initial: float = 0.0) -> None:
        """Declare a parameter register.

        ``scale`` is the engineering value of one LSB (fixed-point step).
        """
        if name in self._registers:
            raise ConfigurationError(f"register {name!r} already defined")
        if scale <= 0.0:
            raise ConfigurationError("scale must be positive")
        self._registers[name] = _Register(name=name, scale=scale)
        self._raw[name] = 0
        self.write(name, initial)

    def names(self) -> list[str]:
        """All defined register names."""
        return sorted(self._registers)

    def write(self, name: str, value: float) -> None:
        """Write an engineering value; quantised and clipped to 18 bits."""
        reg = self._registers.get(name)
        if reg is None:
            raise HilError(f"no register {name!r}")
        raw = int(round(value / reg.scale))
        self._raw[name] = max(_WORD_MIN, min(_WORD_MAX, raw))

    def read(self, name: str) -> float:
        """Read back the engineering value (after quantisation)."""
        reg = self._registers.get(name)
        if reg is None:
            raise HilError(f"no register {name!r}")
        return self._raw[name] * reg.scale

    def read_raw(self, name: str) -> int:
        """Raw 18-bit register content."""
        if name not in self._raw:
            raise HilError(f"no register {name!r}")
        return self._raw[name]


class DramRecorder:
    """Bounded capture memory with streaming read-out.

    Rows are fixed-width float records (e.g. one per revolution).  When
    the capacity is reached, recording stops (the hardware records a
    window, it does not wrap) and :attr:`overflowed` is set.
    """

    def __init__(self, n_columns: int, capacity_rows: int = 1 << 20) -> None:
        if n_columns < 1:
            raise ConfigurationError("need at least one column")
        if capacity_rows < 1:
            raise ConfigurationError("capacity must be positive")
        self.n_columns = int(n_columns)
        self.capacity_rows = int(capacity_rows)
        self._data = np.empty((0, n_columns))
        self._chunks: list[np.ndarray] = []
        self._rows = 0
        #: True once a record was dropped because memory was full.
        self.overflowed = False
        self.recording = True

    @property
    def rows(self) -> int:
        """Number of stored records."""
        return self._rows

    def record(self, *values: float) -> None:
        """Append one record if recording is on and memory remains."""
        if not self.recording:
            return
        if len(values) != self.n_columns:
            raise HilError(
                f"record has {len(values)} values, recorder expects {self.n_columns}"
            )
        if self._rows >= self.capacity_rows:
            self.overflowed = True
            return
        self._chunks.append(np.asarray(values, dtype=float))
        self._rows += 1

    def stop(self) -> None:
        """Stop recording (parameter-interface command)."""
        self.recording = False

    def start(self) -> None:
        """Resume recording."""
        self.recording = True

    def as_array(self) -> np.ndarray:
        """All records as an (n, columns) array."""
        if not self._chunks:
            return np.empty((0, self.n_columns))
        return np.vstack(self._chunks)

    def readout_serial(self, chunk_rows: int = 256):
        """Generator yielding successive row blocks, like a serial dump."""
        if chunk_rows < 1:
            raise ConfigurationError("chunk_rows must be positive")
        data = self.as_array()
        for i in range(0, data.shape[0], chunk_rows):
            yield data[i : i + chunk_rows]
