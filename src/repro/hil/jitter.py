"""Timing/jitter models: CGRA determinism vs. software jitter.

The paper rejected a pure-software simulator because "the time jitter
induced by the microarchitecture and the interfacing to the sensors was
too high", and chose a CGRA because "its input/output timing can be
controlled very precisely".  E7 quantifies that comparison:

* :class:`CgraTimingModel` — the output-write tick is a constant of the
  static schedule; the only timing granularity is the DAC sample clock.
* :class:`SoftwareTimingModel` — per-iteration latency of a compiled
  software loop on a CPU: a Gaussian core (pipeline/cache noise) plus a
  heavy lognormal tail (TLB misses, interrupts, SMIs, timer ticks), the
  standard empirical shape of OS-level latency distributions.

Both models emit the *latency from revolution start to output write*,
in seconds, so their distributions are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["TimingSample", "CgraTimingModel", "SoftwareTimingModel"]


@dataclass(frozen=True)
class TimingSample:
    """Summary statistics of a latency distribution (seconds)."""

    mean: float
    std: float
    p50: float
    p99: float
    p999: float
    worst: float

    @classmethod
    def from_latencies(cls, latencies: np.ndarray) -> "TimingSample":
        """Compute the summary from raw latency samples."""
        lat = np.asarray(latencies, dtype=float)
        if lat.size == 0:
            raise ConfigurationError("need at least one latency sample")
        return cls(
            mean=float(lat.mean()),
            std=float(lat.std()),
            p50=float(np.percentile(lat, 50)),
            p99=float(np.percentile(lat, 99)),
            p999=float(np.percentile(lat, 99.9)),
            worst=float(lat.max()),
        )


class CgraTimingModel:
    """Deterministic CGRA output timing.

    The actuator write issues at a fixed tick of the static schedule;
    converting to seconds adds only the (deterministic) CGRA clock and
    the DAC sample quantisation.  Jitter is therefore exactly zero at
    tick granularity.
    """

    def __init__(self, write_tick: int, cgra_clock_hz: float = 111e6, dac_rate_hz: float = 250e6) -> None:
        if write_tick < 0:
            raise ConfigurationError("write_tick must be non-negative")
        if cgra_clock_hz <= 0 or dac_rate_hz <= 0:
            raise ConfigurationError("clock rates must be positive")
        self.write_tick = int(write_tick)
        self.cgra_clock_hz = float(cgra_clock_hz)
        self.dac_rate_hz = float(dac_rate_hz)

    def latency_seconds(self) -> float:
        """Deterministic latency from iteration start to the output write."""
        return self.write_tick / self.cgra_clock_hz

    def sample(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """n latency samples — all identical (the point of the design)."""
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        return np.full(n, self.latency_seconds())

    def output_time_quantisation(self) -> float:
        """Granularity of the analogue output timing: one DAC sample."""
        return 1.0 / self.dac_rate_hz


class SoftwareTimingModel:
    """Empirical per-iteration latency model of a software implementation.

    Parameters
    ----------
    base_latency:
        Median loop latency in seconds (the pure compute time).
    gaussian_jitter:
        RMS of the fast microarchitectural noise.
    tail_probability:
        Per-iteration probability of a slow event (interrupt, timer
        tick, SMI, page walk burst).
    tail_scale:
        Median extra latency of a slow event (lognormal).
    tail_sigma:
        Lognormal shape of the tail (≥ ~1 gives the familiar heavy tail).
    """

    def __init__(
        self,
        base_latency: float = 400e-9,
        gaussian_jitter: float = 25e-9,
        tail_probability: float = 2e-4,
        tail_scale: float = 5e-6,
        tail_sigma: float = 1.0,
    ) -> None:
        if base_latency <= 0:
            raise ConfigurationError("base_latency must be positive")
        if gaussian_jitter < 0 or tail_scale < 0 or tail_sigma < 0:
            raise ConfigurationError("jitter parameters must be non-negative")
        if not 0.0 <= tail_probability <= 1.0:
            raise ConfigurationError("tail_probability must be in [0, 1]")
        self.base_latency = float(base_latency)
        self.gaussian_jitter = float(gaussian_jitter)
        self.tail_probability = float(tail_probability)
        self.tail_scale = float(tail_scale)
        self.tail_sigma = float(tail_sigma)

    def sample(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``n`` per-iteration latencies (seconds, vectorised)."""
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        lat = self.base_latency + rng.normal(0.0, self.gaussian_jitter, n)
        lat = np.maximum(lat, 0.25 * self.base_latency)
        slow = rng.random(n) < self.tail_probability
        n_slow = int(slow.sum())
        if n_slow:
            lat[slow] += self.tail_scale * rng.lognormal(0.0, self.tail_sigma, n_slow)
        return lat

    def deadline_miss_rate(self, deadline: float, n: int = 1_000_000, rng: np.random.Generator | None = None) -> float:
        """Monte-Carlo estimate of P(latency > deadline)."""
        if deadline <= 0:
            raise ConfigurationError("deadline must be positive")
        lat = self.sample(n, rng)
        return float(np.count_nonzero(lat > deadline)) / n
