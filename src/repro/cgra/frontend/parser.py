"""Recursive-descent parser for the mini-C model language.

Grammar (EBNF, ignoring whitespace/comments — ``#define`` is handled by
the lexer)::

    program     := function+
    function    := "void" IDENT "(" params? ")" block
    params      := ("float" IDENT) ("," "float" IDENT)*
    block       := "{" statement* "}"
    statement   := declaration | assignment | expr_stmt | for_loop | while_loop
    declaration := ("float"|"int") IDENT ("[" expr "]")? "=" expr ";"
    assignment  := IDENT ("[" expr "]")? "=" expr ";"
    expr_stmt   := expr ";"
    for_loop    := "for" "(" ("int")? IDENT "=" expr ";" IDENT "<" expr ";"
                    IDENT "=" expr ")" block
    while_loop  := "while" "(" expr ")" block
    expr        := ternary
    ternary     := compare ("?" expr ":" expr)?
    compare     := additive (("<"|"<=") additive)?
    additive    := multiplicative (("+"|"-") multiplicative)*
    multiplicative := unary (("*"|"/") unary)*
    unary       := "-" unary | primary
    primary     := NUMBER | IDENT | IDENT "(" args? ")" | IDENT "[" expr "]"
                 | "(" expr ")"

Errors raise :class:`~repro.errors.FrontendError` with the source line.
"""

from __future__ import annotations

from repro.cgra.frontend.astnodes import (
    ArrayAssignment,
    ArrayDeclaration,
    ArrayRef,
    Assignment,
    BinOp,
    Call,
    Declaration,
    Expr,
    ExprStatement,
    ForLoop,
    Function,
    IfStatement,
    NumberLit,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    VarRef,
    WhileLoop,
)
from repro.cgra.frontend.lexer import Token, TokenKind, tokenize
from repro.errors import FrontendError

__all__ = ["Parser", "parse_program"]


class Parser:
    """Token-stream parser producing the AST."""

    def __init__(self, tokens: list[Token]) -> None:
        self._toks = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------

    def _peek(self) -> Token:
        return self._toks[self._pos]

    def _advance(self) -> Token:
        tok = self._toks[self._pos]
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> FrontendError:
        tok = self._peek()
        where = f"'{tok.text}'" if tok.kind is not TokenKind.EOF else "end of input"
        return FrontendError(f"line {tok.line}:{tok.col}: {message} (at {where})")

    def _expect(self, text: str) -> Token:
        tok = self._peek()
        if tok.text != text:
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_kind(self, kind: TokenKind) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            raise self._error(f"expected {kind.value}")
        return self._advance()

    def _accept(self, text: str) -> bool:
        if self._peek().text == text:
            self._advance()
            return True
        return False

    # -- grammar -------------------------------------------------------

    def parse_program(self) -> Program:
        """Parse a full translation unit."""
        functions = []
        while self._peek().kind is not TokenKind.EOF:
            functions.append(self._function())
        if not functions:
            tok = self._peek()
            raise FrontendError(
                f"line {tok.line}:{tok.col}: empty program: expected at least one function"
            )
        return Program(tuple(functions))

    def _function(self) -> Function:
        first = self._peek()
        line, col = first.line, first.col
        self._expect("void")
        name = self._expect_kind(TokenKind.IDENT).text
        self._expect("(")
        params: list[str] = []
        if not self._accept(")"):
            while True:
                self._expect("float")
                params.append(self._expect_kind(TokenKind.IDENT).text)
                if self._accept(")"):
                    break
                self._expect(",")
        body = self._block()
        return Function(name=name, params=tuple(params), body=body, line=line, col=col)

    def _block(self) -> tuple[Stmt, ...]:
        self._expect("{")
        stmts: list[Stmt] = []
        while not self._accept("}"):
            if self._peek().kind is TokenKind.EOF:
                raise self._error("unterminated block")
            stmts.append(self._statement())
        return tuple(stmts)

    def _statement(self) -> Stmt:
        tok = self._peek()
        if tok.text in ("float", "int"):
            return self._declaration()
        if tok.text == "for":
            return self._for_loop()
        if tok.text == "while":
            return self._while_loop()
        if tok.text == "if":
            return self._if_statement()
        if tok.kind is TokenKind.IDENT:
            # assignment or call-statement: decide by lookahead
            nxt = self._toks[self._pos + 1]
            if nxt.text == "=":
                return self._assignment()
            if nxt.text == "[":
                # Could be x[i] = ...; find matching ']' then check '='
                depth = 0
                j = self._pos + 1
                while j < len(self._toks):
                    if self._toks[j].text == "[":
                        depth += 1
                    elif self._toks[j].text == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                if j + 1 < len(self._toks) and self._toks[j + 1].text == "=":
                    return self._assignment()
        line, col = tok.line, tok.col
        expr = self._expr()
        self._expect(";")
        return ExprStatement(line=line, col=col, expr=expr)

    def _declaration(self) -> Stmt:
        first = self._peek()
        line, col = first.line, first.col
        type_name = self._advance().text
        name = self._expect_kind(TokenKind.IDENT).text
        if self._accept("["):
            size = self._expr()
            self._expect("]")
            self._expect("=")
            init = self._expr()
            self._expect(";")
            return ArrayDeclaration(
                line=line, col=col, type_name=type_name, name=name, size=size, init=init
            )
        self._expect("=")
        init = self._expr()
        self._expect(";")
        return Declaration(line=line, col=col, type_name=type_name, name=name, init=init)

    def _assignment(self) -> Stmt:
        first = self._peek()
        line, col = first.line, first.col
        name = self._expect_kind(TokenKind.IDENT).text
        if self._accept("["):
            index = self._expr()
            self._expect("]")
            self._expect("=")
            value = self._expr()
            self._expect(";")
            return ArrayAssignment(line=line, col=col, name=name, index=index, value=value)
        self._expect("=")
        value = self._expr()
        self._expect(";")
        return Assignment(line=line, col=col, name=name, value=value)

    def _for_loop(self) -> Stmt:
        first = self._peek()
        line, col = first.line, first.col
        self._expect("for")
        self._expect("(")
        self._accept("int")
        var = self._expect_kind(TokenKind.IDENT).text
        self._expect("=")
        start = self._expr()
        self._expect(";")
        cond_tok = self._peek()
        cond_var = self._expect_kind(TokenKind.IDENT).text
        if cond_var != var:
            raise FrontendError(
                f"line {cond_tok.line}:{cond_tok.col}: for-loop condition must test {var!r}"
            )
        self._expect("<")
        limit = self._expr()
        self._expect(";")
        step_tok = self._peek()
        step_var = self._expect_kind(TokenKind.IDENT).text
        if step_var != var:
            raise FrontendError(
                f"line {step_tok.line}:{step_tok.col}: for-loop increment must assign {var!r}"
            )
        self._expect("=")
        step_expr = self._expr()
        self._expect(")")
        body = self._block()
        # step must be `var + const`; the lowering pass validates folding.
        if not (
            isinstance(step_expr, BinOp)
            and step_expr.op == "+"
            and isinstance(step_expr.left, VarRef)
            and step_expr.left.name == var
        ):
            raise FrontendError(
                f"line {step_tok.line}:{step_tok.col}: "
                f"for-loop increment must be '{var} = {var} + <const>'"
            )
        return ForLoop(
            line=line, col=col, var=var, start=start, limit=limit,
            step=step_expr.right, body=body,
        )

    def _if_statement(self) -> Stmt:
        first = self._peek()
        line, col = first.line, first.col
        self._expect("if")
        self._expect("(")
        cond = self._expr()
        self._expect(")")
        then_body = self._block()
        else_body: tuple[Stmt, ...] = ()
        if self._accept("else"):
            if self._peek().text == "if":
                else_body = (self._if_statement(),)
            else:
                else_body = self._block()
        return IfStatement(line=line, col=col, cond=cond, then_body=then_body, else_body=else_body)

    def _while_loop(self) -> Stmt:
        first = self._peek()
        line, col = first.line, first.col
        self._expect("while")
        self._expect("(")
        cond = self._expr()
        self._expect(")")
        if not (isinstance(cond, NumberLit) and cond.value == 1):
            raise FrontendError(
                f"line {line}:{col}: only 'while (1)' steady-state loops are supported"
            )
        body = self._block()
        return WhileLoop(line=line, col=col, body=body)

    # -- expressions -----------------------------------------------------

    def _expr(self) -> Expr:
        return self._ternary()

    def _ternary(self) -> Expr:
        cond = self._compare()
        if self._accept("?"):
            tok = self._peek()
            if_true = self._expr()
            self._expect(":")
            if_false = self._expr()
            return Ternary(
                line=tok.line, col=tok.col, cond=cond, if_true=if_true, if_false=if_false
            )
        return cond

    def _compare(self) -> Expr:
        left = self._additive()
        tok = self._peek()
        if tok.text in ("<", "<="):
            self._advance()
            right = self._additive()
            return BinOp(line=tok.line, col=tok.col, op=tok.text, left=left, right=right)
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while self._peek().text in ("+", "-"):
            tok = self._advance()
            right = self._multiplicative()
            left = BinOp(line=tok.line, col=tok.col, op=tok.text, left=left, right=right)
        return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while self._peek().text in ("*", "/"):
            tok = self._advance()
            right = self._unary()
            left = BinOp(line=tok.line, col=tok.col, op=tok.text, left=left, right=right)
        return left

    def _unary(self) -> Expr:
        tok = self._peek()
        if tok.text == "-":
            self._advance()
            return UnaryOp(line=tok.line, col=tok.col, op="-", operand=self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            text = tok.text.rstrip("fF")
            is_int = ("." not in text) and ("e" not in text.lower())
            return NumberLit(line=tok.line, col=tok.col, value=float(text), is_int=is_int)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            if self._accept("("):
                args: list[Expr] = []
                if not self._accept(")"):
                    while True:
                        args.append(self._expr())
                        if self._accept(")"):
                            break
                        self._expect(",")
                return Call(line=tok.line, col=tok.col, name=tok.text, args=tuple(args))
            if self._accept("["):
                index = self._expr()
                self._expect("]")
                return ArrayRef(line=tok.line, col=tok.col, name=tok.text, index=index)
            return VarRef(line=tok.line, col=tok.col, name=tok.text)
        if tok.text == "(":
            self._advance()
            inner = self._expr()
            self._expect(")")
            return inner
        raise self._error("expected an expression")


def parse_program(source: str) -> Program:
    """Tokenise and parse mini-C ``source``."""
    return Parser(tokenize(source)).parse_program()
