"""Tokeniser for the mini-C model language.

Handles ``//`` and ``/* */`` comments, ``#define`` preprocessing (pure
token substitution, non-recursive), numeric literals (decimal and
scientific notation), identifiers/keywords and the operator set of the
language.  Every token carries its source line for error reporting.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import FrontendError

__all__ = ["TokenKind", "Token", "Lexer", "tokenize"]


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset({"void", "float", "int", "while", "for", "if", "else", "return"})

#: Multi-character operators first so maximal munch works.
_PUNCTS = [
    "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "=", "<", ">", "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<number>(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?[fF]?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>""" + "|".join(re.escape(p) for p in _PUNCTS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source line and column (1-based)."""

    kind: TokenKind
    text: str
    line: int
    col: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, line {self.line}:{self.col})"


class Lexer:
    """Tokenises mini-C source, applying ``#define`` substitutions."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.defines: dict[str, list[Token]] = {}

    @staticmethod
    def _blank_block_comments(source: str) -> str:
        """Replace ``/* */`` comments with whitespace, keeping newlines so
        line numbers stay correct (block comments may span lines)."""

        def blank(m: re.Match) -> str:
            return re.sub(r"[^\n]", " ", m.group())

        return re.sub(r"/\*.*?\*/", blank, source, flags=re.DOTALL)

    def _strip_defines(self) -> list[tuple[int, str]]:
        """Split source into (line_number, text) pairs, extracting defines."""
        kept: list[tuple[int, str]] = []
        source = self._blank_block_comments(self.source)
        for lineno, line in enumerate(source.splitlines(), start=1):
            stripped = line.strip()
            col = line.index("#") + 1 if "#" in line else 1
            if stripped.startswith("#define"):
                parts = stripped.split(None, 2)
                if len(parts) < 3:
                    raise FrontendError(f"line {lineno}:{col}: malformed #define: {stripped!r}")
                name = parts[1]
                if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
                    raise FrontendError(f"line {lineno}:{col}: bad #define name {name!r}")
                self.defines[name] = self._raw_tokens(parts[2], lineno)
            elif stripped.startswith("#"):
                raise FrontendError(
                    f"line {lineno}:{col}: unsupported preprocessor directive "
                    f"{stripped.split()[0]!r}"
                )
            else:
                kept.append((lineno, line))
        return kept

    def _raw_tokens(self, text: str, lineno: int) -> list[Token]:
        tokens: list[Token] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise FrontendError(
                    f"line {lineno}:{pos + 1}: cannot tokenise at {text[pos:pos+12]!r}"
                )
            col = m.start() + 1
            pos = m.end()
            if m.lastgroup in ("ws", "comment"):
                continue
            kind = {
                "number": TokenKind.NUMBER,
                "ident": TokenKind.IDENT,
                "punct": TokenKind.PUNCT,
            }[m.lastgroup]
            text_val = m.group()
            if kind is TokenKind.IDENT and text_val in KEYWORDS:
                kind = TokenKind.KEYWORD
            tokens.append(Token(kind, text_val, lineno, col))
        return tokens

    def tokenize(self) -> list[Token]:
        """Produce the token stream with defines substituted."""
        lines = self._strip_defines()
        # Block comments may span lines; rejoin and re-lex as one text,
        # keeping line numbers via a marker pass.
        out: list[Token] = []
        for lineno, line in lines:
            for tok in self._raw_tokens(line, lineno):
                if tok.kind is TokenKind.IDENT and tok.text in self.defines:
                    # Substituted tokens report the use site, not the
                    # #define site, so diagnostics point at the code.
                    replacement = self.defines[tok.text]
                    out.extend(Token(t.kind, t.text, lineno, tok.col) for t in replacement)
                else:
                    out.append(tok)
        last_line = lines[-1][0] if lines else 1
        last_col = len(lines[-1][1]) + 1 if lines else 1
        out.append(Token(TokenKind.EOF, "", last_line, last_col))
        return out


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: tokenise ``source`` with define substitution."""
    return Lexer(source).tokenize()
