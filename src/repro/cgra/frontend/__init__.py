"""Mini-C frontend: C source → dataflow graph (SCAR).

"Programming of the CGRA is done using the C programming language.  A
code parser converts the program into a Scheduler Application
Representation (SCAR) control and data flow graph format, which is
processed by the CGRA scheduler."

The supported language is the subset the beam model needs (plus a little
headroom for the ramp-up extension):

* one ``void`` function; ``float`` parameters are live-in scalars loaded
  before the loop starts (machine constants, initial energies, …);
* ``#define NAME <number>`` token substitutions for sensor ids and
  compile-time constants;
* declarations before the main loop give loop-carried variables their
  first-iteration values (literals, defines or parameter names);
* exactly one ``while (1) { ... }`` steady-state loop — the kernel that
  runs once per particle revolution;
* inside the loop: ``float`` declarations, assignments, fixed-size array
  elements, fully unrolled ``for`` loops with compile-time trip counts
  (how the 8-bunch model is written), arithmetic (``+ - * /``, unary
  ``-``), comparisons (``< <=``), the ternary operator, ``if``/``else``
  (lowered by predication: both branches execute as dataflow, divergent
  values merge through SELECT — so IO is not allowed inside branches),
  and the intrinsics ``sqrt``, ``fmin``, ``fmax``;
* IO intrinsics: ``read_sensor(ID)``, ``read_sensor2(ID, addr)``,
  ``write_actuator(ID, value)`` — SensorAccess operations;
* ``pipeline_barrier();`` — the manual loop pipelining of Section IV-B:
  every value produced before the barrier and consumed after it is
  carried through a register to the *next* iteration ("they do not
  depend on the results they produce in this iteration, but on the
  results of the previous iteration instead"), splitting the body into
  two concurrent stages.

The output of :func:`compile_c_to_dfg` is a validated
:class:`repro.cgra.dfg.DataflowGraph`.
"""

from repro.cgra.frontend.lexer import Lexer, Token, TokenKind
from repro.cgra.frontend.parser import Parser, parse_program
from repro.cgra.frontend.lower import compile_c_to_dfg, lower_function

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "Parser",
    "parse_program",
    "compile_c_to_dfg",
    "lower_function",
]
