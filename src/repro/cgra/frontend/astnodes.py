"""Abstract syntax tree of the mini-C model language.

Plain dataclasses; the parser builds them, the lowering pass walks them.
Every node records its source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr",
    "NumberLit",
    "VarRef",
    "ArrayRef",
    "UnaryOp",
    "BinOp",
    "Ternary",
    "Call",
    "Stmt",
    "Declaration",
    "ArrayDeclaration",
    "Assignment",
    "ArrayAssignment",
    "ExprStatement",
    "IfStatement",
    "ForLoop",
    "WhileLoop",
    "Function",
    "Program",
]


@dataclass(frozen=True)
class Expr:
    """Base class of expressions."""

    line: int
    #: 1-based source column of the node's first token (0 = unknown).
    col: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class NumberLit(Expr):
    """Numeric literal; ``is_int`` distinguishes ``8`` from ``8.0``."""

    value: float
    is_int: bool


@dataclass(frozen=True)
class VarRef(Expr):
    """Reference to a scalar variable or parameter."""

    name: str


@dataclass(frozen=True)
class ArrayRef(Expr):
    """Read of an array element; index must fold to a constant int."""

    name: str
    index: "Expr"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator (only ``-``)."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operator: ``+ - * / < <=``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    """Conditional expression ``cond ? a : b``."""

    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class Call(Expr):
    """Intrinsic call: sqrt, fmin, fmax, read_sensor, read_sensor2,
    write_actuator, pipeline_barrier."""

    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Stmt:
    """Base class of statements."""

    line: int
    #: 1-based source column of the statement's first token (0 = unknown).
    col: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class Declaration(Stmt):
    """``float x = expr;`` or ``int i = expr;``."""

    type_name: str
    name: str
    init: Expr


@dataclass(frozen=True)
class ArrayDeclaration(Stmt):
    """``float x[N] = expr;`` — all elements initialised to ``expr``."""

    type_name: str
    name: str
    size: Expr
    init: Expr


@dataclass(frozen=True)
class Assignment(Stmt):
    """``x = expr;``."""

    name: str
    value: Expr


@dataclass(frozen=True)
class ArrayAssignment(Stmt):
    """``x[i] = expr;``."""

    name: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class ExprStatement(Stmt):
    """An expression evaluated for its side effects (IO intrinsics)."""

    expr: Expr


@dataclass(frozen=True)
class IfStatement(Stmt):
    """``if (cond) { ... } else { ... }`` — lowered by predication."""

    cond: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...]


@dataclass(frozen=True)
class ForLoop(Stmt):
    """``for (int i = a; i < b; i = i + c) { body }`` — compile-time trip
    count, fully unrolled by the lowering pass."""

    var: str
    start: Expr
    limit: Expr
    step: Expr
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class WhileLoop(Stmt):
    """``while (1) { body }`` — the steady-state kernel."""

    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class Function:
    """One ``void`` function with float parameters."""

    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    line: int
    col: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class Program:
    """A parsed translation unit (exactly one function for now)."""

    functions: tuple[Function, ...]
