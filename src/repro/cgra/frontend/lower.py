"""AST → dataflow-graph lowering (symbolic execution of the kernel).

The lowering pass interprets the function body symbolically:

* compile-time values (literals, ``int`` loop variables, folded
  arithmetic) stay Python numbers until an operation actually needs them
  on the fabric, at which point they materialise as deduplicated
  ``CONST`` nodes;
* ``for`` loops with compile-time trip counts are fully unrolled — this
  is how the 8-bunch model becomes 8 parallel dataflow slices;
* variables declared before the ``while (1)`` loop and assigned inside it
  become loop-carried ``PHI`` registers;
* ``pipeline_barrier()`` applies the paper's manual pipelining: every
  variable holding a value computed in the current iteration is rerouted
  through a new ``PHI``, so post-barrier consumers read the *previous*
  iteration's value and the scheduler can overlap the two stages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cgra.dfg import DataflowGraph, DFGNode
from repro.cgra.frontend.astnodes import (
    ArrayAssignment,
    ArrayDeclaration,
    ArrayRef,
    Assignment,
    BinOp,
    Call,
    Declaration,
    Expr,
    ExprStatement,
    ForLoop,
    Function,
    IfStatement,
    NumberLit,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    VarRef,
    WhileLoop,
)
from repro.cgra.frontend.parser import parse_program
from repro.cgra.ops import Op
from repro.errors import FrontendError

__all__ = ["compile_c_to_dfg", "lower_function"]

#: Safety bound on total unrolled statements (runaway-loop guard).
_MAX_UNROLL = 4096


@dataclass(frozen=True)
class _ParamInit:
    """Marker for a live-in parameter used as an initial value."""

    name: str


#: A symbolic value during lowering.
_Value = float | int | _ParamInit | DFGNode


class _Lowering:
    """State of one function-lowering run."""

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.graph = DataflowGraph(name=fn.name)
        #: scalar bindings: name -> value;  arrays: name -> list[value]
        self.env: dict[str, _Value | list[_Value]] = {}
        self._const_cache: dict[float, DFGNode] = {}
        self._param_cache: dict[str, DFGNode] = {}
        #: PHI created at loop entry per mutated pre-loop variable name
        #: ("name" or "name[i]" for array elements).
        self._entry_phis: dict[str, DFGNode] = {}
        #: pre-loop initial value per slot, for barrier-phi inits.
        self._preloop_init: dict[str, float | _ParamInit] = {}
        self._in_loop = False
        self._stmt_budget = _MAX_UNROLL
        #: >0 while unrolling for-loop bodies; declarations there are
        #: block-scoped in C, so re-declaring on the next unrolled
        #: iteration is legal and simply rebinds the name.
        self._for_depth = 0
        #: >0 while lowering an if/else branch — IO intrinsics are
        #: forbidden there (dataflow predication cannot suppress side
        #: effects; the hardware would issue the access regardless).
        self._cond_depth = 0

    # -- value materialisation ----------------------------------------

    def _as_node(self, value: _Value, line: int) -> DFGNode:
        """Materialise a symbolic value as a graph node."""
        if isinstance(value, DFGNode):
            return value
        if isinstance(value, _ParamInit):
            if value.name not in self._param_cache:
                self._param_cache[value.name] = self.graph.add_param(value.name)
            return self._param_cache[value.name]
        num = float(value)
        if num not in self._const_cache:
            self._const_cache[num] = self.graph.add_const(num)
        return self._const_cache[num]

    @staticmethod
    def _as_number(value: _Value, line: int, what: str) -> float:
        if isinstance(value, (int, float)):
            return float(value)
        raise FrontendError(f"line {line}: {what} must be a compile-time constant")

    def _as_int(self, value: _Value, line: int, what: str) -> int:
        num = self._as_number(value, line, what)
        if num != int(num):
            raise FrontendError(f"line {line}: {what} must be an integer, got {num}")
        return int(num)

    # -- expression lowering ------------------------------------------

    def _lower_expr(self, expr: Expr) -> _Value:
        if isinstance(expr, NumberLit):
            return int(expr.value) if expr.is_int else expr.value
        if isinstance(expr, VarRef):
            return self._read_var(expr.name, expr.line)
        if isinstance(expr, ArrayRef):
            return self._read_array(expr.name, expr.index, expr.line)
        if isinstance(expr, UnaryOp):
            inner = self._lower_expr(expr.operand)
            if isinstance(inner, (int, float)):
                return -inner
            node = self._as_node(inner, expr.line)
            return self.graph.add_op(Op.FNEG, [node.node_id])
        if isinstance(expr, BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, Ternary):
            cond = self._lower_expr(expr.cond)
            if isinstance(cond, (int, float)):
                return self._lower_expr(expr.if_true if cond else expr.if_false)
            a = self._as_node(self._lower_expr(expr.if_true), expr.line)
            b = self._as_node(self._lower_expr(expr.if_false), expr.line)
            c = self._as_node(cond, expr.line)
            return self.graph.add_op(Op.SELECT, [c.node_id, a.node_id, b.node_id])
        if isinstance(expr, Call):
            return self._lower_call(expr)
        raise FrontendError(f"line {expr.line}: unsupported expression {type(expr).__name__}")

    def _lower_binop(self, expr: BinOp) -> _Value:
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            try:
                folded = {
                    "+": lambda a, b: a + b,
                    "-": lambda a, b: a - b,
                    "*": lambda a, b: a * b,
                    "/": lambda a, b: a / b,
                    "<": lambda a, b: 1.0 if a < b else 0.0,
                    "<=": lambda a, b: 1.0 if a <= b else 0.0,
                }[expr.op](left, right)
            except ZeroDivisionError:
                raise FrontendError(f"line {expr.line}: constant division by zero") from None
            if (
                isinstance(left, int)
                and isinstance(right, int)
                and expr.op in ("+", "-", "*")
            ):
                return int(folded)
            return folded
        op_map = {"+": Op.FADD, "-": Op.FSUB, "*": Op.FMUL, "/": Op.FDIV, "<": Op.CMP_LT, "<=": Op.CMP_LE}
        a = self._as_node(left, expr.line)
        b = self._as_node(right, expr.line)
        return self.graph.add_op(op_map[expr.op], [a.node_id, b.node_id])

    def _lower_call(self, expr: Call) -> _Value:
        name, args = expr.name, expr.args

        def need(n: int) -> None:
            if len(args) != n:
                raise FrontendError(f"line {expr.line}: {name}() takes {n} argument(s)")

        if name == "sqrt":
            need(1)
            v = self._lower_expr(args[0])
            if isinstance(v, (int, float)):
                if v < 0:
                    raise FrontendError(f"line {expr.line}: sqrt of negative constant {v}")
                return math.sqrt(v)
            return self.graph.add_op(Op.FSQRT, [self._as_node(v, expr.line).node_id])
        if name in ("fmin", "fmax"):
            need(2)
            a = self._lower_expr(args[0])
            b = self._lower_expr(args[1])
            if isinstance(a, (int, float)) and isinstance(b, (int, float)):
                return min(a, b) if name == "fmin" else max(a, b)
            op = Op.FMIN if name == "fmin" else Op.FMAX
            return self.graph.add_op(
                op, [self._as_node(a, expr.line).node_id, self._as_node(b, expr.line).node_id]
            )
        if name == "read_sensor":
            need(1)
            sid = self._as_int(self._lower_expr(args[0]), expr.line, "sensor id")
            self._require_loop(expr.line, name)
            return self.graph.add_sensor_read(sid)
        if name == "read_sensor2":
            need(2)
            sid = self._as_int(self._lower_expr(args[0]), expr.line, "sensor id")
            addr = self._as_node(self._lower_expr(args[1]), expr.line)
            self._require_loop(expr.line, name)
            return self.graph.add_sensor_read_addr(sid, addr)
        if name == "write_actuator":
            need(2)
            aid = self._as_int(self._lower_expr(args[0]), expr.line, "actuator id")
            value = self._as_node(self._lower_expr(args[1]), expr.line)
            self._require_loop(expr.line, name)
            self.graph.add_actuator_write(aid, value)
            return 0.0  # writes have no value; statement context ignores this
        if name == "pipeline_barrier":
            need(0)
            self._require_loop(expr.line, name)
            self._apply_barrier(expr.line)
            return 0.0
        raise FrontendError(f"line {expr.line}: unknown intrinsic {name!r}")

    def _require_loop(self, line: int, what: str) -> None:
        if not self._in_loop:
            raise FrontendError(f"line {line}: {what} is only allowed inside the while(1) loop")
        if self._cond_depth > 0:
            raise FrontendError(
                f"line {line}: {what} is not allowed inside if/else — the "
                "CGRA predicates values, not side effects; hoist the IO out "
                "of the conditional"
            )

    # -- variable access ------------------------------------------------

    def _read_var(self, name: str, line: int) -> _Value:
        if name not in self.env:
            raise FrontendError(f"line {line}: use of undeclared variable {name!r}")
        value = self.env[name]
        if isinstance(value, list):
            raise FrontendError(f"line {line}: {name!r} is an array; index it")
        return value

    def _read_array(self, name: str, index_expr: Expr, line: int) -> _Value:
        if name not in self.env:
            raise FrontendError(f"line {line}: use of undeclared array {name!r}")
        value = self.env[name]
        if not isinstance(value, list):
            raise FrontendError(f"line {line}: {name!r} is not an array")
        idx = self._as_int(self._lower_expr(index_expr), line, "array index")
        if not 0 <= idx < len(value):
            raise FrontendError(f"line {line}: index {idx} out of bounds for {name}[{len(value)}]")
        return value[idx]

    # -- statements -------------------------------------------------------

    def _charge_budget(self, line: int) -> None:
        self._stmt_budget -= 1
        if self._stmt_budget < 0:
            raise FrontendError(
                f"line {line}: unrolled statement budget exceeded ({_MAX_UNROLL})"
            )

    def _lower_statement(self, stmt: Stmt) -> None:
        self._charge_budget(stmt.line)
        if isinstance(stmt, Declaration):
            if stmt.name in self.env and self._for_depth == 0:
                raise FrontendError(f"line {stmt.line}: redeclaration of {stmt.name!r}")
            self.env[stmt.name] = self._lower_expr(stmt.init)
            return
        if isinstance(stmt, ArrayDeclaration):
            if stmt.name in self.env and self._for_depth == 0:
                raise FrontendError(f"line {stmt.line}: redeclaration of {stmt.name!r}")
            size = self._as_int(self._lower_expr(stmt.size), stmt.line, "array size")
            if size < 1:
                raise FrontendError(f"line {stmt.line}: array size must be >= 1")
            init = self._lower_expr(stmt.init)
            self.env[stmt.name] = [init for _ in range(size)]
            return
        if isinstance(stmt, Assignment):
            if stmt.name not in self.env:
                raise FrontendError(f"line {stmt.line}: assignment to undeclared {stmt.name!r}")
            if isinstance(self.env[stmt.name], list):
                raise FrontendError(f"line {stmt.line}: {stmt.name!r} is an array; index it")
            value = self._lower_expr(stmt.value)
            node = value if not isinstance(value, DFGNode) else value
            if isinstance(node, DFGNode) and not node.name:
                node.name = stmt.name
            self.env[stmt.name] = value
            return
        if isinstance(stmt, ArrayAssignment):
            if stmt.name not in self.env or not isinstance(self.env[stmt.name], list):
                raise FrontendError(f"line {stmt.line}: assignment to undeclared array {stmt.name!r}")
            arr = self.env[stmt.name]
            idx = self._as_int(self._lower_expr(stmt.index), stmt.line, "array index")
            if not 0 <= idx < len(arr):
                raise FrontendError(
                    f"line {stmt.line}: index {idx} out of bounds for {stmt.name}[{len(arr)}]"
                )
            value = self._lower_expr(stmt.value)
            if isinstance(value, DFGNode) and not value.name:
                value.name = f"{stmt.name}[{idx}]"
            arr[idx] = value
            return
        if isinstance(stmt, ExprStatement):
            self._lower_expr(stmt.expr)
            return
        if isinstance(stmt, ForLoop):
            self._lower_for(stmt)
            return
        if isinstance(stmt, IfStatement):
            self._lower_if(stmt)
            return
        if isinstance(stmt, WhileLoop):
            raise FrontendError(f"line {stmt.line}: nested while loops are not supported")
        raise FrontendError(f"line {stmt.line}: unsupported statement {type(stmt).__name__}")

    def _lower_for(self, stmt: ForLoop) -> None:
        start = self._as_int(self._lower_expr(stmt.start), stmt.line, "for start")
        limit = self._as_int(self._lower_expr(stmt.limit), stmt.line, "for limit")
        step = self._as_int(self._lower_expr(stmt.step), stmt.line, "for step")
        if step <= 0:
            raise FrontendError(f"line {stmt.line}: for step must be positive")
        shadowed = self.env.get(stmt.var)
        self._for_depth += 1
        try:
            for i in range(start, limit, step):
                self.env[stmt.var] = i
                for inner in stmt.body:
                    self._lower_statement(inner)
        finally:
            self._for_depth -= 1
        if shadowed is None:
            self.env.pop(stmt.var, None)
        else:
            self.env[stmt.var] = shadowed

    def _snapshot_env(self) -> dict[str, _Value | list[_Value]]:
        return {
            name: (list(value) if isinstance(value, list) else value)
            for name, value in self.env.items()
        }

    def _lower_if(self, stmt: IfStatement) -> None:
        """Predicated lowering: run both branches symbolically, merge
        every divergent binding through a SELECT on the condition.

        Compile-time conditions fold to the taken branch only.  Names
        declared *inside* a branch are block-scoped and vanish at the
        merge; IO is rejected inside branches (see :meth:`_require_loop`).
        """
        cond = self._lower_expr(stmt.cond)
        if isinstance(cond, (int, float)):
            taken = stmt.then_body if cond else stmt.else_body
            for inner in taken:
                self._lower_statement(inner)
            return
        cond_node = self._as_node(cond, stmt.line)
        base = self._snapshot_env()

        self._cond_depth += 1
        try:
            for inner in stmt.then_body:
                self._lower_statement(inner)
            env_then = self.env
            # Fresh copy of the pre-branch bindings for the else path.
            self.env = {
                k: (list(v) if isinstance(v, list) else v) for k, v in base.items()
            }
            for inner in stmt.else_body:
                self._lower_statement(inner)
            env_else = self.env
        finally:
            self._cond_depth -= 1

        def merge(a: _Value, b: _Value, slot: str) -> _Value:
            if isinstance(a, (int, float)) and isinstance(b, (int, float)) and a == b:
                return a
            if a is b:
                return a
            node_a = self._as_node(a, stmt.line)
            node_b = self._as_node(b, stmt.line)
            if node_a is node_b:
                return a
            sel = self.graph.add_op(
                Op.SELECT, [cond_node.node_id, node_a.node_id, node_b.node_id],
                name=slot,
            )
            return sel

        merged: dict[str, _Value | list[_Value]] = {}
        for name in base:  # branch-local declarations are dropped
            a = env_then.get(name)
            b = env_else.get(name)
            if isinstance(base[name], list):
                merged[name] = [
                    merge(x, y, f"{name}[{i}]")
                    for i, (x, y) in enumerate(zip(a, b))
                ]
            else:
                merged[name] = merge(a, b, name)
        self.env = merged

    # -- the steady-state loop ---------------------------------------------

    @staticmethod
    def _assigned_slots(body: tuple[Stmt, ...]) -> set[str]:
        """Names (scalars) / array names assigned anywhere in the body."""
        out: set[str] = set()

        def walk(stmts: tuple[Stmt, ...]) -> None:
            for s in stmts:
                if isinstance(s, Assignment):
                    out.add(s.name)
                elif isinstance(s, ArrayAssignment):
                    out.add(s.name)
                elif isinstance(s, ForLoop):
                    walk(s.body)
                elif isinstance(s, IfStatement):
                    walk(s.then_body)
                    walk(s.else_body)

        walk(body)
        return out

    def _apply_barrier(self, line: int) -> None:
        """The pipeline_barrier() transform (see module docstring)."""

        def reroute(value: _Value, slot: str) -> _Value:
            if not isinstance(value, DFGNode) or value.is_zero_time():
                return value
            init = self._preloop_init.get(slot, 0.0)
            kwargs = (
                {"init_param": init.name}
                if isinstance(init, _ParamInit)
                else {"init_value": float(init)}
            )
            phi = self.graph.add_phi(name=f"{slot}.pipe", **kwargs)
            self.graph.bind_phi(phi, value)
            return phi

        for name, bound in list(self.env.items()):
            if isinstance(bound, list):
                self.env[name] = [
                    reroute(v, f"{name}[{i}]") for i, v in enumerate(bound)
                ]
            else:
                self.env[name] = reroute(bound, name)

    def _lower_while(self, stmt: WhileLoop) -> None:
        if self._in_loop:
            raise FrontendError(f"line {stmt.line}: nested while loops are not supported")
        self._in_loop = True
        mutated = self._assigned_slots(stmt.body)

        def to_init(value: _Value, line: int, slot: str) -> float | _ParamInit:
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, _ParamInit):
                return value
            raise FrontendError(
                f"line {line}: initial value of loop-carried variable {slot!r} "
                "must be a constant or a parameter"
            )

        # Create entry PHIs for every pre-loop slot assigned in the body.
        # Non-mutated slots keep their (constant/parameter) binding and are
        # loop-invariant; their inits are only recorded when foldable.
        for name, bound in list(self.env.items()):
            if isinstance(bound, list):
                if name in mutated:
                    phis: list[_Value] = []
                    for i, v in enumerate(bound):
                        init = to_init(v, stmt.line, f"{name}[{i}]")
                        self._preloop_init[f"{name}[{i}]"] = init
                        kwargs = (
                            {"init_param": init.name}
                            if isinstance(init, _ParamInit)
                            else {"init_value": init}
                        )
                        phi = self.graph.add_phi(name=f"{name}[{i}]", **kwargs)
                        self._entry_phis[f"{name}[{i}]"] = phi
                        phis.append(phi)
                    self.env[name] = phis
                else:
                    for i, v in enumerate(bound):
                        if isinstance(v, (int, float, _ParamInit)):
                            self._preloop_init[f"{name}[{i}]"] = (
                                v if isinstance(v, _ParamInit) else float(v)
                            )
            else:
                if name in mutated:
                    init = to_init(bound, stmt.line, name)
                    self._preloop_init[name] = init
                    kwargs = (
                        {"init_param": init.name}
                        if isinstance(init, _ParamInit)
                        else {"init_value": init}
                    )
                    phi = self.graph.add_phi(name=name, **kwargs)
                    self._entry_phis[name] = phi
                    self.env[name] = phi
                elif isinstance(bound, (int, float, _ParamInit)):
                    self._preloop_init[name] = (
                        bound if isinstance(bound, _ParamInit) else float(bound)
                    )

        for inner in stmt.body:
            self._lower_statement(inner)

        # Bind back edges: the value each slot holds at the end of the body
        # is what its PHI must deliver next iteration.
        for slot, phi in self._entry_phis.items():
            if "[" in slot:
                name, rest = slot.split("[", 1)
                idx = int(rest.rstrip("]"))
                final = self.env[name][idx]
            else:
                final = self.env[slot]
            if final is phi:
                # Never assigned (e.g. an array element the unrolled loop
                # skipped): the value is loop-invariant — demote the PHI
                # to its init value in place, keeping its node id for any
                # consumers already wired to it.
                from repro.cgra.ops import Op as _Op

                if phi.init_param is not None:
                    phi.op = _Op.PARAM
                    phi.name = phi.init_param
                else:
                    phi.op = _Op.CONST
                    phi.value = phi.init_value
                phi.back_edge = None
                phi.init_value = None
                phi.init_param = None
                continue
            self.graph.bind_phi(phi, self._as_node(final, stmt.line))
        self._in_loop = False

    # -- entry point --------------------------------------------------------

    def run(self) -> DataflowGraph:
        """Lower the function; returns the validated graph."""
        for p in self.fn.params:
            self.env[p] = _ParamInit(p)
        loops = [s for s in self.fn.body if isinstance(s, WhileLoop)]
        if len(loops) != 1:
            raise FrontendError(
                f"function {self.fn.name!r} must contain exactly one while(1) loop, "
                f"found {len(loops)}"
            )
        for stmt in self.fn.body:
            if isinstance(stmt, WhileLoop):
                self._lower_while(stmt)
            else:
                self._lower_statement(stmt)
        self.graph.validate()
        return self.graph


def lower_function(fn: Function) -> DataflowGraph:
    """Lower one parsed function to a validated dataflow graph."""
    return _Lowering(fn).run()


def compile_c_to_dfg(source: str, function: str | None = None) -> DataflowGraph:
    """Compile mini-C ``source`` to a dataflow graph.

    ``function`` selects the function by name when the source defines
    several; by default the single function is used.
    """
    program: Program = parse_program(source)
    if function is None:
        if len(program.functions) != 1:
            raise FrontendError(
                f"source defines {len(program.functions)} functions; pass function="
            )
        fn = program.functions[0]
    else:
        matches = [f for f in program.functions if f.name == function]
        if not matches:
            raise FrontendError(f"no function named {function!r}")
        fn = matches[0]
    return lower_function(fn)
